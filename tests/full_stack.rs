//! Integration tests spanning the whole stack through the public API:
//! gauge generation → clover construction → parallel mixed-precision solve
//! → host-side verification — in every precision mode, at several rank
//! counts, under both communication strategies.

use quda_core::{
    CommStrategy, Phase, PrecisionMode, Quda, QudaInvertParam, SolverKind, TraceConfig,
};
use quda_fields::gauge_gen::{random_spinor_field, weak_field};
use quda_fields::host::HostSpinorField;
use quda_lattice::geometry::{Coord, LatticeDims};

fn dims() -> LatticeDims {
    LatticeDims::new(4, 4, 4, 8)
}

fn quda_with_gauge(ranks: usize, seed: u64) -> Quda {
    let mut q = Quda::new(ranks).unwrap();
    q.load_gauge(weak_field(dims(), 0.12, seed)).unwrap();
    q
}

#[test]
fn every_precision_mode_converges_and_verifies() {
    let b = random_spinor_field(dims(), 11);
    let cases = [
        (PrecisionMode::Double, 1e-11, 1e-10),
        (PrecisionMode::Single, 1e-5, 1e-4),
        (PrecisionMode::SingleHalf, 1e-5, 1e-4),
        (PrecisionMode::DoubleHalf, 1e-11, 1e-10),
        (PrecisionMode::DoubleSingle, 1e-11, 1e-10),
    ];
    for (mode, tol, check) in cases {
        let mut q = quda_with_gauge(2, 5);
        let mut p = QudaInvertParam::paper_mode(mode, 2);
        p.mass = 0.3;
        p.tol = tol;
        let (_, stats) = q.invert(&b, &p).unwrap();
        assert!(stats.converged, "{} did not converge ({})", mode.name(), stats.true_residual);
        assert!(
            stats.true_residual < check,
            "{}: verified residual {} above {check}",
            mode.name(),
            stats.true_residual
        );
    }
}

#[test]
fn rank_counts_agree_bitwise_in_iterations() {
    let b = random_spinor_field(dims(), 21);
    let mut solutions: Vec<HostSpinorField> = Vec::new();
    for ranks in [1usize, 2, 4] {
        let mut q = quda_with_gauge(ranks, 6);
        let mut p = QudaInvertParam::paper_mode(PrecisionMode::Double, ranks);
        p.mass = 0.3;
        p.tol = 1e-11;
        let (x, stats) = q.invert(&b, &p).unwrap();
        assert!(stats.converged);
        solutions.push(x);
    }
    for s in &solutions[1..] {
        let dist = solutions[0].max_site_dist(s);
        assert!(dist < 1e-9, "solutions differ across rank counts: {dist}");
    }
}

#[test]
fn strategies_agree_exactly() {
    // Deterministic reductions make overlap/no-overlap bit-identical.
    let b = random_spinor_field(dims(), 31);
    let mut results = Vec::new();
    for strategy in [CommStrategy::NoOverlap, CommStrategy::Overlap] {
        let mut q = quda_with_gauge(4, 7);
        let mut p = QudaInvertParam::paper_mode(PrecisionMode::SingleHalf, 4);
        p.strategy = strategy;
        p.mass = 0.3;
        p.tol = 1e-5;
        let (x, stats) = q.invert(&b, &p).unwrap();
        results.push((x, stats.iterations));
    }
    assert_eq!(results[0].1, results[1].1, "iteration counts differ");
    assert_eq!(results[0].0.max_site_dist(&results[1].0), 0.0, "solutions differ");
}

#[test]
fn propagator_protocol_six_solves() {
    // Section VII-A: 6 solves — 3 colors × upper 2 spins — per test.
    let mut q = quda_with_gauge(2, 8);
    let mut p = QudaInvertParam::paper_mode(PrecisionMode::DoubleHalf, 2);
    p.mass = 0.35;
    p.tol = 1e-9;
    let origin = Coord::new(0, 0, 0, 0);
    let mut iterations = Vec::new();
    for spin in 0..2 {
        for color in 0..3 {
            let src = HostSpinorField::point_source(dims(), origin, spin, color);
            let (x, stats) = q.invert(&src, &p).unwrap();
            assert!(stats.converged, "solve s={spin} c={color}");
            assert!(x.norm_sqr() > 0.0);
            iterations.push(stats.iterations);
        }
    }
    assert_eq!(iterations.len(), 6);
    // The physical parameters control only iteration counts, which should
    // be similar across the 6 columns of one configuration.
    let min = *iterations.iter().min().unwrap() as f64;
    let max = *iterations.iter().max().unwrap() as f64;
    assert!(max / min < 2.0, "iteration spread too large: {iterations:?}");
}

#[test]
fn plain_wilson_without_clover_also_solves() {
    let b = random_spinor_field(dims(), 41);
    let mut q = quda_with_gauge(2, 9);
    let mut p = QudaInvertParam::paper_mode(PrecisionMode::Double, 2);
    p.c_sw = 0.0; // plain Wilson
    p.mass = 0.3;
    p.tol = 1e-10;
    let (_, stats) = q.invert(&b, &p).unwrap();
    assert!(stats.converged);
    assert!(stats.true_residual < 1e-9);
}

#[test]
fn cgnr_and_bicgstab_agree() {
    let b = random_spinor_field(dims(), 51);
    let solve = |kind: SolverKind| {
        let mut q = quda_with_gauge(2, 10);
        let mut p = QudaInvertParam::paper_mode(PrecisionMode::Double, 2);
        p.solver = kind;
        p.mass = 0.3;
        p.tol = 1e-10;
        let (x, stats) = q.invert(&b, &p).unwrap();
        assert!(stats.converged);
        x
    };
    let xb = solve(SolverKind::BiCgStab);
    let xc = solve(SolverKind::Cgnr);
    let dist = xb.max_site_dist(&xc);
    assert!(dist < 1e-7, "solver disagreement {dist}");
}

#[test]
fn modeled_stats_are_sane() {
    let b = random_spinor_field(dims(), 61);
    let mut q = quda_with_gauge(2, 11);
    let mut p = QudaInvertParam::paper_mode(PrecisionMode::SingleHalf, 2);
    p.mass = 0.3;
    p.tol = 1e-5;
    let (_, stats) = q.invert(&b, &p).unwrap();
    assert!(stats.modeled_seconds > 0.0);
    assert!(stats.modeled_gflops > 0.0);
    assert!(stats.effective_flops > 0);
    assert!(stats.memory_per_gpu > 1024);
    // Mixed-precision memory footprint exceeds uniform single's.
    let mut p2 = p;
    p2.mode = PrecisionMode::Single;
    let (_, stats2) = q.invert(&b, &p2).unwrap();
    assert!(stats.memory_per_gpu > stats2.memory_per_gpu);
}

#[test]
fn traced_solve_reports_consistent_phase_breakdown() {
    // The redesigned reporting API (ISSUE acceptance): a 2-rank DoubleHalf
    // solve under TraceConfig::Full must produce a non-empty measured
    // breakdown whose per-phase times sum to no more than the total wall
    // time, an overlap efficiency in [0,1], and a chrome-trace JSON export
    // that parses.
    let b = random_spinor_field(dims(), 71);
    let mut q = quda_with_gauge(2, 12);
    let p = QudaInvertParam::paper_mode(PrecisionMode::DoubleHalf, 2)
        .with_mass(0.3)
        .with_tol(1e-10)
        .with_trace(TraceConfig::Full);
    let (_, report) = q.invert(&b, &p).unwrap();
    assert!(report.converged);

    let phases = &report.phases;
    assert_eq!(phases.n_ranks, 2);
    assert!(!phases.phases.is_empty(), "traced solve produced no phase stats");
    assert!(phases.total_wall_s > 0.0);
    assert!(
        phases.accounted_s() <= phases.total_wall_s * 1.0001,
        "per-phase times {} exceed wall time {}",
        phases.accounted_s(),
        phases.total_wall_s
    );
    assert!(
        (0.0..=1.0).contains(&phases.overlap_efficiency),
        "overlap efficiency {} outside [0,1]",
        phases.overlap_efficiency
    );
    // The solve moved real bytes through the face exchange and recorded
    // every layer: comm, ghost, kernel, and solver phases all present.
    assert!(phases.bytes_moved > 0);
    for phase in [Phase::CommSend, Phase::Gather, Phase::Matvec, Phase::Reduce] {
        let stat = phases.get(phase).unwrap_or_else(|| panic!("{} missing", phase.name()));
        assert!(stat.count > 0, "{} recorded no spans", phase.name());
    }
    // Full tracing retains the raw spans, and no rank's ring overflowed
    // on a problem this size.
    assert!(!report.trace.spans.is_empty());
    assert_eq!(phases.dropped_events, 0);

    // The chrome-trace export is valid JSON with the expected shape.
    let json = report.to_chrome_trace();
    let doc = serde_json::from_str(&json).expect("chrome trace must parse");
    let events = doc.get("traceEvents").and_then(|v| v.as_array()).expect("traceEvents array");
    assert!(events.len() > 2, "expected metadata + span events");
    // Round-trip: serialize the parsed tree and parse it again.
    let reprinted = serde_json::to_string(&doc).unwrap();
    assert_eq!(serde_json::from_str(&reprinted).unwrap(), doc);
}

#[test]
fn overlap_hides_communication_no_overlap_does_not() {
    // Overlap interleaves the interior kernel with the face wire time, so
    // its measured overlap efficiency must be strictly higher than the
    // NoOverlap strategy's (which by construction hides nothing).
    let b = random_spinor_field(dims(), 81);
    let efficiency = |strategy: CommStrategy| {
        let mut q = quda_with_gauge(2, 13);
        let p = QudaInvertParam::paper_mode(PrecisionMode::DoubleHalf, 2)
            .with_mass(0.3)
            .with_tol(1e-10)
            .with_strategy(strategy)
            .with_trace(TraceConfig::Summary);
        let (_, report) = q.invert(&b, &p).unwrap();
        assert!(report.converged);
        report.phases.overlap_efficiency
    };
    let hidden = efficiency(CommStrategy::Overlap);
    let exposed = efficiency(CommStrategy::NoOverlap);
    assert!(hidden > exposed, "Overlap efficiency {hidden} not above NoOverlap's {exposed}");
    assert!((0.0..=1.0).contains(&hidden));
    assert_eq!(exposed, 0.0, "NoOverlap runs no interior kernel during the wire wait");
}

#[test]
fn tracing_off_is_truly_off_and_comm_health_still_reported() {
    let b = random_spinor_field(dims(), 91);
    let mut q = quda_with_gauge(2, 14);
    let p = QudaInvertParam::paper_mode(PrecisionMode::Double, 2).with_mass(0.3).with_tol(1e-10);
    let (_, report) = q.invert(&b, &p).unwrap();
    assert!(report.converged);
    assert!(report.trace.is_empty(), "TraceConfig::Off must record nothing");
    assert!(report.phases.phases.is_empty());
    // Comm health comes from the communicators' own counters, not the
    // tracer, so it is present (and clean on a fault-free world).
    assert_eq!(report.comm.per_rank.len(), 2);
    assert!(report.comm.is_clean());
}
