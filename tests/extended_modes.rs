//! Integration tests for modes beyond the paper's production set: uniform
//! half precision and the 8-bit double-quarter extension, both through the
//! public API, plus gauge I/O into the solve path.

use quda_core::{PrecisionMode, Quda, QudaInvertParam};
use quda_fields::gauge_gen::{random_spinor_field, weak_field};
use quda_fields::io::{load_gauge_file, save_gauge_file};
use quda_lattice::geometry::LatticeDims;

fn dims() -> LatticeDims {
    LatticeDims::new(4, 4, 2, 8)
}

#[test]
fn uniform_half_solves_to_its_own_floor() {
    // Uniform half: both outer and sloppy in 16-bit fixed point. The true
    // residual floors at the format's resolution — still useful as an
    // ablation anchor.
    let mut q = Quda::new(2).unwrap();
    q.load_gauge(weak_field(dims(), 0.1, 70)).unwrap();
    let b = random_spinor_field(dims(), 71);
    let mut p = QudaInvertParam::paper_mode(PrecisionMode::Half, 2);
    p.mass = 0.4;
    p.tol = 5e-3;
    p.max_iter = 500;
    let (_, stats) = q.invert(&b, &p).unwrap();
    assert!(stats.converged, "uniform half residual {}", stats.true_residual);
    assert!(stats.true_residual < 5e-2);
}

#[test]
fn double_quarter_reaches_double_targets() {
    // 8-bit sloppy iterations anchored by f64 reliable updates still reach
    // deep residuals (DESIGN.md §4b).
    let mut q = Quda::new(2).unwrap();
    q.load_gauge(weak_field(dims(), 0.1, 72)).unwrap();
    let b = random_spinor_field(dims(), 73);
    let mut p = QudaInvertParam::paper_mode(PrecisionMode::DoubleQuarter, 2);
    p.mass = 0.4;
    p.tol = 1e-9;
    p.delta = 0.3; // 8-bit needs frequent updates
    p.max_iter = 8000;
    let (_, stats) = q.invert(&b, &p).unwrap();
    assert!(stats.converged, "double-quarter residual {}", stats.true_residual);
    assert!(stats.true_residual < 1e-8);
    assert!(stats.reliable_updates >= 2);
    assert_eq!(p.mode.name(), "double-quarter");
    assert!(p.mode.is_mixed());
}

#[test]
fn sloppier_storage_needs_more_iterations() {
    // Monotonicity across the sloppy-precision ladder at a fixed target.
    let cfg = weak_field(dims(), 0.1, 74);
    let b = random_spinor_field(dims(), 75);
    let mut iters = Vec::new();
    for mode in
        [PrecisionMode::DoubleSingle, PrecisionMode::DoubleHalf, PrecisionMode::DoubleQuarter]
    {
        let mut q = Quda::new(2).unwrap();
        q.load_gauge(cfg.clone()).unwrap();
        let mut p = QudaInvertParam::paper_mode(mode, 2);
        p.mass = 0.4;
        p.tol = 1e-9;
        p.delta = 0.3;
        p.max_iter = 8000;
        let (_, stats) = q.invert(&b, &p).unwrap();
        assert!(stats.converged, "{}", mode.name());
        iters.push((mode.name(), stats.iterations));
    }
    assert!(
        iters[0].1 <= iters[2].1,
        "double-single should need no more iterations than double-quarter: {iters:?}"
    );
}

#[test]
fn gauge_file_roundtrips_into_a_solve() {
    let cfg = weak_field(dims(), 0.12, 76);
    let path = std::env::temp_dir().join("quda_rs_solve_roundtrip.cfg");
    save_gauge_file(&cfg, &path).unwrap();
    let loaded = load_gauge_file(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let b = random_spinor_field(dims(), 77);
    let solve = |cfg: quda_fields::host::GaugeConfig| {
        let mut q = Quda::new(2).unwrap();
        q.load_gauge(cfg).unwrap();
        let mut p = QudaInvertParam::paper_mode(PrecisionMode::Double, 2);
        p.mass = 0.4;
        p.tol = 1e-10;
        let (x, stats) = q.invert(&b, &p).unwrap();
        assert!(stats.converged);
        (x, stats.iterations)
    };
    let (x1, i1) = solve(cfg);
    let (x2, i2) = solve(loaded);
    // Bit-exact file round-trip → bit-identical solve.
    assert_eq!(i1, i2);
    assert_eq!(x1.max_site_dist(&x2), 0.0);
}
