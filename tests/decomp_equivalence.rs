//! Cross-decomposition equivalence suite (ISSUE 7 headline test).
//!
//! The dimension-generic ghost-exchange driver must be *provably* a
//! generalization of the paper's 1-d temporal slicing, not a parallel
//! implementation that happens to agree:
//!
//! * a `1×1×1×N` process grid is **bit-identical** to the legacy time-slice
//!   path — same iteration count, same matvec count, same true residual,
//!   zero distance between solutions;
//! * every valid 2-d / 3-d / 4-d grid converges to the same solution within
//!   solver tolerance, with every rank passing the lockstep sanitizer at
//!   `check_every: 1` (identical collective fingerprints on every rank);
//! * the overlapped schedule exposes its per-direction wire/exterior phases
//!   in the trace, one pair per partitioned dimension.

use quda_comm::LockstepConfig;
use quda_dirac::WilsonParams;
use quda_fields::gauge_gen::{random_spinor_field, weak_field};
use quda_fields::host::{GaugeConfig, HostSpinorField};
use quda_lattice::geometry::LatticeDims;
use quda_lattice::partition::{DecompPlan, TimePartition};
use quda_multigpu::rank_op::CommStrategy;
use quda_multigpu::{
    solve_full_grid, solve_full_grid_traced, solve_full_parallel, verify_full_solution, ChaosSpec,
    GridSolveSpec, ParallelSolveSpec, PrecisionMode, SolverKind,
};
use quda_obs::{Phase, TraceConfig};
use quda_solvers::params::SolverParams;

fn wilson() -> WilsonParams {
    WilsonParams { mass: 0.2, c_sw: 1.0 }
}

fn grid_spec(plan: DecompPlan, strategy: CommStrategy, tol: f64) -> GridSolveSpec {
    GridSolveSpec {
        plan,
        wilson: wilson(),
        mode: PrecisionMode::Double,
        strategy,
        solver: SolverKind::BiCgStab,
        params: SolverParams { tol, max_iter: 2000, delta: 1e-1 },
    }
}

/// Lockstep sanitizer at maximum strictness: every rank's collective
/// fingerprint is cross-checked on every operation.
fn lockstep_chaos() -> ChaosSpec {
    ChaosSpec { lockstep: Some(LockstepConfig { check_every: 1 }), ..ChaosSpec::default() }
}

#[test]
fn one_d_grid_is_bit_identical_to_legacy_time_slicing() {
    // The grid driver on a 1×1×1×N plan must produce the *same messages in
    // the same order with the same tags* as the legacy path, hence
    // bit-identical numerics: equal iterations, matvecs, true residual, and
    // exactly zero distance between the solutions.
    let d = LatticeDims::new(4, 4, 2, 8);
    let cfg = weak_field(d, 0.15, 101);
    let b = random_spinor_field(d, 102);
    for ranks in [1usize, 2, 4] {
        for strategy in [CommStrategy::NoOverlap, CommStrategy::Overlap] {
            let legacy_spec = ParallelSolveSpec {
                part: TimePartition::new(d, ranks),
                wilson: wilson(),
                mode: PrecisionMode::Double,
                strategy,
                solver: SolverKind::BiCgStab,
                params: SolverParams { tol: 1e-10, max_iter: 2000, delta: 1e-1 },
            };
            let plan = DecompPlan::new(d, [1, 1, 1, ranks]);
            assert_eq!(legacy_spec.to_grid().plan.grid(), plan.grid());
            let (x_legacy, r_legacy) =
                solve_full_parallel(&cfg, &b, &legacy_spec).expect("legacy solve");
            let (x_grid, r_grid) =
                solve_full_grid(&cfg, &b, &grid_spec(plan, strategy, 1e-10)).expect("grid solve");
            assert!(r_legacy.converged && r_grid.converged);
            assert_eq!(r_legacy.iterations, r_grid.iterations, "{ranks} ranks {strategy:?}");
            assert_eq!(r_legacy.matvecs, r_grid.matvecs);
            assert_eq!(
                r_legacy.final_residual, r_grid.final_residual,
                "true residual must be bit-equal"
            );
            assert_eq!(x_legacy.max_site_dist(&x_grid), 0.0, "{ranks} ranks {strategy:?}");
        }
    }
}

struct Reference {
    cfg: GaugeConfig,
    b: HostSpinorField,
    x: HostSpinorField,
}

/// The legacy 1-d solution on the ISSUE's 8×8×8×16 lattice, solved once.
fn reference_8x8x8x16() -> Reference {
    let d = LatticeDims::new(8, 8, 8, 16);
    let cfg = weak_field(d, 0.1, 2024);
    let b = random_spinor_field(d, 2025);
    let spec = ParallelSolveSpec {
        part: TimePartition::new(d, 4),
        wilson: wilson(),
        mode: PrecisionMode::Double,
        strategy: CommStrategy::Overlap,
        solver: SolverKind::BiCgStab,
        params: SolverParams { tol: 1e-9, max_iter: 2000, delta: 1e-1 },
    };
    let (x, r) = solve_full_parallel(&cfg, &b, &spec).expect("legacy reference solve");
    assert!(r.converged, "reference residual {}", r.final_residual);
    Reference { cfg, b, x }
}

#[test]
fn multi_dim_grids_converge_to_the_legacy_solution_under_lockstep() {
    // One 2-d, one 3-d, and one 4-d decomposition of the same 8×8×8×16
    // problem (ISSUE acceptance), each world running the lockstep sanitizer
    // at check_every: 1 — any rank whose collective fingerprint diverges
    // from its peers' aborts the solve with a located error, so completion
    // certifies that all ranks issued identical collective sequences.
    let rf = reference_8x8x8x16();
    let d = rf.cfg.dims;
    let cases: [(&str, [usize; 4]); 3] = [
        ("2-d (Z,T)", [1, 1, 2, 2]),
        ("3-d (Y,Z,T)", [1, 2, 2, 2]),
        ("4-d (X,Y,Z,T)", [2, 2, 2, 2]),
    ];
    for (label, grid) in cases {
        let plan = DecompPlan::new(d, grid);
        let ts = solve_full_grid_traced(
            &rf.cfg,
            &rf.b,
            &grid_spec(plan, CommStrategy::Overlap, 1e-9),
            &lockstep_chaos(),
            TraceConfig::Off,
        )
        .unwrap_or_else(|e| panic!("{label}: {e}"));
        assert!(ts.result.converged, "{label}: residual {}", ts.result.final_residual);
        assert!(ts.comm.is_clean(), "{label}: dirty wire {:?}", ts.comm);
        let dist = rf.x.max_site_dist(&ts.solution);
        assert!(dist < 1e-6, "{label}: distance to legacy solution {dist}");
        let rel = verify_full_solution(&rf.cfg, &wilson(), &ts.solution, &rf.b);
        assert!(rel < 1e-7, "{label}: full-system residual {rel}");
    }
}

#[test]
fn overlap_schedule_exposes_per_direction_phases() {
    // The overlapped 4-d schedule progresses each direction independently;
    // the trace must show one wire + one exterior phase per partitioned
    // dimension, and none for unpartitioned dimensions.
    let d = LatticeDims::new(4, 4, 4, 8);
    let cfg = weak_field(d, 0.12, 301);
    let b = random_spinor_field(d, 302);
    let plan = DecompPlan::new(d, [1, 2, 1, 2]);
    let ts = solve_full_grid_traced(
        &cfg,
        &b,
        &grid_spec(plan, CommStrategy::Overlap, 1e-9),
        &lockstep_chaos(),
        TraceConfig::Summary,
    )
    .expect("traced grid solve");
    assert!(ts.result.converged);
    let bd = ts.trace.breakdown();
    for dim in 0..4 {
        let cut = plan.open(dim);
        assert_eq!(
            bd.get(Phase::wire_dim(dim)).is_some(),
            cut,
            "wire phase for dim {dim} (cut: {cut})"
        );
        assert_eq!(
            bd.get(Phase::exterior_dim(dim)).is_some(),
            cut,
            "exterior phase for dim {dim} (cut: {cut})"
        );
    }
    // Interior compute ran under the overlapped schedule.
    assert!(bd.get(Phase::Interior).is_some(), "interior phase missing");
}
