//! Integration tests of the communication protocol against the paper's
//! stated wire properties: only 12 numbers per face site cross the network
//! (footnote 3), half precision adds one normalization per site
//! (Section VI-C), the gauge ghost is exchanged exactly once at
//! initialization (Section VI-B), and message counts per dslash match the
//! one-message-per-direction structure of Section VI-D1.

use quda_dirac::WilsonParams;
use quda_fields::gauge_gen::{random_spinor_field, weak_field};
use quda_fields::precision::{Double, Half, Single};
use quda_lattice::geometry::{LatticeDims, Parity};
use quda_lattice::partition::TimePartition;
use quda_multigpu::rank_op::{CommStrategy, ParallelWilsonCloverOp};
use quda_solvers::operator::LinearOperator;

fn dims() -> LatticeDims {
    LatticeDims::new(4, 4, 2, 8)
}

/// Run a closure on every rank of a 2-rank world, returning rank results.
fn on_two_ranks<T: Send + 'static>(
    f: impl Fn(usize, quda_comm::Communicator) -> T + Send + Sync + Clone + 'static,
) -> Vec<T> {
    let world = quda_comm::comm_world(2);
    let handles: Vec<_> = world
        .into_iter()
        .enumerate()
        .map(|(rank, comm)| {
            let f = f.clone();
            std::thread::spawn(move || f(rank, comm))
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

fn traffic_for_one_matpc<P: quda_fields::precision::Precision>() -> (u64, u64) {
    let d = dims();
    let part = TimePartition::new(d, 2);
    let cfg = weak_field(d, 0.1, 3);
    let host = random_spinor_field(d, 4);
    let results = on_two_ranks(move |rank, comm| {
        let mut op = ParallelWilsonCloverOp::<P>::new(
            &cfg,
            part,
            rank,
            comm,
            WilsonParams { mass: 0.3, c_sw: 1.0 },
            CommStrategy::NoOverlap,
        )
        .expect("op init");
        let init_bytes = op.comm.sent_bytes();
        let init_msgs = op.comm.sent_messages();
        let mut x = op.alloc();
        x.upload(&quda_multigpu::slice_spinor(&host, &part, rank), Parity::Odd);
        let mut out = op.alloc();
        op.apply_matpc_par(&mut out, &mut x, false);
        (op.comm.sent_bytes() - init_bytes, op.comm.sent_messages() - init_msgs)
    });
    results[0]
}

#[test]
fn face_messages_carry_exactly_12_reals_per_site() {
    // 2 dslashes per matpc; each sends 2 faces; face = Vs/2 sites.
    let face_sites = dims().half_spatial_volume() as u64;
    let (bytes_f64, msgs) = traffic_for_one_matpc::<Double>();
    assert_eq!(msgs, 4, "2 dslashes x 2 directions");
    assert_eq!(bytes_f64, 4 * face_sites * 12 * 8, "12 f64 per face site");
    let (bytes_f32, _) = traffic_for_one_matpc::<Single>();
    assert_eq!(bytes_f32, 4 * face_sites * 12 * 4);
    // Half: 12 i16 + one f32 norm per site (Section VI-C).
    let (bytes_half, _) = traffic_for_one_matpc::<Half>();
    assert_eq!(bytes_half, 4 * face_sites * (12 * 2 + 4));
    // The 12-component optimization halves traffic vs naive 24 components.
    assert!(bytes_f32 < 4 * face_sites * 24 * 4);
}

#[test]
fn gauge_ghost_exchanged_once_at_init() {
    let d = dims();
    let part = TimePartition::new(d, 2);
    let cfg = weak_field(d, 0.1, 9);
    let results = on_two_ranks(move |rank, comm| {
        let op = ParallelWilsonCloverOp::<Single>::new(
            &cfg,
            part,
            rank,
            comm,
            WilsonParams { mass: 0.3, c_sw: 1.0 },
            CommStrategy::NoOverlap,
        )
        .expect("op init");
        (op.comm.sent_messages(), op.comm.sent_bytes())
    });
    // Exactly one message per parity at init (the f64-encoded link slice).
    let half_vs = dims().half_spatial_volume() as u64;
    for (msgs, bytes) in results {
        assert_eq!(msgs, 2, "one gauge ghost message per parity");
        assert_eq!(bytes, 2 * half_vs * 18 * 8);
    }
}

#[test]
fn overlap_and_no_overlap_send_identical_traffic() {
    let d = dims();
    let part = TimePartition::new(d, 2);
    let cfg = weak_field(d, 0.1, 5);
    let host = random_spinor_field(d, 6);
    let count = |strategy: CommStrategy| {
        let cfg = cfg.clone();
        let host = host.clone();
        let results = on_two_ranks(move |rank, comm| {
            let mut op = ParallelWilsonCloverOp::<Single>::new(
                &cfg,
                part,
                rank,
                comm,
                WilsonParams { mass: 0.3, c_sw: 1.0 },
                strategy,
            )
            .expect("op init");
            let base = op.comm.sent_bytes();
            let mut x = op.alloc();
            x.upload(&quda_multigpu::slice_spinor(&host, &part, rank), Parity::Odd);
            let mut out = op.alloc();
            op.apply_matpc_par(&mut out, &mut x, false);
            op.comm.sent_bytes() - base
        });
        results[0]
    };
    assert_eq!(count(CommStrategy::NoOverlap), count(CommStrategy::Overlap));
}

#[test]
fn reductions_count_matches_solver_structure() {
    // Every reduction kernel in the parallel solver triggers one allreduce
    // (Section VI-E): check the blas counter tallies them.
    let d = dims();
    let cfg = weak_field(d, 0.1, 7);
    let host = random_spinor_field(d, 8);
    let part = TimePartition::new(d, 1);
    let mut world = quda_comm::comm_world(1);
    let comm = world.pop().unwrap();
    let mut op = ParallelWilsonCloverOp::<Double>::new(
        &cfg,
        part,
        0,
        comm,
        WilsonParams { mass: 0.3, c_sw: 1.0 },
        CommStrategy::NoOverlap,
    )
    .expect("op init");
    let mut b = op.alloc();
    b.upload(&host, Parity::Odd);
    let mut x = op.alloc();
    quda_solvers::blas::zero(&mut x);
    let res = quda_solvers::bicgstab(
        &mut op,
        &mut x,
        &b,
        &quda_solvers::params::SolverParams { tol: 1e-9, max_iter: 200, delta: 0.0 },
    );
    assert!(res.converged);
    // Per iteration: r0·v, ‖s‖, (t·s, ‖t‖), ‖r‖, r0·r — at least 4
    // reduction kernels per iteration plus setup/teardown.
    assert!(
        res.blas.reductions as usize >= 4 * res.iterations,
        "reductions {} for {} iterations",
        res.blas.reductions,
        res.iterations
    );
}

/// Run a closure on every rank of a 2-rank world built with an explicit
/// fault plan and timeout policy.
fn on_two_faulty_ranks<T: Send + 'static>(
    plan: quda_comm::FaultPlan,
    config: quda_comm::CommConfig,
    f: impl Fn(usize, quda_comm::Communicator) -> T + Send + Sync + Clone + 'static,
) -> Vec<T> {
    let world = quda_comm::comm_world_with(2, config, Some(plan));
    let handles: Vec<_> = world
        .into_iter()
        .enumerate()
        .map(|(rank, comm)| {
            let f = f.clone();
            std::thread::spawn(move || f(rank, comm))
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

/// One matpc application on a 2-rank world under `plan`; returns each rank's
/// (max |out - reference|, recovery stats) where the reference is the same
/// application on a fault-free world.
fn matpc_under_faults(plan: quda_comm::FaultPlan) -> Vec<(f64, quda_comm::CommStats)> {
    let d = dims();
    let part = TimePartition::new(d, 2);
    let cfg = weak_field(d, 0.1, 11);
    let host = random_spinor_field(d, 12);

    let apply = move |rank: usize, comm: quda_comm::Communicator| {
        let mut op = ParallelWilsonCloverOp::<Double>::new(
            &cfg,
            part,
            rank,
            comm,
            WilsonParams { mass: 0.3, c_sw: 1.0 },
            CommStrategy::NoOverlap,
        )
        .expect("op init");
        let mut x = op.alloc();
        x.upload(&quda_multigpu::slice_spinor(&host, &part, rank), Parity::Odd);
        let mut out = op.alloc();
        op.apply_matpc_par(&mut out, &mut x, false);
        assert!(op.comm_fault().is_none(), "fault: {:?}", op.comm_fault());
        let mut vals = Vec::with_capacity(out.sites() * 24);
        for cb in 0..out.sites() {
            let site = out.get(cb);
            for sp in 0..4 {
                for co in 0..3 {
                    vals.push(site.s[sp].c[co].re);
                    vals.push(site.s[sp].c[co].im);
                }
            }
        }
        (vals, op.comm_stats())
    };

    let clean = on_two_ranks(apply.clone());
    let faulty = on_two_faulty_ranks(plan, quda_comm::CommConfig::default(), apply);
    clean
        .into_iter()
        .zip(faulty)
        .map(|((cv, _), (fv, stats))| {
            let dist = cv.iter().zip(&fv).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
            (dist, stats)
        })
        .collect()
}

#[test]
fn dropped_faces_are_recovered_bit_identically() {
    // An aggressive 20% drop rate: every lost face is replayed from the
    // link-level pristine store, so ghost zones are bit-identical.
    let results = matpc_under_faults(quda_comm::FaultPlan::new(21).drop(0.2));
    let recovered: u64 = results.iter().map(|(_, s)| s.recovered).sum();
    assert!(recovered > 0, "expected at least one drop across 12 messages");
    for (dist, _) in results {
        assert_eq!(dist, 0.0, "recovery must be bit-identical");
    }
}

#[test]
fn delayed_faces_arrive_and_match() {
    // Delays reorder nothing here (per-(peer,tag) FIFO) but do exercise the
    // receiver's backoff path; the result must still be exact.
    let plan = quda_comm::FaultPlan::new(22).delay(0.5, std::time::Duration::from_millis(20));
    for (dist, stats) in matpc_under_faults(plan) {
        assert_eq!(dist, 0.0);
        // Waiting out a delay is not a recovery event.
        assert_eq!(stats.recovered, 0);
    }
}

#[test]
fn corrupted_faces_are_detected_and_retransmitted() {
    // Bit-flips and truncations must be caught by the frame checksum and
    // length checks — never silently accepted into a ghost zone.
    let plan = quda_comm::FaultPlan::new(23).bit_flip(0.3).truncate(0.1);
    let results = matpc_under_faults(plan);
    let caught: u64 = results.iter().map(|(_, s)| s.checksum_failures).sum();
    let recovered: u64 = results.iter().map(|(_, s)| s.recovered).sum();
    assert!(caught > 0, "expected corrupted frames to be flagged");
    assert!(recovered >= caught, "every flagged frame must be re-fetched");
    for (dist, _) in results {
        assert_eq!(dist, 0.0);
    }
}

#[test]
fn duplicated_faces_are_deduplicated() {
    let results = matpc_under_faults(quda_comm::FaultPlan::new(24).duplicate(0.5));
    let dropped: u64 = results.iter().map(|(_, s)| s.duplicates_dropped).sum();
    assert!(dropped > 0, "expected duplicate frames to be discarded");
    for (dist, _) in results {
        assert_eq!(dist, 0.0);
    }
}

// ---- non-temporal faces (ISSUE 7 satellite): the protocol guarantees hold
// for every partitioned dimension, not just the paper's T slicing. ----

/// One matpc on a 2-rank world cut along `grid`'s single open dimension,
/// under `plan`; returns each rank's (max |out − fault-free out|, stats).
fn grid_matpc_under_faults(
    dims: LatticeDims,
    grid: [usize; 4],
    plan: quda_comm::FaultPlan,
) -> Vec<(f64, quda_comm::CommStats)> {
    use quda_lattice::partition::DecompPlan;
    let decomp = DecompPlan::new(dims, grid);
    let cfg = weak_field(dims, 0.1, 31);
    let host = random_spinor_field(dims, 32);

    let apply = move |rank: usize, comm: quda_comm::Communicator| {
        let mut op = ParallelWilsonCloverOp::<Double>::new_grid(
            &cfg,
            decomp,
            rank,
            comm,
            WilsonParams { mass: 0.3, c_sw: 1.0 },
            CommStrategy::NoOverlap,
        )
        .expect("op init");
        let mut x = op.alloc();
        x.upload(&quda_multigpu::slice_spinor_grid(&host, &decomp, rank), Parity::Odd);
        let mut out = op.alloc();
        op.apply_matpc_par(&mut out, &mut x, false);
        assert!(op.comm_fault().is_none(), "fault: {:?}", op.comm_fault());
        let mut vals = Vec::with_capacity(out.sites() * 24);
        for cb in 0..out.sites() {
            let site = out.get(cb);
            for sp in 0..4 {
                for co in 0..3 {
                    vals.push(site.s[sp].c[co].re);
                    vals.push(site.s[sp].c[co].im);
                }
            }
        }
        (vals, op.comm_stats())
    };

    let clean = on_two_ranks(apply.clone());
    let faulty = on_two_faulty_ranks(plan, quda_comm::CommConfig::default(), apply);
    clean
        .into_iter()
        .zip(faulty)
        .map(|((cv, _), (fv, stats))| {
            let dist = cv.iter().zip(&fv).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
            (dist, stats)
        })
        .collect()
}

#[test]
fn dropped_x_faces_are_recovered_bit_identically() {
    // The X-face wire (non-contiguous gather, tags::face(0, ·)) rides the
    // same link-level recovery as the T face: a 20% drop rate must leave
    // the ghost zones bit-identical.
    let results =
        grid_matpc_under_faults(dims(), [2, 1, 1, 1], quda_comm::FaultPlan::new(41).drop(0.2));
    let recovered: u64 = results.iter().map(|(_, s)| s.recovered).sum();
    assert!(recovered > 0, "expected at least one dropped X-face");
    for (dist, _) in results {
        assert_eq!(dist, 0.0, "X-face recovery must be bit-identical");
    }
}

#[test]
fn corrupted_z_faces_are_detected_and_retransmitted() {
    // Bit-flipped Z-face frames must be flagged by the checksum and
    // replayed — never scattered into a ghost zone.
    let d = LatticeDims::new(4, 4, 4, 4);
    let plan = quda_comm::FaultPlan::new(42).bit_flip(0.3).truncate(0.1);
    let results = grid_matpc_under_faults(d, [1, 1, 2, 1], plan);
    let caught: u64 = results.iter().map(|(_, s)| s.checksum_failures).sum();
    let recovered: u64 = results.iter().map(|(_, s)| s.recovered).sum();
    assert!(caught > 0, "expected corrupted Z-face frames to be flagged");
    assert!(recovered >= caught);
    for (dist, _) in results {
        assert_eq!(dist, 0.0);
    }
}

/// A rank killed mid-exchange in dimension `grid` must surface as a
/// *located* `RankDead` within the timeout — never a hang (ISSUE 7
/// satellite: the non-T faces inherit the full failure-detection protocol).
fn dead_rank_is_located(dims: LatticeDims, grid: [usize; 4]) {
    use quda_lattice::partition::DecompPlan;
    use quda_multigpu::{
        solve_full_grid_chaos, ChaosSpec, GridSolveSpec, PrecisionMode, SolverKind,
    };
    let spec = GridSolveSpec {
        plan: DecompPlan::new(dims, grid),
        wilson: WilsonParams { mass: 0.3, c_sw: 1.0 },
        mode: PrecisionMode::Double,
        strategy: CommStrategy::Overlap,
        solver: SolverKind::BiCgStab,
        params: quda_solvers::params::SolverParams { tol: 1e-10, max_iter: 2000, delta: 1e-1 },
    };
    let cfg = weak_field(dims, 0.1, 51);
    let b = random_spinor_field(dims, 52);
    let chaos = ChaosSpec {
        // 9 messages in: past the gauge-ghost init, inside the spinor-face
        // exchange of the first few operator applications.
        plan: Some(quda_comm::FaultPlan::new(43).kill_rank(1, 9)),
        comm: quda_comm::CommConfig {
            timeout: std::time::Duration::from_secs(2),
            ..quda_comm::CommConfig::default()
        },
        ..ChaosSpec::default()
    };
    let t0 = std::time::Instant::now();
    let err = solve_full_grid_chaos(&cfg, &b, &spec, &chaos)
        .expect_err("a dead rank must abort the grid solve");
    assert_eq!(err, quda_comm::CommError::RankDead { rank: 1 });
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(30),
        "world took {:?} to notice the dead rank",
        t0.elapsed()
    );
}

#[test]
fn dead_rank_during_x_face_exchange_is_located_not_hung() {
    dead_rank_is_located(dims(), [2, 1, 1, 1]);
}

#[test]
fn dead_rank_during_z_face_exchange_is_located_not_hung() {
    dead_rank_is_located(LatticeDims::new(4, 4, 4, 4), [1, 1, 2, 1]);
}
