//! Integration tests of the communication protocol against the paper's
//! stated wire properties: only 12 numbers per face site cross the network
//! (footnote 3), half precision adds one normalization per site
//! (Section VI-C), the gauge ghost is exchanged exactly once at
//! initialization (Section VI-B), and message counts per dslash match the
//! one-message-per-direction structure of Section VI-D1.

use quda_dirac::WilsonParams;
use quda_fields::gauge_gen::{random_spinor_field, weak_field};
use quda_fields::precision::{Double, Half, Single};
use quda_lattice::geometry::{LatticeDims, Parity};
use quda_lattice::partition::TimePartition;
use quda_multigpu::rank_op::{CommStrategy, ParallelWilsonCloverOp};
use quda_solvers::operator::LinearOperator;

fn dims() -> LatticeDims {
    LatticeDims::new(4, 4, 2, 8)
}

/// Run a closure on every rank of a 2-rank world, returning rank results.
fn on_two_ranks<T: Send + 'static>(
    f: impl Fn(usize, quda_comm::Communicator) -> T + Send + Sync + Clone + 'static,
) -> Vec<T> {
    let world = quda_comm::comm_world(2);
    let handles: Vec<_> = world
        .into_iter()
        .enumerate()
        .map(|(rank, comm)| {
            let f = f.clone();
            std::thread::spawn(move || f(rank, comm))
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

fn traffic_for_one_matpc<P: quda_fields::precision::Precision>() -> (u64, u64) {
    let d = dims();
    let part = TimePartition::new(d, 2);
    let cfg = weak_field(d, 0.1, 3);
    let host = random_spinor_field(d, 4);
    let results = on_two_ranks(move |rank, comm| {
        let mut op = ParallelWilsonCloverOp::<P>::new(
            &cfg,
            part,
            rank,
            comm,
            WilsonParams { mass: 0.3, c_sw: 1.0 },
            CommStrategy::NoOverlap,
        );
        let init_bytes = op.comm.sent_bytes();
        let init_msgs = op.comm.sent_messages();
        let mut x = op.alloc();
        x.upload(&quda_multigpu::slice_spinor(&host, &part, rank), Parity::Odd);
        let mut out = op.alloc();
        op.apply_matpc_par(&mut out, &mut x, false);
        (op.comm.sent_bytes() - init_bytes, op.comm.sent_messages() - init_msgs)
    });
    results[0]
}

#[test]
fn face_messages_carry_exactly_12_reals_per_site() {
    // 2 dslashes per matpc; each sends 2 faces; face = Vs/2 sites.
    let face_sites = dims().half_spatial_volume() as u64;
    let (bytes_f64, msgs) = traffic_for_one_matpc::<Double>();
    assert_eq!(msgs, 4, "2 dslashes x 2 directions");
    assert_eq!(bytes_f64, 4 * face_sites * 12 * 8, "12 f64 per face site");
    let (bytes_f32, _) = traffic_for_one_matpc::<Single>();
    assert_eq!(bytes_f32, 4 * face_sites * 12 * 4);
    // Half: 12 i16 + one f32 norm per site (Section VI-C).
    let (bytes_half, _) = traffic_for_one_matpc::<Half>();
    assert_eq!(bytes_half, 4 * face_sites * (12 * 2 + 4));
    // The 12-component optimization halves traffic vs naive 24 components.
    assert!(bytes_f32 < 4 * face_sites * 24 * 4);
}

#[test]
fn gauge_ghost_exchanged_once_at_init() {
    let d = dims();
    let part = TimePartition::new(d, 2);
    let cfg = weak_field(d, 0.1, 9);
    let results = on_two_ranks(move |rank, comm| {
        let op = ParallelWilsonCloverOp::<Single>::new(
            &cfg,
            part,
            rank,
            comm,
            WilsonParams { mass: 0.3, c_sw: 1.0 },
            CommStrategy::NoOverlap,
        );
        (op.comm.sent_messages(), op.comm.sent_bytes())
    });
    // Exactly one message per parity at init (the f64-encoded link slice).
    let half_vs = dims().half_spatial_volume() as u64;
    for (msgs, bytes) in results {
        assert_eq!(msgs, 2, "one gauge ghost message per parity");
        assert_eq!(bytes, 2 * half_vs * 18 * 8);
    }
}

#[test]
fn overlap_and_no_overlap_send_identical_traffic() {
    let d = dims();
    let part = TimePartition::new(d, 2);
    let cfg = weak_field(d, 0.1, 5);
    let host = random_spinor_field(d, 6);
    let count = |strategy: CommStrategy| {
        let cfg = cfg.clone();
        let host = host.clone();
        let results = on_two_ranks(move |rank, comm| {
            let mut op = ParallelWilsonCloverOp::<Single>::new(
                &cfg,
                part,
                rank,
                comm,
                WilsonParams { mass: 0.3, c_sw: 1.0 },
                strategy,
            );
            let base = op.comm.sent_bytes();
            let mut x = op.alloc();
            x.upload(&quda_multigpu::slice_spinor(&host, &part, rank), Parity::Odd);
            let mut out = op.alloc();
            op.apply_matpc_par(&mut out, &mut x, false);
            op.comm.sent_bytes() - base
        });
        results[0]
    };
    assert_eq!(count(CommStrategy::NoOverlap), count(CommStrategy::Overlap));
}

#[test]
fn reductions_count_matches_solver_structure() {
    // Every reduction kernel in the parallel solver triggers one allreduce
    // (Section VI-E): check the blas counter tallies them.
    let d = dims();
    let cfg = weak_field(d, 0.1, 7);
    let host = random_spinor_field(d, 8);
    let part = TimePartition::new(d, 1);
    let mut world = quda_comm::comm_world(1);
    let comm = world.pop().unwrap();
    let mut op = ParallelWilsonCloverOp::<Double>::new(
        &cfg,
        part,
        0,
        comm,
        WilsonParams { mass: 0.3, c_sw: 1.0 },
        CommStrategy::NoOverlap,
    );
    let mut b = op.alloc();
    b.upload(&host, Parity::Odd);
    let mut x = op.alloc();
    quda_solvers::blas::zero(&mut x);
    let res = quda_solvers::bicgstab(
        &mut op,
        &mut x,
        &b,
        &quda_solvers::params::SolverParams { tol: 1e-9, max_iter: 200, delta: 0.0 },
    );
    assert!(res.converged);
    // Per iteration: r0·v, ‖s‖, (t·s, ‖t‖), ‖r‖, r0·r — at least 4
    // reduction kernels per iteration plus setup/teardown.
    assert!(
        res.blas.reductions as usize >= 4 * res.iterations,
        "reductions {} for {} iterations",
        res.blas.reductions,
        res.iterations
    );
}
