//! The service's batching contract, end to end through the public API: a
//! batch of N right-hand sides solved by one [`Quda::invert_multi`] call
//! is **bit-identical** — solutions and iteration counts — to N sequential
//! [`Quda::invert`] calls, at every production precision mode and under
//! the comm lockstep sanitizer (DESIGN.md §14).

use quda_core::{PrecisionMode, Quda, QudaInvertParam};
use quda_fields::gauge_gen::{random_spinor_field, weak_field};
use quda_lattice::geometry::LatticeDims;

fn dims() -> LatticeDims {
    LatticeDims::new(4, 4, 2, 8)
}

/// Per-mode residual target: tight for pure double, the mixed-precision
/// paper tolerance otherwise (uniform single floors near f32 resolution).
fn tol_for(mode: PrecisionMode) -> f64 {
    match mode {
        PrecisionMode::Double => 1e-10,
        PrecisionMode::Single => 2e-5,
        _ => 2e-6,
    }
}

/// Solve `n` sources batched and sequentially on the same handle and
/// assert bit-identity per member.
fn assert_batched_equivalence(mode: PrecisionMode, n: usize, lockstep: bool) {
    let mut q = Quda::new(2).unwrap();
    q.load_gauge(weak_field(dims(), 0.15, 90)).unwrap();
    let sources: Vec<_> = (0..n).map(|k| random_spinor_field(dims(), 91 + k as u64)).collect();
    let mut p = QudaInvertParam::paper_mode(mode, 2).with_mass(0.3).with_tol(tol_for(mode));
    p.lockstep = lockstep;

    let multi = q.invert_multi(&sources, &p).unwrap();
    assert_eq!(multi.len(), n);
    for (k, s) in sources.iter().enumerate() {
        let (x, rep) = q.invert(s, &p).unwrap();
        let (xm, repm) = &multi[k];
        assert!(rep.converged, "{} sequential member {k} did not converge", mode.name());
        assert!(repm.converged, "{} batched member {k} did not converge", mode.name());
        assert_eq!(
            repm.iterations,
            rep.iterations,
            "{} member {k}: batched iteration count diverged",
            mode.name()
        );
        assert_eq!(
            xm.max_site_dist(&x),
            0.0,
            "{} member {k}: batched solution is not bit-identical",
            mode.name()
        );
    }
}

#[test]
fn batched_matches_sequential_at_all_four_precisions() {
    for mode in [
        PrecisionMode::Double,
        PrecisionMode::Single,
        PrecisionMode::SingleHalf,
        PrecisionMode::DoubleHalf,
    ] {
        assert_batched_equivalence(mode, 3, false);
    }
}

#[test]
fn batched_equivalence_holds_under_lockstep() {
    // The sanitizer hashes every collective; data-dependent batching (fused
    // vector reductions, per-RHS convergence masks) must still present a
    // rank-uniform collective stream. CI additionally exercises this whole
    // suite with `QUDA_LOCKSTEP=1` in the environment.
    assert_batched_equivalence(PrecisionMode::Double, 3, true);
    assert_batched_equivalence(PrecisionMode::SingleHalf, 3, true);
}
