//! End-to-end elastic-resilience acceptance (ISSUE 8): solves that survive
//! injected rank deaths — including two *sequential* deaths across world
//! incarnations — and converge to the same residual norm as the fault-free
//! solve, with per-death recovery telemetry surfaced through the public
//! interface.

use quda_comm::{CommConfig, CommError, FaultPlan};
use quda_core::{ChaosSpec, PrecisionMode, Quda, QudaInvertParam};
use quda_dirac::WilsonParams;
use quda_fields::gauge_gen::{random_spinor_field, weak_field};
use quda_lattice::geometry::LatticeDims;
use quda_lattice::partition::{DecompPlan, TimePartition};
use quda_multigpu::driver::{
    solve_full_grid_chaos, solve_full_grid_elastic, solve_full_parallel,
    solve_full_parallel_elastic, verify_full_solution, ElasticPolicy, GridSolveSpec,
    ParallelSolveSpec, SolverKind,
};
use quda_multigpu::rank_op::CommStrategy;
use quda_obs::TraceConfig;
use quda_solvers::params::SolverParams;
use std::time::Duration;

fn chaos_with(plan: FaultPlan) -> ChaosSpec {
    ChaosSpec {
        plan: Some(plan),
        comm: CommConfig { timeout: Duration::from_secs(2), ..CommConfig::default() },
        ..ChaosSpec::default()
    }
}

/// Two sequential rank deaths on a 2x1x1x2 process grid: the tentpole
/// acceptance. The elastic solve must converge to the same residual norm as
/// the fault-free solve (within solver tolerance) and report both
/// recoveries with positive latency.
#[test]
fn grid_2112_survives_two_sequential_deaths() {
    let global = LatticeDims::new(8, 4, 2, 8);
    let plan = DecompPlan::new(global, [2, 1, 1, 2]);
    let spec = GridSolveSpec {
        plan,
        wilson: WilsonParams { mass: 0.3, c_sw: 1.0 },
        mode: PrecisionMode::DoubleHalf,
        strategy: CommStrategy::NoOverlap,
        solver: SolverKind::BiCgStab,
        params: SolverParams { tol: 1e-10, max_iter: 2000, delta: 1e-1 },
    };
    let cfg = weak_field(global, 0.15, 101);
    let b = random_spinor_field(global, 102);
    let (x_clean, r_clean) =
        solve_full_grid_chaos(&cfg, &b, &spec, &ChaosSpec::default()).expect("fault-free solve");
    assert!(r_clean.converged);
    let rel_clean = verify_full_solution(&cfg, &spec.wilson, &x_clean, &b);

    let policy = ElasticPolicy {
        max_rank_deaths: 2,
        chaos: chaos_with(
            FaultPlan::new(5).kill_rank_in_generation(0, 3, 150).kill_rank_in_generation(1, 1, 200),
        ),
    };
    let es = solve_full_grid_elastic(&cfg, &b, &spec, &policy, TraceConfig::Off)
        .expect("elastic solve must survive two sequential deaths");
    assert!(es.solve.result.converged, "residual {}", es.solve.result.final_residual);
    assert_eq!(es.recovery.deaths_survived(), 2);
    assert_eq!(es.recovery.events[0].dead_rank, 3);
    assert_eq!(es.recovery.events[1].dead_rank, 1);
    for (i, ev) in es.recovery.events.iter().enumerate() {
        assert!(ev.latency > Duration::ZERO, "death {i}: unmeasured recovery latency");
    }
    assert!(es.recovery.checkpoints_taken > 0);
    assert!(es.recovery.checkpoint_bytes > 0);
    // Same answer as fault-free, to solver tolerance.
    let rel = verify_full_solution(&cfg, &spec.wilson, &es.solve.solution, &b);
    assert!(rel < 1e-9, "post-recovery residual {rel} (fault-free {rel_clean})");
}

/// The legacy 1x1x1x4 temporal decomposition survives two sequential
/// deaths through the `ParallelSolveSpec` entry point.
#[test]
fn legacy_1114_survives_two_sequential_deaths() {
    let global = LatticeDims::new(4, 4, 2, 8);
    let spec = ParallelSolveSpec {
        part: TimePartition::new(global, 4),
        wilson: WilsonParams { mass: 0.3, c_sw: 1.0 },
        mode: PrecisionMode::DoubleHalf,
        strategy: CommStrategy::Overlap,
        solver: SolverKind::BiCgStab,
        params: SolverParams { tol: 1e-10, max_iter: 2000, delta: 1e-1 },
    };
    let cfg = weak_field(global, 0.15, 111);
    let b = random_spinor_field(global, 112);
    let (x_clean, _) = solve_full_parallel(&cfg, &b, &spec).expect("fault-free solve");
    let rel_clean = verify_full_solution(&cfg, &spec.wilson, &x_clean, &b);

    let policy = ElasticPolicy {
        max_rank_deaths: 2,
        chaos: chaos_with(
            FaultPlan::new(6).kill_rank_in_generation(0, 2, 150).kill_rank_in_generation(1, 0, 250),
        ),
    };
    let es = solve_full_parallel_elastic(&cfg, &b, &spec, &policy, TraceConfig::Off)
        .expect("elastic solve must survive two sequential deaths");
    assert!(es.solve.result.converged);
    assert_eq!(es.recovery.deaths_survived(), 2);
    let rel = verify_full_solution(&cfg, &spec.wilson, &es.solve.solution, &b);
    assert!(rel < 1e-9, "post-recovery residual {rel} (fault-free {rel_clean})");
}

/// A third death with a budget of two must surface the typed error.
#[test]
fn budget_exhaustion_surfaces_the_death() {
    let global = LatticeDims::new(4, 4, 2, 8);
    let spec = ParallelSolveSpec {
        part: TimePartition::new(global, 2),
        wilson: WilsonParams { mass: 0.3, c_sw: 1.0 },
        mode: PrecisionMode::Double,
        strategy: CommStrategy::NoOverlap,
        solver: SolverKind::BiCgStab,
        params: SolverParams { tol: 1e-10, max_iter: 2000, delta: 0.0 },
    };
    let cfg = weak_field(global, 0.15, 121);
    let b = random_spinor_field(global, 122);
    let policy = ElasticPolicy {
        max_rank_deaths: 1,
        chaos: chaos_with(
            FaultPlan::new(7).kill_rank_in_generation(0, 1, 100).kill_rank_in_generation(1, 0, 100),
        ),
    };
    let err = solve_full_parallel_elastic(&cfg, &b, &spec, &policy, TraceConfig::Off)
        .expect_err("the second death exceeds the budget");
    assert_eq!(err, CommError::RankDead { rank: 0 });
}

/// `max_rank_deaths = 0` pins the bit-identical fail-fast contract at the
/// public-interface level: same solution bits fault-free, same typed error
/// under a kill, and an empty recovery report.
#[test]
fn zero_budget_invert_is_bit_identical_fail_fast() {
    let dims = LatticeDims::new(4, 4, 2, 8);
    let cfg = weak_field(dims, 0.15, 131);
    let b = random_spinor_field(dims, 132);

    let mut q = Quda::new(2).expect("context");
    q.load_gauge(cfg.clone()).expect("gauge");
    let p =
        QudaInvertParam::paper_mode(PrecisionMode::DoubleHalf, 2).with_mass(0.3).with_tol(1e-10);
    assert_eq!(p.max_rank_deaths, 0, "fail-fast is the default");
    let (x0, rep0) = q.invert(&b, &p).expect("classic invert");
    let (x1, rep1) = q.invert(&b, &p.with_max_rank_deaths(0)).expect("elastic-0 invert");
    assert_eq!(x0.max_site_dist(&x1), 0.0, "budget 0 must be bit-identical");
    assert_eq!(rep0.stats.iterations, rep1.stats.iterations);
    assert_eq!(rep1.recovery.deaths_survived(), 0);
    assert_eq!(rep1.recovery.checkpoints_taken, 0);

    // Under a kill, budget 0 fails fast with the classic typed error.
    let chaos = chaos_with(FaultPlan::new(8).kill_rank(1, 50));
    let err = q.invert_with_chaos(&b, &p, &chaos).expect_err("budget 0 fails fast");
    match err {
        quda_core::QudaError::Comm(CommError::RankDead { rank }) => assert_eq!(rank, 1),
        other => panic!("expected Comm(RankDead), got {other:?}"),
    }
}

/// The public interface surfaces recovery telemetry: an invert with an
/// injected death and a death budget reports the event in
/// `InvertReport::recovery`.
#[test]
fn invert_report_carries_recovery_telemetry() {
    let dims = LatticeDims::new(4, 4, 2, 8);
    let cfg = weak_field(dims, 0.15, 141);
    let b = random_spinor_field(dims, 142);
    let mut q = Quda::new(2).expect("context");
    q.load_gauge(cfg).expect("gauge");
    let p = QudaInvertParam::paper_mode(PrecisionMode::DoubleHalf, 2)
        .with_mass(0.3)
        .with_tol(1e-10)
        .with_max_rank_deaths(1);
    let chaos = chaos_with(FaultPlan::new(9).kill_rank(1, 150));
    let (x, report) = q.invert_with_chaos(&b, &p, &chaos).expect("elastic invert");
    assert!(report.stats.converged);
    assert!(report.stats.true_residual < 1e-9);
    assert!(x.norm_sqr() > 0.0);
    assert_eq!(report.recovery.deaths_survived(), 1);
    assert_eq!(report.recovery.events[0].dead_rank, 1);
    assert!(report.recovery.events[0].latency > Duration::ZERO);
    assert!(report.recovery.checkpoints_taken > 0);
}

/// A panicking rank (injected bug) is classified as `RankPanicked` with
/// the message — and is just as survivable as a scheduled death.
#[test]
fn panicked_rank_is_survivable_and_typed() {
    let global = LatticeDims::new(4, 4, 2, 8);
    let spec = ParallelSolveSpec {
        part: TimePartition::new(global, 2),
        wilson: WilsonParams { mass: 0.3, c_sw: 1.0 },
        mode: PrecisionMode::DoubleHalf,
        strategy: CommStrategy::NoOverlap,
        solver: SolverKind::BiCgStab,
        params: SolverParams { tol: 1e-10, max_iter: 2000, delta: 1e-1 },
    };
    let cfg = weak_field(global, 0.15, 151);
    let b = random_spinor_field(global, 152);
    let policy = ElasticPolicy {
        max_rank_deaths: 1,
        chaos: chaos_with(FaultPlan::new(10).panic_rank(0, 150)),
    };
    let es = solve_full_parallel_elastic(&cfg, &b, &spec, &policy, TraceConfig::Off)
        .expect("elastic solve must survive a panicked rank");
    assert!(es.solve.result.converged);
    assert_eq!(es.recovery.deaths_survived(), 1);
    let ev = &es.recovery.events[0];
    assert_eq!(ev.dead_rank, 0);
    assert!(ev.cause.contains("panicked"), "cause: {}", ev.cause);
    assert!(ev.cause.contains("injected panic"), "cause: {}", ev.cause);
}
