//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Benchmarks really run and report wall-clock medians, but there is no
//! statistical analysis, warm-up tuning, or HTML report — just enough to
//! keep `cargo bench` useful while offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        println!("\ngroup: {}", name.into());
        BenchmarkGroup { sample_size: 10, throughput: None }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        run_one(&id.to_string(), 10, None, &mut f);
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Set how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Attach a throughput so rates are reported.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), self.sample_size, self.throughput, &mut f);
        self
    }

    /// End the group (no-op; for API compatibility).
    pub fn finish(&mut self) {}
}

/// A benchmark id with a parameter, rendered as `name/param`.
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { repr: format!("{name}/{parameter}") }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { repr: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.repr)
    }
}

/// Passed to the benchmark closure; times the hot loop.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_budget: usize,
}

impl Bencher {
    /// Time `routine`, repeating it enough to fill each sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: aim for samples of at least ~1 ms.
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let iters =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        self.iters_per_sample = iters;
        for _ in 0..self.sample_budget {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push(t.elapsed() / iters as u32);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    tp: Option<Throughput>,
    f: &mut F,
) {
    let mut b = Bencher { samples: Vec::new(), iters_per_sample: 0, sample_budget: sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {id}: no samples (Bencher::iter never called)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let rate = tp.map(|t| match t {
        Throughput::Elements(n) => {
            format!(", {:.3} Melem/s", n as f64 / median.as_secs_f64() / 1e6)
        }
        Throughput::Bytes(n) => {
            format!(", {:.3} MiB/s", n as f64 / median.as_secs_f64() / (1024.0 * 1024.0))
        }
    });
    println!(
        "  {id}: median {median:?} over {} samples x {} iters{}",
        b.samples.len(),
        b.iters_per_sample,
        rate.unwrap_or_default()
    );
}

/// Define a benchmark group function from bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
