//! Offline stand-in for the `serde_json` crate (see `vendor/README.md`).
//!
//! Provides the dynamically-typed [`Value`] tree, a full RFC 8259 parser
//! ([`from_str`]) and a compact serializer ([`to_string`], also available
//! as `Display`). There is no `serde` derive machinery: values are built
//! programmatically via the `From` impls and read back through the
//! `as_*`/[`Value::get`] accessors — exactly the surface the workspace's
//! chrome-trace exporter and its validators use.
//!
//! Deliberate simplifications (documented in `vendor/README.md`):
//! objects live in a [`BTreeMap`], so keys serialize in sorted order, and
//! every number is held as an `f64`.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// Object representation: sorted key → value map.
pub type Map = BTreeMap<String, Value>;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (held as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// Member access: `get("key")` on objects, `get(index)` via
    /// [`Value::get_index`] on arrays. Returns `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Array element access by index.
    pub fn get_index(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Array(v) => v.get(index),
            _ => None,
        }
    }

    /// `true` iff this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Borrow as a bool, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrow as an `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Borrow as a `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Borrow as a string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as an array slice, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as an object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}
impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Number(n as f64)
    }
}
impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Number(n as f64)
    }
}
impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Number(n as f64)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}
impl From<Map> for Value {
    fn from(m: Map) -> Value {
        Value::Object(m)
    }
}

/// Parse or serialization failure, with a byte offset for parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    /// Byte offset into the input at which the parse failed (0 for
    /// serialization errors).
    pub offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for Error {}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

/// Serialize compactly (no added whitespace). Errors on non-finite
/// numbers, which JSON cannot represent.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(value, &mut out)?;
    Ok(out)
}

impl fmt::Display for Value {
    /// Compact serialization; non-finite numbers render as `null`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match to_string(self) {
            Ok(s) => f.write_str(&s),
            Err(_) => f.write_str("null"),
        }
    }
}

fn write_value(value: &Value, out: &mut String) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => {
            if !n.is_finite() {
                return Err(Error { msg: format!("non-finite number {n}"), offset: 0 });
            }
            if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                // Integral values print without a fractional part so byte
                // counts and ranks look like the integers they are.
                let _ = fmt::write(out, format_args!("{}", *n as i64));
            } else {
                // `{:?}` on f64 is the shortest representation that
                // round-trips, which is also valid JSON.
                let _ = fmt::write(out, format_args!("{n:?}"));
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::write(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error { msg: msg.to_owned(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("document nests too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the longest run without escapes or quotes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 (it is a &str) and the run stops
                // only at ASCII boundaries, so the slice is valid UTF-8.
                s.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    s.push(self.escape()?);
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, Error> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'b' => '\u{08}',
            b'f' => '\u{0c}',
            b'u' => {
                let hi = self.hex4()?;
                if (0xd800..0xdc00).contains(&hi) {
                    // High surrogate: a \uXXXX low surrogate must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xdc00..0xe000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                        char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))?
                    } else {
                        return Err(self.err("unpaired high surrogate"));
                    }
                } else if (0xdc00..0xe000).contains(&hi) {
                    return Err(self.err("unpaired low surrogate"));
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                }
            }
            _ => return Err(self.err("unknown escape sequence")),
        })
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char).to_digit(16).ok_or_else(|| self.err("bad hex digit"))?;
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` alone or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("malformed number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("number out of range"))?;
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let text = r#"{"traceEvents":[{"dur":1.5,"name":"wire","ph":"X","tid":0}],"unit":"us"}"#;
        let v = from_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
        assert_eq!(from_str(&to_string(&v).unwrap()).unwrap(), v);
    }

    #[test]
    fn accessors_navigate_the_tree() {
        let v = from_str(r#"{"a":[1,2,{"b":"x"}],"n":-3.5,"t":true,"z":null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().get_index(2).unwrap().get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(-3.5));
        assert_eq!(v.get("n").unwrap().as_u64(), None);
        assert_eq!(v.get("t").unwrap().as_bool(), Some(true));
        assert!(v.get("z").unwrap().is_null());
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Value::String("a\"b\\c\nd\u{1}e\u{1f600}".to_owned());
        let s = to_string(&v).unwrap();
        assert_eq!(from_str(&s).unwrap(), v);
        let parsed = from_str(r#""\u0041\u00e9\ud83d\ude00\t""#).unwrap();
        assert_eq!(parsed.as_str(), Some("Aé😀\t"));
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(to_string(&Value::Number(42.0)).unwrap(), "42");
        assert_eq!(to_string(&Value::Number(-7.0)).unwrap(), "-7");
        assert_eq!(to_string(&Value::Number(0.25)).unwrap(), "0.25");
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "01", "1.e3", "\"\\q\"", "nul", "1 2", "\"\u{1}\""]
        {
            assert!(from_str(bad).is_err(), "accepted {bad:?}");
        }
        assert!(to_string(&Value::Number(f64::NAN)).is_err());
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(from_str(&deep).is_err());
    }
}
