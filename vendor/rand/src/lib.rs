//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Provides `SmallRng` (xoshiro256++), the `Rng`/`SeedableRng` traits, and
//! uniform sampling for the range types the workspace draws from. The
//! stream is deterministic per seed but differs from crates.io `rand`.

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled from the "standard" distribution
/// (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a uniform value can be drawn from (`rng.gen_range(..)`).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "empty gen_range");
        // Scale 53-bit integers by the inclusive width; the endpoint is
        // reachable (up to rounding), matching the inclusive contract.
        let max = (1u64 << 53) as f64;
        let u = (rng.next_u64() >> 11) as f64 / (max - 1.0);
        a + u * (b - a)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < 2^-64 for any span the workspace uses.
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty gen_range");
                let span = (b as i128 - a as i128 + 1) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (a as i128 + r) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Random number source: the subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample from the standard distribution (uniform `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

/// Seedable construction: the subset of `rand::SeedableRng` used.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (via splitmix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Named generators (only `SmallRng` is provided).

    use super::{Rng, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&y));
            let z: f64 = rng.gen_range(2.0..5.0);
            assert!((2.0..5.0).contains(&z));
        }
    }

    #[test]
    fn int_ranges_hit_all_values() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
