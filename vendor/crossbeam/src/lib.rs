//! Offline stand-in for the `crossbeam` crate (see `vendor/README.md`).
//!
//! Only [`channel`] is provided: an unbounded MPSC channel on
//! `Mutex`+`Condvar` with crossbeam's disconnect semantics — `send` fails
//! once the receiver is dropped, and receives report `Disconnected` once
//! every sender is gone *and* the queue has drained.

pub mod channel {
    //! Unbounded channels with timeout-aware receives.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receiver_alive: bool,
    }

    /// The sending half; clonable and shareable across threads.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiver was dropped; the payload is handed back.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Why a non-blocking receive produced nothing.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message buffered right now.
        Empty,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// Why a bounded-wait receive produced nothing.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed first.
        Timeout,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(State { items: VecDeque::new(), senders: 1, receiver_alive: true }),
            ready: Condvar::new(),
        });
        (Sender { inner: inner.clone() }, Receiver { inner })
    }

    impl<T> Inner<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            // A panic while holding this short critical section leaves no
            // broken invariant; keep using the data.
            self.queue.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails (returning it) if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.lock();
            if !st.receiver_alive {
                return Err(SendError(value));
            }
            st.items.push_back(value);
            drop(st);
            self.inner.ready.notify_all();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.lock().senders += 1;
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.inner.lock();
            st.senders -= 1;
            let last = st.senders == 0;
            drop(st);
            if last {
                // Wake a blocked receiver so it can observe disconnection.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.inner.lock();
            match st.items.pop_front() {
                Some(v) => Ok(v),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.inner.lock();
            loop {
                if let Some(v) = st.items.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .inner
                    .ready
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                st = guard;
            }
        }

        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvTimeoutError> {
            loop {
                match self.recv_timeout(Duration::from_millis(100)) {
                    Err(RecvTimeoutError::Timeout) => {}
                    other => return other,
                }
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.lock().receiver_alive = false;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn send_recv_fifo() {
            let (s, r) = unbounded();
            s.send(1).unwrap();
            s.send(2).unwrap();
            assert_eq!(r.try_recv(), Ok(1));
            assert_eq!(r.try_recv(), Ok(2));
            assert_eq!(r.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (s, r) = unbounded();
            drop(r);
            assert_eq!(s.send(5), Err(SendError(5)));
        }

        #[test]
        fn recv_reports_disconnect_after_drain() {
            let (s, r) = unbounded();
            s.send(9).unwrap();
            drop(s);
            assert_eq!(r.recv_timeout(Duration::from_millis(10)), Ok(9));
            assert_eq!(
                r.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn timeout_when_no_message() {
            let (s, r) = unbounded::<i32>();
            let t0 = Instant::now();
            assert_eq!(r.recv_timeout(Duration::from_millis(30)), Err(RecvTimeoutError::Timeout));
            assert!(t0.elapsed() >= Duration::from_millis(30));
            drop(s);
        }

        #[test]
        fn cross_thread_delivery() {
            let (s, r) = unbounded();
            let t = thread::spawn(move || {
                for i in 0..100 {
                    s.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..100 {
                got.push(r.recv_timeout(Duration::from_secs(5)).unwrap());
            }
            t.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn clone_counts_senders() {
            let (s, r) = unbounded::<u8>();
            let s2 = s.clone();
            drop(s);
            s2.send(1).unwrap();
            drop(s2);
            assert_eq!(r.try_recv(), Ok(1));
            assert_eq!(r.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
