//! Offline stand-in for the `bytes` crate (see `vendor/README.md`).
//!
//! [`Bytes`] is an immutable, cheaply clonable view into shared storage
//! (`Arc<[u8]>` plus a range); [`BytesMut`] is a growable buffer that
//! freezes into a [`Bytes`]. Only the surface the workspace uses is
//! provided.

use std::fmt;
use std::ops::{Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer view. `clone` and
/// [`Bytes::slice`] are O(1) and share storage.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// O(1) sub-view sharing the same storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let len = self.len();
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(start <= end && end <= len, "slice {start}..{end} out of range for {len}");
        Bytes { data: self.data.clone(), start: self.start + start, end: self.start + end }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: v.into(), start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self[..] == other.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        debug_bytes(self, f)
    }
}

fn debug_bytes(bytes: &[u8], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "b\"")?;
    for &b in bytes {
        if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
            write!(f, "{}", b as char)?;
        } else {
            write!(f, "\\x{b:02x}")?;
        }
    }
    write!(f, "\"")
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Append a single byte.
    pub fn put_u8(&mut self, b: u8) {
        self.data.push(b);
    }

    /// Convert into an immutable [`Bytes`] (no copy).
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        debug_bytes(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice() {
        let mut m = BytesMut::with_capacity(8);
        m.extend_from_slice(&[1, 2, 3, 4, 5]);
        let b = m.freeze();
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..], &[1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn clones_share_storage() {
        let b = Bytes::from(vec![7u8; 1024]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(c.slice(0..4), Bytes::from(vec![7u8; 4]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_slice_panics() {
        Bytes::from(vec![1u8, 2]).slice(0..3);
    }
}
