//! Model-checked `spawn`/`join` mirroring `std::thread` signatures.

use crate::engine::run_model_thread;
use crate::with_current;

/// Handle to a model thread; `join` is a schedule point.
pub struct JoinHandle<T> {
    id: usize,
    os: std::thread::JoinHandle<Option<T>>,
}

/// Spawn a model thread. The spawn itself is a schedule point, so the
/// child may run before or after the parent's next step.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (sched, id, me) = with_current(|sched, me| (sched.clone(), sched.register_thread(), me));
    let child_sched = sched.clone();
    let os = std::thread::Builder::new()
        .name(format!("loom-{id}"))
        .spawn(move || run_model_thread(child_sched, id, f))
        .expect("spawn loom model thread");
    sched.yield_point(me);
    JoinHandle { id, os }
}

impl<T> JoinHandle<T> {
    /// Wait (in model time) for the thread, then collect its result.
    pub fn join(self) -> std::thread::Result<T> {
        with_current(|sched, me| sched.join_thread(self.id, me));
        match self.os.join() {
            Ok(Some(v)) => Ok(v),
            Ok(None) => Err(Box::new("model thread panicked")),
            Err(e) => Err(e),
        }
    }
}

/// A pure schedule point: lets any other runnable thread be switched in.
pub fn yield_now() {
    with_current(|sched, me| sched.yield_point(me));
}
