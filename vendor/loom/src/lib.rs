//! A miniature model checker in the spirit of the `loom` crate.
//!
//! [`model`] runs a closure many times, exploring every distinct thread
//! interleaving (up to a preemption bound) of the [`sync::Mutex`] /
//! [`sync::Condvar`] / [`thread`] operations performed inside it. Exactly
//! one model thread executes at a time; every lock acquire/release,
//! condvar wait/notify, spawn and join is a *schedule point* where the
//! explorer may switch threads. Exploration is depth-first with replay:
//! each run follows a forced prefix of decisions, then takes the first
//! untried branch.
//!
//! Detects:
//!
//! - **deadlock** — at some schedule point no thread is runnable but not
//!   all have finished (e.g. everyone is waiting on a condvar);
//! - **lost wakeups** — a `notify_one` issued before the intended waiter
//!   waits surfaces as a deadlock in some explored schedule;
//! - assertion failures in the model body under any explored schedule
//!   (panics propagate out of [`model`] with the failing schedule).
//!
//! Not modeled: weak memory orderings (everything is sequentially
//! consistent), spurious condvar wakeups, and timeouts. The preemption
//! bound defaults to 2 (almost all published concurrency bugs need ≤ 2
//! preemptions); override with `LOOM_MAX_PREEMPTIONS`.

mod engine;
pub mod sync;
pub mod thread;

pub(crate) use engine::with_current;

/// Exhaustively explore the interleavings of `body`.
///
/// Panics if any explored schedule deadlocks or panics, reporting the
/// schedule (the sequence of chosen thread ids) that triggered it.
pub fn model<F>(body: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let max_preemptions: usize =
        std::env::var("LOOM_MAX_PREEMPTIONS").ok().and_then(|v| v.parse().ok()).unwrap_or(2);
    let max_iterations: usize =
        std::env::var("LOOM_MAX_ITERATIONS").ok().and_then(|v| v.parse().ok()).unwrap_or(500_000);
    let body = std::sync::Arc::new(body);
    let mut prefix: Vec<usize> = Vec::new();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        assert!(
            iterations <= max_iterations,
            "loom: exploration budget exceeded after {iterations} schedules; \
             raise LOOM_MAX_ITERATIONS or simplify the model"
        );
        let outcome = engine::explore_once(body.clone(), prefix, max_preemptions);
        if let Some(deadlock) = outcome.deadlock {
            panic!(
                "loom: deadlock on iteration {iterations}: {deadlock}\n  schedule: {:?}",
                outcome.trace
            );
        }
        if let Some(msg) = outcome.panic {
            panic!(
                "loom: model panicked on iteration {iterations}: {msg}\n  schedule: {:?}",
                outcome.trace
            );
        }
        match outcome.next_prefix {
            Some(next) => prefix = next,
            None => break, // exploration complete
        }
    }
}

/// Number of schedules a model would explore — handy for test assertions.
pub fn explore_count<F>(body: F) -> usize
where
    F: Fn() + Send + Sync + 'static,
{
    let body = std::sync::Arc::new(body);
    let mut prefix = Vec::new();
    let mut n = 0usize;
    loop {
        n += 1;
        assert!(n <= 500_000, "loom: exploration budget exceeded");
        let outcome = engine::explore_once(body.clone(), prefix, 2);
        assert!(outcome.deadlock.is_none() && outcome.panic.is_none(), "model failed");
        match outcome.next_prefix {
            Some(next) => prefix = next,
            None => return n,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::sync::{Arc, Condvar, Mutex};

    #[test]
    fn counter_sees_both_increments_in_every_schedule() {
        crate::model(|| {
            let counter = Arc::new(Mutex::new(0u32));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let counter = counter.clone();
                    crate::thread::spawn(move || {
                        let mut g = counter.lock().unwrap();
                        *g += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*counter.lock().unwrap(), 2);
        });
    }

    #[test]
    fn explores_more_than_one_schedule() {
        let n = crate::explore_count(|| {
            let m = Arc::new(Mutex::new(0u32));
            let m2 = m.clone();
            let h = crate::thread::spawn(move || {
                *m2.lock().unwrap() += 1;
            });
            *m.lock().unwrap() += 1;
            h.join().unwrap();
        });
        assert!(n > 1, "two contending threads must branch, got {n} schedule(s)");
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn lost_wakeup_is_detected_as_deadlock() {
        // Classic bug: checking the flag without holding the mutex across
        // the wait decision. If the notifier runs between the unlocked
        // check and the wait, the wakeup is lost and the waiter parks
        // forever. Some explored schedule must deadlock.
        crate::model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let notifier = {
                let pair = pair.clone();
                crate::thread::spawn(move || {
                    let (flag, cv) = &*pair;
                    *flag.lock().unwrap() = true;
                    cv.notify_one();
                })
            };
            let (flag, cv) = &*pair;
            let ready = { *flag.lock().unwrap() };
            if !ready {
                // BUG: the flag may flip and the notify fire right here,
                // before we park — and we wait without re-checking.
                let g = flag.lock().unwrap();
                let _g = cv.wait(g).unwrap();
            }
            notifier.join().unwrap();
        });
    }

    #[test]
    fn correct_wait_loop_never_deadlocks() {
        crate::model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let notifier = {
                let pair = pair.clone();
                crate::thread::spawn(move || {
                    let (flag, cv) = &*pair;
                    *flag.lock().unwrap() = true;
                    cv.notify_one();
                })
            };
            let (flag, cv) = &*pair;
            let mut g = flag.lock().unwrap();
            while !*g {
                g = cv.wait(g).unwrap();
            }
            drop(g);
            notifier.join().unwrap();
        });
    }
}
