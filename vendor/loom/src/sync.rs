//! Model-checked `Mutex` and `Condvar` mirroring `std::sync` signatures.
//!
//! Creating or using these outside [`crate::model`] panics. The inner
//! `std::sync::Mutex` is never contended (the scheduler serializes all
//! model threads); it exists only to own the data safely.

use crate::with_current;
use std::sync::LockResult;

pub use std::sync::Arc;

/// A mutex whose acquire/release are schedule points.
pub struct Mutex<T> {
    id: usize,
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex`]; releasing is a schedule point.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// New model-checked mutex (must be called inside `loom::model`).
    pub fn new(value: T) -> Self {
        let id = with_current(|sched, _| sched.register_lock());
        Mutex { id, inner: std::sync::Mutex::new(value) }
    }

    /// Acquire, blocking (in model time) until available.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        with_current(|sched, me| sched.acquire(self.id, me));
        let inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        Ok(MutexGuard { mutex: self, inner: Some(inner) })
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None; // release the real lock first
        if std::thread::panicking() {
            // Unwinding out of an aborted schedule: the scheduler is being
            // torn down, don't re-enter it.
            return;
        }
        with_current(|sched, me| sched.release(self.mutex.id, me));
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after release")
    }
}

/// A condition variable whose wait/notify are schedule points.
pub struct Condvar {
    id: usize,
}

impl Condvar {
    /// New model-checked condvar (must be called inside `loom::model`).
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Condvar { id: with_current(|sched, _| sched.register_cv()) }
    }

    /// Release the guard's mutex, park until notified, reacquire.
    /// No spurious wakeups and no timeout variant are modeled.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let mutex = guard.mutex;
        guard.inner = None; // drop the real lock; model lock released below
        with_current(|sched, me| sched.cv_wait(self.id, mutex.id, me));
        // cv_wait returns with the model lock held; retake the real one.
        let inner = mutex.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        std::mem::forget(guard); // its Drop would release the model lock again
        Ok(MutexGuard { mutex, inner: Some(inner) })
    }

    /// Wake one waiter (FIFO). A notify with no waiters is lost.
    pub fn notify_one(&self) {
        with_current(|sched, me| sched.cv_notify(self.id, me, false));
    }

    /// Wake every current waiter.
    pub fn notify_all(&self) {
        with_current(|sched, me| sched.cv_notify(self.id, me, true));
    }
}
