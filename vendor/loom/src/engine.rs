//! The replay-based DFS scheduler behind [`crate::model`].
//!
//! One OS thread backs each model thread, but exactly one is ever
//! runnable: every schedule point funnels through [`Scheduler::reschedule`],
//! which picks the next thread (following the forced replay prefix, else
//! the first candidate) and parks everyone else on a condvar. Decisions
//! with more than one candidate are branch points; after a run completes,
//! `next_prefix` flips the deepest unexplored branch, odometer-style.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Scheduler>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// Run `f` with the scheduler and model-thread id of the calling thread.
/// Panics when called outside `loom::model` — the sync primitives only
/// work inside a model body.
pub(crate) fn with_current<R>(f: impl FnOnce(&Arc<Scheduler>, usize) -> R) -> R {
    CURRENT.with(|c| {
        let slot = c.borrow();
        let (sched, me) =
            slot.as_ref().unwrap_or_else(|| panic!("loom primitives used outside loom::model"));
        f(sched, *me)
    })
}

/// Result of exploring one schedule.
pub(crate) struct Outcome {
    /// Thread ids chosen at each decision point, in order.
    pub trace: Vec<usize>,
    /// Set if the schedule reached a state with no runnable thread.
    pub deadlock: Option<String>,
    /// First panic message observed in any model thread.
    pub panic: Option<String>,
    /// Forced prefix for the next schedule; `None` when exploration is done.
    pub next_prefix: Option<Vec<usize>>,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum TState {
    Runnable,
    /// Parked on a mutex, condvar, or join; the string names what.
    Blocked(&'static str),
    Finished,
}

struct Decision {
    candidates: Vec<usize>,
    chosen: usize,
}

#[derive(Default)]
struct LockState {
    held_by: Option<usize>,
    waiting: Vec<usize>,
}

#[derive(Default)]
struct CvState {
    /// FIFO of (thread, lock it must reacquire once woken).
    waiting: Vec<(usize, usize)>,
}

struct SchedState {
    threads: Vec<TState>,
    active: usize,
    locks: Vec<LockState>,
    cvs: Vec<CvState>,
    decisions: Vec<Decision>,
    prefix: Vec<usize>,
    cursor: usize,
    preemptions: usize,
    max_preemptions: usize,
    deadlock: Option<String>,
    panic: Option<String>,
    abort: bool,
}

pub(crate) struct Scheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
}

/// Sentinel panic payload used to unwind threads out of an aborted run.
/// Filtered out when reporting; the real failure is in `SchedState`.
const ABORT: &str = "loom-model-aborted";

type Guard<'a> = std::sync::MutexGuard<'a, SchedState>;

impl Scheduler {
    fn new(prefix: Vec<usize>, max_preemptions: usize) -> Self {
        Scheduler {
            state: Mutex::new(SchedState {
                threads: vec![TState::Runnable], // thread 0: the model root
                active: 0,
                locks: Vec::new(),
                cvs: Vec::new(),
                decisions: Vec::new(),
                prefix,
                cursor: 0,
                preemptions: 0,
                max_preemptions,
                deadlock: None,
                panic: None,
                abort: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock_state(&self) -> Guard<'_> {
        // Threads unwind (panic) while holding this lock on abort; the
        // state is still consistent, so strip the poison.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Pick the next active thread and wait until `me` is scheduled again.
    /// `me`'s state must already be set (Runnable to yield, Blocked to park).
    fn reschedule<'a>(&'a self, mut st: Guard<'a>, me: usize) -> Guard<'a> {
        let candidates: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == TState::Runnable)
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            if st.threads.iter().all(|s| *s == TState::Finished) {
                // Normal completion; nothing left to schedule.
                self.cv.notify_all();
                return st;
            }
            let stuck: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .filter_map(|(i, s)| match s {
                    TState::Blocked(what) => Some(format!("thread {i} blocked on {what}")),
                    _ => None,
                })
                .collect();
            st.deadlock = Some(stuck.join(", "));
            st.abort = true;
            self.cv.notify_all();
            panic!("{ABORT}");
        }
        let voluntary = st.threads[me] == TState::Runnable;
        let candidates = if voluntary
            && st.preemptions >= st.max_preemptions
            && candidates.contains(&me)
            && st.cursor >= st.prefix.len()
        {
            // Preemption budget spent: a runnable thread keeps running.
            vec![me]
        } else {
            candidates
        };
        let chosen = if st.cursor < st.prefix.len() {
            let forced = st.prefix[st.cursor];
            assert!(
                candidates.contains(&forced),
                "loom: non-deterministic model — replay wanted thread {forced} \
                 but candidates were {candidates:?}; model bodies must not \
                 branch on wall-clock time or an unseeded RNG"
            );
            forced
        } else {
            candidates[0]
        };
        st.cursor += 1;
        if voluntary && chosen != me {
            st.preemptions += 1;
        }
        st.decisions.push(Decision { candidates, chosen });
        st.active = chosen;
        self.cv.notify_all();
        if st.threads[me] == TState::Finished {
            // A finished thread only hands off; it is never scheduled again.
            return st;
        }
        self.wait_for_turn(st, me)
    }

    /// Park until this thread is both Runnable and active (or the run aborts).
    fn wait_for_turn<'a>(&'a self, mut st: Guard<'a>, me: usize) -> Guard<'a> {
        loop {
            if st.abort {
                drop(st);
                panic!("{ABORT}");
            }
            if st.active == me && st.threads[me] == TState::Runnable {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// A voluntary schedule point: other runnable threads may be switched in.
    pub(crate) fn yield_point(&self, me: usize) {
        let st = self.lock_state();
        drop(self.reschedule(st, me));
    }

    // ---- mutex ----------------------------------------------------------

    pub(crate) fn register_lock(&self) -> usize {
        let mut st = self.lock_state();
        st.locks.push(LockState::default());
        st.locks.len() - 1
    }

    pub(crate) fn acquire(&self, lock: usize, me: usize) {
        let mut st = self.lock_state();
        loop {
            // Schedule point before the acquire attempt, so a contending
            // thread can slip in between "decide to lock" and "hold it".
            st = self.reschedule(st, me);
            if st.locks[lock].held_by.is_none() {
                st.locks[lock].held_by = Some(me);
                return;
            }
            st.locks[lock].waiting.push(me);
            st.threads[me] = TState::Blocked("mutex");
            st = self.reschedule(st, me);
        }
    }

    pub(crate) fn release(&self, lock: usize, me: usize) {
        let mut st = self.lock_state();
        assert_eq!(st.locks[lock].held_by, Some(me), "released a mutex it did not hold");
        st.locks[lock].held_by = None;
        // Wake every waiter; they re-contend, modeling an unfair mutex.
        let waiters = std::mem::take(&mut st.locks[lock].waiting);
        for w in waiters {
            st.threads[w] = TState::Runnable;
        }
        drop(self.reschedule(st, me));
    }

    // ---- condvar --------------------------------------------------------

    pub(crate) fn register_cv(&self) -> usize {
        let mut st = self.lock_state();
        st.cvs.push(CvState::default());
        st.cvs.len() - 1
    }

    /// Atomically release `lock` and park on `cv`; reacquires on return.
    pub(crate) fn cv_wait(&self, cv: usize, lock: usize, me: usize) {
        let mut st = self.lock_state();
        assert_eq!(st.locks[lock].held_by, Some(me), "cv_wait without holding the mutex");
        st.cvs[cv].waiting.push((me, lock));
        st.locks[lock].held_by = None;
        let waiters = std::mem::take(&mut st.locks[lock].waiting);
        for w in waiters {
            st.threads[w] = TState::Runnable;
        }
        st.threads[me] = TState::Blocked("condvar");
        st = self.reschedule(st, me);
        // Woken: the notifier made us Runnable; now take the mutex back.
        loop {
            if st.locks[lock].held_by.is_none() {
                st.locks[lock].held_by = Some(me);
                return;
            }
            st.locks[lock].waiting.push(me);
            st.threads[me] = TState::Blocked("mutex");
            st = self.reschedule(st, me);
        }
    }

    pub(crate) fn cv_notify(&self, cv: usize, me: usize, all: bool) {
        let mut st = self.lock_state();
        let n = if all { st.cvs[cv].waiting.len() } else { 1 };
        for _ in 0..n {
            // FIFO wake order; a notify with no waiters is lost — which is
            // exactly the lost-wakeup behavior the checker must model.
            if let Some((w, _lock)) = pop_front(&mut st.cvs[cv].waiting) {
                st.threads[w] = TState::Runnable;
            }
        }
        drop(self.reschedule(st, me));
    }

    // ---- threads --------------------------------------------------------

    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.lock_state();
        st.threads.push(TState::Runnable);
        st.threads.len() - 1
    }

    pub(crate) fn join_thread(&self, target: usize, me: usize) {
        let mut st = self.lock_state();
        while st.threads[target] != TState::Finished {
            st.threads[me] = TState::Blocked("join");
            st = self.reschedule(st, me);
        }
        drop(st);
        // Let the scheduler branch after the join observes completion.
        self.yield_point(me);
    }

    /// Called by `thread_finished`'s reschedule via wakers: joiners block
    /// with state Blocked("join") but nobody flips them Runnable — do it
    /// here whenever any thread finishes.
    fn wake_joiners(st: &mut SchedState) {
        for s in st.threads.iter_mut() {
            if *s == TState::Blocked("join") {
                *s = TState::Runnable;
            }
        }
    }

    pub(crate) fn record_panic(&self, me: usize, msg: String) {
        let mut st = self.lock_state();
        if st.panic.is_none() {
            st.panic = Some(format!("thread {me}: {msg}"));
        }
        st.abort = true;
        self.cv.notify_all();
    }

    fn finish(&self) -> Outcome {
        let mut st = self.lock_state();
        // Wait until every model thread has unwound or finished so no OS
        // thread still touches the state while we compute the next prefix.
        while !st.abort && !st.threads.iter().all(|s| *s == TState::Finished) {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        let trace: Vec<usize> = st.decisions.iter().map(|d| d.chosen).collect();
        let next_prefix = if st.abort && st.deadlock.is_none() && st.panic.is_none() {
            None // aborted for an external reason; stop exploring
        } else {
            next_prefix(&st.decisions)
        };
        Outcome { trace, deadlock: st.deadlock.take(), panic: st.panic.take(), next_prefix }
    }
}

fn pop_front<T>(v: &mut Vec<T>) -> Option<T> {
    if v.is_empty() {
        None
    } else {
        Some(v.remove(0))
    }
}

/// Deepest decision with an untried sibling becomes the next branch.
fn next_prefix(decisions: &[Decision]) -> Option<Vec<usize>> {
    for i in (0..decisions.len()).rev() {
        let d = &decisions[i];
        let pos = d.candidates.iter().position(|&c| c == d.chosen)?;
        if pos + 1 < d.candidates.len() {
            let mut p: Vec<usize> = decisions[..i].iter().map(|d| d.chosen).collect();
            p.push(d.candidates[pos + 1]);
            return Some(p);
        }
    }
    None
}

/// Run the model body once under the given forced schedule prefix.
pub(crate) fn explore_once(
    body: Arc<dyn Fn() + Send + Sync>,
    prefix: Vec<usize>,
    max_preemptions: usize,
) -> Outcome {
    let sched = Arc::new(Scheduler::new(prefix, max_preemptions));
    let root_sched = sched.clone();
    let root = std::thread::Builder::new()
        .name("loom-root".into())
        .spawn(move || run_model_thread(root_sched, 0, move || body()))
        .expect("spawn loom root thread");
    let _ = root.join(); // failures are recorded in the scheduler state
    sched.finish()
}

/// Common wrapper for the root and spawned model threads: installs TLS,
/// waits for its first turn, runs, records panics, marks itself finished.
pub(crate) fn run_model_thread<T>(
    sched: Arc<Scheduler>,
    id: usize,
    f: impl FnOnce() -> T,
) -> Option<T> {
    CURRENT.with(|c| *c.borrow_mut() = Some((sched.clone(), id)));
    {
        let st = sched.lock_state();
        drop(sched.wait_for_turn(st, id));
    }
    let result = catch_unwind(AssertUnwindSafe(f));
    CURRENT.with(|c| *c.borrow_mut() = None);
    match result {
        Ok(v) => {
            let mut st = sched.lock_state();
            st.threads[id] = TState::Finished;
            Scheduler::wake_joiners(&mut st);
            let st2 = sched.reschedule(st, id);
            drop(st2);
            Some(v)
        }
        Err(payload) => {
            let msg = panic_message(&payload);
            if msg != ABORT {
                sched.record_panic(id, msg);
            } else {
                // Unwound by an abort someone else initiated (or a deadlock
                // this thread detected); state is already recorded.
                let mut st = sched.lock_state();
                st.abort = true;
                sched.cv.notify_all();
                drop(st);
            }
            None
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
