//! Offline stand-in for the `rayon` crate (see `vendor/README.md`).
//!
//! Provides real (scoped-thread) parallelism for the two shapes the
//! workspace uses: `slice.par_chunks_mut(n).enumerate().for_each(..)` and
//! `(0..n).into_par_iter().filter_map(..).collect::<Vec<_>>()`. Work is
//! split into one contiguous span per available core — no work stealing.

use std::num::NonZeroUsize;
use std::ops::Range;

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, ParallelSliceMut};
}

fn threads() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Slice extension: parallel mutable chunk iteration.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel analogue of `chunks_mut`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut { slice: self, chunk_size }
    }
}

/// Parallel mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair each chunk with its index.
    pub fn enumerate(self) -> EnumerateChunksMut<'a, T> {
        EnumerateChunksMut { inner: self }
    }

    /// Run `f` on every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Send + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated parallel mutable chunks.
pub struct EnumerateChunksMut<'a, T> {
    inner: ParChunksMut<'a, T>,
}

impl<T: Send> EnumerateChunksMut<'_, T> {
    /// Run `f` on every `(index, chunk)` in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Send + Sync,
    {
        let chunk_size = self.inner.chunk_size;
        let slice = self.inner.slice;
        let n_chunks = slice.len().div_ceil(chunk_size);
        let workers = threads().min(n_chunks).max(1);
        if workers <= 1 {
            for (i, chunk) in slice.chunks_mut(chunk_size).enumerate() {
                f((i, chunk));
            }
            return;
        }
        // Hand each worker a contiguous span of whole chunks.
        let per_worker = n_chunks.div_ceil(workers);
        let f = &f;
        std::thread::scope(|scope| {
            let mut rest = slice;
            let mut first_chunk = 0usize;
            while !rest.is_empty() {
                let take = (per_worker * chunk_size).min(rest.len());
                let (span, tail) = rest.split_at_mut(take);
                rest = tail;
                let base = first_chunk;
                first_chunk += span.len().div_ceil(chunk_size);
                scope.spawn(move || {
                    for (i, chunk) in span.chunks_mut(chunk_size).enumerate() {
                        f((base + i, chunk));
                    }
                });
            }
        });
    }
}

/// Conversion into a parallel iterator (ranges only).
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// A parallel iterator over `Range<usize>`.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Parallel filter-map.
    pub fn filter_map<T, F>(self, f: F) -> ParFilterMap<F>
    where
        F: Fn(usize) -> Option<T> + Send + Sync,
        T: Send,
    {
        ParFilterMap { range: self.range, f }
    }

    /// Parallel map.
    pub fn map<T, F>(self, f: F) -> ParMap<F>
    where
        F: Fn(usize) -> T + Send + Sync,
        T: Send,
    {
        ParMap { range: self.range, f }
    }
}

fn split_collect<T, F>(range: Range<usize>, f: F) -> Vec<T>
where
    F: Fn(usize) -> Option<T> + Send + Sync,
    T: Send,
{
    let len = range.len();
    let workers = threads().min(len).max(1);
    if workers <= 1 {
        return range.filter_map(f).collect();
    }
    let per = len.div_ceil(workers);
    let f = &f;
    let mut parts: Vec<Vec<T>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut lo = range.start;
        while lo < range.end {
            let hi = (lo + per).min(range.end);
            handles.push(scope.spawn(move || (lo..hi).filter_map(f).collect::<Vec<T>>()));
            lo = hi;
        }
        for h in handles {
            match h.join() {
                Ok(part) => parts.push(part),
                Err(p) => std::panic::resume_unwind(p),
            }
        }
    });
    let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for p in parts {
        out.extend(p);
    }
    out
}

/// Parallel filter-map over a range.
pub struct ParFilterMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> ParFilterMap<F> {
    /// Collect results in range order.
    pub fn collect<T, C: FromIterator<T> + From<Vec<T>>>(self) -> C
    where
        F: Fn(usize) -> Option<T> + Send + Sync,
        T: Send,
    {
        C::from(split_collect(self.range, self.f))
    }
}

/// Parallel map over a range.
pub struct ParMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> ParMap<F> {
    /// Collect results in range order.
    pub fn collect<T, C: FromIterator<T> + From<Vec<T>>>(self) -> C
    where
        F: Fn(usize) -> T + Send + Sync,
        T: Send,
    {
        let f = self.f;
        C::from(split_collect(self.range, move |i| Some(f(i))))
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_covers_every_chunk() {
        let mut data = vec![0u64; 24 * 1000 + 7];
        data.par_chunks_mut(24).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x = i as u64;
            }
        });
        for (i, chunk) in data.chunks(24).enumerate() {
            assert!(chunk.iter().all(|&x| x == i as u64), "chunk {i}");
        }
    }

    #[test]
    fn filter_map_collect_preserves_order() {
        let v: Vec<usize> = (0..10_000usize)
            .into_par_iter()
            .filter_map(|i| (i % 3 == 0).then_some(i * 2))
            .collect();
        let expect: Vec<usize> = (0..10_000).filter(|i| i % 3 == 0).map(|i| i * 2).collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn empty_range() {
        let v: Vec<usize> = (5..5usize).into_par_iter().filter_map(Some).collect();
        assert!(v.is_empty());
    }
}
