//! The case runner behind the [`proptest!`](crate::proptest) macro.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// How many samples to draw per test, plus reject limits.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Upper bound on rejected samples across the whole test.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 65_536 }
    }
}

/// The RNG handed to strategies (a seeded [`SmallRng`]).
#[derive(Clone, Debug)]
pub struct TestRng {
    rng: SmallRng,
}

impl TestRng {
    /// Deterministic construction from a test-name-derived seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { rng: SmallRng::seed_from_u64(seed) }
    }

    /// Access the underlying generator.
    pub fn inner(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject,
}

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// FNV-1a hash of the test name: the deterministic seed basis.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drives the per-case loop; used by the generated test bodies.
#[derive(Debug)]
pub struct Runner {
    config: ProptestConfig,
    seed: u64,
    rejects: u32,
    case: u32,
}

impl Runner {
    /// New runner for the named test.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        Runner { config, seed: seed_from_name(name), rejects: 0, case: 0 }
    }

    /// Number of successful cases required.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// A fresh, deterministic RNG for the next sampling attempt.
    pub fn next_rng(&mut self) -> TestRng {
        let n = u64::from(self.case) << 20 | u64::from(self.rejects);
        self.case += 1;
        TestRng::from_seed(self.seed ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Record a rejection (filter or `prop_assume!`); panics once the
    /// global reject budget is exhausted.
    pub fn reject(&mut self, what: &str) {
        self.rejects += 1;
        self.case -= 1; // the case did not count
        assert!(
            self.rejects <= self.config.max_global_rejects,
            "too many rejected samples ({}); last reason: {what}",
            self.rejects
        );
    }
}

/// Fail the test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{} ({:?} != {:?})",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Fail the test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Discard this case (does not count towards the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Define property tests over generated inputs.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..100, v in collection::vec(-1.0f64..1.0, 8)) {
///         prop_assert!(v.len() == 8);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::Runner::new(config, stringify!($name));
            let mut passed = 0u32;
            while passed < runner.cases() {
                let mut rng = runner.next_rng();
                // Sample the whole input tuple; a filter rejection retries
                // the case with a fresh RNG stream.
                let sampled = (|| -> ::std::result::Result<_, $crate::strategy::Reject> {
                    Ok(($($crate::strategy::Strategy::generate(&($strat), &mut rng)?,)+))
                })();
                let sampled = match sampled {
                    Ok(s) => s,
                    Err($crate::strategy::Reject(reason)) => {
                        runner.reject(reason);
                        continue;
                    }
                };
                let repr = format!("{:?}", sampled);
                let ($($pat,)+) = sampled;
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        { $body }
                        Ok(())
                    })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {
                        runner.reject("prop_assume!");
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed: {}\n  test: {}\n  case #{} input: {}",
                            msg,
                            stringify!($name),
                            passed,
                            repr
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}
