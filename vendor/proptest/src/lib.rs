//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert*!`/`prop_assume!`, range / tuple /
//! [`collection::vec`] / [`Just`] / [`prop_oneof!`] strategies, and the
//! `prop_map` / `prop_filter` / `prop_filter_map` combinators.
//!
//! Cases are generated from a deterministic per-test seed (derived from the
//! test's name), so failures reproduce run to run. Unlike the real
//! proptest there is **no shrinking**: a failing case prints the complete
//! generated input tuple instead.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies (`vec` only).
    pub use crate::strategy::{vec, VecStrategy};
}

pub mod bool {
    //! Boolean strategies.
    use crate::strategy::{Reject, Strategy};
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy yielding uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> Result<bool, Reject> {
            Ok(rng.inner().gen_bool(0.5))
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}
