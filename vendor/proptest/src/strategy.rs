//! Value-generation strategies.
//!
//! A [`Strategy`] produces values of an associated type from the runner's
//! RNG. Generation is fallible: filters reject a sample and the runner
//! retries the whole case (bounded), mirroring proptest's local-reject
//! semantics without shrink trees.

use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A rejected sample (filter mismatch), with the filter's reason label.
#[derive(Clone, Debug)]
pub struct Reject(pub &'static str);

/// Something that can generate values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generate one value, or reject the sample.
    fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Reject>;

    /// Transform generated values.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred`.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, reason, pred }
    }

    /// Transform values, rejecting those mapped to `None`.
    fn prop_filter_map<O: Debug, F: Fn(Self::Value) -> Option<O>>(
        self,
        reason: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap { inner: self, reason, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Rc::new(self) }
    }
}

/// Object-safe mirror of [`Strategy`], used by type-erased containers.
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Result<Self::Value, Reject>;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Result<S::Value, Reject> {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V> {
    inner: Rc<dyn DynStrategy<Value = V>>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy { inner: self.inner.clone() }
    }
}

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> Result<V, Reject> {
        self.inner.generate_dyn(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Result<T, Reject> {
        Ok(self.0.clone())
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> Result<O, Reject> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// `prop_filter` adapter.
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Result<S::Value, Reject> {
        let v = self.inner.generate(rng)?;
        if (self.pred)(&v) {
            Ok(v)
        } else {
            Err(Reject(self.reason))
        }
    }
}

/// `prop_filter_map` adapter.
#[derive(Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> Result<O, Reject> {
        let v = self.inner.generate(rng)?;
        (self.f)(v).ok_or(Reject(self.reason))
    }
}

/// Uniform choice between alternative strategies (the `prop_oneof!` shape).
pub struct Union<V> {
    options: Vec<Rc<dyn DynStrategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Build from pre-erased options.
    #[doc(hidden)]
    pub fn from_erased(options: Vec<BoxedStrategy<V>>) -> Self {
        Union { options: options.into_iter().map(|b| b.inner).collect() }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union { options: self.options.clone() }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> Result<V, Reject> {
        assert!(!self.options.is_empty(), "prop_oneof! needs at least one option");
        let i = rng.inner().gen_range(0..self.options.len());
        self.options[i].generate_dyn(rng)
    }
}

/// Pick uniformly among the given strategies (all yielding the same type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::from_erased(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

// ---- Range strategies ------------------------------------------------

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> Result<f64, Reject> {
        Ok(rng.inner().gen_range(self.clone()))
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> Result<f64, Reject> {
        Ok(rng.inner().gen_range(self.clone()))
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> Result<f32, Reject> {
        Ok(rng.inner().gen_range(self.clone()))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Result<$t, Reject> {
                Ok(rng.inner().gen_range(self.clone()))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Result<$t, Reject> {
                Ok(rng.inner().gen_range(self.clone()))
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---- Tuple strategies ------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Reject> {
                let ($($name,)+) = self;
                Ok(($($name.generate(rng)?,)+))
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

// ---- Collection strategies -------------------------------------------

/// Strategy for fixed-length vectors of an element strategy's values.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    count: usize,
}

/// `count` independent draws from `element`, as a `Vec`.
pub fn vec<S: Strategy>(element: S, count: usize) -> VecStrategy<S> {
    VecStrategy { element, count }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, Reject> {
        (0..self.count).map(|_| self.element.generate(rng)).collect()
    }
}
