//! Phase one of a lattice QCD campaign (Section I): *generate* gauge
//! configurations with Monte Carlo, then feed one to phase two — the
//! propagator solves this library accelerates. Gauge generation on GPU
//! clusters is the future work of Section VIII; the algorithmic core
//! (heatbath + overrelaxation) is implemented in `quda_fields::gauge_mc`.
//!
//! ```text
//! cargo run --release --example gauge_generation
//! ```

use quda_core::{PrecisionMode, Quda, QudaInvertParam};
use quda_fields::gauge_mc::GaugeMonteCarlo;
use quda_fields::host::{GaugeConfig, HostSpinorField};
use quda_fields::io::{load_gauge_file, save_gauge_file};
use quda_lattice::geometry::{Coord, LatticeDims};

fn main() {
    let dims = LatticeDims::new(4, 4, 4, 8);
    let beta = 6.0;
    let mut mc = GaugeMonteCarlo::new(beta, 2026);

    println!("thermalizing {dims} at beta = {beta} (heatbath + 2x overrelaxation per sweep):");
    let mut cfg = GaugeConfig::unit(dims);
    println!("{:>6} {:>12}", "sweep", "plaquette");
    for sweep in 0..20 {
        mc.heatbath_sweep(&mut cfg);
        mc.overrelax_sweep(&mut cfg);
        mc.overrelax_sweep(&mut cfg);
        if sweep % 4 == 3 {
            println!("{:>6} {:>12.6}", sweep + 1, cfg.average_plaquette());
        }
    }
    let plaq = cfg.average_plaquette();
    println!("thermalized plaquette: {plaq:.6} (literature value at beta=6.0 ~ 0.59)");

    // Archive the configuration, as a production campaign would.
    let path = std::env::temp_dir().join("quda_rs_generated.cfg");
    save_gauge_file(&cfg, &path).expect("save");
    let loaded = load_gauge_file(&path).expect("load");
    std::fs::remove_file(&path).ok();
    println!("round-tripped configuration through disk (checksums verified)");

    // Phase two: analyze it — one propagator column on 2 simulated GPUs.
    let mut quda = Quda::new(2).expect("context");
    quda.load_gauge(loaded).expect("gauge load");
    let src = HostSpinorField::point_source(dims, Coord::new(0, 0, 0, 0), 0, 0);
    // A thermalized beta=6 configuration is rough: a heavy quark keeps the
    // small test lattice well conditioned.
    let mut param =
        QudaInvertParam::paper_mode(PrecisionMode::DoubleHalf, 2).with_mass(0.8).with_tol(1e-8);
    param.max_iter = 20_000;
    let (_, stats) = quda.invert(&src, &param).expect("invert");
    println!(
        "analysis solve on the generated configuration: {} iterations, residual {:.2e}",
        stats.iterations, stats.true_residual
    );
    assert!(stats.converged);
}
