//! A complete physics application: the pion two-point correlator.
//!
//! This is the kind of analysis-phase calculation the paper's introduction
//! motivates (spectrum calculations "solving the equations for many right
//! hand sides"): compute the 12 columns of the quark propagator `S(x; 0)`
//! from a point source (12 inversions of the Wilson-clover matrix), then
//! contract them into the zero-momentum pseudoscalar correlator
//!
//! `C(t) = Σ_x⃗ Tr[ S†(x⃗,t; 0) S(x⃗,t; 0) ]`
//!
//! (the γ5-γ5 pion, using γ5-hermiticity to avoid a backward propagator).
//! The effective mass `m_eff(t) = ln C(t)/C(t+1)` should plateau — on a
//! weak-field configuration near twice the free-quark pole mass.
//!
//! ```text
//! cargo run --release --example pion_correlator
//! ```

use quda_core::{PrecisionMode, Quda, QudaInvertParam};
use quda_fields::gauge_gen::weak_field;
use quda_fields::host::HostSpinorField;
use quda_lattice::geometry::{Coord, LatticeDims};

fn main() {
    let dims = LatticeDims::new(6, 6, 6, 16);
    let mass = 0.3;
    let cfg = weak_field(dims, 0.05, 314);
    let mut quda = Quda::new(2).expect("context");
    quda.load_gauge(cfg).expect("gauge load");

    let param =
        QudaInvertParam::paper_mode(PrecisionMode::DoubleHalf, 2).with_mass(mass).with_tol(1e-10);

    println!("computing 12 propagator columns on {dims} (m = {mass}, double-half) ...");
    let origin = Coord::new(0, 0, 0, 0);
    let mut columns: Vec<HostSpinorField> = Vec::with_capacity(12);
    let mut total_iters = 0;
    for spin in 0..4 {
        for color in 0..3 {
            let src = HostSpinorField::point_source(dims, origin, spin, color);
            let (x, stats) = quda.invert(&src, &param).expect("invert");
            assert!(stats.converged, "column (s={spin}, c={color})");
            total_iters += stats.iterations;
            columns.push(x);
        }
    }
    println!("done: {total_iters} total sloppy iterations over 12 solves\n");

    // C(t) = Σ_x⃗ Σ_columns |S(x)|² — the trace over source and sink
    // spin-color indices of S† S.
    let mut corr = vec![0.0f64; dims.t];
    for col in &columns {
        for c in dims.coords() {
            corr[c.t] += col.get(c).norm_sqr();
        }
    }

    println!("{:>4} {:>14} {:>10}", "t", "C(t)", "m_eff(t)");
    for t in 0..dims.t {
        let meff = if t + 1 < dims.t / 2 + 1 && corr[t + 1] > 0.0 {
            format!("{:.4}", (corr[t] / corr[t + 1]).ln())
        } else {
            "-".to_string()
        };
        println!("{t:>4} {:>14.6e} {:>10}", corr[t], meff);
    }

    // Sanity checks that make this an executable test of the physics:
    // the correlator is positive, symmetric-ish about T/2 (periodic
    // boundaries), and decays away from the source.
    assert!(corr.iter().all(|&c| c > 0.0), "correlator must be positive");
    assert!(corr[1] < corr[0], "correlator must decay from the source");
    let fwd = corr[2];
    let bwd = corr[dims.t - 2];
    let asym = (fwd - bwd).abs() / fwd.max(bwd);
    println!("\nforward/backward asymmetry at |t|=2: {asym:.2e} (periodicity check)");
    assert!(asym < 0.15, "correlator should be nearly time-reflection symmetric");
    let plateau = (corr[3] / corr[4]).ln();
    println!(
        "effective mass near the plateau: {plateau:.4} (2x free pole mass ≈ {:.4})",
        2.0 * (1.0f64 + mass).ln()
    );
}
