//! Quickstart: load a gauge configuration, invert the Wilson-clover
//! operator on two simulated GPUs, and print what happened — including the
//! measured per-phase breakdown and a Chrome-trace export of the run.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use quda_core::{PrecisionMode, Quda, QudaInvertParam, TraceConfig};
use quda_fields::gauge_gen::weak_field;
use quda_fields::host::HostSpinorField;
use quda_lattice::geometry::{Coord, LatticeDims};

fn main() {
    // A weak-field configuration, as used for the paper's measurements
    // (Section VII-A): identity links + noise, re-unitarized.
    let dims = LatticeDims::new(8, 8, 8, 16);
    let cfg = weak_field(dims, 0.1, 2024);

    let mut quda = Quda::new(2).expect("context"); // 2 simulated GPUs
    quda.load_gauge(cfg).expect("gauge load");
    println!("lattice {dims}, average plaquette {:.6}", quda.plaquette().unwrap());

    // A point source, the bread and butter of propagator calculations.
    let source = HostSpinorField::point_source(dims, Coord::new(0, 0, 0, 0), 0, 0);

    // Mixed double-half precision with reliable updates — one of the two
    // modes the paper found fastest to solution (Section V-D). Full tracing
    // records every comm/ghost/kernel/solver span for the export below.
    let param = QudaInvertParam::paper_mode(PrecisionMode::DoubleHalf, 2)
        .with_mass(0.2)
        .with_tol(1e-10)
        .with_trace(TraceConfig::Full);

    let (solution, report) = quda.invert(&source, &param).expect("invert");

    println!("converged:          {}", report.converged);
    println!("iterations:         {}", report.iterations);
    println!("reliable updates:   {}", report.reliable_updates);
    println!("true residual:      {:.3e}", report.true_residual);
    println!("solution |x|^2:     {:.6e}", solution.norm_sqr());
    println!("effective flops:    {:.3e}", report.effective_flops as f64);
    println!(
        "modeled on 2x GTX 285: {:.2} ms/solve, {:.0} effective Gflops sustained",
        report.modeled_seconds * 1e3,
        report.modeled_gflops
    );

    // Where the wall time actually went, measured (not modeled).
    println!("\nmeasured phase breakdown ({} ranks):", report.phases.n_ranks);
    for stat in report.phases.phases.iter().take(6) {
        println!(
            "  {:>16}: {:>8.3} ms self, {:>6} spans, {:>10} B",
            stat.phase.name(),
            stat.seconds * 1e3,
            stat.count,
            stat.bytes
        );
    }
    println!(
        "  wall {:.3} ms, overlap efficiency {:.2}, rank skew {:.3} ms, {} B on the wire",
        report.phases.total_wall_s * 1e3,
        report.phases.overlap_efficiency,
        report.phases.rank_skew_s * 1e3,
        report.phases.bytes_moved
    );
    println!(
        "comm health: {} retr-ticks, {} recovered, clean = {}",
        report.comm.retries,
        report.comm.recovered,
        report.comm.is_clean()
    );

    // Export the spans for chrome://tracing or https://ui.perfetto.dev.
    let path = std::env::temp_dir().join("quda_quickstart_trace.json");
    std::fs::write(&path, report.to_chrome_trace()).expect("write trace");
    println!("chrome trace written to {}", path.display());
}
