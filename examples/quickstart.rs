//! Quickstart: load a gauge configuration, invert the Wilson-clover
//! operator on two simulated GPUs, and print what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use quda_core::{PrecisionMode, Quda, QudaInvertParam};
use quda_fields::gauge_gen::weak_field;
use quda_fields::host::HostSpinorField;
use quda_lattice::geometry::{Coord, LatticeDims};

fn main() {
    // A weak-field configuration, as used for the paper's measurements
    // (Section VII-A): identity links + noise, re-unitarized.
    let dims = LatticeDims::new(8, 8, 8, 16);
    let cfg = weak_field(dims, 0.1, 2024);

    let mut quda = Quda::new(2); // parallelize over 2 simulated GPUs
    quda.load_gauge(cfg).expect("gauge load");
    println!("lattice {dims}, average plaquette {:.6}", quda.plaquette().unwrap());

    // A point source, the bread and butter of propagator calculations.
    let source = HostSpinorField::point_source(dims, Coord::new(0, 0, 0, 0), 0, 0);

    // Mixed double-half precision with reliable updates — one of the two
    // modes the paper found fastest to solution (Section V-D).
    let mut param = QudaInvertParam::paper_mode(PrecisionMode::DoubleHalf, 2);
    param.mass = 0.2;
    param.c_sw = 1.0;
    param.tol = 1e-10;

    let (solution, stats) = quda.invert(&source, &param).expect("invert");

    println!("converged:          {}", stats.converged);
    println!("iterations:         {}", stats.iterations);
    println!("reliable updates:   {}", stats.reliable_updates);
    println!("true residual:      {:.3e}", stats.true_residual);
    println!("solution |x|^2:     {:.6e}", solution.norm_sqr());
    println!("effective flops:    {:.3e}", stats.effective_flops as f64);
    println!(
        "modeled on 2x GTX 285: {:.2} ms/solve, {:.0} effective Gflops sustained",
        stats.modeled_seconds * 1e3,
        stats.modeled_gflops
    );
}
