//! Precision study: solve the same system in every mode of Section VII-A
//! and compare iterations, residuals, and the modeled performance; then run
//! the reliable-updates vs defect-correction ablation of Section V-D.
//!
//! ```text
//! cargo run --release --example precision_study
//! ```

use quda_core::{PrecisionMode, Quda, QudaInvertParam};
use quda_dirac::{WilsonCloverOp, WilsonParams};
use quda_fields::gauge_gen::{random_spinor_field, weak_field};
use quda_fields::precision::{Double, Single};
use quda_lattice::geometry::{LatticeDims, Parity};
use quda_solvers::operator::MatPcOp;
use quda_solvers::params::SolverParams;
use quda_solvers::{bicgstab_defect_correction, bicgstab_reliable, blas};

fn main() {
    mode_comparison();
    println!();
    reliable_vs_defect_correction();
}

fn mode_comparison() {
    let dims = LatticeDims::new(4, 4, 4, 8);
    let cfg = weak_field(dims, 0.12, 55);
    let b = random_spinor_field(dims, 56);
    println!("precision-mode comparison on {dims} (2 simulated GPUs):");
    println!(
        "  {:>13} {:>8} {:>6} {:>8} {:>12} {:>10} {:>12}",
        "mode", "target", "iters", "updates", "residual", "Gflops", "mem/GPU MiB"
    );
    let modes = [
        (PrecisionMode::Double, 1e-12),
        (PrecisionMode::Single, 1e-6),
        (PrecisionMode::SingleHalf, 1e-6),
        (PrecisionMode::DoubleHalf, 1e-12),
        (PrecisionMode::DoubleSingle, 1e-12),
    ];
    for (mode, tol) in modes {
        let mut quda = Quda::new(2).unwrap();
        quda.load_gauge(cfg.clone()).unwrap();
        let p = QudaInvertParam::paper_mode(mode, 2).with_mass(0.3).with_tol(tol);
        let (_, stats) = quda.invert(&b, &p).unwrap();
        println!(
            "  {:>13} {:>8.0e} {:>6} {:>8} {:>12.2e} {:>10.0} {:>12.1}",
            mode.name(),
            tol,
            stats.iterations,
            stats.reliable_updates,
            stats.true_residual,
            stats.modeled_gflops,
            stats.memory_per_gpu as f64 / (1024.0 * 1024.0)
        );
        assert!(stats.converged, "{} failed to converge", mode.name());
    }
}

/// Section V-D: reliable updates preserve a single Krylov space, "as opposed
/// to the traditional approach of defect correction which explicitly
/// restarts the Krylov space with every correction, increasing the total
/// number of solver iterations."
fn reliable_vs_defect_correction() {
    let dims = LatticeDims::new(4, 4, 4, 4);
    // A disordered field gives an ill-conditioned matrix where the restart
    // penalty is clearly visible.
    let cfg = quda_fields::gauge_gen::random_field(dims, 77);
    let wp = WilsonParams { mass: 0.05, c_sw: 1.0 };
    let mut hi = MatPcOp::new(WilsonCloverOp::<Double>::from_config(&cfg, wp));
    let mut lo = MatPcOp::new(WilsonCloverOp::<Single>::from_config(&cfg, wp));
    let host = random_spinor_field(dims, 78);
    let mut b = quda_solvers::operator::LinearOperator::alloc(&hi);
    b.upload(&host, Parity::Odd);
    let params = SolverParams { tol: 1e-8, max_iter: 20_000, delta: 1e-1 };

    let mut x1 = quda_solvers::operator::LinearOperator::alloc(&hi);
    blas::zero(&mut x1);
    let rel = bicgstab_reliable(&mut hi, &mut lo, &mut x1, &b, &params);
    let mut x2 = quda_solvers::operator::LinearOperator::alloc(&hi);
    blas::zero(&mut x2);
    let dc = bicgstab_defect_correction(&mut hi, &mut lo, &mut x2, &b, &params, 1e-1);

    println!("mixed-precision strategy ablation (disordered field, double-single, tol 1e-8):");
    println!(
        "  reliable updates:  {:>5} iterations, {:>2} updates, residual {:.2e}",
        rel.iterations, rel.reliable_updates, rel.final_residual
    );
    println!(
        "  defect correction: {:>5} iterations, {:>2} restarts, residual {:.2e}",
        dc.iterations, dc.reliable_updates, dc.final_residual
    );
    let penalty = dc.iterations as f64 / rel.iterations.max(1) as f64;
    println!("  restart penalty: {penalty:.2}x iterations");
}
