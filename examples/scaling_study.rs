//! Scaling study: functional verification that 1-, 2-, and 4-rank solves
//! give the same answer, followed by the performance model's strong-scaling
//! table for the paper's production volumes.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use quda_core::{CommStrategy, PrecisionMode, Quda, QudaInvertParam};
use quda_fields::gauge_gen::{random_spinor_field, weak_field};
use quda_lattice::geometry::LatticeDims;
use quda_multigpu::multidim::{best_grid, sustained_gflops_grid, ProcessGrid};
use quda_multigpu::perf::{evaluate, PerfInput};

fn main() {
    functional_agreement();
    println!();
    modeled_strong_scaling();
    modeled_multidim_scaling();
}

/// Part 1 — run the *same* solve on 1, 2, and 4 thread-GPUs and show the
/// answers agree to solver tolerance (the parallelization is exact).
fn functional_agreement() {
    let dims = LatticeDims::new(4, 4, 4, 8);
    let cfg = weak_field(dims, 0.12, 99);
    let b = random_spinor_field(dims, 100);
    println!("functional agreement on {dims} (double precision, tol 1e-11):");
    let mut reference: Option<quda_fields::host::HostSpinorField> = None;
    for ranks in [1usize, 2, 4] {
        let mut quda = Quda::new(ranks).unwrap();
        quda.load_gauge(cfg.clone()).unwrap();
        let p = QudaInvertParam::paper_mode(PrecisionMode::Double, ranks)
            .with_mass(0.3)
            .with_tol(1e-11);
        let (x, stats) = quda.invert(&b, &p).unwrap();
        let dist = reference.as_ref().map(|r| r.max_site_dist(&x)).unwrap_or(0.0);
        println!(
            "  {ranks} rank(s): {} iterations, residual {:.2e}, max site distance to 1-rank {:.2e}",
            stats.iterations, stats.true_residual, dist
        );
        assert!(stats.converged);
        if let Some(r) = &reference {
            assert!(r.max_site_dist(&x) < 1e-9);
        } else {
            reference = Some(x);
        }
    }
}

/// Part 2 — the calibrated model's strong-scaling table at the paper's
/// volumes (compare with Fig. 5).
fn modeled_strong_scaling() {
    let big = LatticeDims::spatial_cube(32, 256);
    let small = LatticeDims::spatial_cube(24, 128);
    for (name, dims) in [("32^3x256", big), ("24^3x128", small)] {
        println!("modeled strong scaling, V = {name}, single-half, GTX 285 cluster:");
        println!(
            "  {:>5} {:>16} {:>16} {:>10}",
            "GPUs", "overlap Gflops", "no-ovlp Gflops", "comm %"
        );
        for gpus in [2usize, 4, 8, 16, 32] {
            if dims.t % gpus != 0 {
                continue;
            }
            let ov = evaluate(&PerfInput::paper(
                dims,
                gpus,
                PrecisionMode::SingleHalf,
                CommStrategy::Overlap,
            ));
            let no = evaluate(&PerfInput::paper(
                dims,
                gpus,
                PrecisionMode::SingleHalf,
                CommStrategy::NoOverlap,
            ));
            let fits = if ov.fits_memory { "" } else { "  (exceeds device memory)" };
            println!(
                "  {:>5} {:>16.0} {:>16.0} {:>9.1}%{}",
                gpus,
                ov.sustained_gflops,
                no.sustained_gflops,
                ov.comm_fraction * 100.0,
                fits
            );
        }
        println!();
    }
}

/// Part 3 — past the 1-d slice's reach: 64–256 simulated ranks need a
/// multi-dimensional process grid (Section VI-A future work; the ISSUE 7
/// dimension-generic exchange makes these grids real, not just modeled).
fn modeled_multidim_scaling() {
    let sweep = [64usize, 128, 256];
    let row = |ranks: usize, dims: LatticeDims| {
        // The grid model reads only the global dims from PerfInput; the
        // rank layout is supplied per grid.
        let inp = PerfInput::paper(
            dims,
            ranks.clamp(1, 128),
            PrecisionMode::Single,
            CommStrategy::NoOverlap,
        );
        let t_only = sustained_gflops_grid(&inp, ProcessGrid::one_d(ranks));
        match (t_only, best_grid(&inp, ranks)) {
            (Some(t), Some((g, b))) => {
                println!("    {ranks:>5} {t:>14.0} {b:>14.0} {:>12}", g.to_string())
            }
            (None, Some((g, b))) => {
                println!(
                    "    {ranks:>5} {:>14} {b:>14.0} {:>12}  (1-d impossible)",
                    "-",
                    g.to_string()
                )
            }
            _ => println!("    {ranks:>5} no valid grid"),
        }
    };
    println!("modeled multi-dimensional scaling, single precision, no overlap:");
    println!("  strong scaling, V = 32^3x256:");
    println!("    {:>5} {:>14} {:>14} {:>12}", "GPUs", "T-only Gflops", "best Gflops", "best grid");
    for ranks in sweep {
        row(ranks, LatticeDims::spatial_cube(32, 256));
    }
    println!("  weak scaling, V = 32^3x(2 GPUs):");
    println!("    {:>5} {:>14} {:>14} {:>12}", "GPUs", "T-only Gflops", "best Gflops", "best grid");
    for ranks in sweep {
        row(ranks, LatticeDims::new(32, 32, 32, 2 * ranks));
    }
}
