//! Visualize the mechanism of Section V-D: the iterated residual of a
//! mixed-precision solve with reliable updates, next to a uniform-precision
//! solve of the same system. The mixed trace shows the characteristic
//! sawtooth — sloppy iterations drift optimistically low, and each
//! high-precision replacement snaps the estimate back to the truth —
//! "allowing the bulk of the computation to be performed in fast low
//! precision, with periodic updates in high precision".
//!
//! ```text
//! cargo run --release --example convergence_history
//! ```

use quda_dirac::{WilsonCloverOp, WilsonParams};
use quda_fields::gauge_gen::{random_spinor_field, weak_field};
use quda_fields::precision::{Double, Half};
use quda_lattice::geometry::{LatticeDims, Parity};
use quda_solvers::operator::{LinearOperator, MatPcOp};
use quda_solvers::params::SolverParams;
use quda_solvers::{bicgstab, bicgstab_reliable, blas};

fn bar(log_r: f64) -> String {
    // Map log10(residual) in [-12, 0] to a bar of 48 chars.
    let width = ((-log_r) / 12.0 * 48.0).clamp(0.0, 48.0) as usize;
    "#".repeat(width)
}

fn main() {
    let dims = LatticeDims::new(4, 4, 4, 8);
    let cfg = weak_field(dims, 0.12, 2718);
    let wp = WilsonParams { mass: 0.25, c_sw: 1.0 };
    let host = random_spinor_field(dims, 2719);

    let mut hi = MatPcOp::new(WilsonCloverOp::<Double>::from_config(&cfg, wp));
    let mut lo = MatPcOp::new(WilsonCloverOp::<Half>::from_config(&cfg, wp));
    let mut b = hi.alloc();
    b.upload(&host, Parity::Odd);
    let params = SolverParams { tol: 1e-11, max_iter: 2000, delta: 1e-1 };

    let mut x1 = hi.alloc();
    blas::zero(&mut x1);
    let pure = bicgstab(&mut hi, &mut x1, &b, &params);
    let mut x2 = hi.alloc();
    blas::zero(&mut x2);
    let mixed = bicgstab_reliable(&mut hi, &mut lo, &mut x2, &b, &params);

    println!(
        "uniform double BiCGstab ({} iterations, residual {:.1e}):",
        pure.iterations, pure.final_residual
    );
    print_history(&pure.residual_history);
    println!();
    println!(
        "mixed double-half with reliable updates ({} iterations, {} updates, residual {:.1e}):",
        mixed.iterations, mixed.reliable_updates, mixed.final_residual
    );
    println!("(watch for upward snaps: high-precision residual replacements)");
    print_history(&mixed.residual_history);

    assert!(pure.converged && mixed.converged);
    // The mechanism's signature: the mixed history is non-monotone (it
    // jumps up at reliable updates) while converging overall.
    let ups = mixed.residual_history.windows(2).filter(|w| w[1] > w[0] * 1.5).count();
    println!("\nupward corrections in the mixed trace: {ups}");
}

fn print_history(history: &[f64]) {
    let stride = (history.len() / 24).max(1);
    for (i, &r) in history.iter().enumerate() {
        if i % stride == 0 || i + 1 == history.len() {
            println!("  {:>4} {:>9.2e} |{}", i + 1, r, bar(r.log10()));
        }
    }
}
