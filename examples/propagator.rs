//! The measurement protocol of Section VII-A: "running the Chroma
//! propagator code and performing 6 linear solves for each test (one for
//! each of the 3 color components of the upper 2 spin components), with the
//! quoted performance results given by averages over these solves."
//!
//! ```text
//! cargo run --release --example propagator [ranks]
//! ```

use quda_core::{PrecisionMode, Quda, QudaInvertParam};
use quda_fields::gauge_gen::weak_field;
use quda_fields::host::HostSpinorField;
use quda_lattice::geometry::{Coord, LatticeDims};

fn main() {
    let ranks: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let dims = LatticeDims::new(6, 6, 6, 12 * ranks.max(1));
    let cfg = weak_field(dims, 0.1, 7);
    let mut quda = Quda::new(ranks).expect("context");
    quda.load_gauge(cfg).expect("gauge load");

    let param = QudaInvertParam::paper_mode(PrecisionMode::SingleHalf, ranks)
        .with_mass(0.25)
        .with_tol(1e-6);

    println!("propagator test: {dims} on {ranks} GPUs, mode {}", param.mode.name());
    println!(
        "{:>5} {:>6} {:>6} {:>9} {:>12} {:>13} {:>10}",
        "spin", "color", "iters", "updates", "residual", "modeled-ms", "Gflops"
    );

    let origin = Coord::new(0, 0, 0, 0);
    let mut total_iters = 0usize;
    let mut total_ms = 0.0;
    let mut total_gflops = 0.0;
    let mut solves = 0.0;
    // Upper 2 spin components × 3 colors = 6 solves.
    for spin in 0..2 {
        for color in 0..3 {
            let source = HostSpinorField::point_source(dims, origin, spin, color);
            let (_, stats) = quda.invert(&source, &param).expect("invert");
            assert!(stats.converged, "solve (s={spin}, c={color}) did not converge");
            println!(
                "{:>5} {:>6} {:>6} {:>9} {:>12.3e} {:>13.2} {:>10.0}",
                spin,
                color,
                stats.iterations,
                stats.reliable_updates,
                stats.true_residual,
                stats.modeled_seconds * 1e3,
                stats.modeled_gflops
            );
            total_iters += stats.iterations;
            total_ms += stats.modeled_seconds * 1e3;
            total_gflops += stats.modeled_gflops;
            solves += 1.0;
        }
    }
    println!("---");
    println!(
        "average over {} solves: {:.1} iterations, {:.2} modeled ms, {:.0} sustained effective Gflops",
        solves,
        total_iters as f64 / solves,
        total_ms / solves,
        total_gflops / solves
    );
}
