//! # quda-core
//!
//! The public interface of `quda-rs` — a Rust reproduction of
//! *"Parallelizing the QUDA Library for Multi-GPU Calculations in Lattice
//! Quantum Chromodynamics"* (Babich, Clark, Joó, SC10 2010).
//!
//! The shape mirrors QUDA's C interface ("a simple C interface to allow for
//! easy integration with LQCD application software", Section V): create a
//! [`Quda`] context, [`Quda::load_gauge`] a configuration, and call
//! [`Quda::invert`] with a [`QudaInvertParam`] describing the precision
//! mode, solver, GPU count, and communication strategy. Every inversion
//! returns both the solution and an [`InvertReport`]: the classic
//! [`InvertStats`] (iterations, verified residual, modeled performance)
//! plus a *measured* per-phase wall-time breakdown, the world-wide
//! communication-health record, and — under [`TraceConfig::Full`] — a raw
//! span trace exportable as Chrome trace-event JSON.
//!
//! ```
//! use quda_core::{Quda, QudaInvertParam, TraceConfig};
//! use quda_fields::gauge_gen::weak_field;
//! use quda_fields::host::HostSpinorField;
//! use quda_lattice::geometry::{Coord, LatticeDims};
//! use quda_multigpu::PrecisionMode;
//!
//! let dims = LatticeDims::new(4, 4, 4, 8);
//! let mut quda = Quda::new(2).unwrap(); // two (simulated) GPUs
//! quda.load_gauge(weak_field(dims, 0.1, 42)).unwrap();
//! let source = HostSpinorField::point_source(dims, Coord::new(0, 0, 0, 0), 0, 0);
//! let param = QudaInvertParam::paper_mode(PrecisionMode::DoubleHalf, 2)
//!     .with_mass(0.3)
//!     .with_tol(1e-10)
//!     .with_trace(TraceConfig::Summary);
//! let (solution, report) = quda.invert(&source, &param).unwrap();
//! assert!(report.converged); // derefs to the classic InvertStats
//! assert!(report.true_residual < 1e-9);
//! assert!(solution.norm_sqr() > 0.0);
//! // The measured breakdown: where the wall time actually went.
//! assert!(!report.phases.phases.is_empty());
//! assert!(report.phases.overlap_efficiency >= 0.0);
//! ```

#![warn(missing_docs)]

pub mod params;

pub use params::{InvertReport, InvertStats, QudaDeviceParam, QudaGaugeParam, QudaInvertParam};
pub use quda_comm::CommError;
pub use quda_multigpu::driver::ChaosSpec;
pub use quda_multigpu::driver::SolverKind;
pub use quda_multigpu::rank_op::CommStrategy;
pub use quda_multigpu::{CommHealth, PrecisionMode, RecoveryEvent, RecoveryReport};
pub use quda_obs::{Phase, PhaseBreakdown, Trace, TraceConfig};

use quda_dirac::WilsonParams;
use quda_fields::host::{GaugeConfig, HostSpinorField};
use quda_lattice::partition::TimePartition;
use quda_multigpu::driver::{
    solve_full_parallel_elastic, verify_full_solution, ElasticPolicy, ParallelSolveSpec,
};
use quda_multigpu::perf::{evaluate, solver_memory_per_gpu, PerfInput};
use quda_solvers::params::SolverParams;

/// Errors the interface can report.
#[derive(Debug, Clone, PartialEq)]
pub enum QudaError {
    /// No gauge field loaded.
    NoGauge,
    /// Gauge field failed the unitarity check.
    NotUnitary,
    /// Lattice/partition mismatch (T not divisible, local T odd, …).
    BadPartition(String),
    /// Source dims do not match the loaded gauge field.
    DimsMismatch,
    /// The working set does not fit device memory at this GPU count.
    OutOfDeviceMemory {
        /// Required bytes per GPU.
        required: usize,
        /// Available bytes per GPU.
        available: usize,
    },
    /// The parallel solve failed with an unrecoverable communication error
    /// (dead rank, timeout, exhausted retries). Carries the structured
    /// [`CommError`] — match on it to distinguish a dead rank from a
    /// timeout, or reach it generically via
    /// [`source()`](std::error::Error::source).
    Comm(CommError),
}

impl std::fmt::Display for QudaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QudaError::NoGauge => write!(f, "no gauge field loaded"),
            QudaError::NotUnitary => write!(f, "gauge links are not special-unitary"),
            QudaError::BadPartition(s) => write!(f, "bad partition: {s}"),
            QudaError::DimsMismatch => write!(f, "field dimensions do not match gauge field"),
            QudaError::OutOfDeviceMemory { required, available } => {
                write!(f, "out of device memory: need {required} B/GPU, have {available} B/GPU")
            }
            QudaError::Comm(e) => write!(f, "communication failure: {e}"),
        }
    }
}

impl std::error::Error for QudaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QudaError::Comm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CommError> for QudaError {
    fn from(e: CommError) -> QudaError {
        QudaError::Comm(e)
    }
}

/// The library context (the moral equivalent of `initQuda` + the state the
/// C interface keeps behind the scenes).
pub struct Quda {
    num_gpus: usize,
    device: QudaDeviceParam,
    gauge: Option<GaugeConfig>,
    /// Enforce the device-memory footprint before running (off by default;
    /// turning it on reproduces the paper's "at least 8 GPUs are needed"
    /// behaviour at full lattice sizes). Set via
    /// [`Quda::with_memory_enforcement`].
    enforce_memory: bool,
}

impl Quda {
    /// Initialize for `num_gpus` simulated devices.
    ///
    /// Fails with [`QudaError::BadPartition`] for a zero-device context
    /// rather than panicking.
    pub fn new(num_gpus: usize) -> Result<Self, QudaError> {
        if num_gpus == 0 {
            return Err(QudaError::BadPartition(
                "a context needs at least one GPU (num_gpus = 0)".to_owned(),
            ));
        }
        Ok(Quda {
            num_gpus,
            device: QudaDeviceParam::default(),
            gauge: None,
            enforce_memory: false,
        })
    }

    /// The pre-redesign constructor, which panicked on `num_gpus == 0`.
    #[deprecated(since = "0.2.0", note = "use `Quda::new`, which returns Err for 0 GPUs")]
    pub fn new_unchecked(num_gpus: usize) -> Self {
        assert!(num_gpus >= 1);
        Quda { num_gpus, device: QudaDeviceParam::default(), gauge: None, enforce_memory: false }
    }

    /// Select a different card model or NUMA placement.
    pub fn with_device(mut self, device: QudaDeviceParam) -> Self {
        self.device = device;
        self
    }

    /// Enable or disable the device-memory gate: when on, an inversion
    /// whose working set exceeds per-GPU memory fails with
    /// [`QudaError::OutOfDeviceMemory`] instead of running.
    pub fn with_memory_enforcement(mut self, enforce: bool) -> Self {
        self.enforce_memory = enforce;
        self
    }

    /// The pre-redesign field setter for the memory gate.
    #[deprecated(since = "0.2.0", note = "use `Quda::with_memory_enforcement`")]
    pub fn set_enforce_memory(&mut self, enforce: bool) {
        self.enforce_memory = enforce;
    }

    /// Number of devices this context parallelizes over.
    pub fn num_gpus(&self) -> usize {
        self.num_gpus
    }

    /// Load a gauge configuration (validating unitarity), replacing any
    /// previously loaded one — `loadGaugeQuda`.
    pub fn load_gauge(&mut self, cfg: GaugeConfig) -> Result<(), QudaError> {
        let param = QudaGaugeParam::new(cfg.dims);
        self.load_gauge_with(cfg, &param)
    }

    /// Load with explicit parameters.
    pub fn load_gauge_with(
        &mut self,
        cfg: GaugeConfig,
        param: &QudaGaugeParam,
    ) -> Result<(), QudaError> {
        if param.check_unitarity && !cfg.is_unitary(param.unitarity_tol) {
            return Err(QudaError::NotUnitary);
        }
        self.gauge = Some(cfg);
        Ok(())
    }

    /// Drop the loaded gauge field — `freeGaugeQuda`.
    pub fn free_gauge(&mut self) {
        self.gauge = None;
    }

    /// Average plaquette of the loaded configuration.
    pub fn plaquette(&self) -> Result<f64, QudaError> {
        Ok(self.gauge.as_ref().ok_or(QudaError::NoGauge)?.average_plaquette())
    }

    /// Solve `M x = b` — `invertQuda`.
    ///
    /// Runs the *functional* parallel solve (thread ranks, real ghost
    /// exchanges, real mixed-precision arithmetic), independently verifies
    /// the solution against the dense host reference operator, and returns
    /// an [`InvertReport`]: the classic [`InvertStats`] (including the
    /// performance model's timing of the same run shape) plus the measured
    /// phase breakdown and communication health of this run, governed by
    /// [`QudaInvertParam::trace`].
    pub fn invert(
        &mut self,
        source: &HostSpinorField,
        param: &QudaInvertParam,
    ) -> Result<(HostSpinorField, InvertReport), QudaError> {
        let chaos = ChaosSpec {
            lockstep: param
                .lockstep
                .then(|| quda_comm::LockstepConfig::from_env().unwrap_or_default()),
            ..ChaosSpec::default()
        };
        self.invert_with_chaos(source, param, &chaos)
    }

    /// [`Quda::invert`] under an explicit fault-injection and timeout
    /// policy — the entry point chaos tests and resilience benchmarks
    /// drive. With [`QudaInvertParam::max_rank_deaths`] above `0` the solve
    /// runs elastically: injected rank deaths are survived by rolling back
    /// to the last checkpoint on a rebuilt world, and every recovery is
    /// reported in [`InvertReport::recovery`].
    pub fn invert_with_chaos(
        &mut self,
        source: &HostSpinorField,
        param: &QudaInvertParam,
        chaos: &ChaosSpec,
    ) -> Result<(HostSpinorField, InvertReport), QudaError> {
        let cfg = self.gauge.as_ref().ok_or(QudaError::NoGauge)?;
        if source.dims != cfg.dims {
            return Err(QudaError::DimsMismatch);
        }
        let num_gpus = param.num_gpus.max(1);
        if cfg.dims.t % num_gpus != 0 {
            return Err(QudaError::BadPartition(format!(
                "T={} not divisible by {num_gpus} GPUs",
                cfg.dims.t
            )));
        }
        if (cfg.dims.t / num_gpus) % 2 != 0 || cfg.dims.t / num_gpus < 2 {
            return Err(QudaError::BadPartition(format!(
                "local T extent {} must be even and >= 2",
                cfg.dims.t / num_gpus
            )));
        }
        let mem = solver_memory_per_gpu(cfg.dims, num_gpus, param.mode);
        let capacity = {
            let dev = quda_gpusim::memory::DeviceMemory::new(self.device.gpu.ram_bytes());
            dev.capacity()
        };
        if self.enforce_memory && mem > capacity {
            return Err(QudaError::OutOfDeviceMemory { required: mem, available: capacity });
        }

        let wilson = WilsonParams { mass: param.mass, c_sw: param.c_sw };
        let spec = ParallelSolveSpec {
            part: TimePartition::new(cfg.dims, num_gpus),
            wilson,
            mode: param.mode,
            strategy: param.strategy,
            solver: param.solver,
            params: SolverParams { tol: param.tol, max_iter: param.max_iter, delta: param.delta },
        };
        let policy = ElasticPolicy { max_rank_deaths: param.max_rank_deaths, chaos: chaos.clone() };
        let elastic = solve_full_parallel_elastic(cfg, source, &spec, &policy, param.trace)
            .map_err(QudaError::Comm)?;
        let (solve, recovery) = (elastic.solve, elastic.recovery);
        let (x, result) = (solve.solution, solve.result);
        let true_residual = verify_full_solution(cfg, &wilson, &x, source);

        // Performance model of this run shape on the simulated cluster.
        let mut perf_in = PerfInput::paper(cfg.dims, num_gpus, param.mode, param.strategy);
        perf_in.gpu = self.device.gpu;
        perf_in.numa = self.device.numa;
        let report = evaluate(&perf_in);
        let iterations = result.iterations.max(1);
        let modeled_seconds = report.iteration_time_s * iterations as f64;

        let stats = InvertStats {
            converged: result.converged,
            iterations: result.iterations,
            matvecs: result.matvecs,
            reliable_updates: result.reliable_updates,
            solver_residual: result.final_residual,
            true_residual,
            effective_flops: result.total_flops(),
            modeled_seconds,
            modeled_gflops: report.sustained_gflops,
            memory_per_gpu: mem,
            recoveries: result.recoveries,
            comm_recoveries: result.comm_recoveries,
        };
        Ok((
            x,
            InvertReport {
                stats,
                phases: solve.trace.breakdown(),
                comm: solve.comm,
                trace: solve.trace,
                recovery,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quda_fields::gauge_gen::{random_spinor_field, weak_field};
    use quda_lattice::geometry::{Coord, LatticeDims};

    fn dims() -> LatticeDims {
        LatticeDims::new(4, 4, 2, 8)
    }

    fn ctx_with_gauge() -> Quda {
        let mut q = Quda::new(2).unwrap();
        q.load_gauge(weak_field(dims(), 0.15, 7)).unwrap();
        q
    }

    #[test]
    fn zero_gpus_is_an_error_not_a_panic() {
        assert!(matches!(Quda::new(0), Err(QudaError::BadPartition(_))));
        assert_eq!(Quda::new(1).unwrap().num_gpus(), 1);
    }

    #[test]
    fn invert_without_gauge_fails() {
        let mut q = Quda::new(1).unwrap();
        let b = HostSpinorField::zero(dims());
        let p = QudaInvertParam::paper_mode(PrecisionMode::Double, 1);
        assert!(matches!(q.invert(&b, &p), Err(QudaError::NoGauge)));
    }

    #[test]
    fn non_unitary_gauge_rejected() {
        let mut q = Quda::new(1).unwrap();
        let mut cfg = GaugeConfig::unit(dims());
        cfg.links[0].m[0][0].re = 5.0;
        assert_eq!(q.load_gauge(cfg), Err(QudaError::NotUnitary));
    }

    #[test]
    fn bad_partition_rejected() {
        let mut q = ctx_with_gauge();
        let b = random_spinor_field(dims(), 1);
        let mut p = QudaInvertParam::paper_mode(PrecisionMode::Double, 2);
        p.num_gpus = 3; // 8 % 3 != 0
        assert!(matches!(q.invert(&b, &p), Err(QudaError::BadPartition(_))));
        p.num_gpus = 4; // local T = 2: fine
        p.tol = 1e-8;
        p.mass = 0.3;
        assert!(q.invert(&b, &p).is_ok());
    }

    #[test]
    fn dims_mismatch_rejected() {
        let mut q = ctx_with_gauge();
        let b = HostSpinorField::zero(LatticeDims::new(4, 4, 4, 8));
        let p = QudaInvertParam::paper_mode(PrecisionMode::Double, 2);
        assert!(matches!(q.invert(&b, &p), Err(QudaError::DimsMismatch)));
    }

    #[test]
    fn point_source_inversion_verifies() {
        let mut q = ctx_with_gauge();
        let b = HostSpinorField::point_source(dims(), Coord::new(1, 0, 1, 2), 1, 2);
        let mut p = QudaInvertParam::paper_mode(PrecisionMode::Double, 2);
        p.mass = 0.3;
        p.tol = 1e-10;
        let (x, stats) = q.invert(&b, &p).unwrap();
        assert!(stats.converged);
        assert!(stats.true_residual < 1e-9, "true residual {}", stats.true_residual);
        assert!(x.norm_sqr() > 0.0);
        assert!(stats.modeled_gflops > 0.0);
        assert!(stats.modeled_seconds > 0.0);
        assert!(stats.memory_per_gpu > 0);
    }

    #[test]
    fn mixed_mode_through_interface() {
        let mut q = ctx_with_gauge();
        let b = random_spinor_field(dims(), 3);
        let mut p = QudaInvertParam::paper_mode(PrecisionMode::SingleHalf, 2);
        p.mass = 0.3;
        p.tol = 1e-6;
        let (_, stats) = q.invert(&b, &p).unwrap();
        assert!(stats.converged, "residual {}", stats.true_residual);
        assert!(stats.true_residual < 1e-5);
    }

    #[test]
    fn memory_enforcement_rejects_oversized_problems() {
        // A full 32³×256 mixed-precision problem on one GTX 285 must OOM.
        let q = Quda::new(1).unwrap().with_memory_enforcement(true);
        assert!(q.enforce_memory);
        // Don't actually allocate the big lattice: just check the gate.
        let big = LatticeDims::spatial_cube(32, 256);
        let need = solver_memory_per_gpu(big, 1, PrecisionMode::SingleHalf);
        assert!(need > quda_gpusim::cards::gtx285().ram_bytes());
    }

    #[test]
    fn plaquette_reported() {
        let q = ctx_with_gauge();
        let p = q.plaquette().unwrap();
        assert!(p > 0.9 && p <= 1.0);
    }

    #[test]
    fn free_gauge_clears_state() {
        let mut q = ctx_with_gauge();
        q.free_gauge();
        assert!(matches!(q.plaquette(), Err(QudaError::NoGauge)));
    }

    #[test]
    fn cgnr_solver_through_interface() {
        let mut q = ctx_with_gauge();
        let b = random_spinor_field(dims(), 9);
        let mut p = QudaInvertParam::paper_mode(PrecisionMode::Double, 2);
        p.solver = SolverKind::Cgnr;
        p.mass = 0.3;
        p.tol = 1e-9;
        let (_, stats) = q.invert(&b, &p).unwrap();
        assert!(stats.converged);
        assert!(stats.true_residual < 1e-7);
    }
}
