//! # quda-core
//!
//! The public interface of `quda-rs` — a Rust reproduction of
//! *"Parallelizing the QUDA Library for Multi-GPU Calculations in Lattice
//! Quantum Chromodynamics"* (Babich, Clark, Joó, SC10 2010).
//!
//! The shape mirrors QUDA's C interface ("a simple C interface to allow for
//! easy integration with LQCD application software", Section V): create a
//! [`Quda`] context, [`Quda::load_gauge`] a configuration, and call
//! [`Quda::invert`] with a [`QudaInvertParam`] describing the precision
//! mode, solver, GPU count, and communication strategy. Every inversion
//! returns both the solution and an [`InvertReport`]: the classic
//! [`InvertStats`] (iterations, verified residual, modeled performance)
//! plus a *measured* per-phase wall-time breakdown, the world-wide
//! communication-health record, and — under [`TraceConfig::Full`] — a raw
//! span trace exportable as Chrome trace-event JSON.
//!
//! ```
//! use quda_core::{Quda, QudaInvertParam, TraceConfig};
//! use quda_fields::gauge_gen::weak_field;
//! use quda_fields::host::HostSpinorField;
//! use quda_lattice::geometry::{Coord, LatticeDims};
//! use quda_multigpu::PrecisionMode;
//!
//! let dims = LatticeDims::new(4, 4, 4, 8);
//! let mut quda = Quda::new(2).unwrap(); // two (simulated) GPUs
//! quda.load_gauge(weak_field(dims, 0.1, 42)).unwrap();
//! let source = HostSpinorField::point_source(dims, Coord::new(0, 0, 0, 0), 0, 0);
//! let param = QudaInvertParam::paper_mode(PrecisionMode::DoubleHalf, 2)
//!     .with_mass(0.3)
//!     .with_tol(1e-10)
//!     .with_trace(TraceConfig::Summary);
//! let (solution, report) = quda.invert(&source, &param).unwrap();
//! assert!(report.converged); // derefs to the classic InvertStats
//! assert!(report.true_residual < 1e-9);
//! assert!(solution.norm_sqr() > 0.0);
//! // The measured breakdown: where the wall time actually went.
//! assert!(!report.phases.phases.is_empty());
//! assert!(report.phases.overlap_efficiency >= 0.0);
//! ```

#![warn(missing_docs)]

pub mod params;

pub use params::{
    InvertReport, InvertStats, QudaDeviceParam, QudaGaugeParam, QudaInvertParam, QueueTelemetry,
};
pub use quda_comm::CommError;
pub use quda_multigpu::driver::ChaosSpec;
pub use quda_multigpu::driver::SolverKind;
pub use quda_multigpu::rank_op::CommStrategy;
pub use quda_multigpu::{CommHealth, PrecisionMode, RecoveryEvent, RecoveryReport};
pub use quda_obs::{Phase, PhaseBreakdown, Trace, TraceConfig};

use std::sync::Arc;

use quda_dirac::WilsonParams;
use quda_fields::host::{GaugeConfig, HostSpinorField};
use quda_lattice::partition::TimePartition;
use quda_multigpu::driver::{
    solve_full_parallel_elastic, solve_full_parallel_multi, verify_full_solution, ElasticPolicy,
    ParallelSolveSpec,
};
use quda_multigpu::perf::{evaluate, solver_memory_per_gpu, PerfInput};
use quda_solvers::params::SolverParams;

/// Handle to a gauge configuration registered in a [`Quda`] context —
/// the Rust shape of QUDA's `loadGaugeQuda`/`freeGaugeQuda` lifecycle.
/// The underlying field is reference-counted: [`Quda::gauge_ref`] hands
/// out [`Arc`] clones, so freeing the handle drops the context's
/// reference without invalidating fields a service worker still holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GaugeId(u64);

/// Errors the interface can report.
#[derive(Debug, Clone, PartialEq)]
pub enum QudaError {
    /// No gauge field loaded.
    NoGauge,
    /// Gauge field failed the unitarity check.
    NotUnitary,
    /// Lattice/partition mismatch (T not divisible, local T odd, …).
    BadPartition(String),
    /// Source dims do not match the loaded gauge field.
    DimsMismatch,
    /// A [`GaugeId`] that was never registered, or was already freed.
    UnknownGauge(GaugeId),
    /// More right-hand sides than one fused sweep can carry
    /// (`quda_dirac::MAX_RHS_BATCH`); split the batch.
    BatchTooLarge {
        /// Right-hand sides requested.
        requested: usize,
        /// The per-batch cap.
        max: usize,
    },
    /// The working set does not fit device memory at this GPU count.
    OutOfDeviceMemory {
        /// Required bytes per GPU.
        required: usize,
        /// Available bytes per GPU.
        available: usize,
    },
    /// The parallel solve failed with an unrecoverable communication error
    /// (dead rank, timeout, exhausted retries). Carries the structured
    /// [`CommError`] — match on it to distinguish a dead rank from a
    /// timeout, or reach it generically via
    /// [`source()`](std::error::Error::source).
    Comm(CommError),
}

impl std::fmt::Display for QudaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QudaError::NoGauge => write!(f, "no gauge field loaded"),
            QudaError::NotUnitary => write!(f, "gauge links are not special-unitary"),
            QudaError::BadPartition(s) => write!(f, "bad partition: {s}"),
            QudaError::DimsMismatch => write!(f, "field dimensions do not match gauge field"),
            QudaError::UnknownGauge(id) => write!(f, "unknown or freed gauge handle {id:?}"),
            QudaError::BatchTooLarge { requested, max } => {
                write!(f, "batch of {requested} right-hand sides exceeds the cap of {max}")
            }
            QudaError::OutOfDeviceMemory { required, available } => {
                write!(f, "out of device memory: need {required} B/GPU, have {available} B/GPU")
            }
            QudaError::Comm(e) => write!(f, "communication failure: {e}"),
        }
    }
}

impl std::error::Error for QudaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QudaError::Comm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CommError> for QudaError {
    fn from(e: CommError) -> QudaError {
        QudaError::Comm(e)
    }
}

/// The library context (the moral equivalent of `initQuda` + the state the
/// C interface keeps behind the scenes).
pub struct Quda {
    num_gpus: usize,
    device: QudaDeviceParam,
    /// Registered gauge configurations, insertion-ordered. A `Vec` rather
    /// than a map: contexts hold a handful of fields, and iteration order
    /// matters for deterministic diagnostics.
    gauges: Vec<(GaugeId, Arc<GaugeConfig>)>,
    /// The handle inversions run against (the most recently loaded,
    /// selected, or adopted gauge).
    current: Option<GaugeId>,
    next_gauge_id: u64,
    /// Enforce the device-memory footprint before running (off by default;
    /// turning it on reproduces the paper's "at least 8 GPUs are needed"
    /// behaviour at full lattice sizes). Set via
    /// [`Quda::with_memory_enforcement`].
    enforce_memory: bool,
}

impl Quda {
    /// Initialize for `num_gpus` simulated devices.
    ///
    /// Fails with [`QudaError::BadPartition`] for a zero-device context
    /// rather than panicking.
    pub fn new(num_gpus: usize) -> Result<Self, QudaError> {
        if num_gpus == 0 {
            return Err(QudaError::BadPartition(
                "a context needs at least one GPU (num_gpus = 0)".to_owned(),
            ));
        }
        Ok(Quda {
            num_gpus,
            device: QudaDeviceParam::default(),
            gauges: Vec::new(),
            current: None,
            next_gauge_id: 0,
            enforce_memory: false,
        })
    }

    /// Select a different card model or NUMA placement.
    pub fn with_device(mut self, device: QudaDeviceParam) -> Self {
        self.device = device;
        self
    }

    /// Enable or disable the device-memory gate: when on, an inversion
    /// whose working set exceeds per-GPU memory fails with
    /// [`QudaError::OutOfDeviceMemory`] instead of running.
    pub fn with_memory_enforcement(mut self, enforce: bool) -> Self {
        self.enforce_memory = enforce;
        self
    }

    /// Number of devices this context parallelizes over.
    pub fn num_gpus(&self) -> usize {
        self.num_gpus
    }

    /// Load a gauge configuration (validating unitarity) and select it for
    /// subsequent inversions — `loadGaugeQuda`. Previously loaded fields
    /// stay registered under their handles until [`Quda::free_gauge`].
    pub fn load_gauge(&mut self, cfg: GaugeConfig) -> Result<GaugeId, QudaError> {
        let param = QudaGaugeParam::new(cfg.dims);
        self.load_gauge_with(cfg, &param)
    }

    /// Load with explicit parameters.
    pub fn load_gauge_with(
        &mut self,
        cfg: GaugeConfig,
        param: &QudaGaugeParam,
    ) -> Result<GaugeId, QudaError> {
        if param.check_unitarity && !cfg.is_unitary(param.unitarity_tol) {
            return Err(QudaError::NotUnitary);
        }
        Ok(self.register(Arc::new(cfg)))
    }

    /// Register an already-validated shared gauge field and select it —
    /// the path inversion-service workers use, so a field cached once is
    /// never copied or re-validated per worker.
    pub fn adopt_gauge(&mut self, cfg: Arc<GaugeConfig>) -> GaugeId {
        self.register(cfg)
    }

    fn register(&mut self, cfg: Arc<GaugeConfig>) -> GaugeId {
        let id = GaugeId(self.next_gauge_id);
        self.next_gauge_id += 1;
        self.gauges.push((id, cfg));
        self.current = Some(id);
        id
    }

    /// Make `id` the gauge field subsequent inversions run against.
    pub fn select_gauge(&mut self, id: GaugeId) -> Result<(), QudaError> {
        if !self.gauges.iter().any(|(g, _)| *g == id) {
            return Err(QudaError::UnknownGauge(id));
        }
        self.current = Some(id);
        Ok(())
    }

    /// Drop a registered gauge field — `freeGaugeQuda`. The context's
    /// reference goes away; [`Arc`] clones handed out by
    /// [`Quda::gauge_ref`] keep the field alive elsewhere. Freeing the
    /// selected field leaves the context with no selection.
    pub fn free_gauge(&mut self, id: GaugeId) -> Result<(), QudaError> {
        let i =
            self.gauges.iter().position(|(g, _)| *g == id).ok_or(QudaError::UnknownGauge(id))?;
        self.gauges.remove(i);
        if self.current == Some(id) {
            self.current = None;
        }
        Ok(())
    }

    /// A shared reference to a registered gauge field.
    pub fn gauge_ref(&self, id: GaugeId) -> Result<Arc<GaugeConfig>, QudaError> {
        self.gauges
            .iter()
            .find(|(g, _)| *g == id)
            .map(|(_, c)| Arc::clone(c))
            .ok_or(QudaError::UnknownGauge(id))
    }

    /// The currently selected gauge handle, if any.
    pub fn current_gauge(&self) -> Option<GaugeId> {
        self.current
    }

    fn selected(&self) -> Result<&Arc<GaugeConfig>, QudaError> {
        let id = self.current.ok_or(QudaError::NoGauge)?;
        self.gauges.iter().find(|(g, _)| *g == id).map(|(_, c)| c).ok_or(QudaError::NoGauge)
    }

    /// Average plaquette of the selected configuration.
    pub fn plaquette(&self) -> Result<f64, QudaError> {
        Ok(self.selected()?.average_plaquette())
    }

    /// Solve `M x = b` — `invertQuda`.
    ///
    /// Runs the *functional* parallel solve (thread ranks, real ghost
    /// exchanges, real mixed-precision arithmetic), independently verifies
    /// the solution against the dense host reference operator, and returns
    /// an [`InvertReport`]: the classic [`InvertStats`] (including the
    /// performance model's timing of the same run shape) plus the measured
    /// phase breakdown and communication health of this run, governed by
    /// [`QudaInvertParam::trace`].
    pub fn invert(
        &mut self,
        source: &HostSpinorField,
        param: &QudaInvertParam,
    ) -> Result<(HostSpinorField, InvertReport), QudaError> {
        let chaos = ChaosSpec {
            lockstep: param
                .lockstep
                .then(|| quda_comm::LockstepConfig::from_env().unwrap_or_default()),
            ..ChaosSpec::default()
        };
        self.invert_with_chaos(source, param, &chaos)
    }

    /// Solve `M x = bᵢ` for a batch of right-hand sides sharing the gauge
    /// field, operator, and solver controls — the API the inversion
    /// service batches onto (DESIGN.md §14).
    ///
    /// The batch runs as *one* blocked Krylov solve: fused multi-RHS
    /// Dslash sweeps read the gauge links once per sweep and exchange one
    /// set of face messages for the whole block. Each returned solution,
    /// iteration count, and residual is **bit-identical** to a standalone
    /// [`Quda::invert`] of that source (the batched-equivalence suite
    /// enforces this at every precision). A batch of one *is* exactly
    /// [`Quda::invert`]; batches above `quda_dirac::MAX_RHS_BATCH` are
    /// rejected with [`QudaError::BatchTooLarge`], and batches of two or
    /// more run the classic fail-fast driver, so they cannot be combined
    /// with [`QudaInvertParam::max_rank_deaths`] above `0`.
    pub fn invert_multi(
        &mut self,
        sources: &[HostSpinorField],
        param: &QudaInvertParam,
    ) -> Result<Vec<(HostSpinorField, InvertReport)>, QudaError> {
        let chaos = ChaosSpec {
            lockstep: param
                .lockstep
                .then(|| quda_comm::LockstepConfig::from_env().unwrap_or_default()),
            ..ChaosSpec::default()
        };
        self.invert_multi_with_chaos(sources, param, &chaos)
    }

    /// [`Quda::invert_multi`] under an explicit fault-injection policy.
    pub fn invert_multi_with_chaos(
        &mut self,
        sources: &[HostSpinorField],
        param: &QudaInvertParam,
        chaos: &ChaosSpec,
    ) -> Result<Vec<(HostSpinorField, InvertReport)>, QudaError> {
        match sources {
            [] => Ok(Vec::new()),
            [source] => Ok(vec![self.invert_with_chaos(source, param, chaos)?]),
            _ => self.invert_batch(sources, param, chaos),
        }
    }

    /// [`Quda::invert`] under an explicit fault-injection and timeout
    /// policy — the entry point chaos tests and resilience benchmarks
    /// drive. With [`QudaInvertParam::max_rank_deaths`] above `0` the solve
    /// runs elastically: injected rank deaths are survived by rolling back
    /// to the last checkpoint on a rebuilt world, and every recovery is
    /// reported in [`InvertReport::recovery`].
    pub fn invert_with_chaos(
        &mut self,
        source: &HostSpinorField,
        param: &QudaInvertParam,
        chaos: &ChaosSpec,
    ) -> Result<(HostSpinorField, InvertReport), QudaError> {
        let cfg = Arc::clone(self.selected()?);
        let (spec, wilson, mem) = self.solve_spec(&cfg, source, param)?;
        let policy = ElasticPolicy { max_rank_deaths: param.max_rank_deaths, chaos: chaos.clone() };
        let elastic = solve_full_parallel_elastic(&cfg, source, &spec, &policy, param.trace)
            .map_err(QudaError::Comm)?;
        let (solve, recovery) = (elastic.solve, elastic.recovery);
        let (x, result) = (solve.solution, solve.result);
        let stats = self.build_stats(&cfg, source, &x, &result, param, mem, &wilson);
        Ok((
            x,
            InvertReport {
                stats,
                phases: solve.trace.breakdown(),
                comm: solve.comm,
                trace: solve.trace,
                recovery,
                queue: QueueTelemetry::default(),
            },
        ))
    }

    /// The batch-of-two-or-more path behind [`Quda::invert_multi`]: one
    /// blocked solve, then a per-RHS verified report.
    fn invert_batch(
        &mut self,
        sources: &[HostSpinorField],
        param: &QudaInvertParam,
        chaos: &ChaosSpec,
    ) -> Result<Vec<(HostSpinorField, InvertReport)>, QudaError> {
        if sources.len() > quda_dirac::MAX_RHS_BATCH {
            return Err(QudaError::BatchTooLarge {
                requested: sources.len(),
                max: quda_dirac::MAX_RHS_BATCH,
            });
        }
        if param.max_rank_deaths > 0 {
            return Err(QudaError::BadPartition(
                "batched inversions run the classic fail-fast driver; retry failed batch \
                 members as fresh requests instead of max_rank_deaths > 0"
                    .to_owned(),
            ));
        }
        let cfg = Arc::clone(self.selected()?);
        let (spec, wilson, mem) = self.solve_spec(&cfg, &sources[0], param)?;
        for s in &sources[1..] {
            if s.dims != cfg.dims {
                return Err(QudaError::DimsMismatch);
            }
        }
        // `max_rank_deaths` above is a rank-uniform request parameter, not
        // the rank index, and this function runs on the driver thread before
        // any rank threads exist — every rank the call below spawns reaches
        // the collectives unconditionally.
        // quda-lint: allow(rank-branch-collective)
        let multi = solve_full_parallel_multi(&cfg, sources, &spec, chaos, param.trace)
            .map_err(QudaError::Comm)?;
        let mut out = Vec::with_capacity(sources.len());
        for ((x, result), source) in multi.solutions.into_iter().zip(multi.results).zip(sources) {
            let stats = self.build_stats(&cfg, source, &x, &result, param, mem, &wilson);
            out.push((
                x,
                InvertReport {
                    stats,
                    phases: multi.trace.breakdown(),
                    comm: multi.comm.clone(),
                    trace: multi.trace.clone(),
                    recovery: RecoveryReport::default(),
                    queue: QueueTelemetry::default(),
                },
            ));
        }
        Ok(out)
    }

    /// Validate source/partition/memory and build the solve spec shared by
    /// the single and batched paths.
    fn solve_spec(
        &self,
        cfg: &GaugeConfig,
        source: &HostSpinorField,
        param: &QudaInvertParam,
    ) -> Result<(ParallelSolveSpec, WilsonParams, usize), QudaError> {
        if source.dims != cfg.dims {
            return Err(QudaError::DimsMismatch);
        }
        let num_gpus = param.num_gpus.max(1);
        if cfg.dims.t % num_gpus != 0 {
            return Err(QudaError::BadPartition(format!(
                "T={} not divisible by {num_gpus} GPUs",
                cfg.dims.t
            )));
        }
        if (cfg.dims.t / num_gpus) % 2 != 0 || cfg.dims.t / num_gpus < 2 {
            return Err(QudaError::BadPartition(format!(
                "local T extent {} must be even and >= 2",
                cfg.dims.t / num_gpus
            )));
        }
        let mem = solver_memory_per_gpu(cfg.dims, num_gpus, param.mode);
        let capacity = {
            let dev = quda_gpusim::memory::DeviceMemory::new(self.device.gpu.ram_bytes());
            dev.capacity()
        };
        if self.enforce_memory && mem > capacity {
            return Err(QudaError::OutOfDeviceMemory { required: mem, available: capacity });
        }
        let wilson = WilsonParams { mass: param.mass, c_sw: param.c_sw };
        let spec = ParallelSolveSpec {
            part: TimePartition::new(cfg.dims, num_gpus),
            wilson,
            mode: param.mode,
            strategy: param.strategy,
            solver: param.solver,
            params: SolverParams { tol: param.tol, max_iter: param.max_iter, delta: param.delta },
        };
        Ok((spec, wilson, mem))
    }

    /// Independently verify one solution and fold in the performance
    /// model's view of the same run shape.
    #[allow(clippy::too_many_arguments)]
    fn build_stats(
        &self,
        cfg: &GaugeConfig,
        source: &HostSpinorField,
        x: &HostSpinorField,
        result: &quda_solvers::params::SolveResult,
        param: &QudaInvertParam,
        mem: usize,
        wilson: &WilsonParams,
    ) -> InvertStats {
        let true_residual = verify_full_solution(cfg, wilson, x, source);
        // Performance model of this run shape on the simulated cluster.
        let num_gpus = param.num_gpus.max(1);
        let mut perf_in = PerfInput::paper(cfg.dims, num_gpus, param.mode, param.strategy);
        perf_in.gpu = self.device.gpu;
        perf_in.numa = self.device.numa;
        let report = evaluate(&perf_in);
        let iterations = result.iterations.max(1);
        let modeled_seconds = report.iteration_time_s * iterations as f64;
        InvertStats {
            converged: result.converged,
            iterations: result.iterations,
            matvecs: result.matvecs,
            reliable_updates: result.reliable_updates,
            solver_residual: result.final_residual,
            true_residual,
            effective_flops: result.total_flops(),
            modeled_seconds,
            modeled_gflops: report.sustained_gflops,
            memory_per_gpu: mem,
            recoveries: result.recoveries,
            comm_recoveries: result.comm_recoveries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quda_fields::gauge_gen::{random_spinor_field, weak_field};
    use quda_lattice::geometry::{Coord, LatticeDims};

    fn dims() -> LatticeDims {
        LatticeDims::new(4, 4, 2, 8)
    }

    fn ctx_with_gauge() -> Quda {
        let mut q = Quda::new(2).unwrap();
        q.load_gauge(weak_field(dims(), 0.15, 7)).unwrap();
        q
    }

    #[test]
    fn zero_gpus_is_an_error_not_a_panic() {
        assert!(matches!(Quda::new(0), Err(QudaError::BadPartition(_))));
        assert_eq!(Quda::new(1).unwrap().num_gpus(), 1);
    }

    #[test]
    fn invert_without_gauge_fails() {
        let mut q = Quda::new(1).unwrap();
        let b = HostSpinorField::zero(dims());
        let p = QudaInvertParam::paper_mode(PrecisionMode::Double, 1);
        assert!(matches!(q.invert(&b, &p), Err(QudaError::NoGauge)));
    }

    #[test]
    fn non_unitary_gauge_rejected() {
        let mut q = Quda::new(1).unwrap();
        let mut cfg = GaugeConfig::unit(dims());
        cfg.links[0].m[0][0].re = 5.0;
        assert_eq!(q.load_gauge(cfg), Err(QudaError::NotUnitary));
    }

    #[test]
    fn bad_partition_rejected() {
        let mut q = ctx_with_gauge();
        let b = random_spinor_field(dims(), 1);
        let mut p = QudaInvertParam::paper_mode(PrecisionMode::Double, 2);
        p.num_gpus = 3; // 8 % 3 != 0
        assert!(matches!(q.invert(&b, &p), Err(QudaError::BadPartition(_))));
        p.num_gpus = 4; // local T = 2: fine
        p.tol = 1e-8;
        p.mass = 0.3;
        assert!(q.invert(&b, &p).is_ok());
    }

    #[test]
    fn dims_mismatch_rejected() {
        let mut q = ctx_with_gauge();
        let b = HostSpinorField::zero(LatticeDims::new(4, 4, 4, 8));
        let p = QudaInvertParam::paper_mode(PrecisionMode::Double, 2);
        assert!(matches!(q.invert(&b, &p), Err(QudaError::DimsMismatch)));
    }

    #[test]
    fn point_source_inversion_verifies() {
        let mut q = ctx_with_gauge();
        let b = HostSpinorField::point_source(dims(), Coord::new(1, 0, 1, 2), 1, 2);
        let mut p = QudaInvertParam::paper_mode(PrecisionMode::Double, 2);
        p.mass = 0.3;
        p.tol = 1e-10;
        let (x, stats) = q.invert(&b, &p).unwrap();
        assert!(stats.converged);
        assert!(stats.true_residual < 1e-9, "true residual {}", stats.true_residual);
        assert!(x.norm_sqr() > 0.0);
        assert!(stats.modeled_gflops > 0.0);
        assert!(stats.modeled_seconds > 0.0);
        assert!(stats.memory_per_gpu > 0);
    }

    #[test]
    fn mixed_mode_through_interface() {
        let mut q = ctx_with_gauge();
        let b = random_spinor_field(dims(), 3);
        let mut p = QudaInvertParam::paper_mode(PrecisionMode::SingleHalf, 2);
        p.mass = 0.3;
        p.tol = 1e-6;
        let (_, stats) = q.invert(&b, &p).unwrap();
        assert!(stats.converged, "residual {}", stats.true_residual);
        assert!(stats.true_residual < 1e-5);
    }

    #[test]
    fn memory_enforcement_rejects_oversized_problems() {
        // A full 32³×256 mixed-precision problem on one GTX 285 must OOM.
        let q = Quda::new(1).unwrap().with_memory_enforcement(true);
        assert!(q.enforce_memory);
        // Don't actually allocate the big lattice: just check the gate.
        let big = LatticeDims::spatial_cube(32, 256);
        let need = solver_memory_per_gpu(big, 1, PrecisionMode::SingleHalf);
        assert!(need > quda_gpusim::cards::gtx285().ram_bytes());
    }

    #[test]
    fn plaquette_reported() {
        let q = ctx_with_gauge();
        let p = q.plaquette().unwrap();
        assert!(p > 0.9 && p <= 1.0);
    }

    #[test]
    fn free_gauge_clears_state() {
        let mut q = ctx_with_gauge();
        let id = q.current_gauge().unwrap();
        q.free_gauge(id).unwrap();
        assert!(matches!(q.plaquette(), Err(QudaError::NoGauge)));
        assert_eq!(q.free_gauge(id), Err(QudaError::UnknownGauge(id)));
        assert_eq!(q.select_gauge(id), Err(QudaError::UnknownGauge(id)));
    }

    #[test]
    fn gauge_handles_select_and_outlive_free() {
        let mut q = Quda::new(2).unwrap();
        let a = q.load_gauge(weak_field(dims(), 0.15, 7)).unwrap();
        let b = q.load_gauge(weak_field(dims(), 0.05, 8)).unwrap();
        assert_ne!(a, b);
        // Loading selects the newest; both stay registered.
        assert_eq!(q.current_gauge(), Some(b));
        let plaq_b = q.plaquette().unwrap();
        q.select_gauge(a).unwrap();
        let plaq_a = q.plaquette().unwrap();
        assert_ne!(plaq_a, plaq_b);
        // A handed-out Arc survives the context freeing its reference.
        let held = q.gauge_ref(a).unwrap();
        q.free_gauge(a).unwrap();
        assert!(held.average_plaquette() > 0.0);
        assert!(matches!(q.gauge_ref(a), Err(QudaError::UnknownGauge(_))));
        // Freeing the selected gauge cleared the selection.
        assert!(matches!(q.plaquette(), Err(QudaError::NoGauge)));
        q.select_gauge(b).unwrap();
        assert_eq!(q.plaquette().unwrap(), plaq_b);
    }

    #[test]
    fn adopt_gauge_skips_validation_and_shares() {
        let cfg = std::sync::Arc::new(weak_field(dims(), 0.15, 7));
        let mut q = Quda::new(2).unwrap();
        let id = q.adopt_gauge(std::sync::Arc::clone(&cfg));
        assert_eq!(q.current_gauge(), Some(id));
        // No copy was made: the registry holds the same allocation.
        assert!(std::sync::Arc::ptr_eq(&q.gauge_ref(id).unwrap(), &cfg));
    }

    #[test]
    fn invert_multi_trivial_batches() {
        let mut q = ctx_with_gauge();
        let p = QudaInvertParam::paper_mode(PrecisionMode::Double, 2);
        assert!(q.invert_multi(&[], &p).unwrap().is_empty());
        let too_many: Vec<HostSpinorField> =
            (0..quda_dirac::MAX_RHS_BATCH + 1).map(|_| HostSpinorField::zero(dims())).collect();
        assert!(matches!(
            q.invert_multi(&too_many, &p),
            Err(QudaError::BatchTooLarge { requested: 9, max: 8 })
        ));
    }

    #[test]
    fn invert_multi_matches_single_invert() {
        let mut q = ctx_with_gauge();
        let p = QudaInvertParam::paper_mode(PrecisionMode::Double, 2)
            .with_mass(0.3)
            .with_tol(1e-10)
            .with_num_rhs(2);
        let bs: Vec<HostSpinorField> =
            (0..2).map(|k| random_spinor_field(dims(), 30 + k)).collect();
        let batched = q.invert_multi(&bs, &p).unwrap();
        assert_eq!(batched.len(), 2);
        for ((x, rep), b) in batched.iter().zip(&bs) {
            let (x_solo, rep_solo) = q.invert(b, &p).unwrap();
            assert!(rep.converged);
            assert_eq!(rep.iterations, rep_solo.iterations);
            assert_eq!(x.max_site_dist(&x_solo), 0.0);
            // Direct inversions carry default queue telemetry.
            assert_eq!(rep.queue.batch_size, 0);
        }
    }

    #[test]
    fn batched_elastic_combination_rejected() {
        let mut q = ctx_with_gauge();
        let p = QudaInvertParam::paper_mode(PrecisionMode::Double, 2).with_max_rank_deaths(1);
        let bs: Vec<HostSpinorField> =
            (0..2).map(|k| random_spinor_field(dims(), 40 + k)).collect();
        assert!(matches!(q.invert_multi(&bs, &p), Err(QudaError::BadPartition(_))));
    }

    #[test]
    fn cgnr_solver_through_interface() {
        let mut q = ctx_with_gauge();
        let b = random_spinor_field(dims(), 9);
        let mut p = QudaInvertParam::paper_mode(PrecisionMode::Double, 2);
        p.solver = SolverKind::Cgnr;
        p.mass = 0.3;
        p.tol = 1e-9;
        let (_, stats) = q.invert(&b, &p).unwrap();
        assert!(stats.converged);
        assert!(stats.true_residual < 1e-7);
    }
}
