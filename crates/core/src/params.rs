//! Parameter structs of the public interface, mirroring QUDA's
//! `QudaGaugeParam` / `QudaInvertParam` C structs in Rust style.

use quda_gpusim::cards::GpuSpec;
use quda_gpusim::transfer::NumaPlacement;
use quda_lattice::geometry::LatticeDims;
use quda_multigpu::driver::SolverKind;
use quda_multigpu::rank_op::CommStrategy;
use quda_multigpu::{CommHealth, PrecisionMode, RecoveryReport};
use quda_obs::{PhaseBreakdown, Trace, TraceConfig};
use quda_solvers::params::SolverParams;

/// Gauge-loading parameters.
#[derive(Copy, Clone, Debug)]
pub struct QudaGaugeParam {
    /// Lattice extents.
    pub dims: LatticeDims,
    /// Whether to validate SU(3)-ness of every link on load.
    pub check_unitarity: bool,
    /// Unitarity tolerance.
    pub unitarity_tol: f64,
}

impl QudaGaugeParam {
    /// Defaults for a given lattice.
    pub fn new(dims: LatticeDims) -> Self {
        QudaGaugeParam { dims, check_unitarity: true, unitarity_tol: 1e-8 }
    }
}

/// Inversion parameters — the knobs Section VII-A reports.
#[derive(Copy, Clone, Debug)]
pub struct QudaInvertParam {
    /// Quark mass `m`.
    pub mass: f64,
    /// Clover coefficient `c_sw` (0 = plain Wilson).
    pub c_sw: f64,
    /// Relative residual target.
    pub tol: f64,
    /// Iteration cap.
    pub max_iter: usize,
    /// Reliable-update δ.
    pub delta: f64,
    /// Precision mode.
    pub mode: PrecisionMode,
    /// Krylov method.
    pub solver: SolverKind,
    /// Face-exchange strategy.
    pub strategy: CommStrategy,
    /// GPUs to parallelize over (T must divide evenly).
    pub num_gpus: usize,
    /// How much the inversion records about its own phases
    /// ([`TraceConfig::Off`] by default — tracing costs nothing unless
    /// asked for).
    pub trace: TraceConfig,
    /// Run the solve under the comm lockstep sanitizer, which turns a
    /// cross-rank collective divergence into a located
    /// `CommError::LockstepDivergence` instead of a hang. Defaults to the
    /// `QUDA_LOCKSTEP` environment variable (off when unset).
    pub lockstep: bool,
    /// Rank deaths the inversion may survive by checkpointing at
    /// reliable-update boundaries and resuming on a rebuilt world
    /// (DESIGN.md §12). The default `0` is bit-identical to the classic
    /// fail-fast driver: no checkpoints, first death aborts.
    pub max_rank_deaths: usize,
    /// Right-hand sides the caller intends to solve together. A hint for
    /// the inversion service's batcher (capped by the library's
    /// `MAX_RHS_BATCH`); direct [`invert_multi`](crate::Quda::invert_multi)
    /// calls take the batch size from the source slice instead.
    pub num_rhs: usize,
    /// Tenant identity for service-side admission control and weighted-fair
    /// scheduling (DESIGN.md §14). Ignored by direct inversions.
    pub tenant: u32,
    /// Deadline for service-side scheduling: a queued request whose wait
    /// exceeds this is rejected rather than dispatched. `None` (the
    /// default) never expires. Ignored by direct inversions.
    pub deadline: Option<std::time::Duration>,
}

impl QudaInvertParam {
    /// The paper's production settings for a precision mode.
    pub fn paper_mode(mode: PrecisionMode, num_gpus: usize) -> Self {
        let sp = SolverParams::paper_defaults(mode.name());
        QudaInvertParam {
            mass: 0.1,
            c_sw: 1.0,
            tol: sp.tol,
            max_iter: sp.max_iter,
            delta: sp.delta,
            mode,
            solver: SolverKind::BiCgStab,
            strategy: CommStrategy::Overlap,
            num_gpus,
            trace: TraceConfig::Off,
            lockstep: quda_comm::LockstepConfig::from_env().is_some(),
            max_rank_deaths: 0,
            num_rhs: 1,
            tenant: 0,
            deadline: None,
        }
    }

    /// Set the quark mass.
    pub fn with_mass(mut self, mass: f64) -> Self {
        self.mass = mass;
        self
    }

    /// Set the relative residual target.
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Select the Krylov method.
    pub fn with_solver(mut self, solver: SolverKind) -> Self {
        self.solver = solver;
        self
    }

    /// Select the face-exchange strategy.
    pub fn with_strategy(mut self, strategy: CommStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Select how much the inversion traces itself.
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Turn the comm lockstep sanitizer on or off for this inversion.
    pub fn with_lockstep(mut self, lockstep: bool) -> Self {
        self.lockstep = lockstep;
        self
    }

    /// Allow the inversion to survive up to `n` rank deaths by resuming
    /// from checkpoints on a rebuilt world.
    pub fn with_max_rank_deaths(mut self, n: usize) -> Self {
        self.max_rank_deaths = n;
        self
    }

    /// Hint how many right-hand sides the caller will batch together.
    pub fn with_num_rhs(mut self, n: usize) -> Self {
        self.num_rhs = n;
        self
    }

    /// Tag requests with a tenant identity for the inversion service's
    /// admission control and fair scheduler.
    pub fn with_tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }

    /// Give queued service requests a deadline: expire rather than solve
    /// once the queue wait exceeds it.
    pub fn with_deadline(mut self, deadline: std::time::Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Convert to the solver-layer parameter struct.
    pub fn solver_params(&self) -> SolverParams {
        SolverParams { tol: self.tol, max_iter: self.max_iter, delta: self.delta }
    }
}

/// Statistics returned by an inversion: functional results plus the
/// calibrated performance model's view of the same run on the "9g" cluster.
#[derive(Clone, Debug)]
pub struct InvertStats {
    /// Whether the residual target was met.
    pub converged: bool,
    /// Krylov iterations (sloppy precision for mixed modes).
    pub iterations: usize,
    /// Operator applications.
    pub matvecs: u64,
    /// Reliable updates performed.
    pub reliable_updates: u64,
    /// Solver-reported relative residual of the preconditioned system.
    pub solver_residual: f64,
    /// Independently verified relative residual of the *full* system,
    /// computed with the dense host reference operator.
    pub true_residual: f64,
    /// Effective flops of the solve (paper counting).
    pub effective_flops: u64,
    /// Modeled wall time of this solve on `num_gpus` GTX 285s (s).
    pub modeled_seconds: f64,
    /// Modeled sustained effective Gflops (aggregate).
    pub modeled_gflops: f64,
    /// Modeled device memory per GPU (bytes).
    pub memory_per_gpu: usize,
    /// Solver checkpoint rollbacks performed after detected corruption.
    pub recoveries: u64,
    /// Messages recovered by link-level retransmission across all ranks.
    pub comm_recoveries: u64,
}

/// Per-request queueing telemetry attached by the inversion service
/// (DESIGN.md §14): where the request waited, how it was batched, and how
/// deep its tenant's queue was at submission. Direct inversions leave it
/// at the default (zero wait, batch of one).
#[derive(Clone, Copy, Debug, Default)]
pub struct QueueTelemetry {
    /// Tenant the request was accounted to.
    pub tenant: u32,
    /// Time spent queued before the batch was dispatched.
    pub queue_wait: std::time::Duration,
    /// Number of right-hand sides in the dispatched batch (0 for direct
    /// inversions that never crossed the service; the service always
    /// reports at least 1).
    pub batch_size: usize,
    /// The tenant's queue depth observed at submission, *including* this
    /// request — backpressure made visible.
    pub queue_depth: usize,
}

/// Everything an inversion reports: the classic [`InvertStats`] plus the
/// *measured* per-phase breakdown, the communication-health record, and
/// (under [`TraceConfig::Full`]) the raw span trace.
///
/// Dereferences to [`InvertStats`], so existing `stats.converged`-style
/// call sites keep working on the report.
#[derive(Clone, Debug)]
pub struct InvertReport {
    /// Functional and modeled statistics (the pre-tracing report).
    pub stats: InvertStats,
    /// Measured wall-time breakdown by phase, aggregated over ranks.
    /// Empty (zero phases) when tracing was [`TraceConfig::Off`].
    pub phases: PhaseBreakdown,
    /// World-wide communication-health summary (always collected — the
    /// counters are kept by the communicators regardless of tracing).
    pub comm: CommHealth,
    /// The raw recorded trace; individual spans are only retained under
    /// [`TraceConfig::Full`].
    pub trace: Trace,
    /// Elastic-recovery telemetry: every survived rank death (with its
    /// recovery latency and resume epoch) plus checkpoint overhead
    /// counters. Empty unless [`QudaInvertParam::max_rank_deaths`] was
    /// raised above `0` *and* checkpoints/deaths actually occurred.
    pub recovery: RecoveryReport,
    /// Queueing telemetry stamped by the inversion service; default for
    /// direct inversions.
    pub queue: QueueTelemetry,
}

impl std::ops::Deref for InvertReport {
    type Target = InvertStats;
    fn deref(&self) -> &InvertStats {
        &self.stats
    }
}

impl InvertReport {
    /// Export the recorded spans in Chrome trace-event JSON (load via
    /// `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)). Returns
    /// an empty-but-valid document unless the solve ran under
    /// [`TraceConfig::Full`].
    pub fn to_chrome_trace(&self) -> String {
        self.trace.to_chrome_trace()
    }
}

/// Hardware context for the performance model.
#[derive(Copy, Clone, Debug)]
pub struct QudaDeviceParam {
    /// Card model (Table I).
    pub gpu: GpuSpec,
    /// Process placement (Section VII-D).
    pub numa: NumaPlacement,
}

impl Default for QudaDeviceParam {
    fn default() -> Self {
        QudaDeviceParam { gpu: quda_gpusim::cards::gtx285(), numa: NumaPlacement::Good }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mode_settings() {
        let p = QudaInvertParam::paper_mode(PrecisionMode::SingleHalf, 8);
        assert_eq!(p.tol, 1e-7);
        assert_eq!(p.delta, 1e-1);
        assert_eq!(p.num_gpus, 8);
        let d = QudaInvertParam::paper_mode(PrecisionMode::Double, 4);
        assert_eq!(d.tol, 1e-14);
        assert_eq!(d.delta, 1e-5);
    }

    #[test]
    fn default_device_is_gtx285() {
        let d = QudaDeviceParam::default();
        assert_eq!(d.gpu.name, "GeForce GTX 285");
    }
}
