//! The γ5-hermiticity of the Wilson-clover matrix: `M† = γ5 M γ5`.
//!
//! This is the fundamental symmetry that makes CGNE/CGNR applicable and
//! underlies the stability of BiCGstab for this matrix (Section II). It is
//! a stringent end-to-end check: it couples the gamma conventions, the
//! hopping term's link/adjoint placement, and the clover term's
//! Hermiticity in one identity.

use quda_dirac::reference::{apply_wilson_clover_host, WilsonParams};
use quda_fields::clover_build::clover_both_parities;
use quda_fields::gauge_gen::{random_spinor_field, weak_field};
use quda_fields::host::HostSpinorField;
use quda_lattice::geometry::{LatticeDims, Parity};
use quda_math::clover::CloverSite;
use quda_math::complex::C64;
use quda_math::gamma::{mat4_apply, GammaBasis, SpinBasis};

fn clover_by_lex(cfg: &quda_fields::host::GaugeConfig, c_sw: f64) -> Vec<CloverSite<f64>> {
    let d = cfg.dims;
    let both = clover_both_parities(cfg, c_sw);
    let mut out = vec![CloverSite::identity(); d.volume()];
    for p in [Parity::Even, Parity::Odd] {
        for cb in 0..d.half_volume() {
            out[d.lex_index(d.cb_coord(p, cb))] = both[p.as_usize()][cb];
        }
    }
    out
}

fn apply_gamma5(basis: &SpinBasis, f: &HostSpinorField) -> HostSpinorField {
    let mut out = HostSpinorField::zero(f.dims);
    for (i, sp) in f.data.iter().enumerate() {
        out.data[i] = mat4_apply(&basis.gamma5, sp);
    }
    out
}

fn global_dot(a: &HostSpinorField, b: &HostSpinorField) -> C64 {
    let mut acc = C64::zero();
    for i in 0..a.dims.volume() {
        acc += a.data[i].dot(&b.data[i]);
    }
    acc
}

#[test]
fn gamma5_hermiticity_of_wilson_clover() {
    // <x, γ5 M γ5 y> == <M x, y> for random x, y on a noisy field,
    // with and without the clover term.
    let d = LatticeDims::new(4, 4, 4, 4);
    let cfg = weak_field(d, 0.2, 123);
    let basis = SpinBasis::new(GammaBasis::NonRelativistic);
    for c_sw in [0.0, 1.3] {
        let params = WilsonParams { mass: 0.17, c_sw };
        let clover = clover_by_lex(&cfg, c_sw);
        let x = random_spinor_field(d, 1);
        let y = random_spinor_field(d, 2);
        // lhs = <x, γ5 M γ5 y>.
        let g5y = apply_gamma5(&basis, &y);
        let mg5y = apply_wilson_clover_host(&cfg, &clover, &params, &g5y);
        let g5mg5y = apply_gamma5(&basis, &mg5y);
        let lhs = global_dot(&x, &g5mg5y);
        // rhs = <M x, y>.
        let mx = apply_wilson_clover_host(&cfg, &clover, &params, &x);
        let rhs = global_dot(&mx, &y);
        let scale = lhs.norm_sqr().sqrt().max(1.0);
        assert!(
            (lhs.re - rhs.re).abs() < 1e-10 * scale && (lhs.im - rhs.im).abs() < 1e-10 * scale,
            "γ5-hermiticity violated at c_sw={c_sw}: lhs={lhs:?} rhs={rhs:?}"
        );
    }
}

#[test]
fn gamma5_squares_to_identity_in_both_bases() {
    for b in [GammaBasis::DeGrandRossi, GammaBasis::NonRelativistic] {
        let basis = SpinBasis::new(b);
        let f = random_spinor_field(LatticeDims::new(2, 2, 2, 2), 9);
        let twice = apply_gamma5(&basis, &apply_gamma5(&basis, &f));
        assert!(twice.max_site_dist(&f) < 1e-12);
    }
}

#[test]
fn gamma5_anticommutes_with_all_gammas() {
    for b in [GammaBasis::DeGrandRossi, GammaBasis::NonRelativistic] {
        let basis = SpinBasis::new(b);
        for mu in 0..4 {
            let anti = quda_math::gamma::mat4_add(
                &quda_math::gamma::mat4_mul(&basis.gamma5, &basis.gamma[mu]),
                &quda_math::gamma::mat4_mul(&basis.gamma[mu], &basis.gamma5),
            );
            assert!(
                quda_math::gamma::mat4_max_diff(&anti, &quda_math::gamma::mat4_zero()) < 1e-12,
                "γ5 must anticommute with γ{mu} in {b:?}"
            );
        }
    }
}

#[test]
fn gamma5_m_gamma5_spectrum_is_conjugate() {
    // A weaker but global statement: ‖M x‖ = ‖γ5 M γ5 x‖... actually
    // ‖M† x‖ = ‖γ5 M γ5 x‖, and since ‖M† x‖² = <x, M M† x> while
    // ‖M x‖² = <x, M† M x>, check the traces agree when summed over a
    // basis sample (M M† and M† M share their spectrum).
    let d = LatticeDims::new(2, 2, 2, 4);
    let cfg = weak_field(d, 0.25, 321);
    let basis = SpinBasis::new(GammaBasis::NonRelativistic);
    let params = WilsonParams { mass: 0.3, c_sw: 1.0 };
    let clover = clover_by_lex(&cfg, 1.0);
    let mut sum_m = 0.0;
    let mut sum_g5 = 0.0;
    for seed in 0..8 {
        let x = random_spinor_field(d, 1000 + seed);
        let mx = apply_wilson_clover_host(&cfg, &clover, &params, &x);
        sum_m += mx.norm_sqr() / x.norm_sqr();
        let g5x = apply_gamma5(&basis, &x);
        let mg5x = apply_wilson_clover_host(&cfg, &clover, &params, &g5x);
        let g5mg5x = apply_gamma5(&basis, &mg5x);
        sum_g5 += g5mg5x.norm_sqr() / x.norm_sqr();
    }
    // γ5 is unitary, so the Rayleigh-quotient samples of M and γ5Mγ5 = M†
    // must have comparable magnitude (they share singular values).
    assert!((sum_m - sum_g5).abs() < 0.2 * sum_m, "{sum_m} vs {sum_g5}");
}
