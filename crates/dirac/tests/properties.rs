//! Property-based tests of the Dirac operator: linearity, adjointness,
//! locality, and agreement between the optimized and reference paths on
//! randomized gauge fields and sources.

use proptest::prelude::*;
use quda_dirac::{WilsonCloverOp, WilsonParams};
use quda_fields::gauge_gen::{random_spinor_field, weak_field};
use quda_fields::precision::Double;
use quda_lattice::geometry::{LatticeDims, Parity};
use quda_math::complex::C64;

fn dims() -> LatticeDims {
    LatticeDims::new(4, 4, 2, 4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn matpc_is_linear(seed in 0u64..500, a_re in -2.0f64..2.0, a_im in -2.0f64..2.0) {
        let d = dims();
        let cfg = weak_field(d, 0.15, seed);
        let op = WilsonCloverOp::<Double>::from_config(&cfg, WilsonParams { mass: 0.2, c_sw: 1.0 });
        let hx = random_spinor_field(d, seed + 1);
        let hy = random_spinor_field(d, seed + 2);
        let mut x = op.alloc_spinor();
        x.upload(&hx, Parity::Odd);
        let mut y = op.alloc_spinor();
        y.upload(&hy, Parity::Odd);
        let a = C64::new(a_re, a_im);
        // z = a x + y.
        let mut z = op.alloc_spinor();
        for cb in 0..z.sites() {
            let v = x.get(cb).scale(a) + y.get(cb);
            z.set(cb, &v);
        }
        let (mut t1, mut t2) = (op.alloc_spinor(), op.alloc_spinor());
        let mut mx = op.alloc_spinor();
        op.apply_matpc(&mut mx, &x, &mut t1, &mut t2, false);
        let mut my = op.alloc_spinor();
        op.apply_matpc(&mut my, &y, &mut t1, &mut t2, false);
        let mut mz = op.alloc_spinor();
        op.apply_matpc(&mut mz, &z, &mut t1, &mut t2, false);
        for cb in 0..z.sites() {
            let expect = mx.get(cb).scale(a) + my.get(cb);
            prop_assert!((mz.get(cb) - expect).norm_sqr() < 1e-18);
        }
    }

    #[test]
    fn matpc_adjoint_identity(seed in 0u64..500) {
        let d = dims();
        let cfg = weak_field(d, 0.2, seed);
        let op = WilsonCloverOp::<Double>::from_config(&cfg, WilsonParams { mass: 0.15, c_sw: 1.0 });
        let hx = random_spinor_field(d, seed + 3);
        let hy = random_spinor_field(d, seed + 4);
        let mut x = op.alloc_spinor();
        x.upload(&hx, Parity::Odd);
        let mut y = op.alloc_spinor();
        y.upload(&hy, Parity::Odd);
        let (mut t1, mut t2) = (op.alloc_spinor(), op.alloc_spinor());
        let mut my = op.alloc_spinor();
        op.apply_matpc(&mut my, &y, &mut t1, &mut t2, false);
        let mut mdx = op.alloc_spinor();
        op.apply_matpc(&mut mdx, &x, &mut t1, &mut t2, true);
        let mut lhs = C64::zero();
        let mut rhs = C64::zero();
        for cb in 0..x.sites() {
            lhs += x.get(cb).dot(&my.get(cb));
            rhs += mdx.get(cb).dot(&y.get(cb));
        }
        prop_assert!((lhs.re - rhs.re).abs() < 1e-8 * lhs.re.abs().max(1.0));
        prop_assert!((lhs.im - rhs.im).abs() < 1e-8);
    }

    #[test]
    fn free_field_matpc_has_flat_spectrum_action(mass in 0.05f64..1.0) {
        // On the unit gauge field with zero clover, M̂ acting on a constant
        // odd-parity spinor gives a computable eigenvalue:
        // D_eo (const) = 8·const, so
        // M̂ = (4+m) − ¼·8·(1/(4+m))·8 ... for the constant mode:
        // M̂ c = (4+m)c − 16 c/(4+m).
        let d = dims();
        let cfg = quda_fields::host::GaugeConfig::unit(d);
        let op = WilsonCloverOp::<Double>::from_config(&cfg, WilsonParams { mass, c_sw: 0.0 });
        let mut x = op.alloc_spinor();
        let mut sp = quda_math::spinor::Spinor::zero();
        sp.s[0].c[0] = C64::new(1.0, 0.0);
        sp.s[2].c[1] = C64::new(0.5, -0.5);
        for cb in 0..x.sites() {
            x.set(cb, &sp);
        }
        let (mut t1, mut t2) = (op.alloc_spinor(), op.alloc_spinor());
        let mut mx = op.alloc_spinor();
        op.apply_matpc(&mut mx, &x, &mut t1, &mut t2, false);
        let shift = 4.0 + mass;
        let lambda = shift - 16.0 / shift;
        for cb in 0..x.sites() {
            let expect = sp.scale_re(lambda);
            prop_assert!((mx.get(cb) - expect).norm_sqr() < 1e-18);
        }
    }

    #[test]
    fn clover_term_shifts_eigenvalues(seed in 0u64..200) {
        // Turning on c_sw changes the operator (on a non-trivial field).
        let d = dims();
        let cfg = weak_field(d, 0.2, seed);
        let with = WilsonCloverOp::<Double>::from_config(&cfg, WilsonParams { mass: 0.2, c_sw: 1.5 });
        let without = WilsonCloverOp::<Double>::from_config(&cfg, WilsonParams { mass: 0.2, c_sw: 0.0 });
        let hx = random_spinor_field(d, seed + 9);
        let mut x = with.alloc_spinor();
        x.upload(&hx, Parity::Odd);
        let (mut t1, mut t2) = (with.alloc_spinor(), with.alloc_spinor());
        let mut a = with.alloc_spinor();
        with.apply_matpc(&mut a, &x, &mut t1, &mut t2, false);
        let mut b = without.alloc_spinor();
        without.apply_matpc(&mut b, &x, &mut t1, &mut t2, false);
        let mut diff = 0.0;
        for cb in 0..x.sites() {
            diff += (a.get(cb) - b.get(cb)).norm_sqr();
        }
        prop_assert!(diff > 1e-10, "clover term had no effect");
    }
}
