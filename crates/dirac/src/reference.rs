//! Dense reference implementation of the Wilson-clover operator.
//!
//! This path deliberately shares *nothing* with the optimized kernels: it
//! uses natural site ordering, dense 4×4 spin projectors, full 3×3 links,
//! and f64 throughout. It exists so the layout-aware, projector-trick,
//! precision-truncated device kernels have an independent ground truth.
//!
//! Convention: spinor fields are expressed in the **non-relativistic**
//! gamma basis (QUDA's internal basis); the clover term is packed in chiral
//! blocks and applied through the basis map.

use quda_fields::host::{GaugeConfig, HostSpinorField};
use quda_math::clover::{CloverBasisMap, CloverSite};
use quda_math::gamma::{mat4_apply, GammaBasis, SpinBasis};
use quda_math::spinor::Spinor;

/// Parameters of the Wilson-clover matrix (Eq. 2).
#[derive(Copy, Clone, Debug)]
pub struct WilsonParams {
    /// Quark mass parameter `m`.
    pub mass: f64,
    /// Sheikholeslami-Wohlert coefficient `c_sw` (0 disables the clover
    /// term, giving plain Wilson).
    pub c_sw: f64,
}

impl WilsonParams {
    /// The diagonal shift `4 + m`.
    pub fn diag_shift(&self) -> f64 {
        4.0 + self.mass
    }
}

/// Apply the hopping term `D ψ` (Eq. 2, the sum only) at every site:
/// `(Dψ)(x) = Σ_μ P−μ U_μ(x) ψ(x+μ) + P+μ U†_μ(x−μ) ψ(x−μ)`.
pub fn apply_hopping_host(
    cfg: &GaugeConfig,
    basis: &SpinBasis,
    psi: &HostSpinorField,
) -> HostSpinorField {
    assert_eq!(cfg.dims, psi.dims);
    let dims = cfg.dims;
    let mut out = HostSpinorField::zero(dims);
    for c in dims.coords() {
        let mut acc = Spinor::zero();
        for mu in 0..4 {
            // Forward: P−μ ⊗ U_μ(x) ψ(x+μ).
            let (cf, _) = dims.neighbor(c, mu, true);
            let projected = mat4_apply(&basis.proj[mu][0].dense, psi.get(cf));
            let mut hop = Spinor::zero();
            for s in 0..4 {
                hop.s[s] = cfg.link(c, mu).mul_vec(&projected.s[s]);
            }
            acc += hop;
            // Backward: P+μ ⊗ U†_μ(x−μ) ψ(x−μ).
            let (cb, _) = dims.neighbor(c, mu, false);
            let projected = mat4_apply(&basis.proj[mu][1].dense, psi.get(cb));
            let mut hop = Spinor::zero();
            for s in 0..4 {
                hop.s[s] = cfg.link(cb, mu).adj_mul_vec(&projected.s[s]);
            }
            acc += hop;
        }
        *out.get_mut(c) = acc;
    }
    out
}

/// Apply the dagger of the hopping term (projector signs swapped,
/// link/adjoint roles swapped).
pub fn apply_hopping_dagger_host(
    cfg: &GaugeConfig,
    basis: &SpinBasis,
    psi: &HostSpinorField,
) -> HostSpinorField {
    assert_eq!(cfg.dims, psi.dims);
    let dims = cfg.dims;
    let mut out = HostSpinorField::zero(dims);
    for c in dims.coords() {
        let mut acc = Spinor::zero();
        for mu in 0..4 {
            // Forward: P+μ ⊗ U_μ(x) ψ(x+μ).
            let (cf, _) = dims.neighbor(c, mu, true);
            let projected = mat4_apply(&basis.proj[mu][1].dense, psi.get(cf));
            let mut hop = Spinor::zero();
            for s in 0..4 {
                hop.s[s] = cfg.link(c, mu).mul_vec(&projected.s[s]);
            }
            acc += hop;
            // Backward: P−μ ⊗ U†_μ(x−μ) ψ(x−μ).
            let (cb, _) = dims.neighbor(c, mu, false);
            let projected = mat4_apply(&basis.proj[mu][0].dense, psi.get(cb));
            let mut hop = Spinor::zero();
            for s in 0..4 {
                hop.s[s] = cfg.link(cb, mu).adj_mul_vec(&projected.s[s]);
            }
            acc += hop;
        }
        *out.get_mut(c) = acc;
    }
    out
}

/// Apply the full Wilson-clover matrix
/// `M ψ = (4 + m + A) ψ − ½ D ψ` (Eq. 2) on the host.
///
/// `clover[lex]` is the per-site clover term `A(x)` in chiral packing
/// (zero blocks for plain Wilson).
pub fn apply_wilson_clover_host(
    cfg: &GaugeConfig,
    clover: &[CloverSite<f64>],
    params: &WilsonParams,
    psi: &HostSpinorField,
) -> HostSpinorField {
    let dims = cfg.dims;
    assert_eq!(clover.len(), dims.volume());
    let basis = SpinBasis::new(GammaBasis::NonRelativistic);
    let map = CloverBasisMap::new();
    let hop = apply_hopping_host(cfg, &basis, psi);
    let mut out = HostSpinorField::zero(dims);
    let shift = params.diag_shift();
    for c in dims.coords() {
        let i = dims.lex_index(c);
        let local = psi.get(c).scale_re(shift) + map.apply_nr(&clover[i], psi.get(c));
        *out.get_mut(c) = local - hop.data[i].scale_re(0.5);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use quda_fields::gauge_gen::{random_spinor_field, weak_field};
    use quda_lattice::geometry::{Coord, LatticeDims};

    fn dims() -> LatticeDims {
        LatticeDims::new(4, 4, 4, 4)
    }

    fn zero_clover(dims: LatticeDims) -> Vec<CloverSite<f64>> {
        let mut z = CloverSite::identity();
        for b in z.block.iter_mut() {
            b.diag = [0.0; 6];
        }
        vec![z; dims.volume()]
    }

    #[test]
    fn free_field_constant_spinor_is_eigenvector() {
        // On a unit gauge field, a spatially constant spinor ψ has
        // D ψ = Σ_μ (P−μ + P+μ) ψ = 8 ψ, so M ψ = (4+m)ψ − 4ψ = m ψ.
        let d = dims();
        let cfg = GaugeConfig::unit(d);
        let mut psi = HostSpinorField::zero(d);
        let mut sp = Spinor::zero();
        for s in 0..4 {
            for c in 0..3 {
                sp.s[s].c[c] =
                    quda_math::complex::C64::new(0.3 * s as f64 + 0.1, 0.2 - 0.05 * c as f64);
            }
        }
        for v in psi.data.iter_mut() {
            *v = sp;
        }
        let params = WilsonParams { mass: 0.25, c_sw: 0.0 };
        let out = apply_wilson_clover_host(&cfg, &zero_clover(d), &params, &psi);
        for c in d.coords() {
            let expect = sp.scale_re(0.25);
            let diff = (*out.get(c) - expect).norm_sqr();
            assert!(diff < 1e-22, "site {c:?}: diff {diff}");
        }
    }

    #[test]
    fn operator_is_linear() {
        let d = dims();
        let cfg = weak_field(d, 0.15, 4);
        let clover = zero_clover(d);
        let params = WilsonParams { mass: 0.1, c_sw: 0.0 };
        let a = random_spinor_field(d, 1);
        let b = random_spinor_field(d, 2);
        let mut sum = HostSpinorField::zero(d);
        for i in 0..d.volume() {
            sum.data[i] = a.data[i] + b.data[i].scale_re(2.0);
        }
        let ma = apply_wilson_clover_host(&cfg, &clover, &params, &a);
        let mb = apply_wilson_clover_host(&cfg, &clover, &params, &b);
        let msum = apply_wilson_clover_host(&cfg, &clover, &params, &sum);
        for i in 0..d.volume() {
            let expect = ma.data[i] + mb.data[i].scale_re(2.0);
            assert!((msum.data[i] - expect).norm_sqr() < 1e-20);
        }
    }

    #[test]
    fn dagger_is_true_adjoint_of_hopping() {
        // <x, D y> == <D† x, y> over the whole lattice.
        let d = dims();
        let cfg = weak_field(d, 0.2, 8);
        let basis = SpinBasis::new(GammaBasis::NonRelativistic);
        let x = random_spinor_field(d, 11);
        let y = random_spinor_field(d, 12);
        let dy = apply_hopping_host(&cfg, &basis, &y);
        let ddag_x = apply_hopping_dagger_host(&cfg, &basis, &x);
        let mut lhs = quda_math::complex::C64::zero();
        let mut rhs = quda_math::complex::C64::zero();
        for i in 0..d.volume() {
            lhs += x.data[i].dot(&dy.data[i]);
            rhs += ddag_x.data[i].dot(&y.data[i]);
        }
        assert!((lhs.re - rhs.re).abs() < 1e-9 * lhs.re.abs().max(1.0));
        assert!((lhs.im - rhs.im).abs() < 1e-9);
    }

    #[test]
    fn hopping_couples_only_nearest_neighbors() {
        // A point source spreads exactly to the 8 neighbors under D.
        let d = dims();
        let cfg = weak_field(d, 0.1, 3);
        let basis = SpinBasis::new(GammaBasis::NonRelativistic);
        let src_at = Coord::new(1, 2, 3, 0);
        let psi = HostSpinorField::point_source(d, src_at, 0, 0);
        let out = apply_hopping_host(&cfg, &basis, &psi);
        let mut supported_neighbors = 0;
        for c in d.coords() {
            let is_neighbor = (0..4).any(|mu| {
                let (f, _) = d.neighbor(c, mu, true);
                let (b, _) = d.neighbor(c, mu, false);
                f == src_at || b == src_at
            });
            let n = out.get(c).norm_sqr();
            if is_neighbor {
                // Note: a diagonal temporal projector may legitimately kill
                // a single-spin source in the T direction, so not every
                // neighbor is required to be nonzero.
                if n > 0.0 {
                    supported_neighbors += 1;
                }
            } else {
                assert_eq!(n, 0.0, "unexpected support at {c:?}");
            }
        }
        assert!(supported_neighbors >= 6, "got {supported_neighbors} supported neighbors");
    }

    #[test]
    fn clover_term_enters_diagonally() {
        // With a nonzero clover term, M differs from plain Wilson only
        // pointwise (no new couplings).
        let d = dims();
        let cfg = weak_field(d, 0.1, 5);
        let clover = quda_fields::clover_build::clover_both_parities(&cfg, 1.0);
        // Repack per-lex-site.
        let mut by_lex = zero_clover(d);
        for p in [quda_lattice::geometry::Parity::Even, quda_lattice::geometry::Parity::Odd] {
            for cb in 0..d.half_volume() {
                let c = d.cb_coord(p, cb);
                by_lex[d.lex_index(c)] = clover[p.as_usize()][cb];
            }
        }
        let params = WilsonParams { mass: 0.1, c_sw: 1.0 };
        let psi = HostSpinorField::point_source(d, Coord::new(0, 0, 0, 0), 1, 1);
        let with_clover = apply_wilson_clover_host(&cfg, &by_lex, &params, &psi);
        let without = apply_wilson_clover_host(&cfg, &zero_clover(d), &params, &psi);
        for c in d.coords() {
            let i = d.lex_index(c);
            let differs = (with_clover.data[i] - without.data[i]).norm_sqr() > 1e-24;
            if differs {
                // Differences appear only where ψ is nonzero (the source).
                assert!(psi.data[i].norm_sqr() > 0.0, "clover created coupling at {c:?}");
            }
        }
    }
}
