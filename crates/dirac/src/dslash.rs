//! The optimized checkerboard dslash kernel.
//!
//! This is the Rust analog of QUDA's Wilson dslash CUDA kernel: it walks
//! sites of one parity, gathers the eight projected neighbor half-spinors,
//! multiplies by the (possibly compressed) links, and reconstructs — using
//! the compiled rank-2 projectors of [`quda_math::gamma::HalfProj`], the
//! layout-aware field containers, and the ghost zones of Section VI when the
//! temporal boundary is a domain boundary.
//!
//! The kernel can be restricted to the interior or face time-slices
//! ([`DslashRegion`]) so the multi-GPU driver can overlap the interior
//! computation with face communication (Section VI-D2).

use quda_fields::precision::Precision;
use quda_fields::{GaugeFieldCb, SpinorFieldCb};
use quda_lattice::geometry::{Parity, DIR_T};
use quda_lattice::stencil::{BoundaryKind, Stencil};
use quda_math::colorvec::ColorVec;
use quda_math::gamma::{HalfProj, SpinBasis};
use quda_math::real::Real;
use quda_math::spinor::{HalfSpinor, Spinor};
use rayon::prelude::*;

/// Which sites a dslash launch covers.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DslashRegion {
    /// The whole local volume (the no-overlap strategy, Section VI-D1).
    All,
    /// Only sites on no open-dimension boundary — safe to run while faces
    /// are still in flight.
    Interior,
    /// Only boundary sites of open dimensions — run after ghosts arrive.
    Faces,
    /// Only boundary sites whose *highest* open boundary dimension is the
    /// given one. Driving the open dimensions in ascending order with this
    /// region updates every boundary site exactly once (corner sites run
    /// with their last-arriving face) — the per-direction pipeline of the
    /// 4-d decomposition (arXiv:1109.2935).
    FacesDim(usize),
}

/// Sites below this count run sequentially (rayon overhead dominates).
const PAR_THRESHOLD: usize = 4096;

/// Largest number of right-hand sides one batched dslash sweep carries.
///
/// The batched kernel keeps one accumulator per RHS on the stack, so the
/// bound must be a compile-time constant; 8 covers the service's batching
/// sweet spot (gauge reads amortize ~8× before the spinor traffic of the
/// RHS block itself dominates, Eq. 3–5).
pub const MAX_RHS_BATCH: usize = 8;

/// Apply one parity of the hopping term:
/// `out(x) = Σ_μ P∓μ U_μ(x) ψ(x+μ) + P±μ U†_μ(x−μ) ψ(x−μ)`
/// for `x` of `out_parity`, reading `input` (the opposite parity).
///
/// With `dagger` the projector signs swap (the adjoint hopping term).
/// Ghost zones of `input` (and the pad-resident ghost links of `gauge`)
/// are consulted where the stencil says the neighbor is off-domain.
#[allow(clippy::too_many_arguments)]
pub fn dslash_cb<P: Precision>(
    out: &mut SpinorFieldCb<P>,
    gauge: &GaugeFieldCb<P>,
    input: &SpinorFieldCb<P>,
    out_parity: Parity,
    stencil: &Stencil,
    basis: &SpinBasis,
    dagger: bool,
    region: DslashRegion,
) {
    let table = stencil.for_parity(out_parity);
    let sites = out.sites();
    let in_region = |cb: usize| match region {
        DslashRegion::All => true,
        DslashRegion::Interior => table.last_face_dim[cb].is_none(),
        DslashRegion::Faces => table.last_face_dim[cb].is_some(),
        DslashRegion::FacesDim(d) => table.last_face_dim[cb] == Some(d as u8),
    };
    let site_kernel = |cb: usize| -> Option<(usize, Spinor<P::Arith>)> {
        if !in_region(cb) {
            return None;
        }
        Some((cb, dslash_site(gauge, input, out_parity, stencil, basis, dagger, cb)))
    };
    if sites >= PAR_THRESHOLD {
        let results: Vec<(usize, Spinor<P::Arith>)> =
            (0..sites).into_par_iter().filter_map(site_kernel).collect();
        for (cb, sp) in results {
            out.set(cb, &sp);
        }
    } else {
        // Sequential launches write straight through: no intermediate
        // buffer, so a steady-state solver iteration stays allocation-free.
        (0..sites).filter_map(site_kernel).for_each(|(cb, sp)| out.set(cb, &sp));
    }
}

/// Batched multi-RHS hopping term: one gauge-link read per `(site, μ)`
/// serves every active right-hand side (Eq. 3–5 amortization).
///
/// `outs[r]` receives the hopping term of `inputs[r]` for every `r` with
/// `active[r]`; inactive slots are left untouched (per-RHS convergence
/// masking in the blocked solvers). Per RHS the arithmetic — operand
/// values, operation order, rounding — is exactly that of [`dslash_cb`],
/// so batched and sequential launches produce bit-identical outputs; the
/// only difference is that the (possibly compressed) link is decoded once
/// per `(site, μ)` instead of once per RHS.
#[allow(clippy::too_many_arguments)]
pub fn dslash_cb_multi<P: Precision>(
    outs: &mut [SpinorFieldCb<P>],
    gauge: &GaugeFieldCb<P>,
    inputs: &[SpinorFieldCb<P>],
    out_parity: Parity,
    stencil: &Stencil,
    basis: &SpinBasis,
    dagger: bool,
    region: DslashRegion,
    active: &[bool],
) {
    assert_eq!(outs.len(), inputs.len(), "outs/inputs must pair up per RHS");
    assert_eq!(active.len(), inputs.len(), "active mask must cover every RHS");
    assert!(inputs.len() <= MAX_RHS_BATCH, "batch exceeds MAX_RHS_BATCH");
    // Compact the active RHS indices into a stack array so the site loop
    // never branches on the mask.
    let mut idx_buf = [0usize; MAX_RHS_BATCH];
    let mut n_active = 0;
    for (r, &a) in active.iter().enumerate() {
        if a {
            idx_buf[n_active] = r;
            n_active += 1;
        }
    }
    if n_active == 0 {
        return;
    }
    let idxs = &idx_buf[..n_active];
    let table = stencil.for_parity(out_parity);
    let sites = inputs[idxs[0]].sites();
    let in_region = |cb: usize| match region {
        DslashRegion::All => true,
        DslashRegion::Interior => table.last_face_dim[cb].is_none(),
        DslashRegion::Faces => table.last_face_dim[cb].is_some(),
        DslashRegion::FacesDim(d) => table.last_face_dim[cb] == Some(d as u8),
    };
    let site_kernel = |cb: usize| -> Option<(usize, [Spinor<P::Arith>; MAX_RHS_BATCH])> {
        if !in_region(cb) {
            return None;
        }
        let mut accs = [Spinor::zero(); MAX_RHS_BATCH];
        dslash_site_multi(gauge, inputs, idxs, out_parity, stencil, basis, dagger, cb, &mut accs);
        Some((cb, accs))
    };
    if sites >= PAR_THRESHOLD {
        let results: Vec<(usize, [Spinor<P::Arith>; MAX_RHS_BATCH])> =
            (0..sites).into_par_iter().filter_map(site_kernel).collect();
        for (cb, accs) in results {
            for (k, &r) in idxs.iter().enumerate() {
                outs[r].set(cb, &accs[k]);
            }
        }
    } else {
        (0..sites).filter_map(site_kernel).for_each(|(cb, accs)| {
            for (k, &r) in idxs.iter().enumerate() {
                outs[r].set(cb, &accs[k]);
            }
        });
    }
}

/// The per-site batched gather-multiply-reconstruct: identical per-RHS
/// arithmetic to [`dslash_site`], with the link (and neighbor/ghost
/// bookkeeping) resolved once per `(site, μ)` and reused across the block.
#[inline]
#[allow(clippy::too_many_arguments)]
fn dslash_site_multi<P: Precision>(
    gauge: &GaugeFieldCb<P>,
    inputs: &[SpinorFieldCb<P>],
    idxs: &[usize],
    out_parity: Parity,
    stencil: &Stencil,
    basis: &SpinBasis,
    dagger: bool,
    cb: usize,
    accs: &mut [Spinor<P::Arith>; MAX_RHS_BATCH],
) {
    let table = stencil.for_parity(out_parity);
    let in_parity = out_parity.other();
    let n = idxs.len();
    // Two color vectors (the projected half-spinor) per RHS, staged into one
    // block per hop: the gather loop (neighbor resolution, ghost branches,
    // projection) and the link-apply loop each stay tight, and the link is
    // decoded once for the whole block.
    const LANES: usize = 2 * MAX_RHS_BATCH;
    let mut block = [ColorVec::zero(); LANES];
    for mu in 0..4 {
        // Forward hop: the link lives on the output site — one decode for
        // the whole RHS block.
        let proj_f = &basis.proj[mu][if dagger { 1 } else { 0 }];
        let nref = table.fwd[mu][cb];
        let u = gauge.link(out_parity, mu, cb);
        for (k, &r) in idxs.iter().enumerate() {
            let input = &inputs[r];
            let h = match nref.kind {
                BoundaryKind::Interior => proj_f.project(&input.get(nref.idx as usize)),
                BoundaryKind::GhostForward => {
                    if mu == DIR_T {
                        ghost_half::<P>(input, false, nref.idx as usize, proj_f)
                    } else {
                        input.get_ghost_dim(mu, false, nref.idx as usize)
                    }
                }
                BoundaryKind::GhostBackward => {
                    unreachable!("forward hop cannot use backward ghost")
                }
            };
            block[2 * k] = h.h[0];
            block[2 * k + 1] = h.h[1];
        }
        for (k, acc) in accs[..n].iter_mut().enumerate() {
            let t = HalfSpinor { h: [u.mul_vec(&block[2 * k]), u.mul_vec(&block[2 * k + 1])] };
            *acc += proj_f.reconstruct(&t);
        }

        // Backward hop: the neighbor-site (or pad ghost) link, again decoded
        // once per block.
        let proj_b = &basis.proj[mu][if dagger { 0 } else { 1 }];
        let nref = table.bwd[mu][cb];
        let (u, from_ghost) = match nref.kind {
            BoundaryKind::Interior => (gauge.link(in_parity, mu, nref.idx as usize), false),
            BoundaryKind::GhostBackward => {
                (gauge.ghost_link_dim(in_parity, mu, nref.idx as usize), true)
            }
            BoundaryKind::GhostForward => unreachable!("backward hop cannot use forward ghost"),
        };
        for (k, &r) in idxs.iter().enumerate() {
            let input = &inputs[r];
            let h = if from_ghost {
                let face = nref.idx as usize;
                if mu == DIR_T {
                    ghost_half::<P>(input, true, face, proj_b)
                } else {
                    input.get_ghost_dim(mu, true, face)
                }
            } else {
                proj_b.project(&input.get(nref.idx as usize))
            };
            block[2 * k] = h.h[0];
            block[2 * k + 1] = h.h[1];
        }
        for (k, acc) in accs[..n].iter_mut().enumerate() {
            let t =
                HalfSpinor { h: [u.adj_mul_vec(&block[2 * k]), u.adj_mul_vec(&block[2 * k + 1])] };
            *acc += proj_b.reconstruct(&t);
        }
    }
}

/// The per-site gather-multiply-reconstruct, shared by all launch shapes.
#[inline]
fn dslash_site<P: Precision>(
    gauge: &GaugeFieldCb<P>,
    input: &SpinorFieldCb<P>,
    out_parity: Parity,
    stencil: &Stencil,
    basis: &SpinBasis,
    dagger: bool,
    cb: usize,
) -> Spinor<P::Arith> {
    let table = stencil.for_parity(out_parity);
    let in_parity = out_parity.other();
    let mut acc = Spinor::zero();
    for mu in 0..4 {
        // Forward hop uses P−μ (P+μ under dagger).
        let proj_f = &basis.proj[mu][if dagger { 1 } else { 0 }];
        let nref = table.fwd[mu][cb];
        let h = match nref.kind {
            BoundaryKind::Interior => proj_f.project(&input.get(nref.idx as usize)),
            BoundaryKind::GhostForward => {
                if mu == DIR_T {
                    // Diagonal P±4: raw 12-number copy, coefficient applied
                    // here (Section VI-C footnote 3).
                    ghost_half::<P>(input, false, nref.idx as usize, proj_f)
                } else {
                    // Non-diagonal spatial projector: the sender already
                    // applied the full projection, consume as-is.
                    input.get_ghost_dim(mu, false, nref.idx as usize)
                }
            }
            BoundaryKind::GhostBackward => unreachable!("forward hop cannot use backward ghost"),
        };
        let u = gauge.link(out_parity, mu, cb);
        let t = HalfSpinor { h: [u.mul_vec(&h.h[0]), u.mul_vec(&h.h[1])] };
        acc += proj_f.reconstruct(&t);

        // Backward hop uses P+μ (P−μ under dagger); the link lives on the
        // neighbor site (or in the pad ghost when off-domain).
        let proj_b = &basis.proj[mu][if dagger { 0 } else { 1 }];
        let nref = table.bwd[mu][cb];
        let (h, u) = match nref.kind {
            BoundaryKind::Interior => {
                let idx = nref.idx as usize;
                (proj_b.project(&input.get(idx)), gauge.link(in_parity, mu, idx))
            }
            BoundaryKind::GhostBackward => {
                let face = nref.idx as usize;
                let h = if mu == DIR_T {
                    ghost_half::<P>(input, true, face, proj_b)
                } else {
                    input.get_ghost_dim(mu, true, face)
                };
                (h, gauge.ghost_link_dim(in_parity, mu, face))
            }
            BoundaryKind::GhostForward => unreachable!("backward hop cannot use forward ghost"),
        };
        let t = HalfSpinor { h: [u.adj_mul_vec(&h.h[0]), u.adj_mul_vec(&h.h[1])] };
        acc += proj_b.reconstruct(&t);
    }
    acc
}

/// Load a temporal ghost half-spinor and apply the diagonal projector's
/// coefficient (the stored data is the raw 12-component copy; the projector
/// `1 ± γ4` contributes the factor 2, Section VI-C footnote 3).
#[inline]
fn ghost_half<P: Precision>(
    input: &SpinorFieldCb<P>,
    backward: bool,
    face: usize,
    proj: &HalfProj,
) -> HalfSpinor<P::Arith> {
    debug_assert!(proj.diagonal, "temporal ghosts require the diagonalized P±4");
    let raw = input.get_ghost(backward, face);
    let mut h = HalfSpinor::zero();
    for i in 0..2 {
        let (_, coeff) = proj.terms[i][0];
        let c = P::Arith::from_f64(coeff.re);
        h.h[i] = raw.h[i].scale_re(c);
    }
    h
}

/// Gather the raw 12 components a neighbor will need from one face site of
/// `field` — the sending half of Fig. 3.
///
/// `to_forward` selects which face is being gathered: `true` gathers the
/// *last* time-slice (sent forward, becoming the receiver's backward ghost,
/// carrying the components the receiver's `P+4`-like projector keeps);
/// `false` gathers the first time-slice (sent backward, the receiver's
/// forward ghost). With `dagger` the projector roles (and hence which spin
/// components are copied) swap.
pub fn gather_face_site<P: Precision>(
    field: &SpinorFieldCb<P>,
    basis: &SpinBasis,
    stencil: &Stencil,
    to_forward: bool,
    face: usize,
    dagger: bool,
) -> HalfSpinor<P::Arith> {
    // Receiver applies: backward ghost -> P(+) fwd... see dslash_site: the
    // backward ghost is consumed with proj index (dagger ? 0 : 1); the
    // forward ghost with (dagger ? 1 : 0); both for mu = T.
    let proj_idx = match (to_forward, dagger) {
        (true, false) => 1,  // receiver's backward gather uses P+4
        (true, true) => 0,   // dagger: P-4
        (false, false) => 0, // receiver's forward gather uses P-4
        (false, true) => 1,
    };
    let proj = &basis.proj[DIR_T][proj_idx];
    debug_assert!(proj.diagonal);
    let dims = stencil.dims;
    let t = if to_forward { dims.t - 1 } else { 0 };
    let half_vs = dims.half_spatial_volume();
    let cb = t * half_vs + face;
    let sp = field.get(cb);
    // Raw copy of the two spin components the projector keeps (no factor 2;
    // the receiver applies it).
    HalfSpinor { h: [sp.s[proj.rows[0]], sp.s[proj.rows[1]]] }
}

/// Gather the projected half-spinor a neighbor will need from face site
/// `face` of the `dir`-boundary of `field` (the sending half of Fig. 3,
/// generalized to any dimension).
///
/// `to_forward` gathers the last (`true`) or first (`false`) `dir`-slice;
/// `parity` is the checkerboard parity of `field`. For `dir = 3` (the
/// diagonal P±4) this is byte-identical to [`gather_face_site`]: a raw copy
/// of the two kept spin components, the receiver supplying the factor 2.
/// For X/Y/Z the projector is non-diagonal, so the *sender* applies the full
/// projection and the receiver consumes the stored half directly.
#[allow(clippy::too_many_arguments)]
pub fn gather_face_site_dim<P: Precision>(
    field: &SpinorFieldCb<P>,
    basis: &SpinBasis,
    stencil: &Stencil,
    dir: usize,
    to_forward: bool,
    face: usize,
    parity: Parity,
    dagger: bool,
) -> HalfSpinor<P::Arith> {
    if dir == DIR_T {
        return gather_face_site(field, basis, stencil, to_forward, face, dagger);
    }
    // Same (to_forward, dagger) → projector-index convention as the T path:
    // the receiver consumes a backward ghost with proj[mu][dagger ? 0 : 1]
    // and a forward ghost with proj[mu][dagger ? 1 : 0].
    let proj_idx = match (to_forward, dagger) {
        (true, false) => 1,
        (true, true) => 0,
        (false, false) => 0,
        (false, true) => 1,
    };
    let proj = &basis.proj[dir][proj_idx];
    let dims = stencil.dims;
    let fixed = if to_forward { dims.extent(dir) - 1 } else { 0 };
    let c = Stencil::face_coord(&dims, dir, parity, fixed, face);
    proj.project(&field.get(dims.cb_index(c)))
}

/// Counts of work for one dslash launch, for the performance model. Face
/// classification follows the stencil's `last_face_dim` table, so the counts
/// are exact for any set of open dimensions.
pub fn dslash_site_count(stencil: &Stencil, region: DslashRegion) -> usize {
    let total = stencil.dims.half_volume();
    let table = &stencil.for_parity(Parity::Even).last_face_dim;
    match region {
        DslashRegion::All => total,
        DslashRegion::Faces => table.iter().filter(|l| l.is_some()).count(),
        DslashRegion::Interior => table.iter().filter(|l| l.is_none()).count(),
        DslashRegion::FacesDim(d) => table.iter().filter(|l| **l == Some(d as u8)).count(),
    }
}

/// Apply a constant scale to every site: used to build `−½ D` from `D`.
/// For the float precisions this streams the blocked storage directly
/// (every live real is `re·s`, exactly what `scale_re` computes per
/// component); the normalized precisions go through the site combinator.
pub fn scale_sites<P: Precision>(field: &mut SpinorFieldCb<P>, s: P::Arith) {
    if let Some(blocks) = field.arith_blocks_mut() {
        for b in blocks {
            for r in b.iter_mut() {
                *r *= s;
            }
        }
        return;
    }
    field.update_sites(|_, v| v.scale_re(s));
}

/// Re-export of [`ColorVec`] to keep kernel signatures local.
pub type Color<T> = ColorVec<T>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{apply_hopping_dagger_host, apply_hopping_host};
    use quda_fields::gauge_gen::{random_spinor_field, weak_field};
    use quda_fields::precision::{Double, Single};
    use quda_fields::HostSpinorField;
    use quda_lattice::geometry::LatticeDims;
    use quda_math::gamma::GammaBasis;

    fn dims() -> LatticeDims {
        LatticeDims::new(4, 4, 4, 6)
    }

    fn setup(
        d: LatticeDims,
    ) -> (
        quda_fields::GaugeConfig,
        GaugeFieldCb<Double>,
        HostSpinorField,
        SpinorFieldCb<Double>,
        SpinBasis,
        Stencil,
    ) {
        let cfg = weak_field(d, 0.2, 17);
        let mut gauge = GaugeFieldCb::<Double>::new(d, true);
        gauge.upload(&cfg);
        let host = random_spinor_field(d, 5);
        let mut dev = SpinorFieldCb::<Double>::new(d, false);
        dev.upload(&host, Parity::Odd);
        let basis = SpinBasis::new(GammaBasis::NonRelativistic);
        let stencil = Stencil::new(d, false);
        (cfg, gauge, host, dev, basis, stencil)
    }

    #[test]
    fn dslash_matches_reference_hopping() {
        let d = dims();
        let (cfg, gauge, host, dev, basis, stencil) = setup(d);
        let mut out = SpinorFieldCb::<Double>::new(d, false);
        dslash_cb(&mut out, &gauge, &dev, Parity::Even, &stencil, &basis, false, DslashRegion::All);
        let reference = apply_hopping_host(&cfg, &basis, &host);
        for cb in 0..out.sites() {
            let expect = *reference.get_cb(Parity::Even, cb);
            let got = out.get(cb).cast::<f64>();
            assert!((got - expect).norm_sqr() < 1e-20, "cb={cb}");
        }
    }

    #[test]
    fn dagger_dslash_matches_reference() {
        let d = dims();
        let (cfg, gauge, host, dev, basis, stencil) = setup(d);
        let mut out = SpinorFieldCb::<Double>::new(d, false);
        dslash_cb(&mut out, &gauge, &dev, Parity::Even, &stencil, &basis, true, DslashRegion::All);
        let reference = apply_hopping_dagger_host(&cfg, &basis, &host);
        for cb in 0..out.sites() {
            let expect = *reference.get_cb(Parity::Even, cb);
            let got = out.get(cb).cast::<f64>();
            assert!((got - expect).norm_sqr() < 1e-20, "cb={cb}");
        }
    }

    #[test]
    fn interior_plus_faces_equals_all() {
        let d = dims();
        let (_, gauge, _, dev, basis, stencil) = setup(d);
        let mut all = SpinorFieldCb::<Double>::new(d, false);
        dslash_cb(&mut all, &gauge, &dev, Parity::Even, &stencil, &basis, false, DslashRegion::All);
        let mut split = SpinorFieldCb::<Double>::new(d, false);
        dslash_cb(
            &mut split,
            &gauge,
            &dev,
            Parity::Even,
            &stencil,
            &basis,
            false,
            DslashRegion::Interior,
        );
        dslash_cb(
            &mut split,
            &gauge,
            &dev,
            Parity::Even,
            &stencil,
            &basis,
            false,
            DslashRegion::Faces,
        );
        for cb in 0..all.sites() {
            assert_eq!(all.get(cb), split.get(cb), "cb={cb}");
        }
    }

    #[test]
    fn region_site_counts_partition_volume() {
        let stencil = Stencil::new(dims(), true);
        let all = dslash_site_count(&stencil, DslashRegion::All);
        let int = dslash_site_count(&stencil, DslashRegion::Interior);
        let faces = dslash_site_count(&stencil, DslashRegion::Faces);
        assert_eq!(all, int + faces);
        assert_eq!(faces, 2 * dims().half_spatial_volume());
    }

    #[test]
    fn single_precision_dslash_close_to_double() {
        let d = dims();
        let cfg = weak_field(d, 0.2, 17);
        let host = random_spinor_field(d, 5);
        let basis = SpinBasis::new(GammaBasis::NonRelativistic);
        let stencil = Stencil::new(d, false);
        let mut gauge = GaugeFieldCb::<Single>::new(d, true);
        gauge.upload(&cfg);
        let mut dev = SpinorFieldCb::<Single>::new(d, false);
        dev.upload(&host, Parity::Odd);
        let mut out = SpinorFieldCb::<Single>::new(d, false);
        dslash_cb(&mut out, &gauge, &dev, Parity::Even, &stencil, &basis, false, DslashRegion::All);
        let reference = apply_hopping_host(&cfg, &basis, &host);
        for cb in 0..out.sites() {
            let expect = *reference.get_cb(Parity::Even, cb);
            let got = out.get(cb).cast::<f64>();
            let rel = (got - expect).norm_sqr().sqrt() / expect.norm_sqr().sqrt().max(1e-30);
            assert!(rel < 1e-5, "cb={cb} rel={rel}");
        }
    }

    #[test]
    fn spatial_ghost_path_reproduces_periodic_wrap_single_rank() {
        // Same self-exchange check as the temporal one, but for an open X
        // boundary: side ghosts + side ghost links must reproduce the closed
        // (periodic) dslash exactly.
        let d = dims();
        let (_, mut gauge, _, dev, basis, _) = setup(d);
        let closed = Stencil::new(d, false);
        let open = Stencil::with_open(d, [true, false, false, false]);
        let mut expect = SpinorFieldCb::<Double>::new(d, false);
        dslash_cb(
            &mut expect,
            &gauge,
            &dev,
            Parity::Even,
            &closed,
            &basis,
            false,
            DslashRegion::All,
        );

        let mut dev_g = SpinorFieldCb::<Double>::new_open(d, [true, false, false, false]);
        for cb in 0..dev_g.sites() {
            dev_g.set(cb, &dev.get(cb));
        }
        let fs = dev_g.face_sites_dim(0);
        for face in 0..fs {
            // Input parity is Odd; periodic self-exchange.
            let from_last =
                gather_face_site_dim(&dev, &basis, &open, 0, true, face, Parity::Odd, false);
            dev_g.set_ghost_dim(0, true, face, &from_last);
            let from_first =
                gather_face_site_dim(&dev, &basis, &open, 0, false, face, Parity::Odd, false);
            dev_g.set_ghost_dim(0, false, face, &from_first);
        }
        // Side ghost links: U_x on the last X-slice of the (same) domain,
        // parity of x−x̂ = Odd for Even output sites.
        for face in 0..fs {
            let c = Stencil::face_coord(&d, 0, Parity::Odd, d.x - 1, face);
            let u: quda_math::su3::Su3<f64> = gauge.link(Parity::Odd, 0, d.cb_index(c)).cast();
            gauge.set_ghost_link_dim(Parity::Odd, 0, face, &u);
        }
        let mut got = SpinorFieldCb::<Double>::new(d, false);
        dslash_cb(&mut got, &gauge, &dev_g, Parity::Even, &open, &basis, false, DslashRegion::All);
        for cb in 0..got.sites() {
            let diff = (got.get(cb) - expect.get(cb)).norm_sqr();
            assert!(diff < 1e-22, "cb={cb} diff={diff}");
        }
    }

    #[test]
    fn faces_dim_regions_partition_the_face_set() {
        let d = dims();
        let (_, gauge, _, dev, basis, _) = setup(d);
        let open = [true, false, true, true];
        let stencil = Stencil::with_open(d, open);
        // Interior + each FacesDim (ascending) must together equal All —
        // with every ghost zone zero the numerics don't matter, only the
        // site coverage; use a ghost-bearing input so ghost reads are legal.
        let mut dev_g = SpinorFieldCb::<Double>::new_open(d, open);
        for cb in 0..dev_g.sites() {
            dev_g.set(cb, &dev.get(cb));
        }
        let mut split = SpinorFieldCb::<Double>::new(d, false);
        dslash_cb(
            &mut split,
            &gauge,
            &dev_g,
            Parity::Even,
            &stencil,
            &basis,
            false,
            DslashRegion::Interior,
        );
        let mut covered = dslash_site_count(&stencil, DslashRegion::Interior);
        for dim in 0..4 {
            if !open[dim] {
                assert_eq!(dslash_site_count(&stencil, DslashRegion::FacesDim(dim)), 0);
                continue;
            }
            dslash_cb(
                &mut split,
                &gauge,
                &dev_g,
                Parity::Even,
                &stencil,
                &basis,
                false,
                DslashRegion::FacesDim(dim),
            );
            covered += dslash_site_count(&stencil, DslashRegion::FacesDim(dim));
        }
        let mut all = SpinorFieldCb::<Double>::new(d, false);
        dslash_cb(
            &mut all,
            &gauge,
            &dev_g,
            Parity::Even,
            &stencil,
            &basis,
            false,
            DslashRegion::All,
        );
        for cb in 0..all.sites() {
            assert_eq!(all.get(cb), split.get(cb), "cb={cb}");
        }
        assert_eq!(covered, d.half_volume());
    }

    #[test]
    fn batched_dslash_bit_identical_to_sequential() {
        // The service's batching contract: a block of N right-hand sides
        // through one sweep must be *bit-identical*, per RHS, to N
        // independent single launches — at every precision.
        fn check<P: Precision>() {
            let d = LatticeDims::new(4, 4, 4, 6);
            let cfg = weak_field(d, 0.2, 17);
            let mut gauge = GaugeFieldCb::<P>::new(d, true);
            gauge.upload(&cfg);
            let basis = SpinBasis::new(GammaBasis::NonRelativistic);
            let stencil = Stencil::new(d, false);
            let n = 5;
            let inputs: Vec<SpinorFieldCb<P>> = (0..n)
                .map(|r| {
                    let host = random_spinor_field(d, 100 + r as u64);
                    let mut dev = SpinorFieldCb::<P>::new(d, false);
                    dev.upload(&host, Parity::Odd);
                    dev
                })
                .collect();
            // Mask one RHS out to exercise convergence masking: its output
            // slot must stay untouched.
            let mut active = vec![true; n];
            active[2] = false;
            let mut outs: Vec<SpinorFieldCb<P>> =
                (0..n).map(|_| SpinorFieldCb::<P>::new(d, false)).collect();
            dslash_cb_multi(
                &mut outs,
                &gauge,
                &inputs,
                Parity::Even,
                &stencil,
                &basis,
                false,
                DslashRegion::All,
                &active,
            );
            for r in 0..n {
                let mut single = SpinorFieldCb::<P>::new(d, false);
                dslash_cb(
                    &mut single,
                    &gauge,
                    &inputs[r],
                    Parity::Even,
                    &stencil,
                    &basis,
                    false,
                    DslashRegion::All,
                );
                for cb in 0..single.sites() {
                    if active[r] {
                        assert_eq!(outs[r].get(cb), single.get(cb), "rhs={r} cb={cb}");
                    } else {
                        assert_eq!(
                            outs[r].get(cb),
                            SpinorFieldCb::<P>::new(d, false).get(cb),
                            "masked rhs={r} must stay untouched"
                        );
                    }
                }
            }
        }
        check::<Double>();
        check::<Single>();
        check::<quda_fields::precision::Half>();
        check::<quda_fields::precision::Quarter>();
    }

    #[test]
    fn batched_dslash_region_split_matches_all() {
        // Interior + per-dimension faces through the batched kernel must
        // partition the volume exactly like the single-RHS kernel does.
        let d = dims();
        let open = [true, false, false, true];
        let stencil = Stencil::with_open(d, open);
        let cfg = weak_field(d, 0.2, 23);
        let mut gauge = GaugeFieldCb::<Double>::new(d, true);
        gauge.upload(&cfg);
        let basis = SpinBasis::new(GammaBasis::NonRelativistic);
        let n = 3;
        let inputs: Vec<SpinorFieldCb<Double>> = (0..n)
            .map(|r| {
                let host = random_spinor_field(d, 40 + r as u64);
                let mut full = SpinorFieldCb::<Double>::new(d, false);
                full.upload(&host, Parity::Odd);
                let mut dev = SpinorFieldCb::<Double>::new_open(d, open);
                for cb in 0..dev.sites() {
                    dev.set(cb, &full.get(cb));
                }
                dev
            })
            .collect();
        let active = vec![true; n];
        let mut all: Vec<SpinorFieldCb<Double>> =
            (0..n).map(|_| SpinorFieldCb::<Double>::new(d, false)).collect();
        dslash_cb_multi(
            &mut all,
            &gauge,
            &inputs,
            Parity::Even,
            &stencil,
            &basis,
            false,
            DslashRegion::All,
            &active,
        );
        let mut split: Vec<SpinorFieldCb<Double>> =
            (0..n).map(|_| SpinorFieldCb::<Double>::new(d, false)).collect();
        dslash_cb_multi(
            &mut split,
            &gauge,
            &inputs,
            Parity::Even,
            &stencil,
            &basis,
            false,
            DslashRegion::Interior,
            &active,
        );
        for dim in 0..4 {
            dslash_cb_multi(
                &mut split,
                &gauge,
                &inputs,
                Parity::Even,
                &stencil,
                &basis,
                false,
                DslashRegion::FacesDim(dim),
                &active,
            );
        }
        for r in 0..n {
            for cb in 0..all[r].sites() {
                assert_eq!(all[r].get(cb), split[r].get(cb), "rhs={r} cb={cb}");
            }
        }
    }

    #[test]
    fn ghost_path_reproduces_periodic_wrap_single_rank() {
        // Fill ghosts by hand with the wrapped data and check the open-
        // boundary dslash equals the closed-boundary one.
        let d = dims();
        let (_, mut gauge, _, dev_open, basis, _) = setup(d);
        let closed = Stencil::new(d, false);
        let open = Stencil::new(d, true);
        let mut expect = SpinorFieldCb::<Double>::new(d, false);
        dslash_cb(
            &mut expect,
            &gauge,
            &dev_open,
            Parity::Even,
            &closed,
            &basis,
            false,
            DslashRegion::All,
        );

        // Build a ghost-bearing copy of the input and populate its end zone
        // with the periodic wrap (self-exchange).
        let mut dev_g = SpinorFieldCb::<Double>::new(d, true);
        for cb in 0..dev_g.sites() {
            dev_g.set(cb, &dev_open.get(cb));
        }
        let half_vs = d.half_spatial_volume();
        for face in 0..half_vs {
            // Backward ghost of this domain = last slice of the (same)
            // domain under periodicity.
            let from_last = gather_face_site(&dev_open, &basis, &open, true, face, false);
            dev_g.set_ghost(true, face, &from_last);
            let from_first = gather_face_site(&dev_open, &basis, &open, false, face, false);
            dev_g.set_ghost(false, face, &from_first);
        }
        // Ghost links: the pad of the T-direction array must hold the links
        // of the last time-slice (periodic self-copy), parity of x−T̂ = Odd.
        let cfgd = d;
        for face in 0..half_vs {
            let cb_last = (cfgd.t - 1) * half_vs + face;
            let u: quda_math::su3::Su3<f64> = gauge.link(Parity::Odd, DIR_T, cb_last).cast();
            gauge.set_ghost_link(Parity::Odd, DIR_T, face, &u);
        }
        let mut got = SpinorFieldCb::<Double>::new(d, false);
        dslash_cb(&mut got, &gauge, &dev_g, Parity::Even, &open, &basis, false, DslashRegion::All);
        for cb in 0..got.sites() {
            let diff = (got.get(cb) - expect.get(cb)).norm_sqr();
            assert!(diff < 1e-22, "cb={cb} diff={diff}");
        }
    }
}
