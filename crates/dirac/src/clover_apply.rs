//! Clover-term application kernels on checkerboard fields.

use quda_fields::precision::Precision;
use quda_fields::{CloverFieldCb, SpinorFieldCb};
use quda_math::clover::CloverBasisMap;

/// `out[cb] = T[cb] · in[cb]` where `T` is a packed clover-type field
/// (either the shifted term `(4+m) + A` or its inverse), applied to spinors
/// stored in the non-relativistic basis.
pub fn clover_apply_cb<P: Precision>(
    out: &mut SpinorFieldCb<P>,
    term: &CloverFieldCb<P>,
    input: &SpinorFieldCb<P>,
    map: &CloverBasisMap,
) {
    assert_eq!(out.sites(), input.sites());
    assert_eq!(term.sites(), input.sites());
    out.fill_sites(|cb| map.apply_nr(&term.get(cb), &input.get(cb)));
}

/// Fused `out[cb] = T[cb]·a[cb] + s·b[cb]` — the final combine of the
/// even-odd preconditioned operator (`s = −¼` against the double hop).
pub fn clover_axpy_cb<P: Precision>(
    out: &mut SpinorFieldCb<P>,
    term: &CloverFieldCb<P>,
    a: &SpinorFieldCb<P>,
    s: P::Arith,
    b: &SpinorFieldCb<P>,
    map: &CloverBasisMap,
) {
    assert_eq!(a.sites(), b.sites());
    out.fill_sites(|cb| map.apply_nr(&term.get(cb), &a.get(cb)) + b.get(cb).scale_re(s));
}

#[cfg(test)]
mod tests {
    use super::*;
    use quda_fields::clover_build::clover_sites_cb;
    use quda_fields::gauge_gen::{random_spinor_field, weak_field};
    use quda_fields::precision::Double;
    use quda_lattice::geometry::{LatticeDims, Parity};

    fn dims() -> LatticeDims {
        LatticeDims::new(4, 4, 2, 4)
    }

    #[test]
    fn identity_term_is_identity() {
        let d = dims();
        let term = CloverFieldCb::<Double>::new(d); // identity sites
        let host = random_spinor_field(d, 3);
        let mut input = SpinorFieldCb::<Double>::new(d, false);
        input.upload(&host, Parity::Even);
        let mut out = SpinorFieldCb::<Double>::new(d, false);
        let map = CloverBasisMap::new();
        clover_apply_cb(&mut out, &term, &input, &map);
        for cb in 0..out.sites() {
            assert!((out.get(cb) - input.get(cb)).norm_sqr() < 1e-24);
        }
    }

    #[test]
    fn apply_then_inverse_is_identity() {
        let d = dims();
        let cfg = weak_field(d, 0.15, 23);
        let sites = clover_sites_cb(&cfg, 1.2, Parity::Odd);
        let mut term = CloverFieldCb::<Double>::new(d);
        let mut inv = CloverFieldCb::<Double>::new(d);
        for (cb, a) in sites.iter().enumerate() {
            let t = a.shifted(4.1);
            term.set(cb, &t);
            inv.set(cb, &t.invert().expect("invertible"));
        }
        let host = random_spinor_field(d, 9);
        let mut x = SpinorFieldCb::<Double>::new(d, false);
        x.upload(&host, Parity::Odd);
        let mut tx = SpinorFieldCb::<Double>::new(d, false);
        let mut back = SpinorFieldCb::<Double>::new(d, false);
        let map = CloverBasisMap::new();
        clover_apply_cb(&mut tx, &term, &x, &map);
        clover_apply_cb(&mut back, &inv, &tx, &map);
        for cb in 0..x.sites() {
            let diff = (back.get(cb) - x.get(cb)).norm_sqr();
            assert!(diff < 1e-18, "cb={cb} diff={diff}");
        }
    }

    #[test]
    fn axpy_fusion_matches_composition() {
        let d = dims();
        let cfg = weak_field(d, 0.1, 2);
        let sites = clover_sites_cb(&cfg, 1.0, Parity::Even);
        let mut term = CloverFieldCb::<Double>::new(d);
        for (cb, a) in sites.iter().enumerate() {
            term.set(cb, &a.shifted(4.0));
        }
        let map = CloverBasisMap::new();
        let ha = random_spinor_field(d, 4);
        let hb = random_spinor_field(d, 6);
        let mut a = SpinorFieldCb::<Double>::new(d, false);
        let mut b = SpinorFieldCb::<Double>::new(d, false);
        a.upload(&ha, Parity::Even);
        b.upload(&hb, Parity::Even);
        let mut fused = SpinorFieldCb::<Double>::new(d, false);
        clover_axpy_cb(&mut fused, &term, &a, -0.25, &b, &map);
        let mut ta = SpinorFieldCb::<Double>::new(d, false);
        clover_apply_cb(&mut ta, &term, &a, &map);
        for cb in 0..a.sites() {
            let expect = ta.get(cb) + b.get(cb).scale_re(-0.25);
            assert!((fused.get(cb) - expect).norm_sqr() < 1e-24);
        }
    }
}
