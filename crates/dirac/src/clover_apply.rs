//! Clover-term application kernels on checkerboard fields.

use crate::dslash::MAX_RHS_BATCH;
use quda_fields::precision::Precision;
use quda_fields::{CloverFieldCb, SpinorFieldCb};
use quda_math::clover::CloverBasisMap;

/// Compact the active lane indices of `active` into `buf`, returning the
/// populated prefix — the branch-free mask idiom shared with
/// [`crate::dslash::dslash_cb_multi`].
fn compact_active(active: &[bool], buf: &mut [usize; MAX_RHS_BATCH]) -> usize {
    let mut n_active = 0;
    for (r, &a) in active.iter().enumerate() {
        if a {
            buf[n_active] = r;
            n_active += 1;
        }
    }
    n_active
}

/// `out[cb] = T[cb] · in[cb]` where `T` is a packed clover-type field
/// (either the shifted term `(4+m) + A` or its inverse), applied to spinors
/// stored in the non-relativistic basis.
pub fn clover_apply_cb<P: Precision>(
    out: &mut SpinorFieldCb<P>,
    term: &CloverFieldCb<P>,
    input: &SpinorFieldCb<P>,
    map: &CloverBasisMap,
) {
    assert_eq!(out.sites(), input.sites());
    assert_eq!(term.sites(), input.sites());
    out.fill_sites(|cb| map.apply_nr(&term.get(cb), &input.get(cb)));
}

/// Fused `out[cb] = T[cb]·a[cb] + s·b[cb]` — the final combine of the
/// even-odd preconditioned operator (`s = −¼` against the double hop).
pub fn clover_axpy_cb<P: Precision>(
    out: &mut SpinorFieldCb<P>,
    term: &CloverFieldCb<P>,
    a: &SpinorFieldCb<P>,
    s: P::Arith,
    b: &SpinorFieldCb<P>,
    map: &CloverBasisMap,
) {
    assert_eq!(a.sites(), b.sites());
    out.fill_sites(|cb| map.apply_nr(&term.get(cb), &a.get(cb)) + b.get(cb).scale_re(s));
}

/// Batched [`clover_apply_cb`]: `outs[r][cb] = T[cb] · ins[r][cb]` for
/// every lane with `active[r]`, decoding the packed clover site once for
/// the whole block — the field-reuse that motivates multi-RHS batching.
///
/// Per active lane the output is bit-identical to [`clover_apply_cb`]
/// (the decoded term is a pure read, and each lane's arithmetic chain is
/// unchanged); inactive slots are untouched.
pub fn clover_apply_cb_multi<P: Precision>(
    outs: &mut [SpinorFieldCb<P>],
    term: &CloverFieldCb<P>,
    ins: &[SpinorFieldCb<P>],
    map: &CloverBasisMap,
    active: &[bool],
) {
    let n = ins.len();
    assert_eq!(outs.len(), n);
    assert_eq!(active.len(), n);
    assert!(n <= MAX_RHS_BATCH, "batch exceeds MAX_RHS_BATCH");
    for (out, input) in outs.iter_mut().zip(ins) {
        assert_eq!(out.sites(), term.sites());
        assert_eq!(input.sites(), term.sites());
    }
    let mut idx_buf = [0usize; MAX_RHS_BATCH];
    let n_active = compact_active(active, &mut idx_buf);
    if n_active == 0 {
        return;
    }
    let idxs = &idx_buf[..n_active];
    (0..term.sites()).for_each(|cb| {
        let t = term.get(cb);
        for &r in idxs {
            let v = map.apply_nr(&t, &ins[r].get(cb));
            outs[r].set(cb, &v);
        }
    });
}

/// Batched [`clover_axpy_cb`]: `outs[r][cb] = T[cb]·as_[r][cb] +
/// s·bs[r][cb]` for every lane with `active[r]`, decoding the packed
/// clover site once for the whole block. Per active lane bit-identical to
/// [`clover_axpy_cb`]; inactive slots are untouched.
pub fn clover_axpy_cb_multi<P: Precision>(
    outs: &mut [SpinorFieldCb<P>],
    term: &CloverFieldCb<P>,
    as_: &[SpinorFieldCb<P>],
    s: P::Arith,
    bs: &[SpinorFieldCb<P>],
    map: &CloverBasisMap,
    active: &[bool],
) {
    let n = as_.len();
    assert_eq!(outs.len(), n);
    assert_eq!(bs.len(), n);
    assert_eq!(active.len(), n);
    assert!(n <= MAX_RHS_BATCH, "batch exceeds MAX_RHS_BATCH");
    for ((out, a), b) in outs.iter_mut().zip(as_).zip(bs) {
        assert_eq!(out.sites(), term.sites());
        assert_eq!(a.sites(), term.sites());
        assert_eq!(b.sites(), term.sites());
    }
    let mut idx_buf = [0usize; MAX_RHS_BATCH];
    let n_active = compact_active(active, &mut idx_buf);
    if n_active == 0 {
        return;
    }
    let idxs = &idx_buf[..n_active];
    (0..term.sites()).for_each(|cb| {
        let t = term.get(cb);
        for &r in idxs {
            let v = map.apply_nr(&t, &as_[r].get(cb)) + bs[r].get(cb).scale_re(s);
            outs[r].set(cb, &v);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use quda_fields::clover_build::clover_sites_cb;
    use quda_fields::gauge_gen::{random_spinor_field, weak_field};
    use quda_fields::precision::Double;
    use quda_lattice::geometry::{LatticeDims, Parity};

    fn dims() -> LatticeDims {
        LatticeDims::new(4, 4, 2, 4)
    }

    #[test]
    fn identity_term_is_identity() {
        let d = dims();
        let term = CloverFieldCb::<Double>::new(d); // identity sites
        let host = random_spinor_field(d, 3);
        let mut input = SpinorFieldCb::<Double>::new(d, false);
        input.upload(&host, Parity::Even);
        let mut out = SpinorFieldCb::<Double>::new(d, false);
        let map = CloverBasisMap::new();
        clover_apply_cb(&mut out, &term, &input, &map);
        for cb in 0..out.sites() {
            assert!((out.get(cb) - input.get(cb)).norm_sqr() < 1e-24);
        }
    }

    #[test]
    fn apply_then_inverse_is_identity() {
        let d = dims();
        let cfg = weak_field(d, 0.15, 23);
        let sites = clover_sites_cb(&cfg, 1.2, Parity::Odd);
        let mut term = CloverFieldCb::<Double>::new(d);
        let mut inv = CloverFieldCb::<Double>::new(d);
        for (cb, a) in sites.iter().enumerate() {
            let t = a.shifted(4.1);
            term.set(cb, &t);
            inv.set(cb, &t.invert().expect("invertible"));
        }
        let host = random_spinor_field(d, 9);
        let mut x = SpinorFieldCb::<Double>::new(d, false);
        x.upload(&host, Parity::Odd);
        let mut tx = SpinorFieldCb::<Double>::new(d, false);
        let mut back = SpinorFieldCb::<Double>::new(d, false);
        let map = CloverBasisMap::new();
        clover_apply_cb(&mut tx, &term, &x, &map);
        clover_apply_cb(&mut back, &inv, &tx, &map);
        for cb in 0..x.sites() {
            let diff = (back.get(cb) - x.get(cb)).norm_sqr();
            assert!(diff < 1e-18, "cb={cb} diff={diff}");
        }
    }

    #[test]
    fn multi_kernels_bit_identical_to_scalar_and_skip_inactive() {
        let d = dims();
        let cfg = weak_field(d, 0.12, 31);
        let sites = clover_sites_cb(&cfg, 1.1, Parity::Even);
        let mut term = CloverFieldCb::<Double>::new(d);
        for (cb, a) in sites.iter().enumerate() {
            term.set(cb, &a.shifted(4.3));
        }
        let map = CloverBasisMap::new();
        let n = 3usize;
        let mut ins = Vec::new();
        let mut bs = Vec::new();
        for k in 0..n {
            let mut f = SpinorFieldCb::<Double>::new(d, false);
            f.upload(&random_spinor_field(d, 40 + k as u64), Parity::Even);
            ins.push(f);
            let mut g = SpinorFieldCb::<Double>::new(d, false);
            g.upload(&random_spinor_field(d, 80 + k as u64), Parity::Even);
            bs.push(g);
        }
        let active = [true, false, true];
        let sentinel = quda_math::spinor::Spinor::point(1, 2).scale_re(7.5);

        let mut outs: Vec<_> = (0..n).map(|_| SpinorFieldCb::<Double>::new(d, false)).collect();
        for out in &mut outs {
            out.fill_sites(|_| sentinel);
        }
        clover_apply_cb_multi(&mut outs, &term, &ins, &map, &active);
        for r in 0..n {
            let mut scalar = SpinorFieldCb::<Double>::new(d, false);
            clover_apply_cb(&mut scalar, &term, &ins[r], &map);
            for cb in 0..term.sites() {
                if active[r] {
                    assert_eq!(outs[r].get(cb), scalar.get(cb), "apply r={r} cb={cb}");
                } else {
                    assert_eq!(outs[r].get(cb), sentinel, "inactive slot touched r={r} cb={cb}");
                }
            }
        }

        let mut outs2: Vec<_> = (0..n).map(|_| SpinorFieldCb::<Double>::new(d, false)).collect();
        clover_axpy_cb_multi(&mut outs2, &term, &ins, -0.25, &bs, &map, &active);
        for r in 0..n {
            if !active[r] {
                continue;
            }
            let mut scalar = SpinorFieldCb::<Double>::new(d, false);
            clover_axpy_cb(&mut scalar, &term, &ins[r], -0.25, &bs[r], &map);
            for cb in 0..term.sites() {
                assert_eq!(outs2[r].get(cb), scalar.get(cb), "axpy r={r} cb={cb}");
            }
        }
    }

    #[test]
    fn axpy_fusion_matches_composition() {
        let d = dims();
        let cfg = weak_field(d, 0.1, 2);
        let sites = clover_sites_cb(&cfg, 1.0, Parity::Even);
        let mut term = CloverFieldCb::<Double>::new(d);
        for (cb, a) in sites.iter().enumerate() {
            term.set(cb, &a.shifted(4.0));
        }
        let map = CloverBasisMap::new();
        let ha = random_spinor_field(d, 4);
        let hb = random_spinor_field(d, 6);
        let mut a = SpinorFieldCb::<Double>::new(d, false);
        let mut b = SpinorFieldCb::<Double>::new(d, false);
        a.upload(&ha, Parity::Even);
        b.upload(&hb, Parity::Even);
        let mut fused = SpinorFieldCb::<Double>::new(d, false);
        clover_axpy_cb(&mut fused, &term, &a, -0.25, &b, &map);
        let mut ta = SpinorFieldCb::<Double>::new(d, false);
        clover_apply_cb(&mut ta, &term, &a, &map);
        for cb in 0..a.sites() {
            let expect = ta.get(cb) + b.get(cb).scale_re(-0.25);
            assert!((fused.get(cb) - expect).norm_sqr() < 1e-24);
        }
    }
}
