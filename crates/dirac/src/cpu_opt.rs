//! An optimized CPU hopping-term implementation — the functional
//! counterpart of the "9q" cluster's "highly optimized SSE routines"
//! (Section VII-C).
//!
//! Unlike the device-layout kernels (which emulate GPU memory behaviour),
//! this path is organized the way a CPU wants: site-major flat `f32`
//! arrays (each site's 24 spinor reals contiguous — one or two cache
//! lines), full 18-real links (no reconstruction arithmetic), precomputed
//! flat neighbor tables, and Rayon parallelism over output sites. It is
//! used to (a) cross-check the exotic layouts against a third independent
//! implementation and (b) measure real sustained per-core Gflops to compare
//! with the 2 Gflops/core the paper reports for Nehalem + SSE.

use quda_fields::host::{GaugeConfig, HostSpinorField};
use quda_lattice::geometry::{LatticeDims, Parity};
use quda_math::gamma::{GammaBasis, SpinBasis};
use quda_math::spinor::Spinor;
use rayon::prelude::*;

/// Reals per site spinor.
const NS: usize = 24;
/// Reals per full link.
const NL: usize = 18;

/// Flat-array single-parity spinor storage (site-major, f32).
#[derive(Clone, Debug)]
pub struct FlatSpinor {
    /// `data[site * 24 + n]`.
    pub data: Vec<f32>,
    /// Sites per parity.
    pub sites: usize,
}

impl FlatSpinor {
    /// Zero field for one parity of `dims`.
    pub fn new(dims: LatticeDims) -> Self {
        let sites = dims.half_volume();
        FlatSpinor { data: vec![0.0; sites * NS], sites }
    }

    /// Import one parity of a host field.
    pub fn from_host(host: &HostSpinorField, parity: Parity) -> Self {
        let dims = host.dims;
        let mut f = Self::new(dims);
        for cb in 0..f.sites {
            let sp = host.get_cb(parity, cb);
            let r = sp.cast::<f32>().to_reals();
            f.data[cb * NS..(cb + 1) * NS].copy_from_slice(&r);
        }
        f
    }

    /// Export to one parity of a host field.
    pub fn to_host(&self, host: &mut HostSpinorField, parity: Parity) {
        for cb in 0..self.sites {
            let sp = Spinor::<f32>::from_reals(&self.data[cb * NS..(cb + 1) * NS]);
            *host.get_cb_mut(parity, cb) = sp.cast();
        }
    }
}

/// The optimized CPU hopping operator for one output parity.
pub struct CpuDslash {
    dims: LatticeDims,
    /// Flat links: `gauge[parity][mu][site * 18 + k]`.
    gauge: [[Vec<f32>; 4]; 2],
    /// Neighbor tables per output parity: `fwd[p][mu][site]`, `bwd[p][mu][site]`.
    fwd: [[Vec<u32>; 4]; 2],
    bwd: [[Vec<u32>; 4]; 2],
    basis: SpinBasis,
}

impl CpuDslash {
    /// Build from a host configuration (closed boundaries: this is the
    /// single-node baseline path).
    pub fn new(cfg: &GaugeConfig) -> Self {
        let dims = cfg.dims;
        let sites = dims.half_volume();
        let mut gauge: [[Vec<f32>; 4]; 2] =
            std::array::from_fn(|_| std::array::from_fn(|_| vec![0.0; sites * NL]));
        for parity in [Parity::Even, Parity::Odd] {
            for cb in 0..sites {
                let c = dims.cb_coord(parity, cb);
                for mu in 0..4 {
                    let u = cfg.link(c, mu);
                    let dst = &mut gauge[parity.as_usize()][mu][cb * NL..(cb + 1) * NL];
                    let mut k = 0;
                    for i in 0..3 {
                        for j in 0..3 {
                            dst[k] = u.m[i][j].re as f32;
                            dst[k + 1] = u.m[i][j].im as f32;
                            k += 2;
                        }
                    }
                }
            }
        }
        let mut fwd: [[Vec<u32>; 4]; 2] =
            std::array::from_fn(|_| std::array::from_fn(|_| Vec::with_capacity(sites)));
        let mut bwd: [[Vec<u32>; 4]; 2] =
            std::array::from_fn(|_| std::array::from_fn(|_| Vec::with_capacity(sites)));
        for parity in [Parity::Even, Parity::Odd] {
            for cb in 0..sites {
                let c = dims.cb_coord(parity, cb);
                for mu in 0..4 {
                    let (f, _) = dims.neighbor(c, mu, true);
                    fwd[parity.as_usize()][mu].push(dims.cb_index(f) as u32);
                    let (b, _) = dims.neighbor(c, mu, false);
                    bwd[parity.as_usize()][mu].push(dims.cb_index(b) as u32);
                }
            }
        }
        CpuDslash { dims, gauge, fwd, bwd, basis: SpinBasis::new(GammaBasis::NonRelativistic) }
    }

    /// Lattice extents.
    pub fn dims(&self) -> LatticeDims {
        self.dims
    }

    /// `out = D ψ` for `out_parity` (reads the opposite parity of `inp`),
    /// parallelized over output sites with Rayon.
    pub fn apply(&self, out: &mut FlatSpinor, inp: &FlatSpinor, out_parity: Parity) {
        let p = out_parity.as_usize();
        let ip = out_parity.other().as_usize();
        let basis = &self.basis;
        let gauge_out = &self.gauge[p];
        let gauge_in = &self.gauge[ip];
        let fwd = &self.fwd[p];
        let bwd = &self.bwd[p];
        let inp_data = &inp.data;
        out.data.par_chunks_mut(NS).enumerate().for_each(|(cb, out_site)| {
            let mut acc = Spinor::<f32>::zero();
            for mu in 0..4 {
                // Forward hop: P−μ U_μ(x) ψ(x+μ).
                let proj_f = &basis.proj[mu][0];
                let n = fwd[mu][cb] as usize;
                let psi = Spinor::<f32>::from_reals(&inp_data[n * NS..(n + 1) * NS]);
                let h = proj_f.project(&psi);
                let u = &gauge_out[mu][cb * NL..(cb + 1) * NL];
                let t = quda_math::spinor::HalfSpinor {
                    h: [mul_link(u, &h.h[0], false), mul_link(u, &h.h[1], false)],
                };
                acc += proj_f.reconstruct(&t);
                // Backward hop: P+μ U†_μ(x−μ) ψ(x−μ).
                let proj_b = &basis.proj[mu][1];
                let n = bwd[mu][cb] as usize;
                let psi = Spinor::<f32>::from_reals(&inp_data[n * NS..(n + 1) * NS]);
                let h = proj_b.project(&psi);
                let u = &gauge_in[mu][n * NL..(n + 1) * NL];
                let t = quda_math::spinor::HalfSpinor {
                    h: [mul_link(u, &h.h[0], true), mul_link(u, &h.h[1], true)],
                };
                acc += proj_b.reconstruct(&t);
            }
            out_site.copy_from_slice(&acc.to_reals());
        });
    }

    /// Effective flops of one application (paper counting, per site).
    pub fn flops_per_apply(&self) -> u64 {
        self.dims.half_volume() as u64 * crate::flops::DSLASH_FLOPS_PER_SITE
    }

    /// Measure sustained effective Gflops over `reps` applications.
    pub fn measure_gflops(&self, reps: usize) -> f64 {
        let mut inp = FlatSpinor::new(self.dims);
        for (i, x) in inp.data.iter_mut().enumerate() {
            *x = ((i * 2_654_435_761) as f32 * 1e-9).sin();
        }
        let mut out = FlatSpinor::new(self.dims);
        let start = std::time::Instant::now();
        for _ in 0..reps {
            self.apply(&mut out, &inp, Parity::Even);
            std::mem::swap(&mut out, &mut inp);
        }
        let secs = start.elapsed().as_secs_f64();
        (self.flops_per_apply() * reps as u64) as f64 / secs / 1e9
    }
}

/// `U v` (or `U† v`) with `U` an 18-real row-major flat link.
#[inline(always)]
fn mul_link(
    u: &[f32],
    v: &quda_math::colorvec::ColorVec<f32>,
    adjoint: bool,
) -> quda_math::colorvec::ColorVec<f32> {
    let mut out = quda_math::colorvec::ColorVec::zero();
    for i in 0..3 {
        let mut re = 0.0f32;
        let mut im = 0.0f32;
        for j in 0..3 {
            let k = if adjoint { (j * 3 + i) * 2 } else { (i * 3 + j) * 2 };
            let (ur, ui) = (u[k], u[k + 1]);
            let (ui_eff, vr, vi) =
                if adjoint { (-ui, v.c[j].re, v.c[j].im) } else { (ui, v.c[j].re, v.c[j].im) };
            re += ur * vr - ui_eff * vi;
            im += ur * vi + ui_eff * vr;
        }
        out.c[i].re = re;
        out.c[i].im = im;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::apply_hopping_host;
    use quda_fields::gauge_gen::{random_spinor_field, weak_field};

    #[test]
    fn matches_reference_hopping() {
        let d = LatticeDims::new(4, 4, 4, 6);
        let cfg = weak_field(d, 0.2, 61);
        let host = random_spinor_field(d, 62);
        let op = CpuDslash::new(&cfg);
        let inp = FlatSpinor::from_host(&host, Parity::Odd);
        let mut out = FlatSpinor::new(d);
        op.apply(&mut out, &inp, Parity::Even);
        let mut got = HostSpinorField::zero(d);
        out.to_host(&mut got, Parity::Even);
        let basis = SpinBasis::new(GammaBasis::NonRelativistic);
        let expect = apply_hopping_host(&cfg, &basis, &host);
        for cb in 0..d.half_volume() {
            let e = expect.get_cb(Parity::Even, cb);
            let g = got.get_cb(Parity::Even, cb);
            let rel = (*g - *e).norm_sqr().sqrt() / e.norm_sqr().sqrt().max(1e-30);
            assert!(rel < 1e-5, "cb={cb} rel={rel}");
        }
    }

    #[test]
    fn roundtrip_host_flat() {
        let d = LatticeDims::new(4, 4, 2, 4);
        let host = random_spinor_field(d, 63);
        let flat = FlatSpinor::from_host(&host, Parity::Even);
        let mut back = HostSpinorField::zero(d);
        flat.to_host(&mut back, Parity::Even);
        for cb in 0..d.half_volume() {
            let diff = (*back.get_cb(Parity::Even, cb) - *host.get_cb(Parity::Even, cb)).max_abs();
            assert!(diff < 1e-6);
        }
    }

    #[test]
    fn sustained_gflops_is_order_one_per_core() {
        // The paper's CPU baseline is ~2 Gflops/core with hand-tuned SSE on
        // 2010 Nehalems; portable Rust on a modern core should land within
        // an order of magnitude (sanity gate, not a performance contract).
        let d = LatticeDims::new(8, 8, 8, 8);
        let cfg = weak_field(d, 0.1, 64);
        let op = CpuDslash::new(&cfg);
        let g = op.measure_gflops(3);
        assert!(g > 0.05, "implausibly slow: {g} Gflops");
        assert!(g < 500.0, "implausibly fast: {g} Gflops");
    }
}
