//! # quda-dirac
//!
//! The Wilson-clover lattice Dirac operator (Eq. 2 of the paper):
//!
//! * [`reference`](mod@reference) — a dense, natural-ordering host implementation used as
//!   ground truth;
//! * [`dslash`] — the optimized checkerboard hopping kernel with rank-2
//!   projectors, compressed links, ghost zones, and interior/face splitting
//!   for communication overlap;
//! * [`clover_apply`] — packed clover-term application;
//! * [`op`] — the single-device operator: full matrix, even-odd (Schur)
//!   preconditioned `M̂`, its dagger and normal form, source preparation
//!   and solution reconstruction;
//! * [`flops`] — the effective operation/byte counts (3696 flops and 2976
//!   single-precision bytes per site, as quoted in Section V-A);
//! * [`cpu_opt`] — a cache-friendly, Rayon-parallel CPU hopping kernel,
//!   the functional stand-in for the "9q" cluster's SSE baseline
//!   (Section VII-C).

#![warn(missing_docs)]

pub mod clover_apply;
pub mod cpu_opt;
pub mod dslash;
pub mod flops;
pub mod op;
pub mod reference;

pub use cpu_opt::{CpuDslash, FlatSpinor};
pub use dslash::{
    dslash_cb, dslash_cb_multi, gather_face_site, gather_face_site_dim, DslashRegion, MAX_RHS_BATCH,
};
pub use op::{WilsonCloverOp, INNER_PARITY, SOLVE_PARITY};
pub use reference::WilsonParams;
