//! The single-device Wilson-clover operator: full matrix and even-odd
//! (Schur) preconditioned form.
//!
//! With `M = (4+m+A) − ½D ≡ T − ½D` and sites split by parity,
//!
//! ```text
//! M = [ T_ee     −½ D_eo ]
//!     [ −½ D_oe   T_oo   ]
//! ```
//!
//! the odd-odd Schur complement is `M̂ = T_oo − ¼ D_oe T_ee⁻¹ D_eo`
//! (Section II: "even-odd preconditioning is used to accelerate the
//! solution finding process ... to solve the Schur complement system").
//! Solving `M̂ x_o = b̂_o` with `b̂_o = b_o + ½ D_oe T_ee⁻¹ b_e` and
//! reconstructing `x_e = T_ee⁻¹ (b_e + ½ D_eo x_o)` solves the full system.

use crate::clover_apply::{clover_apply_cb, clover_axpy_cb};
use crate::dslash::{dslash_cb, DslashRegion};
use crate::flops;
use crate::reference::WilsonParams;
use quda_fields::clover_build::clover_both_parities;
use quda_fields::precision::Precision;
use quda_fields::{CloverFieldCb, GaugeConfig, GaugeFieldCb, SpinorFieldCb};
use quda_lattice::geometry::{LatticeDims, Parity};
use quda_lattice::stencil::Stencil;
use quda_math::clover::CloverBasisMap;
use quda_math::gamma::{GammaBasis, SpinBasis};
use quda_math::real::Real;

/// Which parity the preconditioned system lives on.
pub const SOLVE_PARITY: Parity = Parity::Odd;
/// The inner (eliminated) parity.
pub const INNER_PARITY: Parity = Parity::Even;

/// The single-device Wilson-clover operator with all device-side fields.
pub struct WilsonCloverOp<P: Precision> {
    /// Lattice extents.
    pub dims: LatticeDims,
    /// Mass and clover coefficient.
    pub params: WilsonParams,
    /// Device gauge field (2-row compressed).
    pub gauge: GaugeFieldCb<P>,
    /// Shifted clover term `T = (4+m) + A` per parity.
    pub clover: [CloverFieldCb<P>; 2],
    /// Inverse `T⁻¹` per parity.
    pub clover_inv: [CloverFieldCb<P>; 2],
    /// Neighbor tables (closed boundaries for the single-device op).
    pub stencil: Stencil,
    /// Non-relativistic spin basis.
    pub basis: SpinBasis,
    /// Chiral↔NR conversion for the clover application.
    pub map: CloverBasisMap,
    /// Count of even-odd operator applications (for Gflops reporting).
    pub matpc_count: std::cell::Cell<u64>,
}

impl<P: Precision> WilsonCloverOp<P> {
    /// Build the operator from a host gauge configuration: computes the
    /// clover field, shifts, inverts, and uploads everything at precision
    /// `P`.
    pub fn from_config(cfg: &GaugeConfig, params: WilsonParams) -> Self {
        Self::from_config_with(cfg, params, false, None)
    }

    /// As [`WilsonCloverOp::from_config`], but with control over the
    /// temporal boundary (`t_open = true` for a rank of a partitioned run)
    /// and an optional externally computed clover field (per parity, in
    /// checkerboard order) — needed on a partitioned run because clover
    /// leaves at the slice boundary reach into neighboring domains.
    pub fn from_config_with(
        cfg: &GaugeConfig,
        params: WilsonParams,
        t_open: bool,
        clover_override: Option<[Vec<quda_math::clover::CloverSite<f64>>; 2]>,
    ) -> Self {
        Self::from_config_open(cfg, params, [false, false, false, t_open], clover_override)
    }

    /// As [`WilsonCloverOp::from_config_with`], but with any set of open
    /// (domain-boundary) dimensions — a rank of a 4-d process-grid
    /// decomposition opens every partitioned dimension.
    pub fn from_config_open(
        cfg: &GaugeConfig,
        params: WilsonParams,
        open: [bool; 4],
        clover_override: Option<[Vec<quda_math::clover::CloverSite<f64>>; 2]>,
    ) -> Self {
        let dims = cfg.dims;
        let mut gauge = GaugeFieldCb::<P>::new(dims, true);
        gauge.upload(cfg);
        let clover_sites =
            clover_override.unwrap_or_else(|| clover_both_parities(cfg, params.c_sw));
        let shift = params.diag_shift();
        let mut clover = [CloverFieldCb::<P>::new(dims), CloverFieldCb::<P>::new(dims)];
        let mut clover_inv = [CloverFieldCb::<P>::new(dims), CloverFieldCb::<P>::new(dims)];
        for p in 0..2 {
            for cb in 0..dims.half_volume() {
                let t = clover_sites[p][cb].shifted(shift);
                clover[p].set(cb, &t);
                clover_inv[p].set(cb, &t.invert().expect("shifted clover term must be invertible"));
            }
        }
        WilsonCloverOp {
            dims,
            params,
            gauge,
            clover,
            clover_inv,
            stencil: Stencil::with_open(dims, open),
            basis: SpinBasis::new(GammaBasis::NonRelativistic),
            map: CloverBasisMap::new(),
            matpc_count: std::cell::Cell::new(0),
        }
    }

    /// Allocate a workspace spinor field matching this operator. On a
    /// partitioned run every vector the hopping term may read carries a
    /// ghost zone for each open dimension.
    pub fn alloc_spinor(&self) -> SpinorFieldCb<P> {
        SpinorFieldCb::new_open(self.dims, self.stencil.open)
    }

    /// Apply the hopping term `D` with output on `out_parity`.
    pub fn dslash(
        &self,
        out: &mut SpinorFieldCb<P>,
        input: &SpinorFieldCb<P>,
        out_parity: Parity,
        dagger: bool,
    ) {
        dslash_cb(
            out,
            &self.gauge,
            input,
            out_parity,
            &self.stencil,
            &self.basis,
            dagger,
            DslashRegion::All,
        );
    }

    /// The even-odd preconditioned operator
    /// `out = M̂ ψ = T_oo ψ − ¼ D_oe T_ee⁻¹ D_eo ψ` (dagger variant swaps
    /// the hopping adjoints; `T` terms are Hermitian).
    ///
    /// `tmp` is a caller-provided workspace (the intermediate even-parity
    /// vector); using external workspaces keeps allocation out of the
    /// solver's inner loop.
    pub fn apply_matpc(
        &self,
        out: &mut SpinorFieldCb<P>,
        input: &SpinorFieldCb<P>,
        tmp: &mut SpinorFieldCb<P>,
        tmp2: &mut SpinorFieldCb<P>,
        dagger: bool,
    ) {
        // tmp <- D_eo ψ (even output from odd input).
        self.dslash(tmp, input, INNER_PARITY, dagger);
        // tmp2 <- T_ee⁻¹ tmp.
        clover_apply_cb(tmp2, &self.clover_inv[INNER_PARITY.as_usize()], tmp, &self.map);
        // tmp <- D_oe tmp2 (odd output).
        self.dslash(tmp, tmp2, SOLVE_PARITY, dagger);
        // out <- T_oo ψ − ¼ tmp.
        clover_axpy_cb(
            out,
            &self.clover[SOLVE_PARITY.as_usize()],
            input,
            P::Arith::from_f64(-0.25),
            tmp,
            &self.map,
        );
        self.matpc_count.set(self.matpc_count.get() + 1);
    }

    /// Normal-equations operator `M̂† M̂` (for CGNR).
    pub fn apply_matpc_dag_mat(
        &self,
        out: &mut SpinorFieldCb<P>,
        input: &SpinorFieldCb<P>,
        mid: &mut SpinorFieldCb<P>,
        tmp: &mut SpinorFieldCb<P>,
        tmp2: &mut SpinorFieldCb<P>,
    ) {
        self.apply_matpc(mid, input, tmp, tmp2, false);
        self.apply_matpc(out, mid, tmp, tmp2, true);
    }

    /// Apply the *full* (unpreconditioned) matrix to a two-parity field:
    /// `out_p = T_p ψ_p − ½ D_p,p̄ ψ_p̄` for both parities.
    pub fn apply_full(
        &self,
        out: &mut [SpinorFieldCb<P>; 2],
        input: &[SpinorFieldCb<P>; 2],
        tmp: &mut SpinorFieldCb<P>,
    ) {
        for parity in [Parity::Even, Parity::Odd] {
            let p = parity.as_usize();
            let other = parity.other().as_usize();
            self.dslash(tmp, &input[other], parity, false);
            clover_axpy_cb(
                &mut out[p],
                &self.clover[p],
                &input[p],
                P::Arith::from_f64(-0.5),
                tmp,
                &self.map,
            );
        }
    }

    /// Build the preconditioned source `b̂_o = b_o + ½ D_oe T_ee⁻¹ b_e`.
    pub fn prepare_source(
        &self,
        out: &mut SpinorFieldCb<P>,
        b_even: &SpinorFieldCb<P>,
        b_odd: &SpinorFieldCb<P>,
        tmp: &mut SpinorFieldCb<P>,
        tmp2: &mut SpinorFieldCb<P>,
    ) {
        clover_apply_cb(tmp, &self.clover_inv[INNER_PARITY.as_usize()], b_even, &self.map);
        self.dslash(tmp2, tmp, SOLVE_PARITY, false);
        for cb in 0..out.sites() {
            let v = b_odd.get(cb) + tmp2.get(cb).scale_re(P::Arith::from_f64(0.5));
            out.set(cb, &v);
        }
    }

    /// Reconstruct the even-parity solution
    /// `x_e = T_ee⁻¹ (b_e + ½ D_eo x_o)`.
    pub fn reconstruct_even(
        &self,
        x_even: &mut SpinorFieldCb<P>,
        b_even: &SpinorFieldCb<P>,
        x_odd: &SpinorFieldCb<P>,
        tmp: &mut SpinorFieldCb<P>,
    ) {
        self.dslash(tmp, x_odd, INNER_PARITY, false);
        for cb in 0..tmp.sites() {
            let v = b_even.get(cb) + tmp.get(cb).scale_re(P::Arith::from_f64(0.5));
            tmp.set(cb, &v);
        }
        clover_apply_cb(x_even, &self.clover_inv[INNER_PARITY.as_usize()], tmp, &self.map);
    }

    /// Effective flops performed so far by `apply_matpc` calls.
    pub fn matpc_flops(&self) -> u64 {
        self.matpc_count.get() * self.dims.half_volume() as u64 * flops::MATPC_FLOPS_PER_SITE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::apply_wilson_clover_host;
    use quda_fields::clover_build::clover_both_parities;
    use quda_fields::gauge_gen::{random_spinor_field, weak_field};
    use quda_fields::precision::{Double, Single};
    use quda_fields::HostSpinorField;
    use quda_math::clover::CloverSite;
    use quda_math::complex::C64;

    fn dims() -> LatticeDims {
        LatticeDims::new(4, 4, 4, 4)
    }

    fn params() -> WilsonParams {
        WilsonParams { mass: 0.2, c_sw: 1.0 }
    }

    fn clover_by_lex(cfg: &GaugeConfig, c_sw: f64) -> Vec<CloverSite<f64>> {
        let d = cfg.dims;
        let both = clover_both_parities(cfg, c_sw);
        let mut out = vec![CloverSite::identity(); d.volume()];
        for p in [Parity::Even, Parity::Odd] {
            for cb in 0..d.half_volume() {
                out[d.lex_index(d.cb_coord(p, cb))] = both[p.as_usize()][cb];
            }
        }
        out
    }

    #[test]
    fn full_operator_matches_host_reference() {
        let d = dims();
        let cfg = weak_field(d, 0.15, 31);
        let op = WilsonCloverOp::<Double>::from_config(&cfg, params());
        let host = random_spinor_field(d, 7);
        let mut input = [op.alloc_spinor(), op.alloc_spinor()];
        input[0].upload(&host, Parity::Even);
        input[1].upload(&host, Parity::Odd);
        let mut out = [op.alloc_spinor(), op.alloc_spinor()];
        let mut tmp = op.alloc_spinor();
        op.apply_full(&mut out, &input, &mut tmp);
        let reference = apply_wilson_clover_host(&cfg, &clover_by_lex(&cfg, 1.0), &params(), &host);
        let mut host_out = HostSpinorField::zero(d);
        out[0].download(&mut host_out, Parity::Even);
        out[1].download(&mut host_out, Parity::Odd);
        let dist = host_out.max_site_dist(&reference);
        assert!(dist < 1e-10, "max site distance {dist}");
    }

    #[test]
    fn schur_solution_solves_full_system() {
        // Verify algebra: for any x_o, set b = M [x_e(x_o), x_o] and check
        // M̂ x_o = b̂_o.
        let d = dims();
        let cfg = weak_field(d, 0.1, 13);
        let op = WilsonCloverOp::<Double>::from_config(&cfg, params());
        let host = random_spinor_field(d, 21);
        let mut x = [op.alloc_spinor(), op.alloc_spinor()];
        x[0].upload(&host, Parity::Even);
        x[1].upload(&host, Parity::Odd);
        let mut b = [op.alloc_spinor(), op.alloc_spinor()];
        let mut tmp = op.alloc_spinor();
        op.apply_full(&mut b, &x, &mut tmp);
        // b̂_o.
        let mut bhat = op.alloc_spinor();
        let mut t1 = op.alloc_spinor();
        let mut t2 = op.alloc_spinor();
        op.prepare_source(&mut bhat, &b[0], &b[1], &mut t1, &mut t2);
        // M̂ x_o.
        let mut mx = op.alloc_spinor();
        op.apply_matpc(&mut mx, &x[1], &mut t1, &mut t2, false);
        for cb in 0..mx.sites() {
            let diff = (mx.get(cb) - bhat.get(cb)).norm_sqr();
            assert!(diff < 1e-18, "cb={cb} diff={diff}");
        }
        // And reconstruction returns x_e.
        let mut xe = op.alloc_spinor();
        op.reconstruct_even(&mut xe, &b[0], &x[1], &mut t1);
        for cb in 0..xe.sites() {
            let diff = (xe.get(cb) - x[0].get(cb)).norm_sqr();
            assert!(diff < 1e-18, "cb={cb} diff={diff}");
        }
    }

    #[test]
    fn matpc_dagger_is_adjoint() {
        let d = dims();
        let cfg = weak_field(d, 0.2, 3);
        let op = WilsonCloverOp::<Double>::from_config(&cfg, params());
        let hx = random_spinor_field(d, 1);
        let hy = random_spinor_field(d, 2);
        let mut x = op.alloc_spinor();
        let mut y = op.alloc_spinor();
        x.upload(&hx, SOLVE_PARITY);
        y.upload(&hy, SOLVE_PARITY);
        let mut t1 = op.alloc_spinor();
        let mut t2 = op.alloc_spinor();
        let mut my = op.alloc_spinor();
        op.apply_matpc(&mut my, &y, &mut t1, &mut t2, false);
        let mut mdx = op.alloc_spinor();
        op.apply_matpc(&mut mdx, &x, &mut t1, &mut t2, true);
        let mut lhs = C64::zero();
        let mut rhs = C64::zero();
        for cb in 0..x.sites() {
            lhs += x.get(cb).dot(&my.get(cb));
            rhs += mdx.get(cb).dot(&y.get(cb));
        }
        assert!((lhs.re - rhs.re).abs() < 1e-9 * lhs.re.abs().max(1.0));
        assert!((lhs.im - rhs.im).abs() < 1e-9);
    }

    #[test]
    fn normal_operator_is_positive() {
        let d = dims();
        let cfg = weak_field(d, 0.15, 41);
        let op = WilsonCloverOp::<Double>::from_config(&cfg, params());
        let hx = random_spinor_field(d, 33);
        let mut x = op.alloc_spinor();
        x.upload(&hx, SOLVE_PARITY);
        let mut out = op.alloc_spinor();
        let (mut m, mut t1, mut t2) = (op.alloc_spinor(), op.alloc_spinor(), op.alloc_spinor());
        op.apply_matpc_dag_mat(&mut out, &x, &mut m, &mut t1, &mut t2);
        let mut dot = C64::zero();
        for cb in 0..x.sites() {
            dot += x.get(cb).dot(&out.get(cb));
        }
        assert!(dot.re > 0.0, "<x, M†M x> must be positive, got {}", dot.re);
        assert!(dot.im.abs() < 1e-9 * dot.re);
    }

    #[test]
    fn single_precision_matpc_close_to_double() {
        let d = dims();
        let cfg = weak_field(d, 0.1, 8);
        let op64 = WilsonCloverOp::<Double>::from_config(&cfg, params());
        let op32 = WilsonCloverOp::<Single>::from_config(&cfg, params());
        let host = random_spinor_field(d, 55);
        let mut x64 = op64.alloc_spinor();
        x64.upload(&host, SOLVE_PARITY);
        let mut x32 = op32.alloc_spinor();
        x32.upload(&host, SOLVE_PARITY);
        let (mut o64, mut a64, mut b64) =
            (op64.alloc_spinor(), op64.alloc_spinor(), op64.alloc_spinor());
        op64.apply_matpc(&mut o64, &x64, &mut a64, &mut b64, false);
        let (mut o32, mut a32, mut b32) =
            (op32.alloc_spinor(), op32.alloc_spinor(), op32.alloc_spinor());
        op32.apply_matpc(&mut o32, &x32, &mut a32, &mut b32, false);
        for cb in 0..o64.sites() {
            let hi = o64.get(cb);
            let lo = o32.get(cb).cast::<f64>();
            let rel = (hi - lo).norm_sqr().sqrt() / hi.norm_sqr().sqrt().max(1e-30);
            assert!(rel < 5e-5, "cb={cb} rel={rel}");
        }
    }

    #[test]
    fn flop_accounting_counts_applications() {
        let d = dims();
        let cfg = weak_field(d, 0.1, 8);
        let op = WilsonCloverOp::<Double>::from_config(&cfg, params());
        let x = op.alloc_spinor();
        let (mut o, mut a, mut b) = (op.alloc_spinor(), op.alloc_spinor(), op.alloc_spinor());
        op.apply_matpc(&mut o, &x, &mut a, &mut b, false);
        op.apply_matpc(&mut o, &x, &mut a, &mut b, false);
        assert_eq!(op.matpc_flops(), 2 * d.half_volume() as u64 * 3696);
    }
}
