//! Operation and byte counts for the Wilson-clover kernels.
//!
//! All performance numbers in the paper are "effective Gflops": the
//! operation count of the *logical* algorithm, excluding the extra
//! arithmetic spent reconstructing the third gauge row (Section VII-A).
//! These constants define that effective count and the memory traffic used
//! by the bandwidth model.

/// Effective flops per site of one Wilson dslash application
/// (8 gathers: spin project, SU(3) multiply, reconstruct, accumulate).
pub const DSLASH_FLOPS_PER_SITE: u64 = 1320;

/// Effective flops per site of one packed clover (6×6 Hermitian × 2 blocks)
/// multiply.
pub const CLOVER_FLOPS_PER_SITE: u64 = 504;

/// Flops per site for the final combination `T ψ − ¼ (…)` of the even-odd
/// preconditioned operator (a fused scale-and-subtract over 24 reals).
pub const MATPC_COMBINE_FLOPS_PER_SITE: u64 = 48;

/// Effective flops per (odd) site of one even-odd preconditioned
/// Wilson-clover application `M̂ = T_oo − ¼ D_oe T_ee⁻¹ D_eo`:
/// two dslashes, one clover, one clover inverse, one combine.
///
/// `2·1320 + 2·504 + 48 = 3696` — the figure quoted in Section V-A.
pub const MATPC_FLOPS_PER_SITE: u64 =
    2 * DSLASH_FLOPS_PER_SITE + 2 * CLOVER_FLOPS_PER_SITE + MATPC_COMBINE_FLOPS_PER_SITE;

/// Reals moved per site by one dslash (single-parity output):
/// 8 neighbor spinors at 24 reals, minus the two temporal neighbors that
/// need only 12 (diagonalized `P±4`), plus 8 compressed links at 12 reals,
/// plus the 24-real output store.
pub const DSLASH_REALS_PER_SITE: u64 = 8 * 24 - 2 * 12 + 8 * 12 + 24;

/// Reals moved per site by one clover multiply: 72 packed + 24 in + 24 out.
pub const CLOVER_REALS_PER_SITE: u64 = 72 + 24 + 24;

/// Reals moved per (odd) site of the fused even-odd operator. With kernel
/// fusion the intermediate spinor stays in registers/shared memory, so the
/// count is two dslashes + two clover terms + one extra input read for the
/// `T_oo ψ` term.
pub const MATPC_REALS_PER_SITE: u64 = 2 * DSLASH_REALS_PER_SITE + 2 * 72 + 24;

/// Bytes per site of the fused even-odd operator at a given storage width.
///
/// At 4 bytes (single precision) this evaluates to `2976` — the paper's
/// "2976 bytes of memory traffic in single precision" (Section V-A).
pub const fn matpc_bytes_per_site(storage_bytes: u64) -> u64 {
    MATPC_REALS_PER_SITE * storage_bytes
}

/// Arithmetic intensity (flops per byte) of the fused operator.
pub fn matpc_intensity(storage_bytes: u64) -> f64 {
    MATPC_FLOPS_PER_SITE as f64 / matpc_bytes_per_site(storage_bytes) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_flop_count() {
        assert_eq!(MATPC_FLOPS_PER_SITE, 3696);
    }

    #[test]
    fn matches_paper_byte_count_in_single() {
        assert_eq!(matpc_bytes_per_site(4), 2976);
    }

    #[test]
    fn intensity_matches_paper_ratio() {
        // 3696 flops / 2976 bytes ≈ 1.24 flop/byte — strongly bandwidth
        // bound on a GTX 285 (1062 Gflops / 159 GB/s ≈ 6.7 flop/byte).
        let i = matpc_intensity(4);
        assert!((i - 3696.0 / 2976.0).abs() < 1e-12);
        assert!(i < 6.7);
    }

    #[test]
    fn double_doubles_traffic() {
        assert_eq!(matpc_bytes_per_site(8), 2 * matpc_bytes_per_site(4));
    }
}
