//! Criterion microbenchmarks of the compute kernels: the Wilson-clover
//! hopping term in all three precisions, the clover multiply, the fused
//! blas routines, and the layout/projector primitives they are built from.
//!
//! These measure the *functional* Rust kernels on the host CPU. They do not
//! reproduce GPU numbers (the calibrated model does that); they exist to
//! track the relative cost structure — e.g. dslash ≫ clover ≫ blas per
//! site, and the modest overhead of half-precision (de)quantization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use quda_dirac::dslash::{dslash_cb, DslashRegion};
use quda_dirac::{WilsonCloverOp, WilsonParams};
use quda_fields::gauge_gen::{random_spinor_field, weak_field};
use quda_fields::precision::{Double, Half, Single};
use quda_fields::SpinorFieldCb;
use quda_lattice::geometry::{LatticeDims, Parity};
use quda_lattice::layout::{species, NVec};
use quda_math::gamma::{GammaBasis, SpinBasis};
use quda_solvers::blas::{self, BlasCounters};
use std::hint::black_box;

fn dims() -> LatticeDims {
    LatticeDims::new(8, 8, 8, 8)
}

fn bench_dslash(c: &mut Criterion) {
    let d = dims();
    let cfg = weak_field(d, 0.1, 1);
    let host = random_spinor_field(d, 2);
    let basis = SpinBasis::new(GammaBasis::NonRelativistic);
    let stencil = quda_lattice::stencil::Stencil::new(d, false);
    let mut group = c.benchmark_group("dslash");
    group.throughput(Throughput::Elements(d.half_volume() as u64));
    group.sample_size(10);

    macro_rules! bench_prec {
        ($p:ty, $name:expr) => {{
            let mut gauge = quda_fields::GaugeFieldCb::<$p>::new(d, true);
            gauge.upload(&cfg);
            let mut input = SpinorFieldCb::<$p>::new(d, false);
            input.upload(&host, Parity::Odd);
            let mut out = SpinorFieldCb::<$p>::new(d, false);
            group.bench_function(BenchmarkId::new("full", $name), |b| {
                b.iter(|| {
                    dslash_cb(
                        black_box(&mut out),
                        &gauge,
                        &input,
                        Parity::Even,
                        &stencil,
                        &basis,
                        false,
                        DslashRegion::All,
                    )
                })
            });
        }};
    }
    bench_prec!(Double, "double");
    bench_prec!(Single, "single");
    bench_prec!(Half, "half");
    group.finish();
}

fn bench_matpc(c: &mut Criterion) {
    let d = dims();
    let cfg = weak_field(d, 0.1, 3);
    let host = random_spinor_field(d, 4);
    let mut group = c.benchmark_group("matpc");
    group.throughput(Throughput::Elements(d.half_volume() as u64));
    group.sample_size(10);

    macro_rules! bench_prec {
        ($p:ty, $name:expr) => {{
            let op = WilsonCloverOp::<$p>::from_config(&cfg, WilsonParams { mass: 0.2, c_sw: 1.0 });
            let mut x = op.alloc_spinor();
            x.upload(&host, Parity::Odd);
            let mut out = op.alloc_spinor();
            let (mut t1, mut t2) = (op.alloc_spinor(), op.alloc_spinor());
            group.bench_function($name, |b| {
                b.iter(|| op.apply_matpc(black_box(&mut out), &x, &mut t1, &mut t2, false))
            });
        }};
    }
    bench_prec!(Double, "double");
    bench_prec!(Single, "single");
    bench_prec!(Half, "half");
    group.finish();
}

fn bench_blas(c: &mut Criterion) {
    let d = dims();
    let host = random_spinor_field(d, 5);
    let mut x = SpinorFieldCb::<Single>::new(d, false);
    x.upload(&host, Parity::Odd);
    let mut y = SpinorFieldCb::<Single>::new(d, false);
    y.upload(&host, Parity::Even);
    let mut group = c.benchmark_group("blas");
    group.throughput(Throughput::Elements(d.half_volume() as u64));
    group.sample_size(20);
    let mut counters = BlasCounters::default();
    group.bench_function("axpy", |b| {
        b.iter(|| blas::axpy(0.5, &x, black_box(&mut y), &mut counters))
    });
    group.bench_function("norm2", |b| b.iter(|| black_box(blas::norm2(&x, &mut counters))));
    group.bench_function("cdot", |b| b.iter(|| black_box(blas::cdot(&x, &y, &mut counters))));
    group.bench_function("caxpy_norm", |b| {
        b.iter(|| {
            black_box(blas::caxpy_norm(
                quda_math::complex::C64::new(0.1, -0.2),
                &x,
                black_box(&mut y),
                &mut counters,
            ))
        })
    });
    group.finish();
}

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives");
    // Layout indexing (Eq. 5).
    let d = dims();
    let layout = species::spinor_cb(&d, NVec::N4, true);
    group.bench_function("layout_index", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for site in (0..layout.sites).step_by(7) {
                for n in 0..24 {
                    acc = acc.wrapping_add(layout.index(site, n));
                }
            }
            black_box(acc)
        })
    });
    // Projector roundtrip.
    let basis = SpinBasis::new(GammaBasis::NonRelativistic);
    let sp = random_spinor_field(LatticeDims::new(2, 2, 2, 2), 9).data[0];
    group.bench_function("project_reconstruct", |b| {
        b.iter(|| {
            let mut acc = quda_math::spinor::Spinor::<f64>::zero();
            for mu in 0..4 {
                let p = &basis.proj[mu][1];
                acc += p.reconstruct(&p.project(black_box(&sp)));
            }
            black_box(acc)
        })
    });
    // SU(3) compress/reconstruct.
    let u = weak_field(LatticeDims::new(2, 2, 2, 2), 0.2, 1).links[3];
    group.bench_function("su3_reconstruct", |b| {
        b.iter(|| black_box(black_box(&u).compress().reconstruct()))
    });
    // Half-precision quantization of one spinor.
    let reals: Vec<f32> = (0..24).map(|i| (i as f32 * 0.31).sin()).collect();
    group.bench_function("fixed16_quantize_spinor", |b| {
        b.iter(|| {
            let mut out = [quda_math::half::Fixed16::default(); 24];
            black_box(quda_math::half::quantize_block(black_box(&reals), &mut out))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dslash, bench_matpc, bench_blas, bench_primitives);
criterion_main!(benches);
