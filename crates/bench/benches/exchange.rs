//! Criterion benchmarks of the parallelization machinery itself: face
//! gather/scatter, ghost exchange across thread-ranks, and the parallel
//! operator application in both communication strategies.

use criterion::{criterion_group, criterion_main, Criterion};
use quda_dirac::WilsonParams;
use quda_fields::gauge_gen::{random_spinor_field, weak_field};
use quda_fields::precision::Single;
use quda_fields::SpinorFieldCb;
use quda_lattice::geometry::{LatticeDims, Parity};
use quda_lattice::partition::TimePartition;
use quda_lattice::stencil::Stencil;
use quda_math::gamma::{GammaBasis, SpinBasis};
use quda_multigpu::rank_op::{CommStrategy, ParallelWilsonCloverOp};
use std::hint::black_box;

fn dims() -> LatticeDims {
    LatticeDims::new(8, 8, 8, 8)
}

fn bench_ghost_exchange(c: &mut Criterion) {
    let d = dims();
    let host = random_spinor_field(d, 1);
    let basis = SpinBasis::new(GammaBasis::NonRelativistic);
    let stencil = Stencil::new(d, true);
    let mut group = c.benchmark_group("ghost");
    group.sample_size(20);
    group.bench_function("self_exchange_single", |b| {
        let mut world = quda_comm::comm_world(1);
        let mut comm = world.pop().unwrap();
        let mut f = SpinorFieldCb::<Single>::new(d, true);
        f.upload(&host, Parity::Odd);
        b.iter(|| {
            quda_multigpu::exchange_spinor_ghosts(
                black_box(&mut comm),
                &mut f,
                &basis,
                &stencil,
                false,
            )
            .expect("exchange")
        })
    });
    group.finish();
}

fn bench_parallel_matpc(c: &mut Criterion) {
    let d = dims();
    let cfg = weak_field(d, 0.1, 5);
    let wp = WilsonParams { mass: 0.2, c_sw: 1.0 };
    let part = TimePartition::new(d, 1);
    let mut group = c.benchmark_group("parallel_matpc");
    group.sample_size(10);
    for strategy in [CommStrategy::NoOverlap, CommStrategy::Overlap] {
        let mut world = quda_comm::comm_world(1);
        let comm = world.pop().unwrap();
        let mut op = ParallelWilsonCloverOp::<Single>::new(&cfg, part, 0, comm, wp, strategy)
            .expect("op init");
        let host = random_spinor_field(d, 6);
        let mut x = quda_solvers::operator::LinearOperator::alloc(&op);
        x.upload(&host, Parity::Odd);
        let mut out = quda_solvers::operator::LinearOperator::alloc(&op);
        let name = format!("{strategy:?}");
        group.bench_function(&name, |b| {
            b.iter(|| op.apply_matpc_par(black_box(&mut out), &mut x, false))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ghost_exchange, bench_parallel_matpc);
criterion_main!(benches);
