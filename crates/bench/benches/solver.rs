//! Criterion benchmarks of complete solves in the paper's precision modes,
//! plus the reliable-updates vs defect-correction ablation (Section V-D).

use criterion::{criterion_group, criterion_main, Criterion};
use quda_dirac::{WilsonCloverOp, WilsonParams};
use quda_fields::gauge_gen::{random_spinor_field, weak_field};
use quda_fields::precision::{Double, Half, Single};
use quda_lattice::geometry::{LatticeDims, Parity};
use quda_solvers::operator::MatPcOp;
use quda_solvers::params::SolverParams;
use quda_solvers::{bicgstab, bicgstab_defect_correction, bicgstab_reliable, blas, cgnr};
use std::hint::black_box;

fn dims() -> LatticeDims {
    LatticeDims::new(4, 4, 4, 8)
}

fn bench_uniform_solvers(c: &mut Criterion) {
    let d = dims();
    let cfg = weak_field(d, 0.12, 31);
    let wp = WilsonParams { mass: 0.25, c_sw: 1.0 };
    let host = random_spinor_field(d, 32);
    let mut group = c.benchmark_group("solve_uniform");
    group.sample_size(10);

    let mut op64 = MatPcOp::new(WilsonCloverOp::<Double>::from_config(&cfg, wp));
    let mut b64 = quda_solvers::operator::LinearOperator::alloc(&op64);
    b64.upload(&host, Parity::Odd);
    group.bench_function("bicgstab_double_1e-10", |b| {
        b.iter(|| {
            let mut x = quda_solvers::operator::LinearOperator::alloc(&op64);
            blas::zero(&mut x);
            black_box(bicgstab(
                &mut op64,
                &mut x,
                &b64,
                &SolverParams { tol: 1e-10, max_iter: 500, delta: 0.0 },
            ))
        })
    });
    group.bench_function("cgnr_double_1e-10", |b| {
        b.iter(|| {
            let mut x = quda_solvers::operator::LinearOperator::alloc(&op64);
            blas::zero(&mut x);
            black_box(cgnr(
                &mut op64,
                &mut x,
                &b64,
                &SolverParams { tol: 1e-10, max_iter: 1000, delta: 0.0 },
            ))
        })
    });

    let mut op32 = MatPcOp::new(WilsonCloverOp::<Single>::from_config(&cfg, wp));
    let mut b32 = quda_solvers::operator::LinearOperator::alloc(&op32);
    b32.upload(&host, Parity::Odd);
    group.bench_function("bicgstab_single_1e-5", |b| {
        b.iter(|| {
            let mut x = quda_solvers::operator::LinearOperator::alloc(&op32);
            blas::zero(&mut x);
            black_box(bicgstab(
                &mut op32,
                &mut x,
                &b32,
                &SolverParams { tol: 1e-5, max_iter: 500, delta: 0.0 },
            ))
        })
    });
    group.finish();
}

fn bench_mixed_solvers(c: &mut Criterion) {
    let d = dims();
    let cfg = weak_field(d, 0.12, 41);
    let wp = WilsonParams { mass: 0.25, c_sw: 1.0 };
    let host = random_spinor_field(d, 42);
    let mut group = c.benchmark_group("solve_mixed");
    group.sample_size(10);

    let mut hi = MatPcOp::new(WilsonCloverOp::<Double>::from_config(&cfg, wp));
    let mut lo_half = MatPcOp::new(WilsonCloverOp::<Half>::from_config(&cfg, wp));
    let mut lo_single = MatPcOp::new(WilsonCloverOp::<Single>::from_config(&cfg, wp));
    let mut b = quda_solvers::operator::LinearOperator::alloc(&hi);
    b.upload(&host, Parity::Odd);
    let params = SolverParams { tol: 1e-10, max_iter: 3000, delta: 1e-2 };

    group.bench_function("reliable_double_half", |bch| {
        bch.iter(|| {
            let mut x = quda_solvers::operator::LinearOperator::alloc(&hi);
            blas::zero(&mut x);
            black_box(bicgstab_reliable(&mut hi, &mut lo_half, &mut x, &b, &params))
        })
    });
    group.bench_function("reliable_double_single", |bch| {
        bch.iter(|| {
            let mut x = quda_solvers::operator::LinearOperator::alloc(&hi);
            blas::zero(&mut x);
            black_box(bicgstab_reliable(&mut hi, &mut lo_single, &mut x, &b, &params))
        })
    });
    group.bench_function("defect_correction_double_single", |bch| {
        bch.iter(|| {
            let mut x = quda_solvers::operator::LinearOperator::alloc(&hi);
            blas::zero(&mut x);
            black_box(bicgstab_defect_correction(
                &mut hi,
                &mut lo_single,
                &mut x,
                &b,
                &params,
                1e-2,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_uniform_solvers, bench_mixed_solvers);
criterion_main!(benches);
