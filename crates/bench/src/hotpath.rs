//! Measured wall-clock kernel times for the hot-path refactor
//! (`fig_hotpath` in `BENCH_baseline.json`).
//!
//! Methodology: every interval is taken with [`quda_obs::clock::monotonic`]
//! — the workspace's single sanctioned wall-clock source — and each kernel
//! is timed as the **best of `REPS` repetitions** of `INNER` back-to-back
//! calls, which suppresses scheduler noise without averaging in cold-cache
//! outliers. The streamed kernels are the production `quda_solvers::blas`
//! entry points after the `cargo xtask hotpath` refactor (block-slice
//! streaming with stack tile reductions); the `naive_*` references below
//! re-create the pre-refactor shape — one `get`/`set` round trip per site —
//! and live in this bench crate precisely because the hotpath pass bans
//! that shape from the hot crates. Both variants are bit-identical by
//! construction (same arithmetic, same order), so the ratio is pure
//! memory-path speedup.
//!
//! All numbers are host-dependent and informational, like
//! `measured_wall_seconds`; the committed baseline pins the *methodology*
//! and the shape of the section, not the timings.

use quda_dirac::{dslash_cb, DslashRegion};
use quda_fields::gauge_gen::{random_spinor_field, weak_field};
use quda_fields::precision::{Double, Precision};
use quda_fields::{GaugeFieldCb, SpinorFieldCb};
use quda_lattice::geometry::{LatticeDims, Parity};
use quda_lattice::stencil::Stencil;
use quda_math::gamma::{GammaBasis, SpinBasis};
use quda_math::real::Real;
use quda_math::spinor::HALF_SPINOR_REALS;
use quda_obs::clock;
use quda_solvers::blas::{self, BlasCounters};

/// Timed repetitions per kernel (the minimum is reported).
const REPS: usize = 15;
/// Back-to-back kernel calls inside one timed interval.
const INNER: usize = 8;

/// Best-of-`REPS` wall time of `INNER` calls of `f`, in microseconds per
/// call.
fn time_us(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = clock::monotonic();
        for _ in 0..INNER {
            f();
        }
        let dt = clock::monotonic().saturating_sub(t0);
        best = best.min(dt.as_secs_f64());
    }
    best / INNER as f64 * 1e6
}

/// Pre-refactor `axpy` shape: one full get/scale/add/set round trip per
/// site through the layout indexer.
fn naive_axpy<P: Precision>(a: f64, x: &SpinorFieldCb<P>, y: &mut SpinorFieldCb<P>) {
    let a = P::Arith::from_f64(a);
    for cb in 0..x.sites() {
        let v = y.get(cb) + x.get(cb).scale_re(a);
        y.set(cb, &v);
    }
}

/// Pre-refactor `xmy_norm` shape: per-site subtract plus a per-site spinor
/// norm accumulated in site order (the exact fold the streamed kernel
/// reproduces tile-wise).
fn naive_xmy_norm<P: Precision>(x: &SpinorFieldCb<P>, y: &mut SpinorFieldCb<P>) -> f64 {
    let mut acc = 0.0;
    for cb in 0..x.sites() {
        let v = x.get(cb) - y.get(cb);
        y.set(cb, &v);
        acc += v.norm_sqr();
    }
    acc
}

fn json_kernel(name: &str, streamed_us: f64, naive_us: f64, comma: &str) -> String {
    format!(
        "    \"{name}\": {{\"streamed_us\": {streamed_us:.1}, \"naive_us\": {naive_us:.1}, \
         \"speedup\": {:.2}}}{comma}",
        naive_us / streamed_us
    )
}

/// Render the `fig_hotpath` JSON object (measured kernel walls).
pub fn fig_hotpath_json() -> String {
    let d = LatticeDims::new(16, 16, 16, 32);
    let cfg = weak_field(d, 0.1, 77);
    let host_x = random_spinor_field(d, 3);
    let host_y = random_spinor_field(d, 4);
    let mut x = SpinorFieldCb::<Double>::new(d, true);
    let mut y = SpinorFieldCb::<Double>::new(d, true);
    x.upload(&host_x, Parity::Odd);
    y.upload(&host_y, Parity::Odd);
    let mut c = BlasCounters::default();

    // BLAS: streamed production kernels vs the banned per-site shape.
    let axpy_streamed = time_us(|| blas::axpy(0.5, &x, &mut y, &mut c));
    let axpy_naive = time_us(|| naive_axpy(0.5, &x, &mut y));
    let xmy_streamed = time_us(|| {
        blas::xmy_norm(&x, &mut y, &mut c);
    });
    let xmy_naive = time_us(|| {
        naive_xmy_norm(&x, &mut y);
    });

    // Dslash with an open temporal boundary, interior region only — the
    // kernel the overlap strategy runs while faces are in flight.
    let mut gauge = GaugeFieldCb::<Double>::new(d, true);
    gauge.upload(&cfg);
    let stencil = Stencil::new(d, true);
    let basis = SpinBasis::new(GammaBasis::NonRelativistic);
    let mut out = SpinorFieldCb::<Double>::new(d, true);
    let dslash_us = time_us(|| {
        dslash_cb(&mut out, &gauge, &x, Parity::Even, &stencil, &basis, false, DslashRegion::All);
    });
    let dslash_interior_us = time_us(|| {
        dslash_cb(
            &mut out,
            &gauge,
            &x,
            Parity::Even,
            &stencil,
            &basis,
            false,
            DslashRegion::Interior,
        );
    });

    // Face codec round trip at double precision: encode one temporal face,
    // decode it back into a reused scratch buffer (the `decode_face_into`
    // form the scratch-reuse rule mandates).
    let sites = d.half_spatial_volume();
    let values: Vec<f64> =
        (0..sites * HALF_SPINOR_REALS).map(|i| ((i * 37 % 101) as f64 - 50.0) * 0.01).collect();
    let mut decoded = Vec::with_capacity(values.len());
    let codec_us = time_us(|| {
        let wire = quda_multigpu::encode_face::<Double>(&values);
        quda_multigpu::decode_face_into::<Double>(&wire, sites, &mut decoded)
            .expect("roundtrip decode");
    });

    format!(
        "{{\n    \"comment\": \"best-of-{REPS} wall times over {INNER}-call intervals, \
         quda-obs monotonic clock; naive = per-site get/set reference kernels kept in the \
         bench crate (the shape `cargo xtask hotpath` bans from hot crates); host-dependent, \
         informational only\",\n    \
         \"lattice\": \"16x16x16x32\", \"precision\": \"double\",\n\
         {}\n{}\n    \
         \"dslash_all_us\": {dslash_us:.1},\n    \
         \"dslash_interior_us\": {dslash_interior_us:.1},\n    \
         \"face_codec_roundtrip_us\": {codec_us:.1}\n  }}",
        json_kernel("axpy", axpy_streamed, axpy_naive, ","),
        json_kernel("xmy_norm", xmy_streamed, xmy_naive, ","),
    )
}
