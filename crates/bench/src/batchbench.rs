//! Measured multi-RHS batching throughput (`fig_batch` in
//! `BENCH_baseline.json`).
//!
//! Two levels, one claim (DESIGN.md §14): the inversion service dispatches
//! one batched solve instead of `N` independent ones, and every member of
//! the batch is **bit-identical** to the solve it would have gotten alone.
//!
//! * `solve` rows (the headline): wall time of one [`Quda::invert_multi`]
//!   call against `N` back-to-back [`Quda::invert`] calls on the same
//!   2-rank domain decomposition. Everything a request pays once per
//!   *solve* — per-rank gauge upload and stencil build, communicator world
//!   setup and teardown, and one ghost-exchange synchronization round per
//!   sweep — is paid once per *batch* instead, which is where the
//!   service's throughput comes from. `bit_identical` checks every batched
//!   solution and iteration count against its sequential counterpart.
//! * `dslash` rows (informational): a single whole-batch
//!   [`dslash_cb_multi`] sweep against `N` [`dslash_cb`] launches. This
//!   isolates the kernel-level gauge-read amortization (Eq. 3–5). On real
//!   accelerators this is bandwidth-bound and batching wins outright; in
//!   this scalar CPU reproduction the per-RHS arithmetic — fixed
//!   bit-for-bit by the equivalence contract — dominates, so the ratio
//!   hovers near 1 and the solve-level rows carry the figure.
//!
//! Clock methodology matches [`crate::hotpath`]: best of `REPS`
//! repetitions on [`quda_obs::clock::monotonic`]. Timings are
//! host-dependent and informational; `bit_identical` and the section
//! shape are the committed baseline's contract.

use quda_core::{PrecisionMode, Quda, QudaInvertParam};
use quda_dirac::{dslash_cb, dslash_cb_multi, DslashRegion, MAX_RHS_BATCH};
use quda_fields::gauge_gen::{random_spinor_field, weak_field};
use quda_fields::precision::{Double, Half, Precision};
use quda_fields::{GaugeFieldCb, SpinorFieldCb};
use quda_lattice::geometry::{LatticeDims, Parity};
use quda_lattice::stencil::Stencil;
use quda_math::gamma::{GammaBasis, SpinBasis};
use quda_obs::clock;

/// Timed repetitions per shape (the minimum is reported).
const REPS: usize = 3;

/// Best-of-`REPS` wall time of one call of `f`, in microseconds.
fn time_us(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = clock::monotonic();
        f();
        let dt = clock::monotonic().saturating_sub(t0);
        best = best.min(dt.as_secs_f64());
    }
    best * 1e6
}

/// Per-mode tolerance: tight for pure double, the mixed-precision paper
/// tolerance otherwise.
fn tol_for(mode: PrecisionMode) -> f64 {
    match mode {
        PrecisionMode::Double => 1e-10,
        _ => 2e-6,
    }
}

/// Time one full batched solve against `n` sequential solves; returns
/// `(batched_us, sequential_us, bit_identical)` where the microseconds
/// cover the *whole batch* and `bit_identical` also requires equal
/// iteration counts per member.
fn measure_solve(mode: PrecisionMode, n: usize) -> (f64, f64, bool) {
    let dims = LatticeDims::new(4, 4, 2, 8);
    let cfg = weak_field(dims, 0.15, 51);
    let sources: Vec<_> = (0..n).map(|k| random_spinor_field(dims, 60 + k as u64)).collect();
    let mut quda = Quda::new(2).expect("context");
    quda.load_gauge(cfg).expect("gauge load");
    let param = QudaInvertParam::paper_mode(mode, 2).with_mass(0.3).with_tol(tol_for(mode));

    let batched_us = time_us(|| {
        quda.invert_multi(&sources, &param).expect("batched invert");
    });
    let sequential_us = time_us(|| {
        for s in &sources {
            quda.invert(s, &param).expect("sequential invert");
        }
    });

    let multi = quda.invert_multi(&sources, &param).expect("batched invert");
    let mut bit_identical = true;
    for (k, s) in sources.iter().enumerate() {
        let (x, rep) = quda.invert(s, &param).expect("sequential invert");
        let (xm, repm) = &multi[k];
        bit_identical &= rep.converged
            && repm.converged
            && repm.iterations == rep.iterations
            && xm.max_site_dist(&x) == 0.0;
    }
    (batched_us, sequential_us, bit_identical)
}

/// Time one precision at one batch size at the kernel level; returns
/// `(batched_us, sequential_us, bit_identical)` where the microseconds
/// cover one whole-batch sweep.
fn measure_dslash<P: Precision>(dims: LatticeDims, n: usize) -> (f64, f64, bool) {
    let cfg = weak_field(dims, 0.1, 77);
    let mut gauge = GaugeFieldCb::<P>::new(dims, true);
    gauge.upload(&cfg);
    let stencil = Stencil::new(dims, true);
    let basis = SpinBasis::new(GammaBasis::NonRelativistic);

    let mut inputs = Vec::with_capacity(n);
    let mut outs_batched = Vec::with_capacity(n);
    let mut outs_seq = Vec::with_capacity(n);
    for r in 0..n {
        let host = random_spinor_field(dims, 40 + r as u64);
        let mut x = SpinorFieldCb::<P>::new(dims, true);
        x.upload(&host, Parity::Odd);
        inputs.push(x);
        outs_batched.push(SpinorFieldCb::<P>::new(dims, true));
        outs_seq.push(SpinorFieldCb::<P>::new(dims, true));
    }
    let active = vec![true; n];

    let batched_us = time_us(|| {
        dslash_cb_multi(
            &mut outs_batched,
            &gauge,
            &inputs,
            Parity::Even,
            &stencil,
            &basis,
            false,
            DslashRegion::All,
            &active,
        );
    });
    let sequential_us = time_us(|| {
        for r in 0..n {
            dslash_cb(
                &mut outs_seq[r],
                &gauge,
                &inputs[r],
                Parity::Even,
                &stencil,
                &basis,
                false,
                DslashRegion::All,
            );
        }
    });

    let mut bit_identical = true;
    for r in 0..n {
        for cb in 0..outs_batched[r].sites() {
            if (outs_batched[r].get(cb) - outs_seq[r].get(cb)).norm_sqr() != 0.0 {
                bit_identical = false;
            }
        }
    }
    (batched_us, sequential_us, bit_identical)
}

fn render_row(n: usize, batched_us: f64, sequential_us: f64, bit_identical: bool) -> String {
    format!(
        "      {{\"batch\": {n}, \"batched_us\": {batched_us:.1}, \
         \"sequential_us\": {sequential_us:.1}, \"throughput_ratio\": {:.2}, \
         \"bit_identical\": {bit_identical}}}",
        sequential_us / batched_us
    )
}

/// Render the `fig_batch` JSON object (measured batched-inversion and
/// batched-Dslash walls).
pub fn fig_batch_json() -> String {
    let batches = [1usize, 4, MAX_RHS_BATCH];
    let mut out = String::from("{\n");
    out.push_str(
        "    \"comment\": \"whole-batch walls, ratio is sequential/batched at equal work; \
         bit_identical is a functional check. solve rows: one invert_multi vs N inverts \
         (2 ranks, 4x4x2x8) - amortization grows with batch and crosses 1.5x at the \
         service's full batch of 8 on this host; dslash rows: one batched sweep vs N \
         launches (16x16x16x32, informational - per-RHS arithmetic is fixed bit-for-bit, \
         so the scalar CPU kernel ratio stays near 1 while the solve amortizes setup \
         and comm)\",\n",
    );
    for (name, mode) in
        [("solve_double", PrecisionMode::Double), ("solve_single_half", PrecisionMode::SingleHalf)]
    {
        out.push_str(&format!("    \"{name}\": [\n"));
        for (i, &n) in batches.iter().enumerate() {
            let comma = if i == batches.len() - 1 { "" } else { "," };
            let (b, s, ok) = measure_solve(mode, n);
            out.push_str(&render_row(n, b, s, ok));
            out.push_str(comma);
            out.push('\n');
        }
        out.push_str("    ],\n");
    }
    let dims = LatticeDims::new(16, 16, 16, 32);
    for (pi, prec) in ["dslash_double", "dslash_half"].iter().enumerate() {
        out.push_str(&format!("    \"{prec}\": [\n"));
        for (i, &n) in batches.iter().enumerate() {
            let comma = if i == batches.len() - 1 { "" } else { "," };
            let (b, s, ok) = match pi {
                0 => measure_dslash::<Double>(dims, n),
                _ => measure_dslash::<Half>(dims, n),
            };
            out.push_str(&render_row(n, b, s, ok));
            out.push_str(comma);
            out.push('\n');
        }
        let comma = if pi == 1 { "" } else { "," };
        out.push_str(&format!("    ]{comma}\n"));
    }
    out.push_str("  }");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_sweep_is_bit_identical_at_both_precisions() {
        let d = LatticeDims::new(4, 4, 4, 8);
        let (_, _, ok_d) = measure_dslash::<Double>(d, 4);
        let (_, _, ok_h) = measure_dslash::<Half>(d, 4);
        assert!(ok_d && ok_h);
    }

    #[test]
    fn batched_solve_is_bit_identical_to_sequential() {
        let (_, _, ok) = measure_solve(PrecisionMode::Double, 2);
        assert!(ok);
    }
}
