//! Ablation: GT200's single copy engine vs Fermi's dual engines
//! (Section VI-D2, footnote 4: "The Fermi architecture improves upon this
//! model by allowing for bidirectional transfers over the PCI-E bus").
//!
//! Rerun the Fig. 5(b) strong-scaling shape with a Tesla C2050 in place of
//! the GTX 285: the overlapped strategy recovers because H2D transfers no
//! longer queue behind D2H on one engine.

use quda_gpusim::cards::card_table;
use quda_lattice::geometry::LatticeDims;
use quda_multigpu::perf::{evaluate, PerfInput};
use quda_multigpu::rank_op::CommStrategy;
use quda_multigpu::PrecisionMode;

fn main() {
    let global = LatticeDims::spatial_cube(24, 128);
    let cards: Vec<_> = card_table()
        .into_iter()
        .filter(|c| c.name.contains("285") || c.name.contains("2050"))
        .collect();
    for card in &cards {
        println!(
            "{} ({} copy engine{}), V = 24^3x128, single-half:",
            card.name,
            card.copy_engines,
            if card.copy_engines > 1 { "s" } else { "" }
        );
        println!(
            "  {:>5} {:>14} {:>14} {:>12}",
            "GPUs", "overlap Gflops", "no-ovl Gflops", "ovl gain"
        );
        for gpus in [8usize, 16, 32] {
            let mut ov =
                PerfInput::paper(global, gpus, PrecisionMode::SingleHalf, CommStrategy::Overlap);
            ov.gpu = *card;
            let mut no =
                PerfInput::paper(global, gpus, PrecisionMode::SingleHalf, CommStrategy::NoOverlap);
            no.gpu = *card;
            let ov_r = evaluate(&ov);
            let no_r = evaluate(&no);
            println!(
                "  {:>5} {:>14.0} {:>14.0} {:>11.1}%",
                gpus,
                ov_r.sustained_gflops,
                no_r.sustained_gflops,
                100.0 * (ov_r.sustained_gflops / no_r.sustained_gflops - 1.0)
            );
        }
        println!();
    }
    println!("paper: 'we await future hardware and software improvements' — Fermi's");
    println!("second copy engine removes part of the overlap penalty seen in Fig. 5(b).");
}
