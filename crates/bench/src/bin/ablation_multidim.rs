//! Future-work extension (Section VI-A / VIII): 1-d vs multi-d decomposition.
//!
//! "If one were to attempt to scale to hundreds of GPUs or more,
//! multi-dimensional parallelization would clearly be needed to keep the
//! local surface to volume ratio under control." This harness scans GPU
//! counts on the 32^3x256 lattice and reports the best (X,Y,Z,T) process
//! grid at each, showing where the 1-d slicing stops being optimal and
//! where it stops being possible.

use quda_lattice::geometry::LatticeDims;
use quda_multigpu::multidim::{best_grid, sustained_gflops_grid, ProcessGrid};
use quda_multigpu::perf::PerfInput;
use quda_multigpu::rank_op::CommStrategy;
use quda_multigpu::PrecisionMode;

fn main() {
    let global = LatticeDims::spatial_cube(32, 256);
    println!("1-d (T-only) vs best 4-d (X,Y,Z,T) grid, V = 32^3x256, single precision, no overlap");
    println!(
        "{:>6} {:>14} {:>14} {:>12} {:>10}",
        "GPUs", "T-only Gflops", "best Gflops", "best grid", "md gain"
    );
    for log2 in 2..=9 {
        let ranks = 1usize << log2;
        let inp = PerfInput::paper(
            global,
            ranks.clamp(1, 128),
            PrecisionMode::Single,
            CommStrategy::NoOverlap,
        );
        // PerfInput's own ranks field is unused by the grid model except
        // for the global dims; pass grids explicitly.
        let t_only = sustained_gflops_grid(&inp, ProcessGrid::one_d(ranks));
        let best = best_grid(&inp, ranks);
        match (t_only, best) {
            (Some(t), Some((g, b))) => println!(
                "{ranks:>6} {t:>14.0} {b:>14.0} {:>12} {:>9.1}%",
                g.to_string(),
                100.0 * (b / t - 1.0)
            ),
            (None, Some((g, b))) => {
                println!("{ranks:>6} {:>14} {b:>14.0} {:>12} {:>10}", "-", g.to_string(), "-")
            }
            _ => println!("{ranks:>6} no valid grid"),
        }
    }
    println!("\npaper: the 1-d slice was chosen for the asymmetric production lattices and");
    println!("simplicity; beyond ~T/4 GPUs the surface/volume ratio favors a 2-d grid,");
    println!("and past T/2 the 1-d slice is impossible (local T extent < 2).");
}
