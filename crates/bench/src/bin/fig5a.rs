//! Fig. 5(a): strong scaling on V = 32³×256, single and single-half, with
//! and without overlapping communication and computation, plus the
//! deliberately-bad NUMA placement curve.
//!
//! Paper landmarks: overlap increasingly helps at scale; the mixed solver
//! needs >= 8 GPUs (memory footprint); >3 Tflops at 32 GPUs; bad NUMA
//! placement visibly lowers the curve (Sections VII-C, VII-D).

use quda_bench::{curve_point, header, row, PAPER_GPU_COUNTS};
use quda_gpusim::transfer::NumaPlacement;
use quda_lattice::geometry::LatticeDims;
use quda_multigpu::perf::{evaluate, PerfInput};
use quda_multigpu::rank_op::CommStrategy;
use quda_multigpu::PrecisionMode;

fn main() {
    let global = LatticeDims::spatial_cube(32, 256);
    header(
        "Fig. 5(a) — strong scaling, V = 32^3x256 (memory-feasible points only)",
        &["sgl/no-ovl", "mix/no-ovl", "sgl/ovl", "mix/ovl", "mix/ovl-badNUMA"],
    );
    for gpus in PAPER_GPU_COUNTS {
        let bad_numa = {
            if global.t % gpus == 0 {
                let mut inp = PerfInput::paper(
                    global,
                    gpus,
                    PrecisionMode::SingleHalf,
                    CommStrategy::Overlap,
                );
                inp.numa = NumaPlacement::Bad;
                let r = evaluate(&inp);
                if r.fits_memory {
                    Some(r.sustained_gflops)
                } else {
                    None
                }
            } else {
                None
            }
        };
        let vals = [
            curve_point(global, gpus, PrecisionMode::Single, CommStrategy::NoOverlap, true),
            curve_point(global, gpus, PrecisionMode::SingleHalf, CommStrategy::NoOverlap, true),
            curve_point(global, gpus, PrecisionMode::Single, CommStrategy::Overlap, true),
            curve_point(global, gpus, PrecisionMode::SingleHalf, CommStrategy::Overlap, true),
            bad_numa,
        ];
        println!("{gpus:>6} {}", row(&vals));
    }
    println!("\npaper: mixed precision requires >= 8 GPUs (footprint of both precisions);");
    println!("uniform single runs already on 4; >3 Tflops sustained at 32 GPUs;");
    println!("overlapped > non-overlapped, growing with GPU count; bad NUMA below good.");
}
