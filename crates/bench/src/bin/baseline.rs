//! Emit the workspace performance baseline as JSON on stdout.
//!
//! ```text
//! cargo run --release -p quda-bench --bin baseline > BENCH_baseline.json
//! ```
//!
//! The committed `BENCH_baseline.json` gives future changes a before/after:
//! everything under `"modeled"` and `"functional"` is deterministic (the
//! calibrated performance model and the fixed-seed solves), so any diff
//! there is a real behavior change, not measurement noise. Only
//! `"measured_wall_seconds"` varies with the host; it is informational.
//!
//! With `--measured` the output additionally carries `"fig_hotpath"`:
//! wall-clock kernel times for the streamed BLAS/dslash/face-codec hot
//! paths against their naive per-site reference shapes (see
//! [`quda_bench::hotpath`] for the clock methodology). Also
//! host-dependent, also informational.

use quda_bench::{curve_point, PAPER_GPU_COUNTS};
use quda_core::{PrecisionMode, Quda, QudaInvertParam};
use quda_fields::gauge_gen::weak_field;
use quda_fields::host::HostSpinorField;
use quda_lattice::geometry::{Coord, LatticeDims};
use quda_multigpu::multidim::{best_grid, sustained_gflops_grid, ProcessGrid};
use quda_multigpu::perf::PerfInput;
use quda_multigpu::rank_op::CommStrategy;

/// One modeled scaling curve as a JSON array (null = infeasible point).
fn curve_json(
    global: impl Fn(usize) -> LatticeDims,
    mode: PrecisionMode,
    strategy: CommStrategy,
    enforce_memory: bool,
) -> String {
    let vals: Vec<String> = PAPER_GPU_COUNTS
        .iter()
        .map(|&gpus| {
            curve_point(global(gpus), gpus, mode, strategy, enforce_memory)
                .map_or_else(|| "null".to_string(), |g| format!("{g:.1}"))
        })
        .collect();
    format!("[{}]", vals.join(", "))
}

/// One multi-dim model row: T-only vs best grid at a simulated rank count
/// (ISSUE 7: a multi-dim perf trajectory for future PRs). Deterministic —
/// pure model output.
fn multidim_row(dims: LatticeDims, ranks: usize) -> String {
    let inp =
        PerfInput::paper(dims, ranks.clamp(1, 128), PrecisionMode::Single, CommStrategy::NoOverlap);
    let t_only = sustained_gflops_grid(&inp, ProcessGrid::one_d(ranks))
        .map_or_else(|| "null".to_string(), |g| format!("{g:.1}"));
    let (bg, bf) = best_grid(&inp, ranks).expect("at least one valid grid");
    format!(
        "      {{\"gpus\": {ranks}, \"t_only_gflops\": {t_only}, \
         \"best_grid\": \"{bg}\", \"best_gflops\": {bf:.1}}}"
    )
}

/// One functional fixed-seed solve; returns (json, wall_seconds).
fn functional_json(mode: PrecisionMode, lockstep: bool) -> (String, f64) {
    let dims = LatticeDims::new(8, 8, 8, 16);
    let cfg = weak_field(dims, 0.1, 2024);
    let mut quda = Quda::new(2).expect("context");
    quda.load_gauge(cfg).expect("gauge load");
    let source = HostSpinorField::point_source(dims, Coord::new(0, 0, 0, 0), 0, 0);
    let param =
        QudaInvertParam::paper_mode(mode, 2).with_mass(0.2).with_tol(1e-10).with_lockstep(lockstep);
    let start = std::time::Instant::now();
    let (_, report) = quda.invert(&source, &param).expect("invert");
    let wall = start.elapsed().as_secs_f64();
    let json = format!(
        "{{\"converged\": {}, \"iterations\": {}, \"matvecs\": {}, \
         \"reliable_updates\": {}, \"true_residual\": {:.6e}, \
         \"effective_flops\": {}, \"modeled_seconds\": {:.6}, \
         \"modeled_gflops\": {:.1}}}",
        report.converged,
        report.iterations,
        report.matvecs,
        report.reliable_updates,
        report.true_residual,
        report.effective_flops,
        report.modeled_seconds,
        report.modeled_gflops,
    );
    (json, wall)
}

/// Elastic-resilience figures (ISSUE 8): checkpoint overhead as a percent
/// of the fault-free wall, and per-death recovery latency under one and two
/// injected rank deaths. The survival counters and convergence results are
/// deterministic (fixed seeds, fixed kill schedules); the wall-derived
/// numbers are host-dependent and informational, like
/// `measured_wall_seconds`.
fn recovery_json() -> String {
    use quda_comm::FaultPlan;
    use quda_core::ChaosSpec;

    let dims = LatticeDims::new(8, 8, 8, 16);
    let cfg = weak_field(dims, 0.1, 2024);
    let source = HostSpinorField::point_source(dims, Coord::new(0, 0, 0, 0), 0, 0);
    let solve = |deaths: usize, plan: Option<FaultPlan>| {
        let mut quda = Quda::new(2).expect("context");
        quda.load_gauge(cfg.clone()).expect("gauge load");
        let param = QudaInvertParam::paper_mode(PrecisionMode::DoubleHalf, 2)
            .with_mass(0.2)
            .with_tol(1e-10)
            .with_max_rank_deaths(deaths);
        let chaos = ChaosSpec { plan, ..ChaosSpec::default() };
        let start = std::time::Instant::now();
        let (_, report) = quda.invert_with_chaos(&source, &param, &chaos).expect("invert");
        (report, start.elapsed().as_secs_f64())
    };
    let latencies = |report: &quda_core::InvertReport| {
        let ms: Vec<String> = report
            .recovery
            .events
            .iter()
            .map(|ev| format!("{:.3}", ev.latency.as_secs_f64() * 1e3))
            .collect();
        format!("[{}]", ms.join(", "))
    };

    let (_plain, wall_plain) = solve(0, None);
    let (ckpt, wall_ckpt) = solve(2, None);
    let overhead_pct = (wall_ckpt - wall_plain) / wall_plain * 100.0;
    let (one, _) = solve(1, Some(FaultPlan::new(33).kill_rank_in_generation(0, 1, 200)));
    let (two, _) = solve(
        2,
        Some(
            FaultPlan::new(34)
                .kill_rank_in_generation(0, 1, 200)
                .kill_rank_in_generation(1, 0, 300),
        ),
    );
    assert!(one.recovery.deaths_survived() == 1 && two.recovery.deaths_survived() == 2);

    format!(
        "{{\n    \"lattice\": \"8x8x8x16\", \"gpus\": 2, \"mode\": \"double_half\", \
         \"tol\": 1e-10,\n    \
         \"comment\": \"wall-derived figures are host-dependent, informational only\",\n    \
         \"checkpoint\": {{\"checkpoints_taken\": {}, \"checkpoint_bytes\": {}, \
         \"overhead_pct_of_fault_free_wall\": {:.1}}},\n    \
         \"one_death\": {{\"deaths_survived\": 1, \"converged\": {}, \
         \"true_residual\": {:.6e}, \"recovery_latency_ms\": {}}},\n    \
         \"two_deaths\": {{\"deaths_survived\": 2, \"converged\": {}, \
         \"true_residual\": {:.6e}, \"recovery_latency_ms\": {}}}\n  }}",
        ckpt.recovery.checkpoints_taken,
        ckpt.recovery.checkpoint_bytes,
        overhead_pct,
        one.converged,
        one.true_residual,
        latencies(&one),
        two.converged,
        two.true_residual,
        latencies(&two),
    )
}

fn main() {
    let measured = std::env::args().any(|a| a == "--measured");
    let weak24 = |gpus: usize| LatticeDims::new(24, 24, 24, 32 * gpus);
    let strong32 = |_: usize| LatticeDims::spatial_cube(32, 256);
    let strong24 = |_: usize| LatticeDims::spatial_cube(24, 128);

    let (double_plain, wall_double) = functional_json(PrecisionMode::Double, false);
    let (double_lockstep, wall_lockstep) = functional_json(PrecisionMode::Double, true);
    let (double_half, wall_half) = functional_json(PrecisionMode::DoubleHalf, false);

    println!("{{");
    println!("  \"schema\": \"quda-bench-baseline/v1\",");
    println!("  \"gpu_counts\": [1, 2, 4, 8, 16, 32],");
    println!("  \"modeled\": {{");
    println!("    \"fig4b_weak_24c32_overlap\": {{");
    for (i, (name, mode)) in [
        ("single", PrecisionMode::Single),
        ("double", PrecisionMode::Double),
        ("single_half", PrecisionMode::SingleHalf),
        ("double_half", PrecisionMode::DoubleHalf),
    ]
    .iter()
    .enumerate()
    {
        let comma = if i == 3 { "" } else { "," };
        println!(
            "      \"{name}\": {}{comma}",
            curve_json(weak24, *mode, CommStrategy::Overlap, false)
        );
    }
    println!("    }},");
    println!("    \"fig5a_strong_32c256_single_half\": {{");
    println!(
        "      \"overlap\": {}",
        curve_json(strong32, PrecisionMode::SingleHalf, CommStrategy::Overlap, true)
    );
    println!("    }},");
    println!("    \"fig6_strong_24c128_no_overlap\": {{");
    for (i, (name, mode)) in [
        ("single", PrecisionMode::Single),
        ("double", PrecisionMode::Double),
        ("single_half", PrecisionMode::SingleHalf),
        ("double_half", PrecisionMode::DoubleHalf),
    ]
    .iter()
    .enumerate()
    {
        let comma = if i == 3 { "" } else { "," };
        println!(
            "      \"{name}\": {}{comma}",
            curve_json(strong24, *mode, CommStrategy::NoOverlap, true)
        );
    }
    println!("    }},");
    let multidim_ranks = [64usize, 128, 256];
    println!("    \"fig_multidim_strong_32c256_single\": [");
    for (i, &ranks) in multidim_ranks.iter().enumerate() {
        let comma = if i == multidim_ranks.len() - 1 { "" } else { "," };
        println!("{}{comma}", multidim_row(LatticeDims::spatial_cube(32, 256), ranks));
    }
    println!("    ],");
    println!("    \"fig_multidim_weak_32c2t_single\": [");
    for (i, &ranks) in multidim_ranks.iter().enumerate() {
        let comma = if i == multidim_ranks.len() - 1 { "" } else { "," };
        println!("{}{comma}", multidim_row(LatticeDims::new(32, 32, 32, 2 * ranks), ranks));
    }
    println!("    ]");
    println!("  }},");
    println!("  \"functional\": {{");
    println!("    \"lattice\": \"8x8x8x16\", \"gpus\": 2, \"mass\": 0.2, \"tol\": 1e-10,");
    println!("    \"double\": {double_plain},");
    println!("    \"double_lockstep\": {double_lockstep},");
    println!("    \"double_half\": {double_half},");
    println!("    \"lockstep_counters_match\": {}", double_plain == double_lockstep);
    println!("  }},");
    println!("  \"fig_recovery\": {},", recovery_json());
    println!("  \"fig_batch\": {},", quda_bench::batchbench::fig_batch_json());
    if measured {
        println!("  \"fig_hotpath\": {},", quda_bench::hotpath::fig_hotpath_json());
    }
    println!("  \"measured_wall_seconds\": {{");
    println!("    \"comment\": \"host-dependent, informational only\",");
    println!("    \"double\": {wall_double:.3},");
    println!("    \"double_lockstep\": {wall_lockstep:.3},");
    println!("    \"double_half\": {wall_half:.3}");
    println!("  }}");
    println!("}}");
}
