//! Fig. 7: host<->device transfer-time microbenchmark, 1 KiB - 256 KiB,
//! cudaMemcpy vs cudaMemcpyAsync(+synchronize), both directions.
//!
//! Paper landmarks: async latency just under 50 µs vs 11 µs sync; different
//! H2D and D2H slopes out of the latency-limited region (the early
//! Intel 5520 "Tylersburg" revision, Section VII-D).

use quda_gpusim::calib::TransferCalib;
use quda_gpusim::transfer::latency_microbenchmark;

fn main() {
    println!("Fig. 7 — transfer time (microseconds) vs message size");
    println!(
        "{:>9} {:>12} {:>12} {:>13} {:>13}",
        "bytes", "memcpy D2H", "memcpy H2D", "async D2H", "async H2D"
    );
    for r in latency_microbenchmark(&TransferCalib::default()) {
        println!(
            "{:>9} {:>12.1} {:>12.1} {:>13.1} {:>13.1}",
            r.bytes, r.sync_d2h_us, r.sync_h2d_us, r.async_d2h_us, r.async_h2d_us
        );
    }
    println!("\npaper: sync latency ~11 us, async ~just under 50 us; D2H and H2D");
    println!("slopes differ, revealing asymmetric sustained bandwidths.");
}
