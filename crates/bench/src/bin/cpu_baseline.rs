//! Section VII-C's baseline comparison: the GPU-less "9q" cluster sustains
//! 255 Gflops (single precision, SSE) on 16 nodes / 128 Nehalem cores; the
//! same node count with 32 GTX 285s sustains over 3 Tflops — "over a
//! factor of 10 faster".

use quda_dirac::cpu_opt::CpuDslash;
use quda_fields::gauge_gen::weak_field;
use quda_gpusim::cluster::CpuClusterModel;
use quda_lattice::geometry::LatticeDims;
use quda_multigpu::perf::{evaluate, PerfInput};
use quda_multigpu::rank_op::CommStrategy;
use quda_multigpu::PrecisionMode;

fn main() {
    let cpu = CpuClusterModel::jlab_9q(16);
    let cpu_gflops = cpu.sustained_gflops_sp();
    let global = LatticeDims::spatial_cube(32, 256);
    let gpu =
        evaluate(&PerfInput::paper(global, 32, PrecisionMode::SingleHalf, CommStrategy::Overlap));
    println!(
        "CPU baseline (9q): {} nodes, {} cores -> {:.0} Gflops (single, SSE)",
        cpu.nodes,
        cpu.cores(),
        cpu_gflops
    );
    println!(
        "GPU cluster (9g):  16 nodes, 32x GTX 285 -> {:.0} Gflops (mixed single-half, 32^3x256)",
        gpu.sustained_gflops
    );
    println!(
        "speedup: {:.1}x (paper: 'over a factor of 10 faster', 255 Gflops vs >3 Tflops)",
        gpu.sustained_gflops / cpu_gflops
    );
    assert!(gpu.sustained_gflops / cpu_gflops > 10.0);

    // Grounding the model: measure *this machine's* sustained effective
    // Gflops with the optimized flat-array CPU dslash (the paper's SSE
    // analog) on an 8^3x16 working set.
    let dims = LatticeDims::new(8, 8, 8, 16);
    let cfg = weak_field(dims, 0.1, 1);
    let op = CpuDslash::new(&cfg);
    let measured = op.measure_gflops(10);
    println!(
        "\nthis machine, optimized CPU dslash ({dims}): {measured:.2} sustained effective Gflops"
    );
    println!("(paper's 2010 Nehalem + hand SSE: ~2 Gflops/core; the model uses that figure)");
}
