//! Ablation: partition camping vs field padding (Section V-B).
//!
//! "For certain problem sizes performance may be affected by partition
//! camping. The simple solution QUDA takes ... is to pad the gauge, spinor,
//! and clover fields by one spatial volume." This harness diagnoses which
//! lattice volumes camp under the 8x256-byte partition model, what the
//! paper's Vs pad does to them, and what the minimal de-camping pad is.

use quda_gpusim::camping::{camping_factor, camps, minimal_decamping_pad};
use quda_lattice::geometry::LatticeDims;

fn main() {
    println!("partition camping of single-precision spinor blocks (float4, 6 blocks)");
    println!(
        "{:<12} {:>10} {:>11} {:>12} {:>13} {:>13}",
        "volume", "sites/par", "no-pad eff", "Vs-pad eff", "camps w/o", "min pad"
    );
    let volumes = [
        LatticeDims::new(16, 16, 16, 32),
        LatticeDims::new(16, 16, 16, 64),
        LatticeDims::spatial_cube(24, 32),
        LatticeDims::spatial_cube(24, 128),
        LatticeDims::hypercubic(32),
        LatticeDims::spatial_cube(32, 256),
        LatticeDims::new(20, 20, 20, 64),
    ];
    for d in volumes {
        let sites = d.half_volume();
        let pad = d.half_spatial_volume();
        let no_pad = camping_factor(sites * 4 * 4, 6);
        let with_pad = camping_factor((sites + pad) * 4 * 4, 6);
        let camped = camps(sites, 0, 4, 4, 6);
        let min_pad = minimal_decamping_pad(sites, 4, 4, 6, 1 << 20)
            .map(|p| p.to_string())
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<12} {:>10} {:>11.3} {:>12.3} {:>13} {:>13}",
            d.to_string(),
            sites,
            no_pad,
            with_pad,
            if camped { "yes" } else { "no" },
            min_pad
        );
    }
    println!("\npaper: camping was 'a problem for certain lattice volumes' and QUDA pads");
    println!("every field by one spatial volume. Under this start-address model the");
    println!("power-of-two production volumes keep 2048-byte alignment even with the Vs");
    println!("pad (it is itself 2048-aligned there) — a tiny 16-site (256 B) stagger is");
    println!("what breaks camping; non-power-of-two volumes (e.g. 20^3) are fixed by Vs");
    println!("directly. Either way the Vs pad earns its keep as the gauge ghost slice");
    println!("(Section VI-B).");
}
