//! Fig. 4(b): weak scaling, local volume 24³×32 sites per GPU, in single,
//! double, mixed single-half, and mixed double-half precision (overlapped).
//!
//! Paper landmarks: both mixed modes nearly identical and well above the
//! uniform modes; double slowest (Section VII-B).

use quda_bench::{curve_point, header, row, PAPER_GPU_COUNTS};
use quda_lattice::geometry::LatticeDims;
use quda_multigpu::rank_op::CommStrategy;
use quda_multigpu::PrecisionMode;

fn main() {
    header(
        "Fig. 4(b) — weak scaling, V = 24^3x32 per GPU (overlapped comms)",
        &["single", "double", "single-half", "double-half"],
    );
    for gpus in PAPER_GPU_COUNTS {
        let global = LatticeDims::new(24, 24, 24, 32 * gpus);
        let vals = [
            curve_point(global, gpus, PrecisionMode::Single, CommStrategy::Overlap, false),
            curve_point(global, gpus, PrecisionMode::Double, CommStrategy::Overlap, false),
            curve_point(global, gpus, PrecisionMode::SingleHalf, CommStrategy::Overlap, false),
            curve_point(global, gpus, PrecisionMode::DoubleHalf, CommStrategy::Overlap, false),
        ];
        println!("{gpus:>6} {}", row(&vals));
    }
    println!("\npaper: mixed double-half performance is nearly identical to single-half;");
    println!("both mixed solvers are substantially faster than uniform single or double.");
}
