//! Fig. 6: strong scaling on V = 24³×128 for all four precision modes with
//! the non-overlapped solver (the faster choice on this volume per Fig. 5b).
//!
//! Paper landmarks: the half-precision mixed modes outperform both uniform
//! modes; uniform double shows the *best scaling* (flattest efficiency
//! curve) because its kernels are arithmetic bound on the GTX 285, making
//! communication relatively cheaper (Section VII-C).

use quda_bench::{curve_point, header, row, PAPER_GPU_COUNTS};
use quda_lattice::geometry::LatticeDims;
use quda_multigpu::rank_op::CommStrategy;
use quda_multigpu::PrecisionMode;

fn main() {
    let global = LatticeDims::spatial_cube(24, 128);
    header(
        "Fig. 6 — strong scaling, V = 24^3x128, no overlap",
        &["single", "single-half", "double", "double-half"],
    );
    let modes = [
        PrecisionMode::Single,
        PrecisionMode::SingleHalf,
        PrecisionMode::Double,
        PrecisionMode::DoubleHalf,
    ];
    let mut base: [Option<f64>; 4] = [None; 4];
    for gpus in PAPER_GPU_COUNTS {
        let vals: Vec<Option<f64>> = modes
            .iter()
            .map(|&m| curve_point(global, gpus, m, CommStrategy::NoOverlap, false))
            .collect();
        if gpus == 1 {
            base = [vals[0], vals[1], vals[2], vals[3]];
        }
        println!("{gpus:>6} {}", row(&vals));
    }
    // Parallel efficiency at 32 GPUs, demonstrating double's superior scaling.
    println!("\nparallel efficiency at 32 GPUs (32-GPU Gflops / 32x 1-GPU Gflops):");
    for (i, m) in modes.iter().enumerate() {
        let at32 = curve_point(global, 32, *m, CommStrategy::NoOverlap, false);
        if let (Some(b), Some(t)) = (base[i], at32) {
            println!("  {:>12}: {:.1}%", format!("{:?}", m), 100.0 * t / (32.0 * b));
        }
    }
    println!("\npaper: half-based mixed modes fastest in absolute terms; uniform double");
    println!("exhibits the best strong scaling of all (least bandwidth bound).");
}
