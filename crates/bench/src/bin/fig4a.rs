//! Fig. 4(a): weak scaling, local volume 32⁴ sites per GPU, single and
//! mixed single-half precision, overlapped communications.
//!
//! Paper landmarks: near-linear scaling to 32 GPUs; 4.75 Tflops sustained
//! in single-half at 32 GPUs (Section VII-B).

use quda_bench::{curve_point, header, row, PAPER_GPU_COUNTS};
use quda_lattice::geometry::LatticeDims;
use quda_multigpu::rank_op::CommStrategy;
use quda_multigpu::PrecisionMode;

fn main() {
    header(
        "Fig. 4(a) — weak scaling, V = 32^4 per GPU (overlapped comms)",
        &["single", "single-half"],
    );
    for gpus in PAPER_GPU_COUNTS {
        let global = LatticeDims::new(32, 32, 32, 32 * gpus);
        let vals = [
            curve_point(global, gpus, PrecisionMode::Single, CommStrategy::Overlap, false),
            curve_point(global, gpus, PrecisionMode::SingleHalf, CommStrategy::Overlap, false),
        ];
        println!("{gpus:>6} {}", row(&vals));
    }
    println!("\npaper: single-half reaches ~4750 Gflops at 32 GPUs; single ~3200.");
}
