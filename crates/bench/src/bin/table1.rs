//! Table I: specifications of representative NVIDIA graphics cards.

use quda_gpusim::cards::card_table;

fn main() {
    println!("Table I — specifications of representative NVIDIA graphics cards");
    println!(
        "{:<18} {:>6} {:>10} {:>9} {:>9} {:>8}",
        "Card", "Cores", "GB/s BW", "SP Gflop", "DP Gflop", "GiB RAM"
    );
    for c in card_table() {
        println!(
            "{:<18} {:>6} {:>10.1} {:>9.0} {:>9} {:>8.2}",
            c.name,
            c.cores,
            c.bandwidth_gbs,
            c.gflops_sp,
            c.gflops_dp.map(|d| format!("{d:.0}")).unwrap_or_else(|| "N/A".into()),
            c.ram_gib
        );
    }
    println!("\nTestbed: the \"9g\" cluster uses the GeForce GTX 285 (2 GiB variant).");
}
