//! Ablation: the launch-parameter auto-tuner (Section V-E).
//!
//! "All possible combinations of parameters are tested for each kernel, and
//! the optimal values are written out to a header file." This harness tunes
//! the kernel suite against the simulated GTX 285 occupancy model, prints
//! the generated header, and quantifies the cost of *not* tuning (worst
//! feasible block size vs best).

use quda_gpusim::autotune::{model_efficiency, AutoTuner, KernelProfile, BLOCK_CANDIDATES};
use quda_gpusim::cards::gtx285;

fn main() {
    let gpu = gtx285();
    let mut tuner = AutoTuner::new();
    // Kernel suite: (name, registers/thread, shared bytes/thread).
    let kernels = [
        ("dslash_single", 58, 16),
        ("dslash_half", 46, 16),
        ("dslash_double", 90, 24),
        ("clover_single", 40, 0),
        ("axpy_single", 12, 0),
        ("caxpy_half", 14, 0),
        ("reduce_norm2", 16, 8),
        ("reduce_cdot", 20, 12),
    ];
    println!(
        "{:<16} {:>7} {:>10} {:>11} {:>12}",
        "kernel", "block", "tuned eff", "worst eff", "tuning gain"
    );
    for (name, regs, shared) in kernels {
        let profile = KernelProfile { regs_per_thread: regs, shared_per_thread: shared };
        let cfg = tuner.tune(name, &gpu, &profile);
        let worst = BLOCK_CANDIDATES
            .iter()
            .map(|&b| model_efficiency(&gpu, &profile, b))
            .filter(|&e| e > 0.0)
            .fold(f64::INFINITY, f64::min);
        println!(
            "{:<16} {:>7} {:>10.2} {:>11.2} {:>11.0}%",
            name,
            cfg.block,
            cfg.efficiency,
            worst,
            100.0 * (cfg.efficiency / worst - 1.0)
        );
    }
    println!("\ngenerated header (the analog of QUDA's tuned blas_param.h):\n");
    println!("{}", tuner.export_header());
}
