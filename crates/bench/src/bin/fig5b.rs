//! Fig. 5(b): strong scaling on V = 24³×128. The surprise result of the
//! paper: on this smaller volume the overlapped mixed-precision solver
//! plateaus beyond 8 GPUs and is overtaken even by uniform single — the
//! ~48 µs cudaMemcpyAsync latency (Fig. 7) dominates the shrinking local
//! volume (Section VII-C).

use quda_bench::{curve_point, header, row, PAPER_GPU_COUNTS};
use quda_lattice::geometry::LatticeDims;
use quda_multigpu::rank_op::CommStrategy;
use quda_multigpu::PrecisionMode;

fn main() {
    let global = LatticeDims::spatial_cube(24, 128);
    header(
        "Fig. 5(b) — strong scaling, V = 24^3x128",
        &["sgl/no-ovl", "mix/no-ovl", "sgl/ovl", "mix/ovl"],
    );
    for gpus in PAPER_GPU_COUNTS {
        let vals = [
            curve_point(global, gpus, PrecisionMode::Single, CommStrategy::NoOverlap, false),
            curve_point(global, gpus, PrecisionMode::SingleHalf, CommStrategy::NoOverlap, false),
            curve_point(global, gpus, PrecisionMode::Single, CommStrategy::Overlap, false),
            curve_point(global, gpus, PrecisionMode::SingleHalf, CommStrategy::Overlap, false),
        ];
        println!("{gpus:>6} {}", row(&vals));
    }
    println!("\npaper: overlapped mixed precision plateaus beyond 8 GPUs (async-copy");
    println!("latency) and the non-overlapped variants win on this volume.");
}
