//! Run a small 2-rank traced solve and export the phase trace as Chrome
//! trace-event JSON, validating it on the way out — the CI `trace` job's
//! workload, and a handy way to eyeball a solve in `chrome://tracing`.
//!
//! ```text
//! cargo run --release -p quda-bench --bin trace_export [output.json]
//! ```
//!
//! Exits non-zero if the solve fails, the breakdown is inconsistent, or
//! the exported JSON does not validate against the trace-event shape.

use quda_core::{PrecisionMode, Quda, QudaInvertParam, TraceConfig};
use quda_fields::gauge_gen::{random_spinor_field, weak_field};
use quda_lattice::geometry::LatticeDims;

fn main() {
    let out = std::env::args().nth(1).unwrap_or_else(|| "trace.json".to_owned());
    let dims = LatticeDims::new(4, 4, 4, 8);
    let cfg = weak_field(dims, 0.12, 2010);
    let b = random_spinor_field(dims, 2011);

    let mut quda = Quda::new(2).expect("context");
    quda.load_gauge(cfg).expect("gauge load");
    let param = QudaInvertParam::paper_mode(PrecisionMode::DoubleHalf, 2)
        .with_mass(0.3)
        .with_tol(1e-10)
        .with_trace(TraceConfig::Full);
    let (_, report) = quda.invert(&b, &param).expect("invert");
    assert!(report.converged, "traced solve did not converge");

    let phases = &report.phases;
    assert!(!phases.phases.is_empty(), "no phases recorded");
    assert!(
        phases.accounted_s() <= phases.total_wall_s * 1.0001,
        "phase times {} exceed wall {}",
        phases.accounted_s(),
        phases.total_wall_s
    );
    assert!(
        (0.0..=1.0).contains(&phases.overlap_efficiency),
        "overlap efficiency {} outside [0,1]",
        phases.overlap_efficiency
    );
    println!("solve: {} iterations, wall {:.3} ms", report.iterations, phases.total_wall_s * 1e3);
    for stat in &phases.phases {
        println!(
            "  {:>16}: {:>9.4} ms self  {:>9.4} ms incl  {:>7} spans  {:>10} B",
            stat.phase.name(),
            stat.seconds * 1e3,
            stat.inclusive_seconds * 1e3,
            stat.count,
            stat.bytes
        );
    }
    println!(
        "overlap efficiency {:.3}, rank skew {:.3} ms, comm clean: {}",
        phases.overlap_efficiency,
        phases.rank_skew_s * 1e3,
        report.comm.is_clean()
    );

    let json = report.to_chrome_trace();
    let summary = quda_obs::validate_chrome_trace(&json)
        .unwrap_or_else(|e| panic!("exported trace is invalid: {e}"));
    assert!(summary.complete_events > 0, "trace has no complete events");
    assert_eq!(summary.ranks, 2, "expected both ranks in the trace");
    std::fs::write(&out, &json).expect("write trace file");
    println!(
        "wrote {} ({} events, {} complete, {} ranks)",
        out, summary.events, summary.complete_events, summary.ranks
    );
}
