//! Multi-tenant load generator for the inversion service (DESIGN.md §14).
//!
//! ```text
//! cargo run --release -p quda-bench --bin loadgen [-- --requests N]
//! ```
//!
//! Drives ≥ 1000 solves from 4 tenants of unequal demand through a
//! 2-worker service with deliberately small per-tenant queues, responding
//! to backpressure the way a real client does: on `QueueFull`, drain one
//! outstanding ticket, then retry. The run then *asserts* the service's
//! contract:
//!
//! * every accepted request completes (conservation: none lost, none
//!   duplicated);
//! * backpressure is real (rejections observed) and bounded (no tenant
//!   queue ever exceeds its configured capacity — memory cannot grow with
//!   offered load);
//! * no starvation: every tenant completes work;
//! * batching engages (mean dispatched batch > 1 RHS) and queueing
//!   telemetry is visible in the per-request reports.
//!
//! Prints a one-object JSON summary on stdout; panics (non-zero exit) if
//! any invariant fails, so CI can run it as a soak gate.

use std::collections::VecDeque;
use std::time::Instant;

use quda_core::{PrecisionMode, QudaInvertParam};
use quda_fields::gauge_gen::{random_spinor_field, weak_field};
use quda_lattice::geometry::LatticeDims;
use quda_service::{Service, ServiceConfig, ServiceError, SolveRequest, TenantConfig, Ticket};

const TENANTS: u32 = 4;
const QUEUE_CAPACITY: usize = 16;

fn main() {
    let mut requests = 1000usize;
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--requests") {
        requests = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .expect("--requests takes a positive integer");
    }

    let dims = LatticeDims::new(4, 4, 2, 4);
    let mut service = Service::new(ServiceConfig {
        workers: 2,
        max_batch: 8,
        queue_capacity: QUEUE_CAPACITY,
        default_weight: 1,
        log_dispatch_order: false,
    });
    // Unequal shares: tenant 0 pays for double weight.
    service.configure_tenant(0, TenantConfig { weight: 2, queue_capacity: QUEUE_CAPACITY });
    let gauge = service.load_gauge(weak_field(dims, 0.15, 7)).expect("gauge load");
    service.start();

    let param = QudaInvertParam::paper_mode(PrecisionMode::Double, 2).with_mass(0.3).with_tol(1e-6);
    let start = Instant::now();
    let mut outstanding: VecDeque<Ticket> = VecDeque::new();
    let mut rejections = 0u64;
    let mut completed = 0u64;
    let mut queue_waits_observed = 0u64;
    let drain = |outstanding: &mut VecDeque<Ticket>,
                 completed: &mut u64,
                 queue_waits_observed: &mut u64| {
        if let Some(t) = outstanding.pop_front() {
            let (_, report) = t.wait().expect("accepted solve must complete");
            assert!(report.converged, "solve failed to converge under load");
            assert!(report.queue.batch_size >= 1);
            assert!(report.queue.queue_depth <= QUEUE_CAPACITY, "queue depth exceeded bound");
            if !report.queue.queue_wait.is_zero() {
                *queue_waits_observed += 1;
            }
            *completed += 1;
        }
    };

    for i in 0..requests {
        // Tenant 3 floods (every other request); 0..2 trickle.
        let tenant = if i % 2 == 1 { 3 } else { (i / 2) as u32 % (TENANTS - 1) };
        let source = random_spinor_field(dims, 1000 + i as u64);
        let mut req = SolveRequest { gauge, source, param: param.with_tenant(tenant) };
        loop {
            match service.submit(req) {
                Ok(t) => {
                    outstanding.push_back(t);
                    break;
                }
                Err(ServiceError::QueueFull { .. }) => {
                    // Backpressure: drain one completion, then retry.
                    rejections += 1;
                    drain(&mut outstanding, &mut completed, &mut queue_waits_observed);
                    req = SolveRequest {
                        gauge,
                        source: random_spinor_field(dims, 1000 + i as u64),
                        param: param.with_tenant(tenant),
                    };
                }
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
    }
    service.wait_idle();
    while !outstanding.is_empty() {
        drain(&mut outstanding, &mut completed, &mut queue_waits_observed);
    }
    let wall = start.elapsed().as_secs_f64();
    let stats = service.shutdown();

    // The soak contract.
    assert!(requests >= 1000 || std::env::args().any(|a| a == "--requests"));
    assert_eq!(completed as usize, requests, "accepted work was lost");
    assert_eq!(stats.completed, completed, "service counters disagree with client");
    assert_eq!(stats.submitted, completed, "conservation: submitted != completed");
    assert!(stats.rejected > 0 || rejections > 0, "no backpressure observed — soak invalid");
    assert!(
        stats.max_queue_depth <= QUEUE_CAPACITY,
        "queue depth {} exceeded capacity {QUEUE_CAPACITY}",
        stats.max_queue_depth
    );
    assert_eq!(stats.per_tenant.len(), TENANTS as usize, "a tenant never completed work");
    for (tenant, t) in &stats.per_tenant {
        assert!(t.completed > 0, "tenant {tenant} starved");
        assert!(t.max_depth <= QUEUE_CAPACITY);
    }
    let mean_batch = stats.batched_requests as f64 / stats.batches.max(1) as f64;
    assert!(mean_batch > 1.0, "batching never engaged (mean batch {mean_batch:.2})");
    assert!(queue_waits_observed > 0, "queueing telemetry never surfaced");

    let per_tenant: Vec<String> = stats
        .per_tenant
        .iter()
        .map(|(id, t)| format!("{{\"tenant\": {id}, \"completed\": {}}}", t.completed))
        .collect();
    println!("{{");
    println!("  \"schema\": \"quda-loadgen/v1\",");
    println!("  \"lattice\": \"4x4x2x4\", \"tenants\": {TENANTS}, \"workers\": 2,");
    println!("  \"queue_capacity\": {QUEUE_CAPACITY},");
    println!("  \"requests\": {requests},");
    println!("  \"completed\": {},", stats.completed);
    println!("  \"rejected_backpressure\": {},", stats.rejected.max(rejections));
    println!("  \"expired\": {},", stats.expired);
    println!("  \"batches\": {},", stats.batches);
    println!("  \"mean_batch\": {mean_batch:.2},");
    println!("  \"max_batch\": {},", stats.max_batch);
    println!("  \"max_queue_depth\": {},", stats.max_queue_depth);
    println!("  \"per_tenant\": [{}],", per_tenant.join(", "));
    println!("  \"solves_per_second\": {:.1},", completed as f64 / wall);
    println!("  \"wall_seconds\": {wall:.3}");
    println!("}}");
}
