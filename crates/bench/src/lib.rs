//! # quda-bench
//!
//! Harnesses that regenerate every table and figure of the paper's
//! evaluation (Section VII) from the calibrated performance model and the
//! functional library. One binary per exhibit:
//!
//! | binary         | exhibit  | content                                              |
//! |----------------|----------|------------------------------------------------------|
//! | `table1`       | Table I  | NVIDIA card specifications                           |
//! | `fig4a`        | Fig 4(a) | weak scaling, 32⁴ per GPU                            |
//! | `fig4b`        | Fig 4(b) | weak scaling, 24³×32 per GPU, four precision modes   |
//! | `fig5a`        | Fig 5(a) | strong scaling 32³×256 (+ bad-NUMA curve)            |
//! | `fig5b`        | Fig 5(b) | strong scaling 24³×128 (overlap plateau)             |
//! | `fig6`         | Fig 6    | strong scaling 24³×128, four precisions, no overlap  |
//! | `fig7`         | Fig 7    | PCI-E latency microbenchmark                         |
//! | `cpu_baseline` | §VII-C   | "9q" CPU cluster vs GPU cluster (×10 claim)          |
//!
//! Absolute numbers come from a model of 2010 hardware; the *shapes* (who
//! wins, by what factor, where curves cross or plateau) are the
//! reproduction targets. EXPERIMENTS.md records paper-vs-model values.

#![warn(missing_docs)]

pub mod batchbench;
pub mod hotpath;

use quda_lattice::geometry::LatticeDims;
use quda_multigpu::perf::{evaluate, PerfInput};
use quda_multigpu::rank_op::CommStrategy;
use quda_multigpu::PrecisionMode;

/// GPU counts measured in the paper's scaling plots.
pub const PAPER_GPU_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Evaluate one point of a scaling curve; `None` when the partition is
/// invalid or (with `enforce_memory`) the working set does not fit device
/// memory — the paper's mixed-precision curves start at 8 GPUs on the large
/// lattice for exactly that reason.
pub fn curve_point(
    global: LatticeDims,
    gpus: usize,
    mode: PrecisionMode,
    strategy: CommStrategy,
    enforce_memory: bool,
) -> Option<f64> {
    if global.t % gpus != 0 || (global.t / gpus) % 2 != 0 || global.t / gpus < 2 {
        return None;
    }
    let report = evaluate(&PerfInput::paper(global, gpus, mode, strategy));
    if enforce_memory && !report.fits_memory {
        return None;
    }
    Some(report.sustained_gflops)
}

/// Render a row of curve values, with `-` for infeasible points.
pub fn row(values: &[Option<f64>]) -> String {
    values
        .iter()
        .map(|v| match v {
            Some(g) => format!("{g:>12.0}"),
            None => format!("{:>12}", "-"),
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Print a standard figure header.
pub fn header(title: &str, cols: &[&str]) {
    println!("{title}");
    print!("{:>6}", "GPUs");
    for c in cols {
        print!(" {c:>12}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infeasible_points_are_none() {
        // 32³×256 mixed on 4 GPUs exceeds device memory (Section VII-C).
        let g = LatticeDims::spatial_cube(32, 256);
        assert!(curve_point(g, 4, PrecisionMode::SingleHalf, CommStrategy::Overlap, true).is_none());
        assert!(curve_point(g, 8, PrecisionMode::SingleHalf, CommStrategy::Overlap, true).is_some());
        // Indivisible T.
        assert!(curve_point(g, 3, PrecisionMode::Single, CommStrategy::Overlap, false).is_none());
    }

    #[test]
    fn row_renders_dashes() {
        let s = row(&[Some(1234.0), None]);
        assert!(s.contains("1234"));
        assert!(s.contains('-'));
    }
}
