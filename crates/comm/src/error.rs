//! Typed failures for the communication layer.
//!
//! Every hot comm API (`send`/`recv`/allreduce/barrier) returns a
//! [`CommError`] instead of panicking or blocking forever: a dead peer
//! surfaces as [`CommError::RankDead`], a message that never arrives as
//! [`CommError::Timeout`], and a corrupted frame that could not be
//! recovered as [`CommError::Decode`]. Decode-level problems are classified
//! separately in [`DecodeError`] so callers can distinguish a short read
//! from a checksum mismatch.

use std::fmt;

/// Why a byte payload could not be decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Payload length is not a whole number of elements.
    LengthMismatch {
        /// Size of one element in bytes.
        element_size: usize,
        /// Actual payload length in bytes.
        len: usize,
    },
    /// Frame shorter than its header claims (or shorter than a header).
    Truncated {
        /// Bytes the frame claimed (or minimally needs).
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// Frame checksum does not match the payload.
    BadChecksum {
        /// Checksum carried in the frame header.
        expected: u64,
        /// Checksum recomputed over the received payload.
        got: u64,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::LengthMismatch { element_size, len } => {
                write!(
                    f,
                    "payload of {len} bytes is not a whole number of {element_size}-byte elements"
                )
            }
            DecodeError::Truncated { expected, got } => {
                write!(f, "frame truncated: expected {expected} bytes, got {got}")
            }
            DecodeError::BadChecksum { expected, got } => {
                write!(f, "checksum mismatch: header says {expected:#018x}, payload hashes to {got:#018x}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// A failure of a communication operation.
#[derive(Clone, Debug, PartialEq)]
pub enum CommError {
    /// The peer rank is dead (its endpoint was dropped, its thread
    /// panicked, or a fault plan killed it) and the requested message can
    /// no longer arrive.
    RankDead {
        /// The dead rank.
        rank: usize,
    },
    /// No matching message arrived within the configured timeout.
    Timeout {
        /// Rank the message was expected from.
        from: usize,
        /// Message tag.
        tag: u32,
        /// Total time waited, in milliseconds.
        waited_ms: u64,
    },
    /// A message arrived but its frame or payload failed to decode, and
    /// link-level recovery could not produce a clean copy.
    Decode {
        /// Sender of the bad frame.
        from: usize,
        /// Message tag.
        tag: u32,
        /// The underlying decode failure.
        error: DecodeError,
    },
    /// Link-level recovery was attempted but gave up after the configured
    /// number of retries.
    RetriesExhausted {
        /// Rank the message was expected from.
        from: usize,
        /// Message tag.
        tag: u32,
        /// Retry attempts made.
        attempts: u32,
    },
    /// A collective contribution had the wrong element count.
    SizeMismatch {
        /// Elements expected by the reduction root.
        expected: usize,
        /// Elements received.
        got: usize,
    },
    /// The worker thread driving a rank panicked (a bug, not a scheduled
    /// fault): distinct from [`CommError::RankDead`] so a crashed *program*
    /// is never mistaken for a killed *process*.
    RankPanicked {
        /// The rank whose worker thread panicked.
        rank: usize,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// The lockstep sanitizer found ranks executing *different* collective
    /// sequences — the divergence that would otherwise surface only as a
    /// silent hang or a wrong answer at scale.
    LockstepDivergence {
        /// The first rank (in rank order) whose fingerprint disagrees
        /// with rank 0's.
        rank: usize,
        /// First mismatched position in the logical collective stream.
        index: u64,
        /// Rank 0's record at `index`, if still in its ring window.
        expected: Option<crate::lockstep::LockstepRecord>,
        /// The divergent rank's record at `index`, if still in its ring.
        got: Option<crate::lockstep::LockstepRecord>,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::RankDead { rank } => write!(f, "rank {rank} is dead"),
            CommError::Timeout { from, tag, waited_ms } => {
                write!(f, "timed out after {waited_ms} ms waiting for (from={from}, tag={tag:#x})")
            }
            CommError::Decode { from, tag, error } => {
                write!(f, "undecodable message (from={from}, tag={tag:#x}): {error}")
            }
            CommError::RetriesExhausted { from, tag, attempts } => {
                write!(f, "gave up on (from={from}, tag={tag:#x}) after {attempts} retries")
            }
            CommError::SizeMismatch { expected, got } => {
                write!(f, "collective size mismatch: expected {expected} elements, got {got}")
            }
            CommError::RankPanicked { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            CommError::LockstepDivergence { rank, index, expected, got } => {
                write!(f, "lockstep divergence at collective #{index}: rank {rank} ")?;
                match (expected, got) {
                    (Some(e), Some(g)) => write!(
                        f,
                        "executed {:?} tag={:#x} len={} seq={} where rank 0 executed \
                         {:?} tag={:#x} len={} seq={}",
                        g.kind, g.tag, g.len, g.seq, e.kind, e.tag, e.len, e.seq
                    ),
                    (Some(e), None) => write!(
                        f,
                        "never issued the collective rank 0 executed there \
                         ({:?} tag={:#x} len={} seq={})",
                        e.kind, e.tag, e.len, e.seq
                    ),
                    (None, Some(g)) => write!(
                        f,
                        "issued an extra collective ({:?} tag={:#x} len={} seq={})",
                        g.kind, g.tag, g.len, g.seq
                    ),
                    (None, None) => {
                        write!(f, "diverged before the fingerprint ring window")
                    }
                }
            }
        }
    }
}

impl std::error::Error for CommError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CommError::Decode { error, .. } => Some(error),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(CommError::RankDead { rank: 2 }.to_string(), "rank 2 is dead");
        let t = CommError::Timeout { from: 1, tag: 7, waited_ms: 2000 };
        assert!(t.to_string().contains("2000 ms"));
        let d = DecodeError::BadChecksum { expected: 1, got: 2 };
        assert!(d.to_string().contains("checksum"));
        let e = CommError::Decode { from: 0, tag: 1, error: d };
        assert!(e.to_string().contains("undecodable"));
    }

    #[test]
    fn rank_panicked_carries_message() {
        let e = CommError::RankPanicked { rank: 3, message: "index out of bounds".into() };
        assert_eq!(e.to_string(), "rank 3 panicked: index out of bounds");
        assert_ne!(e, CommError::RankDead { rank: 3 });
    }

    #[test]
    fn decode_error_is_source() {
        use std::error::Error;
        let e = CommError::Decode {
            from: 0,
            tag: 1,
            error: DecodeError::Truncated { expected: 8, got: 3 },
        };
        assert!(e.source().is_some());
        assert!(CommError::RankDead { rank: 0 }.source().is_none());
    }
}
