//! Deterministic, seed-driven fault injection for the message layer.
//!
//! A [`FaultPlan`] decides, per message, whether the wire copy is dropped,
//! delayed, duplicated, truncated, or bit-flipped, and whether a rank goes
//! dead or slow at a chosen point. Decisions are pure functions of
//! `(seed, from, to, tag, seq)` hashed with splitmix64 — the same seed
//! always yields the same fault schedule, independent of thread timing, so
//! a faulted run is exactly reproducible (see DESIGN.md §7).
//!
//! The plan only perturbs the *wire copy* of a message; the communicator
//! keeps a pristine copy for link-level retransmission, which is how real
//! interconnects (and the paper's InfiniBand fabric) mask transient loss.

use std::time::Duration;

/// What happens to one message on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver unchanged.
    Deliver,
    /// Silently discard the wire copy.
    Drop,
    /// Deliver after an injected latency spike.
    Delay,
    /// Deliver the same frame twice.
    Duplicate,
    /// Deliver with the frame cut short.
    Truncate,
    /// Deliver with one payload byte corrupted.
    BitFlip,
}

#[derive(Clone, Copy, Debug)]
struct DeadRank {
    rank: usize,
    after_sends: u64,
}

#[derive(Clone, Copy, Debug)]
struct SlowRank {
    rank: usize,
    per_send: Duration,
}

/// What a scheduled collective fault makes a rank do to one of its
/// logical collective calls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollectiveFault {
    /// The rank skips the call entirely (returns its local value).
    Skip,
    /// The rank runs the collective exchange twice.
    Duplicate,
}

#[derive(Clone, Copy, Debug)]
struct CollectiveFaultAt {
    rank: usize,
    nth: u64,
    fault: CollectiveFault,
}

/// A deterministic schedule of injected communication faults.
///
/// Build one with the fluent methods, then install it with
/// [`comm_world_with`](crate::world::comm_world_with):
///
/// ```
/// use quda_comm::fault::FaultPlan;
/// use std::time::Duration;
/// let plan = FaultPlan::new(42)
///     .drop(0.01)
///     .delay(0.005, Duration::from_millis(2))
///     .kill_rank(2, 100);
/// assert!(plan.is_dead(2, 100));
/// ```
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    drop_prob: f64,
    delay_prob: f64,
    dup_prob: f64,
    truncate_prob: f64,
    bitflip_prob: f64,
    delay: Duration,
    dead: Vec<DeadRank>,
    slow: Vec<SlowRank>,
    collective: Vec<CollectiveFaultAt>,
}

/// splitmix64: a tiny, high-quality mixer; enough to turn message
/// coordinates into an i.i.d.-looking stream of 64-bit values.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a hash to a uniform f64 in [0, 1).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultPlan {
    /// A plan with the given seed and no faults enabled.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, ..FaultPlan::default() }
    }

    /// Drop each message independently with probability `p`.
    pub fn drop(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Delay each message with probability `p` by `latency`.
    pub fn delay(mut self, p: f64, latency: Duration) -> Self {
        self.delay_prob = p;
        self.delay = latency;
        self
    }

    /// Duplicate each message with probability `p`.
    pub fn duplicate(mut self, p: f64) -> Self {
        self.dup_prob = p;
        self
    }

    /// Truncate each message's frame with probability `p`.
    pub fn truncate(mut self, p: f64) -> Self {
        self.truncate_prob = p;
        self
    }

    /// Flip one payload byte with probability `p`.
    pub fn bit_flip(mut self, p: f64) -> Self {
        self.bitflip_prob = p;
        self
    }

    /// Kill `rank` once it has performed `after_sends` sends: the send
    /// fails with `RankDead` and the rank is marked dead world-wide.
    pub fn kill_rank(mut self, rank: usize, after_sends: u64) -> Self {
        self.dead.push(DeadRank { rank, after_sends });
        self
    }

    /// Add `per_send` latency to every send `rank` performs.
    pub fn slow_rank(mut self, rank: usize, per_send: Duration) -> Self {
        self.slow.push(SlowRank { rank, per_send });
        self
    }

    /// Make `rank` silently *skip* its `nth` (0-based) allreduce call —
    /// the SPMD-contract violation the lockstep sanitizer exists to catch.
    pub fn skip_collective(mut self, rank: usize, nth: u64) -> Self {
        self.collective.push(CollectiveFaultAt { rank, nth, fault: CollectiveFault::Skip });
        self
    }

    /// Make `rank` run its `nth` (0-based) allreduce call *twice*.
    pub fn duplicate_collective(mut self, rank: usize, nth: u64) -> Self {
        self.collective.push(CollectiveFaultAt { rank, nth, fault: CollectiveFault::Duplicate });
        self
    }

    /// The injected latency for delayed messages.
    pub fn delay_latency(&self) -> Duration {
        self.delay
    }

    /// Deterministically decide the fate of message `(from, to, tag, seq)`.
    ///
    /// At most one fault fires per message; fault classes are checked in a
    /// fixed order (drop, bit-flip, truncate, duplicate, delay) over
    /// disjoint hash draws so probabilities stay independent per class.
    pub fn decide(&self, from: usize, to: usize, tag: u32, seq: u64) -> FaultAction {
        let base = self
            .seed
            .wrapping_mul(0xA076_1D64_78BD_642F)
            .wrapping_add((from as u64) << 48 | (to as u64) << 32 | tag as u64)
            .wrapping_add(seq.wrapping_mul(0xE703_7ED1_A0B4_28DB));
        let classes = [
            (self.drop_prob, FaultAction::Drop),
            (self.bitflip_prob, FaultAction::BitFlip),
            (self.truncate_prob, FaultAction::Truncate),
            (self.dup_prob, FaultAction::Duplicate),
            (self.delay_prob, FaultAction::Delay),
        ];
        for (salt, (p, action)) in classes.iter().enumerate() {
            if *p > 0.0 && unit(splitmix64(base ^ (salt as u64 + 1).wrapping_mul(0x9E37_79B9))) < *p
            {
                return *action;
            }
        }
        FaultAction::Deliver
    }

    /// Whether `rank` is scheduled dead once it has made `sends` sends.
    pub fn is_dead(&self, rank: usize, sends: u64) -> bool {
        self.dead.iter().any(|d| d.rank == rank && sends >= d.after_sends)
    }

    /// The per-send latency penalty for `rank`, if it is scheduled slow.
    pub fn slow_penalty(&self, rank: usize) -> Option<Duration> {
        self.slow.iter().find(|s| s.rank == rank).map(|s| s.per_send)
    }

    /// The fault scheduled for `rank`'s `nth` (0-based) collective call,
    /// if any.
    pub fn collective_fault(&self, rank: usize, nth: u64) -> Option<CollectiveFault> {
        self.collective.iter().find(|c| c.rank == rank && c.nth == nth).map(|c| c.fault)
    }

    /// Whether any per-message fault class is enabled.
    pub fn any_message_faults(&self) -> bool {
        self.drop_prob > 0.0
            || self.delay_prob > 0.0
            || self.dup_prob > 0.0
            || self.truncate_prob > 0.0
            || self.bitflip_prob > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::new(7).drop(0.3).bit_flip(0.1);
        let b = FaultPlan::new(7).drop(0.3).bit_flip(0.1);
        for seq in 0..200 {
            assert_eq!(a.decide(0, 1, 5, seq), b.decide(0, 1, 5, seq));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(1).drop(0.5);
        let b = FaultPlan::new(2).drop(0.5);
        let same = (0..256).filter(|&s| a.decide(0, 1, 0, s) == b.decide(0, 1, 0, s)).count();
        assert!(same < 256, "seeds 1 and 2 produced identical schedules");
    }

    #[test]
    fn drop_rate_roughly_matches_probability() {
        let plan = FaultPlan::new(99).drop(0.25);
        let n = 4000;
        let drops = (0..n).filter(|&s| plan.decide(1, 0, 3, s) == FaultAction::Drop).count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.05, "drop rate {rate} too far from 0.25");
    }

    #[test]
    fn no_faults_means_deliver() {
        let plan = FaultPlan::new(5);
        assert!(!plan.any_message_faults());
        for seq in 0..50 {
            assert_eq!(plan.decide(0, 1, 2, seq), FaultAction::Deliver);
        }
    }

    #[test]
    fn collective_fault_schedule() {
        let plan = FaultPlan::new(0).skip_collective(1, 3).duplicate_collective(2, 5);
        assert_eq!(plan.collective_fault(1, 3), Some(CollectiveFault::Skip));
        assert_eq!(plan.collective_fault(2, 5), Some(CollectiveFault::Duplicate));
        assert_eq!(plan.collective_fault(1, 2), None);
        assert_eq!(plan.collective_fault(0, 3), None);
    }

    #[test]
    fn dead_and_slow_schedules() {
        let plan = FaultPlan::new(0).kill_rank(2, 10).slow_rank(1, Duration::from_millis(3));
        assert!(!plan.is_dead(2, 9));
        assert!(plan.is_dead(2, 10));
        assert!(!plan.is_dead(1, 1000));
        assert_eq!(plan.slow_penalty(1), Some(Duration::from_millis(3)));
        assert_eq!(plan.slow_penalty(0), None);
    }
}
