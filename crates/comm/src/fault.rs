//! Deterministic, seed-driven fault injection for the message layer.
//!
//! A [`FaultPlan`] decides, per message, whether the wire copy is dropped,
//! delayed, duplicated, truncated, or bit-flipped, and whether a rank goes
//! dead or slow at a chosen point. Decisions are pure functions of
//! `(seed, from, to, tag, seq)` hashed with splitmix64 — the same seed
//! always yields the same fault schedule, independent of thread timing, so
//! a faulted run is exactly reproducible (see DESIGN.md §7).
//!
//! The plan only perturbs the *wire copy* of a message; the communicator
//! keeps a pristine copy for link-level retransmission, which is how real
//! interconnects (and the paper's InfiniBand fabric) mask transient loss.

use std::time::Duration;

/// What happens to one message on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver unchanged.
    Deliver,
    /// Silently discard the wire copy.
    Drop,
    /// Deliver after an injected latency spike.
    Delay,
    /// Deliver the same frame twice.
    Duplicate,
    /// Deliver with the frame cut short.
    Truncate,
    /// Deliver with one payload byte corrupted.
    BitFlip,
}

/// A send-count-scheduled per-rank event (death or injected panic),
/// scoped to one world *generation* so that a kill consumed by an elastic
/// recovery does not re-fire in the respawned world.
#[derive(Clone, Copy, Debug)]
struct RankSchedule {
    rank: usize,
    after_sends: u64,
    generation: u32,
}

#[derive(Clone, Copy, Debug)]
struct SlowRank {
    rank: usize,
    per_send: Duration,
}

/// What a scheduled collective fault makes a rank do to one of its
/// logical collective calls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollectiveFault {
    /// The rank skips the call entirely (returns its local value).
    Skip,
    /// The rank runs the collective exchange twice.
    Duplicate,
}

#[derive(Clone, Copy, Debug)]
struct CollectiveFaultAt {
    rank: usize,
    nth: u64,
    fault: CollectiveFault,
}

/// A deterministic schedule of injected communication faults.
///
/// Build one with the fluent methods, then install it with
/// [`comm_world_with`](crate::world::comm_world_with):
///
/// ```
/// use quda_comm::fault::FaultPlan;
/// use std::time::Duration;
/// let plan = FaultPlan::new(42)
///     .drop(0.01)
///     .delay(0.005, Duration::from_millis(2))
///     .kill_rank(2, 100);
/// assert!(plan.is_dead(2, 100));
/// ```
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    drop_prob: f64,
    delay_prob: f64,
    dup_prob: f64,
    truncate_prob: f64,
    bitflip_prob: f64,
    delay: Duration,
    dead: Vec<RankSchedule>,
    panics: Vec<RankSchedule>,
    slow: Vec<SlowRank>,
    collective: Vec<CollectiveFaultAt>,
    /// Which world incarnation this plan instance is driving. Kills and
    /// panics only fire when their scheduled generation matches; the
    /// elastic driver bumps this (via [`FaultPlan::with_generation`]) each
    /// time it respawns the world.
    active_generation: u32,
}

/// splitmix64: a tiny, high-quality mixer; enough to turn message
/// coordinates into an i.i.d.-looking stream of 64-bit values.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a hash to a uniform f64 in [0, 1).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultPlan {
    /// A plan with the given seed and no faults enabled.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, ..FaultPlan::default() }
    }

    /// Drop each message independently with probability `p`.
    pub fn drop(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Delay each message with probability `p` by `latency`.
    pub fn delay(mut self, p: f64, latency: Duration) -> Self {
        self.delay_prob = p;
        self.delay = latency;
        self
    }

    /// Duplicate each message with probability `p`.
    pub fn duplicate(mut self, p: f64) -> Self {
        self.dup_prob = p;
        self
    }

    /// Truncate each message's frame with probability `p`.
    pub fn truncate(mut self, p: f64) -> Self {
        self.truncate_prob = p;
        self
    }

    /// Flip one payload byte with probability `p`.
    pub fn bit_flip(mut self, p: f64) -> Self {
        self.bitflip_prob = p;
        self
    }

    /// Kill `rank` once it has performed `after_sends` sends: the send
    /// fails with `RankDead` and the rank is marked dead world-wide.
    ///
    /// Multiple calls accumulate, so one plan can schedule several timed
    /// kills. A plain `kill_rank` is scoped to generation 0 (the first
    /// world incarnation); use [`FaultPlan::kill_rank_in_generation`] to
    /// schedule sequential deaths across elastic-recovery respawns.
    pub fn kill_rank(self, rank: usize, after_sends: u64) -> Self {
        self.kill_rank_in_generation(0, rank, after_sends)
    }

    /// Kill `rank` after `after_sends` sends, but only while the plan's
    /// active generation (see [`FaultPlan::with_generation`]) equals
    /// `generation`. This is how the chaos suite injects *sequential*
    /// deaths: a generation-1 kill stays dormant until the elastic driver
    /// has already survived the generation-0 one and respawned the world.
    pub fn kill_rank_in_generation(
        mut self,
        generation: u32,
        rank: usize,
        after_sends: u64,
    ) -> Self {
        self.dead.push(RankSchedule { rank, after_sends, generation });
        self
    }

    /// Panic `rank`'s worker thread once it has performed `after_sends`
    /// sends — simulates a *bug* (crash) rather than a scheduled death, so
    /// the driver's `RankPanicked` classification can be exercised.
    pub fn panic_rank(self, rank: usize, after_sends: u64) -> Self {
        self.panic_rank_in_generation(0, rank, after_sends)
    }

    /// Generation-scoped variant of [`FaultPlan::panic_rank`].
    pub fn panic_rank_in_generation(
        mut self,
        generation: u32,
        rank: usize,
        after_sends: u64,
    ) -> Self {
        self.panics.push(RankSchedule { rank, after_sends, generation });
        self
    }

    /// A copy of this plan with its active generation set to `generation`.
    /// Message-level fault probabilities are unaffected; only kill/panic
    /// schedules are generation-filtered.
    pub fn with_generation(mut self, generation: u32) -> Self {
        self.active_generation = generation;
        self
    }

    /// The world incarnation this plan instance is driving.
    pub fn generation(&self) -> u32 {
        self.active_generation
    }

    /// Add `per_send` latency to every send `rank` performs.
    pub fn slow_rank(mut self, rank: usize, per_send: Duration) -> Self {
        self.slow.push(SlowRank { rank, per_send });
        self
    }

    /// Make `rank` silently *skip* its `nth` (0-based) allreduce call —
    /// the SPMD-contract violation the lockstep sanitizer exists to catch.
    pub fn skip_collective(mut self, rank: usize, nth: u64) -> Self {
        self.collective.push(CollectiveFaultAt { rank, nth, fault: CollectiveFault::Skip });
        self
    }

    /// Make `rank` run its `nth` (0-based) allreduce call *twice*.
    pub fn duplicate_collective(mut self, rank: usize, nth: u64) -> Self {
        self.collective.push(CollectiveFaultAt { rank, nth, fault: CollectiveFault::Duplicate });
        self
    }

    /// The injected latency for delayed messages.
    pub fn delay_latency(&self) -> Duration {
        self.delay
    }

    /// Deterministically decide the fate of message `(from, to, tag, seq)`.
    ///
    /// At most one fault fires per message; fault classes are checked in a
    /// fixed order (drop, bit-flip, truncate, duplicate, delay) over
    /// disjoint hash draws so probabilities stay independent per class.
    pub fn decide(&self, from: usize, to: usize, tag: u32, seq: u64) -> FaultAction {
        let base = self
            .seed
            .wrapping_mul(0xA076_1D64_78BD_642F)
            .wrapping_add((from as u64) << 48 | (to as u64) << 32 | tag as u64)
            .wrapping_add(seq.wrapping_mul(0xE703_7ED1_A0B4_28DB));
        let classes = [
            (self.drop_prob, FaultAction::Drop),
            (self.bitflip_prob, FaultAction::BitFlip),
            (self.truncate_prob, FaultAction::Truncate),
            (self.dup_prob, FaultAction::Duplicate),
            (self.delay_prob, FaultAction::Delay),
        ];
        for (salt, (p, action)) in classes.iter().enumerate() {
            if *p > 0.0 && unit(splitmix64(base ^ (salt as u64 + 1).wrapping_mul(0x9E37_79B9))) < *p
            {
                return *action;
            }
        }
        FaultAction::Deliver
    }

    /// Whether `rank` is scheduled dead once it has made `sends` sends
    /// (in the plan's active generation).
    pub fn is_dead(&self, rank: usize, sends: u64) -> bool {
        self.dead.iter().any(|d| {
            d.generation == self.active_generation && d.rank == rank && sends >= d.after_sends
        })
    }

    /// Whether `rank`'s worker thread is scheduled to panic once it has
    /// made `sends` sends (in the plan's active generation).
    pub fn should_panic(&self, rank: usize, sends: u64) -> bool {
        self.panics.iter().any(|p| {
            p.generation == self.active_generation && p.rank == rank && sends >= p.after_sends
        })
    }

    /// The per-send latency penalty for `rank`, if it is scheduled slow.
    pub fn slow_penalty(&self, rank: usize) -> Option<Duration> {
        self.slow.iter().find(|s| s.rank == rank).map(|s| s.per_send)
    }

    /// The fault scheduled for `rank`'s `nth` (0-based) collective call,
    /// if any.
    pub fn collective_fault(&self, rank: usize, nth: u64) -> Option<CollectiveFault> {
        self.collective.iter().find(|c| c.rank == rank && c.nth == nth).map(|c| c.fault)
    }

    /// Whether any per-message fault class is enabled.
    pub fn any_message_faults(&self) -> bool {
        self.drop_prob > 0.0
            || self.delay_prob > 0.0
            || self.dup_prob > 0.0
            || self.truncate_prob > 0.0
            || self.bitflip_prob > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::new(7).drop(0.3).bit_flip(0.1);
        let b = FaultPlan::new(7).drop(0.3).bit_flip(0.1);
        for seq in 0..200 {
            assert_eq!(a.decide(0, 1, 5, seq), b.decide(0, 1, 5, seq));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(1).drop(0.5);
        let b = FaultPlan::new(2).drop(0.5);
        let same = (0..256).filter(|&s| a.decide(0, 1, 0, s) == b.decide(0, 1, 0, s)).count();
        assert!(same < 256, "seeds 1 and 2 produced identical schedules");
    }

    #[test]
    fn drop_rate_roughly_matches_probability() {
        let plan = FaultPlan::new(99).drop(0.25);
        let n = 4000;
        let drops = (0..n).filter(|&s| plan.decide(1, 0, 3, s) == FaultAction::Drop).count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.05, "drop rate {rate} too far from 0.25");
    }

    #[test]
    fn no_faults_means_deliver() {
        let plan = FaultPlan::new(5);
        assert!(!plan.any_message_faults());
        for seq in 0..50 {
            assert_eq!(plan.decide(0, 1, 2, seq), FaultAction::Deliver);
        }
    }

    #[test]
    fn collective_fault_schedule() {
        let plan = FaultPlan::new(0).skip_collective(1, 3).duplicate_collective(2, 5);
        assert_eq!(plan.collective_fault(1, 3), Some(CollectiveFault::Skip));
        assert_eq!(plan.collective_fault(2, 5), Some(CollectiveFault::Duplicate));
        assert_eq!(plan.collective_fault(1, 2), None);
        assert_eq!(plan.collective_fault(0, 3), None);
    }

    #[test]
    fn dead_and_slow_schedules() {
        let plan = FaultPlan::new(0).kill_rank(2, 10).slow_rank(1, Duration::from_millis(3));
        assert!(!plan.is_dead(2, 9));
        assert!(plan.is_dead(2, 10));
        assert!(!plan.is_dead(1, 1000));
        assert_eq!(plan.slow_penalty(1), Some(Duration::from_millis(3)));
        assert_eq!(plan.slow_penalty(0), None);
    }

    #[test]
    fn multiple_kills_accumulate_in_one_plan() {
        let plan = FaultPlan::new(0).kill_rank(1, 5).kill_rank(3, 20);
        assert!(plan.is_dead(1, 5));
        assert!(plan.is_dead(3, 20));
        assert!(!plan.is_dead(2, 1000));
    }

    #[test]
    fn kills_are_generation_scoped() {
        let plan = FaultPlan::new(0)
            .kill_rank_in_generation(0, 1, 5)
            .kill_rank_in_generation(1, 2, 7)
            .kill_rank_in_generation(2, 1, 3);
        // Generation 0 (the default): only the generation-0 kill fires.
        assert!(plan.is_dead(1, 5));
        assert!(!plan.is_dead(2, 1000));
        assert_eq!(plan.generation(), 0);
        // After a respawn, the consumed kill stays dormant and the next
        // scheduled one becomes live.
        let g1 = plan.clone().with_generation(1);
        assert!(!g1.is_dead(1, 1000));
        assert!(g1.is_dead(2, 7));
        assert_eq!(g1.generation(), 1);
        let g2 = plan.with_generation(2);
        assert!(g2.is_dead(1, 3));
        assert!(!g2.is_dead(2, 1000));
    }

    #[test]
    fn panic_schedule_is_generation_scoped() {
        let plan = FaultPlan::new(0).panic_rank(1, 4).panic_rank_in_generation(1, 2, 6);
        assert!(!plan.should_panic(1, 3));
        assert!(plan.should_panic(1, 4));
        assert!(!plan.should_panic(2, 100));
        assert!(!plan.is_dead(1, 100), "a panic schedule is not a death schedule");
        let g1 = plan.with_generation(1);
        assert!(!g1.should_panic(1, 100));
        assert!(g1.should_panic(2, 6));
    }
}
