//! A QMP-like message-passing world over OS threads.
//!
//! The paper uses QMP — "an API built on top of MPI that provides convenient
//! functionality for LQCD computations" (Section VI-A) — with one MPI
//! process bound to each GPU. Here each *rank* is a thread holding a
//! [`Communicator`]; point-to-point messages travel over crossbeam channels
//! with `(from, tag)` matching, and reductions are performed
//! deterministically (fixed summation order by rank), which keeps multi-rank
//! solves bit-reproducible run to run.

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::VecDeque;

/// Reserved tag base for internal collective traffic.
const TAG_COLLECTIVE: u32 = 0xffff_0000;

#[derive(Clone, Debug)]
struct Message {
    from: usize,
    tag: u32,
    payload: Bytes,
}

/// One rank's endpoint in the communicator world.
pub struct Communicator {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    // Messages received but not yet matched by a recv call.
    stash: VecDeque<Message>,
    // Bytes sent, for traffic accounting.
    sent_bytes: u64,
    sent_messages: u64,
}

/// Create a world of `size` ranks. Returns one [`Communicator`] per rank;
/// move each into its rank's thread.
pub fn comm_world(size: usize) -> Vec<Communicator> {
    assert!(size >= 1);
    let mut senders = Vec::with_capacity(size);
    let mut receivers = Vec::with_capacity(size);
    for _ in 0..size {
        let (s, r) = unbounded();
        senders.push(s);
        receivers.push(r);
    }
    receivers
        .into_iter()
        .enumerate()
        .map(|(rank, receiver)| Communicator {
            rank,
            size,
            senders: senders.clone(),
            receiver,
            stash: VecDeque::new(),
            sent_bytes: 0,
            sent_messages: 0,
        })
        .collect()
}

impl Communicator {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Rank of the forward neighbor on the periodic ring (the time-sliced
    /// decomposition's topology).
    pub fn forward(&self) -> usize {
        (self.rank + 1) % self.size
    }

    /// Rank of the backward neighbor.
    pub fn backward(&self) -> usize {
        (self.rank + self.size - 1) % self.size
    }

    /// Non-blocking send (channel buffered, like an eager-protocol MPI
    /// send of a face-sized message).
    pub fn send(&mut self, to: usize, tag: u32, payload: Bytes) {
        self.sent_bytes += payload.len() as u64;
        self.sent_messages += 1;
        self.senders[to]
            .send(Message { from: self.rank, tag, payload })
            .expect("rank channel closed");
    }

    /// Blocking receive matching `(from, tag)`; out-of-order messages are
    /// stashed until asked for.
    pub fn recv(&mut self, from: usize, tag: u32) -> Bytes {
        if let Some(pos) = self.stash.iter().position(|m| m.from == from && m.tag == tag) {
            return self.stash.remove(pos).unwrap().payload;
        }
        loop {
            let m = self.receiver.recv().expect("rank channel closed");
            if m.from == from && m.tag == tag {
                return m.payload;
            }
            self.stash.push_back(m);
        }
    }

    /// Total bytes sent by this rank.
    pub fn sent_bytes(&self) -> u64 {
        self.sent_bytes
    }

    /// Total messages sent by this rank.
    pub fn sent_messages(&self) -> u64 {
        self.sent_messages
    }

    /// Deterministic allreduce-sum over f64: gather to rank 0 (summed in
    /// rank order), broadcast back. This is the "insertion of MPI
    /// reductions for each of the linear algebra reduction kernels"
    /// (Section VI-E).
    pub fn allreduce_sum_f64(&mut self, local: f64) -> f64 {
        self.allreduce_vec(&[local])[0]
    }

    /// Allreduce-sum over a small vector of f64 (e.g. complex re/im pairs).
    pub fn allreduce_vec(&mut self, local: &[f64]) -> Vec<f64> {
        if self.size == 1 {
            return local.to_vec();
        }
        let tag = TAG_COLLECTIVE;
        if self.rank == 0 {
            let mut acc = local.to_vec();
            for from in 1..self.size {
                let contrib = crate::codec::unpack_f64(&self.recv(from, tag));
                assert_eq!(contrib.len(), acc.len());
                for (a, c) in acc.iter_mut().zip(&contrib) {
                    *a += c;
                }
            }
            let packed = crate::codec::pack_f64(&acc);
            for to in 1..self.size {
                self.send(to, tag + 1, packed.clone());
            }
            acc
        } else {
            let packed = crate::codec::pack_f64(local);
            self.send(0, tag, packed);
            crate::codec::unpack_f64(&self.recv(0, tag + 1))
        }
    }

    /// Allreduce-max over f64.
    pub fn allreduce_max_f64(&mut self, local: f64) -> f64 {
        if self.size == 1 {
            return local;
        }
        let tag = TAG_COLLECTIVE + 2;
        if self.rank == 0 {
            let mut acc = local;
            for from in 1..self.size {
                let v = crate::codec::unpack_f64(&self.recv(from, tag))[0];
                acc = acc.max(v);
            }
            let packed = crate::codec::pack_f64(&[acc]);
            for to in 1..self.size {
                self.send(to, tag + 1, packed.clone());
            }
            acc
        } else {
            self.send(0, tag, crate::codec::pack_f64(&[local]));
            crate::codec::unpack_f64(&self.recv(0, tag + 1))[0]
        }
    }

    /// Synchronize all ranks.
    pub fn barrier(&mut self) {
        self.allreduce_sum_f64(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{pack_f64, unpack_f64};
    use std::thread;

    #[test]
    fn ring_topology() {
        let world = comm_world(4);
        assert_eq!(world[0].backward(), 3);
        assert_eq!(world[3].forward(), 0);
        assert_eq!(world[2].forward(), 3);
    }

    #[test]
    fn point_to_point_roundtrip() {
        let mut world = comm_world(2);
        let mut c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        let t = thread::spawn(move || {
            c1.send(0, 7, pack_f64(&[1.0, 2.0]));
            let back = unpack_f64(&c1.recv(0, 8));
            assert_eq!(back, vec![3.0]);
        });
        let data = unpack_f64(&c0.recv(1, 7));
        assert_eq!(data, vec![1.0, 2.0]);
        c0.send(1, 8, pack_f64(&[3.0]));
        t.join().unwrap();
        assert_eq!(c0.sent_messages(), 1);
        assert_eq!(c0.sent_bytes(), 8);
    }

    #[test]
    fn out_of_order_messages_are_matched_by_tag() {
        let mut world = comm_world(2);
        let mut c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        let t = thread::spawn(move || {
            // Send tag 2 first, then tag 1.
            c1.send(0, 2, pack_f64(&[2.0]));
            c1.send(0, 1, pack_f64(&[1.0]));
        });
        // Receive in the opposite order.
        assert_eq!(unpack_f64(&c0.recv(1, 1)), vec![1.0]);
        assert_eq!(unpack_f64(&c0.recv(1, 2)), vec![2.0]);
        t.join().unwrap();
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let world = comm_world(4);
        let handles: Vec<_> = world
            .into_iter()
            .map(|mut c| {
                thread::spawn(move || {
                    let r = c.rank() as f64;
                    let total = c.allreduce_sum_f64(r + 1.0);
                    assert_eq!(total, 10.0); // 1+2+3+4
                    let m = c.allreduce_max_f64(r);
                    assert_eq!(m, 3.0);
                    c.barrier();
                    total
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 10.0);
        }
    }

    #[test]
    fn allreduce_is_deterministic_summation() {
        // Fixed rank-order summation: repeated runs give bit-identical
        // results even with non-associative f64 addition.
        for _ in 0..3 {
            let world = comm_world(3);
            let vals = [1e16, 1.0, -1e16];
            let handles: Vec<_> = world
                .into_iter()
                .map(|mut c| {
                    let v = vals[c.rank()];
                    thread::spawn(move || c.allreduce_sum_f64(v))
                })
                .collect();
            let results: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            // All ranks agree...
            assert!(results.windows(2).all(|w| w[0] == w[1]));
            // ...on the rank-ordered sum (1e16 + 1.0 loses the 1.0 first).
            assert_eq!(results[0], 0.0);
        }
    }

    #[test]
    fn vector_allreduce() {
        let world = comm_world(2);
        let handles: Vec<_> = world
            .into_iter()
            .map(|mut c| thread::spawn(move || c.allreduce_vec(&[1.0, -2.0])))
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), vec![2.0, -4.0]);
        }
    }

    #[test]
    fn single_rank_world_shortcuts() {
        let mut world = comm_world(1);
        let c = &mut world[0];
        assert_eq!(c.allreduce_sum_f64(5.0), 5.0);
        assert_eq!(c.allreduce_max_f64(-1.0), -1.0);
        c.barrier();
    }
}
