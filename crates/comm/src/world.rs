//! A QMP-like message-passing world over OS threads.
//!
//! The paper uses QMP — "an API built on top of MPI that provides convenient
//! functionality for LQCD computations" (Section VI-A) — with one MPI
//! process bound to each GPU. Here each *rank* is a thread holding a
//! [`Communicator`]; point-to-point messages travel over crossbeam channels
//! with `(from, tag)` matching, and reductions are performed
//! deterministically (fixed summation order by rank), which keeps multi-rank
//! solves bit-reproducible run to run.
//!
//! ## Resilience
//!
//! Every hot API returns a typed [`CommError`] instead of panicking or
//! blocking forever. On the wire each message is a checksummed frame
//! (see [`codec`](crate::codec)) carrying a per-`(peer, tag)` sequence
//! number, which lets the receiver detect corruption, discard duplicates,
//! and notice gaps. A world-shared liveness board turns a dropped, panicked
//! or fault-killed peer into [`CommError::RankDead`] within one timeout
//! tick, and a link-level *pristine store* — the moral equivalent of NIC
//! retransmit buffers on the paper's InfiniBand fabric — masks injected
//! drops, truncations and bit-flips with bit-identical payloads, so a
//! faulted run converges to exactly the fault-free result (DESIGN.md §7).

use crate::error::CommError;
use crate::fault::{CollectiveFault, FaultAction, FaultPlan};
use crate::lockstep::{self, CollectiveKind, LockstepConfig, LockstepState};
use crate::tags;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use quda_obs::{clock, Phase, Tracer};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Longest single wait on the channel; backoff ticks cap here so liveness
/// changes are observed promptly even under long total timeouts.
const MAX_TICK: Duration = Duration::from_millis(50);

#[derive(Clone, Debug)]
struct Message {
    from: usize,
    tag: u32,
    seq: u64,
    frame: Bytes,
}

/// Timeout and retry policy for one communicator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommConfig {
    /// Total time a `recv` may wait for its message before failing with
    /// [`CommError::Timeout`].
    pub timeout: Duration,
    /// Initial backoff tick; doubles per wait up to an internal cap.
    pub retry_backoff: Duration,
    /// Retry budget once a sequence gap proves the expected message went
    /// missing; exceeding it fails with [`CommError::RetriesExhausted`].
    pub max_retries: u32,
}

impl Default for CommConfig {
    fn default() -> Self {
        CommConfig {
            timeout: Duration::from_secs(10),
            retry_backoff: Duration::from_micros(500),
            max_retries: 16,
        }
    }
}

/// Recovery counters kept per rank.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Timeout ticks spent waiting or backing off in `recv`.
    pub retries: u64,
    /// Messages recovered from the link-level pristine store (after a
    /// drop, truncation or bit-flip on the wire).
    pub recovered: u64,
    /// Stale duplicate frames discarded by sequence-number dedup.
    pub duplicates_dropped: u64,
    /// Frames whose checksum or length check failed on arrival.
    pub checksum_failures: u64,
}

impl CommStats {
    /// Sum counters with another rank's (or another world's) stats, e.g.
    /// to merge the high- and low-precision communicators of a mixed
    /// solve into one per-rank health record.
    pub fn merged(self, other: CommStats) -> CommStats {
        CommStats {
            retries: self.retries + other.retries,
            recovered: self.recovered + other.recovered,
            duplicates_dropped: self.duplicates_dropped + other.duplicates_dropped,
            checksum_failures: self.checksum_failures + other.checksum_failures,
        }
    }
}

/// State shared by every rank of one world.
struct WorldShared {
    /// Liveness board: `alive[r]` is cleared when rank `r`'s communicator
    /// is dropped (clean exit or panic) or a fault plan kills it.
    alive: Vec<AtomicBool>,
    /// Link-level retransmit store: pristine payload copies keyed by
    /// `(from, to, tag, seq)`, populated only when a fault perturbs the
    /// wire copy of a message.
    pristine: Mutex<HashMap<(usize, usize, u32, u64), Bytes>>,
    /// The installed fault schedule, if any.
    plan: Option<FaultPlan>,
}

/// One rank's endpoint in the communicator world.
pub struct Communicator {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    // Messages received but not yet matched by a recv call.
    stash: VecDeque<Message>,
    shared: Arc<WorldShared>,
    config: CommConfig,
    // Next sequence number per (to, tag) / next expected per (from, tag).
    send_seq: HashMap<(usize, u32), u64>,
    recv_seq: HashMap<(usize, u32), u64>,
    // Bytes sent, for traffic accounting (payloads only — frame headers
    // are link-level overhead the performance model does not price).
    sent_bytes: u64,
    sent_messages: u64,
    total_sends: u64,
    stats: CommStats,
    // Phase recorder handle for this rank; disabled (free) by default.
    tracer: Tracer,
    // Lockstep sanitizer state; disabled (free) by default.
    lockstep: Option<LockstepState>,
    // Logical collective calls issued by this rank (allreduce/barrier).
    collective_calls: u64,
}

/// Create a world of `size` ranks with default config and no faults.
/// Returns one [`Communicator`] per rank; move each into its rank's thread.
pub fn comm_world(size: usize) -> Vec<Communicator> {
    comm_world_with(size, CommConfig::default(), None)
}

/// Create a world with an explicit timeout/retry policy and an optional
/// deterministic [`FaultPlan`] injected into every link.
pub fn comm_world_with(
    size: usize,
    config: CommConfig,
    plan: Option<FaultPlan>,
) -> Vec<Communicator> {
    assert!(size >= 1);
    let mut senders = Vec::with_capacity(size);
    let mut receivers = Vec::with_capacity(size);
    for _ in 0..size {
        let (s, r) = unbounded();
        senders.push(s);
        receivers.push(r);
    }
    let shared = Arc::new(WorldShared {
        alive: (0..size).map(|_| AtomicBool::new(true)).collect(),
        pristine: Mutex::new(HashMap::new()),
        plan,
    });
    receivers
        .into_iter()
        .enumerate()
        .map(|(rank, receiver)| Communicator {
            rank,
            size,
            senders: senders.clone(),
            receiver,
            stash: VecDeque::new(),
            shared: shared.clone(),
            config,
            send_seq: HashMap::new(),
            recv_seq: HashMap::new(),
            sent_bytes: 0,
            sent_messages: 0,
            total_sends: 0,
            stats: CommStats::default(),
            tracer: Tracer::disabled(),
            lockstep: None,
            collective_calls: 0,
        })
        .collect()
}

impl Communicator {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Rank of the forward neighbor on the periodic ring (the time-sliced
    /// decomposition's topology).
    pub fn forward(&self) -> usize {
        (self.rank + 1) % self.size
    }

    /// Rank of the backward neighbor.
    pub fn backward(&self) -> usize {
        (self.rank + self.size - 1) % self.size
    }

    /// The timeout/retry policy this communicator runs under.
    pub fn config(&self) -> &CommConfig {
        &self.config
    }

    /// Whether `rank` is still alive on the world's liveness board.
    pub fn is_alive(&self, rank: usize) -> bool {
        self.shared.alive[rank].load(Ordering::SeqCst)
    }

    /// Install the phase recorder handle for this rank. Until this is
    /// called (or when handed [`Tracer::disabled`]) tracing has no cost.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The phase recorder handle, for layers above that want to record
    /// their own spans (ghost exchange, operator kernels).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Turn on the lockstep sanitizer (see [`crate::lockstep`]). Must be
    /// enabled on *every* rank of the world or none: the collective wire
    /// format grows a fingerprint block when it is on.
    pub fn enable_lockstep(&mut self, config: LockstepConfig) {
        self.lockstep = Some(LockstepState::new(config));
    }

    /// Whether the lockstep sanitizer is active on this rank.
    pub fn lockstep_enabled(&self) -> bool {
        self.lockstep.is_some()
    }

    /// Non-blocking send (channel buffered, like an eager-protocol MPI
    /// send of a face-sized message). Fails with [`CommError::RankDead`]
    /// if this rank was fault-killed or the destination endpoint is gone.
    pub fn send(&mut self, to: usize, tag: u32, payload: Bytes) -> Result<(), CommError> {
        let mut span = self.tracer.span(Phase::CommSend);
        span.set_bytes(payload.len() as u64);
        let mut action = FaultAction::Deliver;
        if let Some(plan) = &self.shared.plan {
            if plan.is_dead(self.rank, self.total_sends) {
                self.shared.alive[self.rank].store(false, Ordering::SeqCst);
                return Err(CommError::RankDead { rank: self.rank });
            }
            if plan.should_panic(self.rank, self.total_sends) {
                // Deliberate fault injection: simulate a *bug* in the rank
                // worker (not a scheduled death) so the driver's panic
                // classification path is exercised. The unwinding drop of
                // this communicator marks the liveness board dead, exactly
                // like a real crash would.
                // quda-lint: allow(no-panic)
                panic!("injected panic after {} sends", self.total_sends);
            }
            if let Some(penalty) = plan.slow_penalty(self.rank) {
                thread::sleep(penalty);
            }
        }
        let seq = {
            let s = self.send_seq.entry((to, tag)).or_insert(0);
            let seq = *s;
            *s += 1;
            seq
        };
        if !tags::is_internal(tag) {
            if let Some(ls) = &mut self.lockstep {
                ls.record(CollectiveKind::Send, tag, payload.len() as u64, seq);
            }
        }
        if let Some(plan) = &self.shared.plan {
            action = plan.decide(self.rank, to, tag, seq);
        }
        self.total_sends += 1;
        self.sent_bytes += payload.len() as u64;
        self.sent_messages += 1;
        let framed = crate::codec::frame(&payload);
        match action {
            FaultAction::Deliver => self.put(to, tag, seq, framed)?,
            FaultAction::Drop => {
                // The wire copy vanishes; the link keeps a pristine copy
                // for the receiver-driven retransmit path.
                self.store_pristine(to, tag, seq, payload);
            }
            FaultAction::Delay => {
                let latency =
                    self.shared.plan.as_ref().map(|p| p.delay_latency()).unwrap_or_default();
                thread::sleep(latency);
                self.put(to, tag, seq, framed)?;
            }
            FaultAction::Duplicate => {
                self.put(to, tag, seq, framed.clone())?;
                self.put(to, tag, seq, framed)?;
            }
            FaultAction::Truncate => {
                self.store_pristine(to, tag, seq, payload);
                let cut = framed.len().saturating_sub(7);
                self.put(to, tag, seq, framed.slice(0..cut))?;
            }
            FaultAction::BitFlip => {
                self.store_pristine(to, tag, seq, payload.clone());
                let mut wire = framed.to_vec();
                let idx = if payload.is_empty() {
                    4 // no payload bytes: corrupt the checksum field itself
                } else {
                    crate::codec::FRAME_OVERHEAD + (seq as usize).wrapping_mul(7919) % payload.len()
                };
                wire[idx] ^= 0x20;
                self.put(to, tag, seq, Bytes::from(wire))?;
            }
        }
        Ok(())
    }

    fn put(&mut self, to: usize, tag: u32, seq: u64, frame: Bytes) -> Result<(), CommError> {
        self.senders[to].send(Message { from: self.rank, tag, seq, frame }).map_err(|_| {
            self.shared.alive[to].store(false, Ordering::SeqCst);
            CommError::RankDead { rank: to }
        })
    }

    fn store_pristine(&self, to: usize, tag: u32, seq: u64, payload: Bytes) {
        // A peer that panicked while holding the lock leaves the map intact
        // (insert/remove are single operations), so poison is stripped
        // rather than cascading the panic across surviving ranks.
        self.shared
            .pristine
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert((self.rank, to, tag, seq), payload);
    }

    fn take_pristine(&self, from: usize, tag: u32, seq: u64) -> Option<Bytes> {
        self.shared
            .pristine
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(&(from, self.rank, tag, seq))
    }

    /// Try to produce the next-in-sequence payload for `(from, tag)` from
    /// the stash, the channel backlog, or the link-level pristine store —
    /// without blocking. Stale duplicates are purged along the way.
    fn try_take(&mut self, from: usize, tag: u32) -> Result<Option<Bytes>, CommError> {
        let expected = *self.recv_seq.entry((from, tag)).or_insert(0);
        for drained in [false, true] {
            if drained {
                // Pull everything already buffered in the channel so a
                // finished-and-dropped peer's messages are never missed.
                while let Ok(m) = self.receiver.try_recv() {
                    self.stash.push_back(m);
                }
            }
            // Purge stale duplicates of this stream.
            let before = self.stash.len();
            self.stash.retain(|m| !(m.from == from && m.tag == tag && m.seq < expected));
            self.stats.duplicates_dropped += (before - self.stash.len()) as u64;
            if let Some(m) = self
                .stash
                .iter()
                .position(|m| m.from == from && m.tag == tag && m.seq == expected)
                .and_then(|pos| self.stash.remove(pos))
            {
                match crate::codec::unframe(&m.frame) {
                    Ok(payload) => {
                        self.recv_seq.insert((from, tag), expected + 1);
                        return Ok(Some(payload));
                    }
                    Err(error) => {
                        self.stats.checksum_failures += 1;
                        return match self.take_pristine(from, tag, expected) {
                            Some(payload) => {
                                self.stats.recovered += 1;
                                self.recv_seq.insert((from, tag), expected + 1);
                                Ok(Some(payload))
                            }
                            None => Err(CommError::Decode { from, tag, error }),
                        };
                    }
                }
            }
        }
        // Not on the wire at all — maybe the link dropped it and kept a
        // pristine copy (receiver-driven retransmit).
        if let Some(payload) = self.take_pristine(from, tag, expected) {
            self.stats.recovered += 1;
            self.recv_seq.insert((from, tag), expected + 1);
            return Ok(Some(payload));
        }
        Ok(None)
    }

    fn has_gap(&self, from: usize, tag: u32) -> bool {
        let expected = self.recv_seq.get(&(from, tag)).copied().unwrap_or(0);
        self.stash.iter().any(|m| m.from == from && m.tag == tag && m.seq > expected)
    }

    /// Blocking receive matching `(from, tag)`; out-of-order messages are
    /// stashed until asked for. Never hangs: a dead peer surfaces as
    /// [`CommError::RankDead`], a missing message as
    /// [`CommError::Timeout`] (or [`CommError::RetriesExhausted`] once a
    /// sequence gap proves it went missing), and unrecoverable corruption
    /// as [`CommError::Decode`].
    pub fn recv(&mut self, from: usize, tag: u32) -> Result<Bytes, CommError> {
        let mut span = self.tracer.span(Phase::CommRecv);
        let result = self.recv_inner(from, tag);
        if let Ok(payload) = &result {
            span.set_bytes(payload.len() as u64);
            if !tags::is_internal(tag) {
                if let Some(ls) = &mut self.lockstep {
                    // recv_inner advanced the stream; the consumed seq is
                    // one behind the next-expected counter.
                    let seq = self.recv_seq.get(&(from, tag)).map_or(0, |s| s.saturating_sub(1));
                    ls.record(CollectiveKind::Recv, tag, payload.len() as u64, seq);
                }
            }
        }
        result
    }

    fn recv_inner(&mut self, from: usize, tag: u32) -> Result<Bytes, CommError> {
        if let Some(payload) = self.try_take(from, tag)? {
            return Ok(payload);
        }
        // All waiting is timed on the shared monotonic epoch so expired
        // ticks can be attributed as retry spans (lint: no-raw-instant).
        let start = clock::monotonic();
        let mut tick = self.config.retry_backoff.max(Duration::from_micros(1));
        let mut gap_retries: u32 = 0;
        loop {
            let tick_start = self.tracer.enabled().then(clock::monotonic);
            match self.receiver.recv_timeout(tick) {
                Ok(m) => {
                    self.stash.push_back(m);
                    if let Some(payload) = self.try_take(from, tag)? {
                        return Ok(payload);
                    }
                }
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                    if let Some(t0) = tick_start {
                        self.tracer.record_since(Phase::Retry, t0, 0);
                    }
                    if let Some(payload) = self.try_take(from, tag)? {
                        return Ok(payload);
                    }
                    self.stats.retries += 1;
                    if !self.is_alive(from) {
                        // try_take already drained the channel backlog; the
                        // message can no longer arrive.
                        return Err(CommError::RankDead { rank: from });
                    }
                    if self.has_gap(from, tag) {
                        gap_retries += 1;
                        if gap_retries > self.config.max_retries {
                            return Err(CommError::RetriesExhausted {
                                from,
                                tag,
                                attempts: self.config.max_retries,
                            });
                        }
                    }
                    let waited = clock::monotonic().saturating_sub(start);
                    if waited >= self.config.timeout {
                        return Err(CommError::Timeout {
                            from,
                            tag,
                            waited_ms: waited.as_millis() as u64,
                        });
                    }
                    tick = (tick * 2).min(MAX_TICK);
                }
            }
        }
    }

    /// Total bytes sent by this rank.
    pub fn sent_bytes(&self) -> u64 {
        self.sent_bytes
    }

    /// Total messages sent by this rank.
    pub fn sent_messages(&self) -> u64 {
        self.sent_messages
    }

    /// Recovery counters accumulated by this rank.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Deterministic allreduce-sum over f64: gather to rank 0 (summed in
    /// rank order), broadcast back. This is the "insertion of MPI
    /// reductions for each of the linear algebra reduction kernels"
    /// (Section VI-E).
    pub fn allreduce_sum_f64(&mut self, local: f64) -> Result<f64, CommError> {
        Ok(self.allreduce_vec(&[local])?[0])
    }

    /// Allreduce-sum over a small vector of f64 (e.g. complex re/im pairs).
    pub fn allreduce_vec(&mut self, local: &[f64]) -> Result<Vec<f64>, CommError> {
        let _span = self.tracer.span(Phase::AllReduce);
        self.collective(ReduceOp::Sum, local)
    }

    /// Allreduce-max over f64.
    pub fn allreduce_max_f64(&mut self, local: f64) -> Result<f64, CommError> {
        let _span = self.tracer.span(Phase::AllReduce);
        let v = self.collective(ReduceOp::Max, &[local])?;
        if v.len() != 1 {
            return Err(CommError::SizeMismatch { expected: 1, got: v.len() });
        }
        Ok(v[0])
    }

    /// Synchronize all ranks.
    pub fn barrier(&mut self) -> Result<(), CommError> {
        self.allreduce_sum_f64(0.0).map(|_| ())
    }

    /// One logical collective call: count it, apply any scheduled
    /// collective fault, fingerprint it, and run the gather/broadcast
    /// exchange.
    fn collective(&mut self, op: ReduceOp, local: &[f64]) -> Result<Vec<f64>, CommError> {
        if self.size == 1 {
            return Ok(local.to_vec());
        }
        let call_no = self.collective_calls;
        self.collective_calls += 1;
        let fault = self.shared.plan.as_ref().and_then(|p| p.collective_fault(self.rank, call_no));
        match fault {
            // The injected SPMD violation: this rank silently sits the
            // collective out — exactly what a rank-divergent branch does.
            Some(CollectiveFault::Skip) => Ok(local.to_vec()),
            Some(CollectiveFault::Duplicate) => {
                self.record_collective(op, local, call_no);
                self.collective_exchange(op, local, call_no)?;
                // Replay the wire exchange for the *same* logical call:
                // this rank's exchange stream runs one ahead of its
                // fingerprint, which the next cross-check flags as drift.
                self.collective_exchange(op, local, call_no)
            }
            None => {
                self.record_collective(op, local, call_no);
                self.collective_exchange(op, local, call_no)
            }
        }
    }

    fn record_collective(&mut self, op: ReduceOp, local: &[f64], call_no: u64) {
        if let Some(ls) = &mut self.lockstep {
            let bytes = (local.len() * 8) as u64;
            ls.record(CollectiveKind::AllReduce, op.tags().0, bytes, call_no);
        }
    }

    /// Gather-to-root / broadcast-back exchange shared by every reduction
    /// kind. With the lockstep sanitizer on, each contribution carries the
    /// sender's fingerprint block and each reply carries rank 0's verdict,
    /// so a cross-rank divergence surfaces as
    /// [`CommError::LockstepDivergence`] on every rank instead of a hang.
    fn collective_exchange(
        &mut self,
        op: ReduceOp,
        local: &[f64],
        call_no: u64,
    ) -> Result<Vec<f64>, CommError> {
        let (tag, reply_tag) = op.tags();
        let meta_len = if self.lockstep.is_some() { lockstep::META_F64S } else { 0 };
        if self.rank == 0 {
            let mut acc = local.to_vec();
            let mut peer_fps = Vec::new();
            for from in 1..self.size {
                let bytes = self.recv(from, tag)?;
                let v = crate::codec::unpack_f64(&bytes).map_err(|error| CommError::Decode {
                    from,
                    tag,
                    error,
                })?;
                if v.len() != acc.len() + meta_len {
                    return Err(CommError::SizeMismatch {
                        expected: acc.len() + meta_len,
                        got: v.len(),
                    });
                }
                let (contrib, meta) = v.split_at(acc.len());
                if meta_len > 0 {
                    if let Some(fp) = lockstep::parse_contribution_meta(meta) {
                        peer_fps.push((from, fp));
                    }
                }
                op.combine(&mut acc, contrib);
            }
            let mut divergence = None;
            if let Some(ls) = &self.lockstep {
                if ls.check_due(call_no) {
                    let _span = self.tracer.span(Phase::Lockstep);
                    let mine = ls.fingerprint();
                    for (from, fp) in &peer_fps {
                        if let Some(div) = lockstep::first_divergence(&mine, fp) {
                            divergence = Some((*from, mine.count, fp.count, div));
                            break;
                        }
                    }
                }
            }
            let mut reply = acc.clone();
            if meta_len > 0 {
                reply.extend_from_slice(&lockstep::encode_verdict(divergence));
            }
            let packed = crate::codec::pack_f64(&reply);
            // Replies (with the verdict) go out *before* the root errors,
            // so every leaf unblocks and reports the same divergence.
            for to in 1..self.size {
                self.send(to, reply_tag, packed.clone())?;
            }
            if let Some((rank, _, _, div)) = divergence {
                return Err(CommError::LockstepDivergence {
                    rank,
                    index: div.index,
                    expected: div.expected,
                    got: div.got,
                });
            }
            Ok(acc)
        } else {
            let mut contrib = local.to_vec();
            if let Some(ls) = &self.lockstep {
                let _span = self.tracer.span(Phase::Lockstep);
                contrib.extend_from_slice(&ls.contribution_meta());
            }
            self.send(0, tag, crate::codec::pack_f64(&contrib))?;
            let bytes = self.recv(0, reply_tag)?;
            let mut v = crate::codec::unpack_f64(&bytes).map_err(|error| CommError::Decode {
                from: 0,
                tag: reply_tag,
                error,
            })?;
            if meta_len > 0 {
                let verdict_len = lockstep::VERDICT_F64S;
                if v.len() < verdict_len {
                    return Err(CommError::SizeMismatch {
                        expected: local.len() + verdict_len,
                        got: v.len(),
                    });
                }
                let verdict = v.split_off(v.len() - verdict_len);
                if let Some(vd) = lockstep::parse_verdict(&verdict) {
                    let _span = self.tracer.span(Phase::Lockstep);
                    return Err(CommError::LockstepDivergence {
                        rank: vd.rank,
                        index: vd.index,
                        expected: vd.expected,
                        got: vd.got,
                    });
                }
            }
            Ok(v)
        }
    }
}

/// The reduction kinds [`Communicator::collective`] implements. Each maps
/// to its registered contribution/reply tag pair and an elementwise
/// combiner; rank 0 applies contributions in rank order, which is what
/// keeps multi-rank reductions bit-reproducible.
#[derive(Clone, Copy, Debug)]
enum ReduceOp {
    Sum,
    Max,
}

impl ReduceOp {
    fn tags(self) -> (u32, u32) {
        match self {
            ReduceOp::Sum => (tags::COLLECTIVE_SUM, tags::COLLECTIVE_SUM_REPLY),
            ReduceOp::Max => (tags::COLLECTIVE_MAX, tags::COLLECTIVE_MAX_REPLY),
        }
    }

    fn combine(self, acc: &mut [f64], contrib: &[f64]) {
        match self {
            ReduceOp::Sum => {
                for (a, c) in acc.iter_mut().zip(contrib) {
                    *a += c;
                }
            }
            ReduceOp::Max => {
                for (a, c) in acc.iter_mut().zip(contrib) {
                    *a = a.max(*c);
                }
            }
        }
    }
}

impl Drop for Communicator {
    fn drop(&mut self) {
        // Whether this rank finished cleanly or its thread panicked, the
        // rest of the world must see it as gone — this is what turns a
        // dead peer into `RankDead` instead of a hang.
        self.shared.alive[self.rank].store(false, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{frame, pack_f64, unpack_f64};
    use std::thread;
    use std::time::Instant;

    fn fast_config() -> CommConfig {
        CommConfig {
            timeout: Duration::from_millis(500),
            retry_backoff: Duration::from_micros(200),
            max_retries: 16,
        }
    }

    #[test]
    fn ring_topology() {
        let world = comm_world(4);
        assert_eq!(world[0].backward(), 3);
        assert_eq!(world[3].forward(), 0);
        assert_eq!(world[2].forward(), 3);
    }

    #[test]
    fn point_to_point_roundtrip() {
        let mut world = comm_world(2);
        let mut c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        let t = thread::spawn(move || {
            c1.send(0, 7, pack_f64(&[1.0, 2.0])).unwrap();
            let back = unpack_f64(&c1.recv(0, 8).unwrap()).unwrap();
            assert_eq!(back, vec![3.0]);
        });
        let data = unpack_f64(&c0.recv(1, 7).unwrap()).unwrap();
        assert_eq!(data, vec![1.0, 2.0]);
        c0.send(1, 8, pack_f64(&[3.0])).unwrap();
        t.join().unwrap();
        assert_eq!(c0.sent_messages(), 1);
        // Traffic accounting counts payload bytes only, not frame headers.
        assert_eq!(c0.sent_bytes(), 8);
    }

    #[test]
    fn out_of_order_messages_are_matched_by_tag() {
        let mut world = comm_world(2);
        let mut c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        let t = thread::spawn(move || {
            // Send tag 2 first, then tag 1.
            c1.send(0, 2, pack_f64(&[2.0])).unwrap();
            c1.send(0, 1, pack_f64(&[1.0])).unwrap();
        });
        // Receive in the opposite order.
        assert_eq!(unpack_f64(&c0.recv(1, 1).unwrap()).unwrap(), vec![1.0]);
        assert_eq!(unpack_f64(&c0.recv(1, 2).unwrap()).unwrap(), vec![2.0]);
        t.join().unwrap();
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let world = comm_world(4);
        let handles: Vec<_> = world
            .into_iter()
            .map(|mut c| {
                thread::spawn(move || {
                    let r = c.rank() as f64;
                    let total = c.allreduce_sum_f64(r + 1.0).unwrap();
                    assert_eq!(total, 10.0); // 1+2+3+4
                    let m = c.allreduce_max_f64(r).unwrap();
                    assert_eq!(m, 3.0);
                    c.barrier().unwrap();
                    total
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 10.0);
        }
    }

    #[test]
    fn allreduce_is_deterministic_summation() {
        // Fixed rank-order summation: repeated runs give bit-identical
        // results even with non-associative f64 addition.
        for _ in 0..3 {
            let world = comm_world(3);
            let vals = [1e16, 1.0, -1e16];
            let handles: Vec<_> = world
                .into_iter()
                .map(|mut c| {
                    let v = vals[c.rank()];
                    thread::spawn(move || c.allreduce_sum_f64(v).unwrap())
                })
                .collect();
            let results: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            // All ranks agree...
            assert!(results.windows(2).all(|w| w[0] == w[1]));
            // ...on the rank-ordered sum (1e16 + 1.0 loses the 1.0 first).
            assert_eq!(results[0], 0.0);
        }
    }

    #[test]
    fn vector_allreduce() {
        let world = comm_world(2);
        let handles: Vec<_> = world
            .into_iter()
            .map(|mut c| thread::spawn(move || c.allreduce_vec(&[1.0, -2.0]).unwrap()))
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), vec![2.0, -4.0]);
        }
    }

    #[test]
    fn single_rank_world_shortcuts() {
        let mut world = comm_world(1);
        let c = &mut world[0];
        assert_eq!(c.allreduce_sum_f64(5.0).unwrap(), 5.0);
        assert_eq!(c.allreduce_max_f64(-1.0).unwrap(), -1.0);
        c.barrier().unwrap();
    }

    #[test]
    fn dropped_peer_surfaces_as_rank_dead_not_hang() {
        let mut world = comm_world_with(2, fast_config(), None);
        let c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        drop(c1); // peer exits (or panics) without ever sending
        let start = Instant::now();
        assert_eq!(c0.recv(1, 5), Err(CommError::RankDead { rank: 1 }));
        assert!(start.elapsed() < Duration::from_millis(400), "death detection too slow");
    }

    #[test]
    fn messages_sent_before_death_still_arrive() {
        let mut world = comm_world_with(2, fast_config(), None);
        let mut c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        c1.send(0, 3, pack_f64(&[9.0])).unwrap();
        drop(c1);
        // The buffered message must be drained before death is reported.
        assert_eq!(unpack_f64(&c0.recv(1, 3).unwrap()).unwrap(), vec![9.0]);
        assert_eq!(c0.recv(1, 3), Err(CommError::RankDead { rank: 1 }));
    }

    #[test]
    fn fault_plan_kills_rank_at_scheduled_send() {
        let plan = FaultPlan::new(1).kill_rank(1, 1);
        let mut world = comm_world_with(2, fast_config(), Some(plan));
        let mut c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        c1.send(0, 3, pack_f64(&[1.0])).unwrap();
        assert_eq!(c1.send(0, 3, pack_f64(&[2.0])), Err(CommError::RankDead { rank: 1 }));
        // Rank 0 sees the first message, then the death.
        assert_eq!(unpack_f64(&c0.recv(1, 3).unwrap()).unwrap(), vec![1.0]);
        assert_eq!(c0.recv(1, 3), Err(CommError::RankDead { rank: 1 }));
    }

    #[test]
    fn timeout_when_message_never_sent() {
        let config = CommConfig { timeout: Duration::from_millis(80), ..fast_config() };
        let mut world = comm_world_with(2, config, None);
        let _c1 = world.pop().unwrap(); // alive but silent
        let mut c0 = world.pop().unwrap();
        match c0.recv(1, 9) {
            Err(CommError::Timeout { from: 1, tag: 9, waited_ms }) => assert!(waited_ms >= 80),
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn dropped_messages_recover_from_pristine_store() {
        let plan = FaultPlan::new(11).drop(1.0); // every wire copy vanishes
        let mut world = comm_world_with(2, fast_config(), Some(plan));
        let mut c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        for i in 0..3 {
            c1.send(0, 4, pack_f64(&[i as f64])).unwrap();
        }
        for i in 0..3 {
            assert_eq!(unpack_f64(&c0.recv(1, 4).unwrap()).unwrap(), vec![i as f64]);
        }
        assert_eq!(c0.stats().recovered, 3);
    }

    #[test]
    fn bit_flips_are_detected_and_recovered() {
        let plan = FaultPlan::new(12).bit_flip(1.0);
        let mut world = comm_world_with(2, fast_config(), Some(plan));
        let mut c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        let data = vec![1.25, -3.5, 1e300];
        c1.send(0, 6, pack_f64(&data)).unwrap();
        assert_eq!(unpack_f64(&c0.recv(1, 6).unwrap()).unwrap(), data);
        assert_eq!(c0.stats().recovered, 1);
    }

    #[test]
    fn truncated_frames_are_detected_and_recovered() {
        let plan = FaultPlan::new(13).truncate(1.0);
        let mut world = comm_world_with(2, fast_config(), Some(plan));
        let mut c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        c1.send(0, 2, pack_f64(&[7.0, 8.0])).unwrap();
        assert_eq!(unpack_f64(&c0.recv(1, 2).unwrap()).unwrap(), vec![7.0, 8.0]);
        assert_eq!(c0.stats().recovered, 1);
    }

    #[test]
    fn duplicates_are_deduplicated() {
        let plan = FaultPlan::new(14).duplicate(1.0);
        let mut world = comm_world_with(2, fast_config(), Some(plan));
        let mut c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        c1.send(0, 5, pack_f64(&[1.0])).unwrap();
        c1.send(0, 5, pack_f64(&[2.0])).unwrap();
        assert_eq!(unpack_f64(&c0.recv(1, 5).unwrap()).unwrap(), vec![1.0]);
        assert_eq!(unpack_f64(&c0.recv(1, 5).unwrap()).unwrap(), vec![2.0]);
        assert!(c0.stats().duplicates_dropped >= 1);
    }

    #[test]
    fn delayed_messages_still_arrive() {
        let plan = FaultPlan::new(15).delay(1.0, Duration::from_millis(2));
        let mut world = comm_world_with(2, fast_config(), Some(plan));
        let mut c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        let t = thread::spawn(move || c1.send(0, 1, pack_f64(&[4.0])).unwrap());
        assert_eq!(unpack_f64(&c0.recv(1, 1).unwrap()).unwrap(), vec![4.0]);
        t.join().unwrap();
    }

    #[test]
    fn sequence_gap_exhausts_retries() {
        let config = CommConfig {
            timeout: Duration::from_secs(5),
            retry_backoff: Duration::from_micros(100),
            max_retries: 3,
        };
        let mut world = comm_world_with(2, config, None);
        let c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        // A message from the future (seq 5) with seq 0 lost without a
        // pristine copy: evidence of a hole the link cannot repair.
        c1.senders[0]
            .send(Message { from: 1, tag: 3, seq: 5, frame: frame(&pack_f64(&[0.0])) })
            .unwrap();
        assert_eq!(
            c0.recv(1, 3),
            Err(CommError::RetriesExhausted { from: 1, tag: 3, attempts: 3 })
        );
    }

    #[test]
    fn faulted_allreduce_matches_fault_free() {
        let run = |plan: Option<FaultPlan>| -> (Vec<f64>, u64) {
            let world = comm_world_with(4, fast_config(), plan);
            let handles: Vec<_> = world
                .into_iter()
                .map(|mut c| {
                    thread::spawn(move || {
                        let mut acc = Vec::new();
                        for round in 0..16 {
                            let v = (c.rank() * 31 + round) as f64 * 0.37 + 1e-3;
                            acc.push(c.allreduce_sum_f64(v).unwrap());
                        }
                        (acc, c.stats().recovered)
                    })
                })
                .collect();
            let mut results = Vec::new();
            let mut recovered = 0;
            for h in handles {
                let (acc, rec) = h.join().unwrap();
                results.push(acc);
                recovered += rec;
            }
            assert!(results.windows(2).all(|w| w[0] == w[1]));
            (results.pop().unwrap(), recovered)
        };
        let clean = run(None);
        let chaotic = run(Some(FaultPlan::new(77).drop(0.10).bit_flip(0.05).duplicate(0.05)));
        // Recovery is bit-exact: the faulted world reduces to the exact
        // fault-free values, and at least one recovery actually happened.
        assert_eq!(clean.0, chaotic.0);
        assert!(chaotic.1 > 0, "fault plan injected nothing");
    }

    #[test]
    fn fault_recovery_is_deterministic_across_runs() {
        let run = || {
            let plan = FaultPlan::new(42).drop(0.3).truncate(0.1);
            let mut world = comm_world_with(2, fast_config(), Some(plan));
            let mut c1 = world.pop().unwrap();
            let mut c0 = world.pop().unwrap();
            let mut got = Vec::new();
            for i in 0..20 {
                c1.send(0, 9, pack_f64(&[i as f64 * 1.5])).unwrap();
                got.push(unpack_f64(&c0.recv(1, 9).unwrap()).unwrap()[0]);
            }
            (got, c0.stats().recovered)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.1 > 0, "expected some recoveries at 30% drop over 20 messages");
    }

    #[test]
    fn lockstep_clean_run_matches_unsanitized_results() {
        let run = |sanitize: bool| -> Vec<f64> {
            let world = comm_world_with(3, fast_config(), None);
            let handles: Vec<_> = world
                .into_iter()
                .map(|mut c| {
                    if sanitize {
                        c.enable_lockstep(LockstepConfig { check_every: 1 });
                    }
                    thread::spawn(move || {
                        let mut acc = Vec::new();
                        // Mix point-to-point ring traffic with reductions so
                        // all three collective kinds enter the fingerprint.
                        for round in 0..6 {
                            let fwd = c.forward();
                            let bwd = c.backward();
                            c.send(fwd, 17, pack_f64(&[round as f64])).unwrap();
                            let _ = c.recv(bwd, 17).unwrap();
                            let v = (c.rank() + 1) as f64 * (round + 1) as f64;
                            acc.push(c.allreduce_sum_f64(v).unwrap());
                            acc.push(c.allreduce_max_f64(v).unwrap());
                        }
                        c.barrier().unwrap();
                        acc
                    })
                })
                .collect();
            let results: Vec<Vec<f64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            assert!(results.windows(2).all(|w| w[0] == w[1]));
            results.into_iter().next().unwrap()
        };
        // The sanitizer must be invisible to the numerics.
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn lockstep_locates_skipped_collective_instead_of_hanging() {
        // Rank 1 silently skips its 3rd allreduce: without the sanitizer
        // every later reduction silently pairs off-by-one. With it, every
        // rank fails fast with the exact divergent stream index.
        let plan = FaultPlan::new(0).skip_collective(1, 2);
        let world = comm_world_with(2, fast_config(), Some(plan));
        let start = Instant::now();
        let handles: Vec<_> = world
            .into_iter()
            .map(|mut c| {
                c.enable_lockstep(LockstepConfig { check_every: 1 });
                thread::spawn(move || {
                    for round in 0..6 {
                        if let Err(e) = c.allreduce_sum_f64(round as f64) {
                            return e;
                        }
                    }
                    panic!("rank {} never saw the divergence", c.rank());
                })
            })
            .collect();
        for h in handles {
            match h.join().unwrap() {
                CommError::LockstepDivergence { rank, index, expected, got } => {
                    assert_eq!(rank, 1);
                    assert_eq!(index, 2);
                    // Rank 0's 3rd collective vs rank 1's 4th, streamed
                    // into the same slot by the skip.
                    assert_eq!(expected.map(|r| r.seq), Some(2));
                    assert_eq!(got.map(|r| r.seq), Some(3));
                }
                other => panic!("expected LockstepDivergence, got {other:?}"),
            }
        }
        assert!(start.elapsed() < Duration::from_secs(2), "divergence detection too slow");
    }

    #[test]
    fn lockstep_detects_duplicated_collective_as_count_drift() {
        let plan = FaultPlan::new(0).duplicate_collective(1, 1);
        let world = comm_world_with(2, fast_config(), Some(plan));
        let handles: Vec<_> = world
            .into_iter()
            .map(|mut c| {
                c.enable_lockstep(LockstepConfig { check_every: 1 });
                thread::spawn(move || {
                    for round in 0..6 {
                        if let Err(e) = c.allreduce_sum_f64(round as f64) {
                            return e;
                        }
                    }
                    panic!("rank {} never saw the divergence", c.rank());
                })
            })
            .collect();
        for h in handles {
            match h.join().unwrap() {
                CommError::LockstepDivergence { rank, index, .. } => {
                    assert_eq!(rank, 1);
                    // Rank 1's replayed exchange runs one ahead of its
                    // fingerprint: count drift located at stream index 2.
                    assert_eq!(index, 2);
                }
                other => panic!("expected LockstepDivergence, got {other:?}"),
            }
        }
    }
}

/// Heavier soak tests, run via `cargo test -p quda-comm --features chaos`.
#[cfg(all(test, feature = "chaos"))]
mod chaos_tests {
    use super::*;
    use crate::codec::{pack_f64, unpack_f64};
    use std::thread;

    #[test]
    fn soak_mixed_faults_heavy_traffic() {
        let plan = FaultPlan::new(1234)
            .drop(0.05)
            .bit_flip(0.02)
            .truncate(0.02)
            .duplicate(0.05)
            .delay(0.02, Duration::from_micros(200));
        let world = comm_world_with(4, CommConfig::default(), Some(plan));
        let handles: Vec<_> = world
            .into_iter()
            .map(|mut c| {
                thread::spawn(move || {
                    let fwd = c.forward();
                    let bwd = c.backward();
                    let mut sum = 0.0;
                    for i in 0..200u64 {
                        c.send(fwd, 17, pack_f64(&[i as f64 + c.rank() as f64 * 0.5])).unwrap();
                        sum += unpack_f64(&c.recv(bwd, 17).unwrap()).unwrap()[0];
                    }
                    let world_sum = c.allreduce_sum_f64(sum).unwrap();
                    (world_sum, c.stats())
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(results.windows(2).all(|w| w[0].0 == w[1].0));
        let recovered: u64 = results.iter().map(|r| r.1.recovered).sum();
        assert!(recovered > 0, "soak injected no recoverable faults");
    }

    #[test]
    fn soak_slow_rank_does_not_fail() {
        let plan = FaultPlan::new(5).slow_rank(1, Duration::from_micros(300));
        let world = comm_world_with(3, CommConfig::default(), Some(plan));
        let handles: Vec<_> = world
            .into_iter()
            .map(|mut c| {
                thread::spawn(move || {
                    let mut total = 0.0;
                    for _ in 0..50 {
                        total = c.allreduce_sum_f64(1.0).unwrap();
                    }
                    total
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 3.0);
        }
    }
}
