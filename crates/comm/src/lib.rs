//! # quda-comm
//!
//! The message-passing substrate (the QMP/MPI substitute — see DESIGN.md
//! §2): thread-ranks exchanging byte messages over channels with `(from,
//! tag)` matching, deterministic allreduce collectives, and byte codecs for
//! the three storage precisions. Traffic is counted per rank so the
//! performance model can price every face exchange with the InfiniBand
//! model from `quda-gpusim`.
//!
//! The layer is failure-aware (DESIGN.md §7): every hot API returns a typed
//! [`CommError`], messages travel as checksummed frames with sequence
//! numbers, and a deterministic seed-driven [`FaultPlan`] can inject drops,
//! delays, duplicates, truncations, bit-flips, and dead or slow ranks for
//! chaos testing. The `chaos` cargo feature enables the heavier soak tests.

#![warn(missing_docs)]
// The no-panic invariant (xtask lint rule `no-panic`), also machine-checked
// at compile time: a panicking rank hangs its peers mid-allreduce.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod codec;
pub mod error;
pub mod fault;
pub mod lockstep;
pub mod tags;
pub mod world;

pub use codec::{
    checksum, frame, le_bytes, pack_f32, pack_f64, pack_i16, unframe, unpack_f32, unpack_f64,
    unpack_i16, FRAME_OVERHEAD,
};
pub use error::{CommError, DecodeError};
pub use fault::{CollectiveFault, FaultAction, FaultPlan};
pub use lockstep::{CollectiveKind, LockstepConfig, LockstepRecord};
pub use world::{comm_world, comm_world_with, CommConfig, CommStats, Communicator};
