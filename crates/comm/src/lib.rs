//! # quda-comm
//!
//! The message-passing substrate (the QMP/MPI substitute — see DESIGN.md
//! §2): thread-ranks exchanging byte messages over channels with `(from,
//! tag)` matching, deterministic allreduce collectives, and byte codecs for
//! the three storage precisions. Traffic is counted per rank so the
//! performance model can price every face exchange with the InfiniBand
//! model from `quda-gpusim`.

#![warn(missing_docs)]

pub mod codec;
pub mod world;

pub use codec::{pack_f32, pack_f64, pack_i16, unpack_f32, unpack_f64, unpack_i16};
pub use world::{comm_world, Communicator};
