//! The central message-tag namespace registry.
//!
//! Every wire tag used anywhere in the workspace is allocated here, in one
//! module, so two subsystems can never collide on a tag value and a
//! send/recv pair can never disagree on which tag names which stream. The
//! `cargo xtask collectives` analysis enforces this statically: its
//! `tag-namespace` rule flags tag constants defined outside this module and
//! raw integer literals passed as tags, and its `tag-pairing` rule checks
//! that every send tag has a matching recv somewhere in the workspace.
//!
//! Layout of the 32-bit tag space:
//!
//! * `0x0000_0000 ..= 0x0000_ffff` — application point-to-point streams
//!   (ghost faces, gauge ghosts, future 4-d decomposition directions).
//! * `0xffff_0000 ..` — [`INTERNAL_BASE`]: traffic generated *inside*
//!   [`Communicator`](crate::Communicator) collectives (allreduce
//!   contributions and replies). Internal streams are excluded from the
//!   lockstep sanitizer's fingerprint because their per-rank shape is
//!   root/leaf asymmetric by construction.

/// Spinor faces travelling forward (towards higher t).
pub const FACE_FWD: u32 = 0x0000_0001;
/// Spinor faces travelling backward.
pub const FACE_BWD: u32 = 0x0000_0002;
/// One-time gauge ghost exchange, even parity.
pub const GAUGE_EVEN: u32 = 0x0000_0008;
/// One-time gauge ghost exchange, odd parity.
pub const GAUGE_ODD: u32 = 0x0000_0009;

/// First tag of the internal (collective) namespace.
pub const INTERNAL_BASE: u32 = 0xffff_0000;
/// Allreduce-sum contributions (leaf → root).
pub const COLLECTIVE_SUM: u32 = INTERNAL_BASE;
/// Allreduce-sum reply broadcast (root → leaf).
pub const COLLECTIVE_SUM_REPLY: u32 = INTERNAL_BASE + 1;
/// Allreduce-max contributions (leaf → root).
pub const COLLECTIVE_MAX: u32 = INTERNAL_BASE + 2;
/// Allreduce-max reply broadcast (root → leaf).
pub const COLLECTIVE_MAX_REPLY: u32 = INTERNAL_BASE + 3;

/// The gauge-ghost tag for a parity index (0 = even, 1 = odd).
pub fn gauge(parity: usize) -> u32 {
    if parity == 0 {
        GAUGE_EVEN
    } else {
        GAUGE_ODD
    }
}

/// Whether `tag` belongs to the internal collective namespace. Internal
/// streams are not fingerprinted by the lockstep sanitizer: their
/// root/leaf send-recv pattern is rank-asymmetric by design, while the
/// sanitizer checks that the *logical* collective streams agree.
pub fn is_internal(tag: u32) -> bool {
    tag >= INTERNAL_BASE
}

/// Every named tag, for registry-level uniqueness checks.
pub const ALL_NAMED: &[(&str, u32)] = &[
    ("FACE_FWD", FACE_FWD),
    ("FACE_BWD", FACE_BWD),
    ("GAUGE_EVEN", GAUGE_EVEN),
    ("GAUGE_ODD", GAUGE_ODD),
    ("COLLECTIVE_SUM", COLLECTIVE_SUM),
    ("COLLECTIVE_SUM_REPLY", COLLECTIVE_SUM_REPLY),
    ("COLLECTIVE_MAX", COLLECTIVE_MAX),
    ("COLLECTIVE_MAX_REPLY", COLLECTIVE_MAX_REPLY),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_no_collisions() {
        for (i, (name_a, a)) in ALL_NAMED.iter().enumerate() {
            for (name_b, b) in &ALL_NAMED[i + 1..] {
                assert_ne!(a, b, "tag collision: {name_a} and {name_b} are both {a:#x}");
            }
        }
    }

    #[test]
    fn internal_namespace_is_disjoint_from_application_tags() {
        for (name, tag) in ALL_NAMED {
            let internal = name.starts_with("COLLECTIVE");
            assert_eq!(is_internal(*tag), internal, "{name} on the wrong side of INTERNAL_BASE");
        }
    }

    #[test]
    fn gauge_tags_by_parity() {
        assert_eq!(gauge(0), GAUGE_EVEN);
        assert_eq!(gauge(1), GAUGE_ODD);
    }
}
