//! The central message-tag namespace registry.
//!
//! Every wire tag used anywhere in the workspace is allocated here, in one
//! module, so two subsystems can never collide on a tag value and a
//! send/recv pair can never disagree on which tag names which stream. The
//! `cargo xtask collectives` analysis enforces this statically: its
//! `tag-namespace` rule flags tag constants defined outside this module and
//! raw integer literals passed as tags, and its `tag-pairing` rule checks
//! that every send tag has a matching recv somewhere in the workspace.
//!
//! Layout of the 32-bit tag space:
//!
//! * `0x0000_0000 ..= 0x0000_ffff` — application point-to-point streams
//!   (ghost faces, gauge ghosts, future 4-d decomposition directions).
//! * `0xffff_0000 ..` — [`INTERNAL_BASE`]: traffic generated *inside*
//!   [`Communicator`](crate::Communicator) collectives (allreduce
//!   contributions and replies). Internal streams are excluded from the
//!   lockstep sanitizer's fingerprint because their per-rank shape is
//!   root/leaf asymmetric by construction.

/// Spinor faces travelling forward along T (towards higher t). Keeps the
/// original 1-d `FACE_FWD` wire value so legacy streams are unchanged.
pub const FACE_T_FWD: u32 = 0x0000_0001;
/// Spinor faces travelling backward along T.
pub const FACE_T_BWD: u32 = 0x0000_0002;
/// One-time gauge ghost exchange along T, even parity.
pub const GAUGE_EVEN: u32 = 0x0000_0008;
/// One-time gauge ghost exchange along T, odd parity.
pub const GAUGE_ODD: u32 = 0x0000_0009;

/// Spinor faces travelling forward along X (4-d decomposition).
pub const FACE_X_FWD: u32 = 0x0000_0010;
/// Spinor faces travelling backward along X.
pub const FACE_X_BWD: u32 = 0x0000_0011;
/// Spinor faces travelling forward along Y.
pub const FACE_Y_FWD: u32 = 0x0000_0012;
/// Spinor faces travelling backward along Y.
pub const FACE_Y_BWD: u32 = 0x0000_0013;
/// Spinor faces travelling forward along Z.
pub const FACE_Z_FWD: u32 = 0x0000_0014;
/// Spinor faces travelling backward along Z.
pub const FACE_Z_BWD: u32 = 0x0000_0015;

/// One-time gauge ghost exchange along X, even parity.
pub const GAUGE_X_EVEN: u32 = 0x0000_0020;
/// One-time gauge ghost exchange along X, odd parity.
pub const GAUGE_X_ODD: u32 = 0x0000_0021;
/// One-time gauge ghost exchange along Y, even parity.
pub const GAUGE_Y_EVEN: u32 = 0x0000_0022;
/// One-time gauge ghost exchange along Y, odd parity.
pub const GAUGE_Y_ODD: u32 = 0x0000_0023;
/// One-time gauge ghost exchange along Z, even parity.
pub const GAUGE_Z_EVEN: u32 = 0x0000_0024;
/// One-time gauge ghost exchange along Z, odd parity.
pub const GAUGE_Z_ODD: u32 = 0x0000_0025;

/// First tag of the internal (collective) namespace.
pub const INTERNAL_BASE: u32 = 0xffff_0000;
/// Allreduce-sum contributions (leaf → root).
pub const COLLECTIVE_SUM: u32 = INTERNAL_BASE;
/// Allreduce-sum reply broadcast (root → leaf).
pub const COLLECTIVE_SUM_REPLY: u32 = INTERNAL_BASE + 1;
/// Allreduce-max contributions (leaf → root).
pub const COLLECTIVE_MAX: u32 = INTERNAL_BASE + 2;
/// Allreduce-max reply broadcast (root → leaf).
pub const COLLECTIVE_MAX_REPLY: u32 = INTERNAL_BASE + 3;

/// The gauge-ghost tag for a parity index (0 = even, 1 = odd) on the
/// legacy temporal axis.
pub fn gauge(parity: usize) -> u32 {
    if parity == 0 {
        GAUGE_EVEN
    } else {
        GAUGE_ODD
    }
}

/// The spinor-face tag for lattice dimension `dim` (0..=3 = X,Y,Z,T) and
/// travel direction. The T axis maps onto the original 1-d tags so the
/// legacy wire streams keep their values.
pub fn face(dim: usize, forward: bool) -> u32 {
    match (dim, forward) {
        (0, true) => FACE_X_FWD,
        (0, false) => FACE_X_BWD,
        (1, true) => FACE_Y_FWD,
        (1, false) => FACE_Y_BWD,
        (2, true) => FACE_Z_FWD,
        (2, false) => FACE_Z_BWD,
        (_, true) => FACE_T_FWD,
        (_, false) => FACE_T_BWD,
    }
}

/// The gauge-ghost tag for lattice dimension `dim` (0..=3 = X,Y,Z,T) and
/// parity index (0 = even, 1 = odd). T maps onto the legacy pair.
pub fn gauge_dim(dim: usize, parity: usize) -> u32 {
    match (dim, parity == 0) {
        (0, true) => GAUGE_X_EVEN,
        (0, false) => GAUGE_X_ODD,
        (1, true) => GAUGE_Y_EVEN,
        (1, false) => GAUGE_Y_ODD,
        (2, true) => GAUGE_Z_EVEN,
        (2, false) => GAUGE_Z_ODD,
        (_, true) => GAUGE_EVEN,
        (_, false) => GAUGE_ODD,
    }
}

/// Whether `tag` belongs to the internal collective namespace. Internal
/// streams are not fingerprinted by the lockstep sanitizer: their
/// root/leaf send-recv pattern is rank-asymmetric by design, while the
/// sanitizer checks that the *logical* collective streams agree.
pub fn is_internal(tag: u32) -> bool {
    tag >= INTERNAL_BASE
}

/// Every named tag, for registry-level uniqueness checks.
pub const ALL_NAMED: &[(&str, u32)] = &[
    ("FACE_T_FWD", FACE_T_FWD),
    ("FACE_T_BWD", FACE_T_BWD),
    ("FACE_X_FWD", FACE_X_FWD),
    ("FACE_X_BWD", FACE_X_BWD),
    ("FACE_Y_FWD", FACE_Y_FWD),
    ("FACE_Y_BWD", FACE_Y_BWD),
    ("FACE_Z_FWD", FACE_Z_FWD),
    ("FACE_Z_BWD", FACE_Z_BWD),
    ("GAUGE_EVEN", GAUGE_EVEN),
    ("GAUGE_ODD", GAUGE_ODD),
    ("GAUGE_X_EVEN", GAUGE_X_EVEN),
    ("GAUGE_X_ODD", GAUGE_X_ODD),
    ("GAUGE_Y_EVEN", GAUGE_Y_EVEN),
    ("GAUGE_Y_ODD", GAUGE_Y_ODD),
    ("GAUGE_Z_EVEN", GAUGE_Z_EVEN),
    ("GAUGE_Z_ODD", GAUGE_Z_ODD),
    ("COLLECTIVE_SUM", COLLECTIVE_SUM),
    ("COLLECTIVE_SUM_REPLY", COLLECTIVE_SUM_REPLY),
    ("COLLECTIVE_MAX", COLLECTIVE_MAX),
    ("COLLECTIVE_MAX_REPLY", COLLECTIVE_MAX_REPLY),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_no_collisions() {
        for (i, (name_a, a)) in ALL_NAMED.iter().enumerate() {
            for (name_b, b) in &ALL_NAMED[i + 1..] {
                assert_ne!(a, b, "tag collision: {name_a} and {name_b} are both {a:#x}");
            }
        }
    }

    #[test]
    fn internal_namespace_is_disjoint_from_application_tags() {
        for (name, tag) in ALL_NAMED {
            let internal = name.starts_with("COLLECTIVE");
            assert_eq!(is_internal(*tag), internal, "{name} on the wrong side of INTERNAL_BASE");
        }
    }

    #[test]
    fn gauge_tags_by_parity() {
        assert_eq!(gauge(0), GAUGE_EVEN);
        assert_eq!(gauge(1), GAUGE_ODD);
    }

    #[test]
    fn face_helper_covers_all_axes_and_maps_t_onto_legacy_values() {
        // The T axis must keep the original 1-d wire values so the legacy
        // exchange streams are unchanged bit for bit.
        assert_eq!(face(3, true), 0x1);
        assert_eq!(face(3, false), 0x2);
        let mut seen = Vec::new();
        for dim in 0..4 {
            for fwd in [true, false] {
                let t = face(dim, fwd);
                assert!(!is_internal(t));
                assert!(ALL_NAMED.iter().any(|(_, v)| *v == t), "face({dim},{fwd}) unregistered");
                seen.push(t);
            }
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 8, "face tags must be pairwise distinct");
    }

    #[test]
    fn gauge_dim_helper_covers_all_axes_and_maps_t_onto_legacy_values() {
        assert_eq!(gauge_dim(3, 0), GAUGE_EVEN);
        assert_eq!(gauge_dim(3, 1), GAUGE_ODD);
        let mut seen = Vec::new();
        for dim in 0..4 {
            for parity in 0..2 {
                let t = gauge_dim(dim, parity);
                assert!(!is_internal(t));
                assert!(ALL_NAMED.iter().any(|(_, v)| *v == t), "gauge_dim({dim},{parity})");
                seen.push(t);
            }
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 8, "gauge tags must be pairwise distinct");
    }
}
