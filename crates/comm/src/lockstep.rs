//! The lockstep sanitizer: a debug-mode validator that turns a silent
//! cross-rank collective divergence into a located, typed error.
//!
//! The whole multi-GPU inverter rests on an unstated SPMD contract: every
//! rank executes the *same sequence* of collectives (ghost sends/recvs,
//! global reductions) in the same order. The sequel paper ("Scaling
//! Lattice QCD beyond 100 GPUs") notes that at scale a single
//! rank-divergent collective is an undebuggable hang. This module checks
//! the contract at runtime:
//!
//! * every logical collective is fingerprinted as `(kind, tag,
//!   payload_len, seq)` and folded into a per-rank rolling hash, with the
//!   last [`RING_LEN`] records kept in a ring;
//! * each allreduce contribution carries the sender's fingerprint as a
//!   fixed-size metadata block (u64s transported losslessly as `f64`
//!   bits), piggybacked in-band so the check can never itself deadlock
//!   when ranks disagree on how many collectives they have issued;
//! * every `check_every` allreduces, rank 0 compares each peer's
//!   fingerprint against its own and broadcasts a verdict block in the
//!   reply; on a mismatch every rank fails with
//!   [`CommError::LockstepDivergence`](crate::CommError), reporting the
//!   first mismatched collective index and the two records that disagree.

use std::collections::VecDeque;

/// Records kept per rank for divergence localization. Fixed so the
/// metadata block has a constant wire size.
pub const RING_LEN: usize = 8;

/// `f64` slots a contribution metadata block occupies on the wire:
/// `[count, hash]` plus [`RING_LEN`] encoded records.
pub const META_F64S: usize = 2 + RING_LEN * 4;

/// `f64` slots of the root's verdict block: `[flag, rank, index,
/// root_count, peer_count]` plus the two records that disagree.
pub const VERDICT_F64S: usize = 5 + 2 * 4;

/// Sentinel index marking an absent record slot.
const NO_RECORD: u64 = u64::MAX;

/// What kind of collective operation a fingerprint entry describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollectiveKind {
    /// A point-to-point send on an application tag.
    Send,
    /// A point-to-point receive on an application tag.
    Recv,
    /// One logical allreduce (sum, max, or barrier).
    AllReduce,
}

impl CollectiveKind {
    fn code(self) -> u64 {
        match self {
            CollectiveKind::Send => 0,
            CollectiveKind::Recv => 1,
            CollectiveKind::AllReduce => 2,
        }
    }

    fn from_code(code: u64) -> CollectiveKind {
        match code {
            0 => CollectiveKind::Send,
            1 => CollectiveKind::Recv,
            _ => CollectiveKind::AllReduce,
        }
    }
}

/// One fingerprinted collective: position `index` in this rank's logical
/// collective stream, plus the `(kind, tag, payload_len, seq)` signature
/// that must agree across ranks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LockstepRecord {
    /// 0-based position in the rank's collective stream.
    pub index: u64,
    /// Operation kind.
    pub kind: CollectiveKind,
    /// Wire tag (for allreduces, the contribution tag).
    pub tag: u32,
    /// Logical payload bytes (excluding sanitizer metadata).
    pub len: u64,
    /// Stream sequence number (per `(peer, tag)` for point-to-point,
    /// the allreduce call number for collectives).
    pub seq: u64,
}

/// Sanitizer policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LockstepConfig {
    /// Compare fingerprints on every `check_every`-th allreduce call
    /// (1 = every call). The fingerprint metadata itself rides on every
    /// contribution regardless — this only sets how often rank 0 diffs it.
    pub check_every: u64,
}

impl Default for LockstepConfig {
    fn default() -> Self {
        LockstepConfig { check_every: 16 }
    }
}

impl LockstepConfig {
    /// Read the `QUDA_LOCKSTEP` environment variable: unset, `0`, `off` or
    /// `false` disable the sanitizer (`None`); a positive integer enables
    /// it with that `check_every`; any other non-empty value enables the
    /// default policy.
    pub fn from_env() -> Option<LockstepConfig> {
        let raw = std::env::var("QUDA_LOCKSTEP").ok()?;
        let v = raw.trim();
        if v.is_empty()
            || v == "0"
            || v.eq_ignore_ascii_case("off")
            || v.eq_ignore_ascii_case("false")
        {
            return None;
        }
        match v.parse::<u64>() {
            Ok(n) if n >= 1 => Some(LockstepConfig { check_every: n }),
            _ => Some(LockstepConfig::default()),
        }
    }
}

/// A rank's fingerprint at one instant: how many collectives it has
/// issued, the rolling hash over all of them, and the newest
/// [`RING_LEN`] records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fingerprint {
    /// Collectives recorded so far.
    pub count: u64,
    /// Rolling hash over every recorded signature.
    pub hash: u64,
    /// Newest records, oldest first.
    pub ring: Vec<LockstepRecord>,
}

/// A located cross-rank mismatch: the first stream index where two ranks'
/// collective signatures disagree, with the records on each side when the
/// divergence is still inside the ring window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// First mismatched collective index (for divergences older than the
    /// ring window, the oldest index still available).
    pub index: u64,
    /// Rank 0's record at `index`, if still in its ring.
    pub expected: Option<LockstepRecord>,
    /// The divergent rank's record at `index`, if still in its ring.
    pub got: Option<LockstepRecord>,
}

/// Per-communicator sanitizer state.
#[derive(Clone, Debug)]
pub struct LockstepState {
    config: LockstepConfig,
    count: u64,
    hash: u64,
    ring: VecDeque<LockstepRecord>,
}

/// splitmix64 — the same mixer the fault plan uses; good enough to make
/// any single-field change flip the rolling hash.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn signature(kind: CollectiveKind, tag: u32, len: u64, seq: u64) -> u64 {
    splitmix64(kind.code() ^ (u64::from(tag) << 2))
        .wrapping_add(splitmix64(len ^ seq.rotate_left(32)))
}

impl LockstepState {
    /// Fresh state under `config`.
    pub fn new(config: LockstepConfig) -> LockstepState {
        LockstepState { config, count: 0, hash: 0, ring: VecDeque::with_capacity(RING_LEN) }
    }

    /// The policy this state runs under.
    pub fn config(&self) -> LockstepConfig {
        self.config
    }

    /// Collectives recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Fold one collective into the fingerprint.
    pub fn record(&mut self, kind: CollectiveKind, tag: u32, len: u64, seq: u64) {
        let rec = LockstepRecord { index: self.count, kind, tag, len, seq };
        self.hash = splitmix64(self.hash ^ signature(kind, tag, len, seq));
        if self.ring.len() == RING_LEN {
            self.ring.pop_front();
        }
        self.ring.push_back(rec);
        self.count += 1;
    }

    /// Whether rank 0 should diff fingerprints after allreduce call
    /// number `call_no` (0-based).
    pub fn check_due(&self, call_no: u64) -> bool {
        let every = self.config.check_every.max(1);
        (call_no + 1) % every == 0
    }

    /// Snapshot this rank's fingerprint.
    pub fn fingerprint(&self) -> Fingerprint {
        Fingerprint {
            count: self.count,
            hash: self.hash,
            ring: self.ring.iter().copied().collect(),
        }
    }

    /// This rank's record at stream `index`, if still in the ring.
    pub fn record_at(&self, index: u64) -> Option<LockstepRecord> {
        self.ring.iter().find(|r| r.index == index).copied()
    }

    /// Encode the contribution metadata block ([`META_F64S`] slots).
    pub fn contribution_meta(&self) -> Vec<f64> {
        let mut words = Vec::with_capacity(META_F64S);
        words.push(self.count);
        words.push(self.hash);
        for slot in 0..RING_LEN {
            match self.ring.get(slot) {
                Some(rec) => encode_record(Some(*rec), &mut words),
                None => encode_record(None, &mut words),
            }
        }
        to_f64_bits(&words)
    }
}

fn encode_record(rec: Option<LockstepRecord>, words: &mut Vec<u64>) {
    match rec {
        Some(r) => {
            words.push(r.index);
            words.push((r.kind.code() << 32) | u64::from(r.tag));
            words.push(r.len);
            words.push(r.seq);
        }
        None => {
            words.push(NO_RECORD);
            words.push(0);
            words.push(0);
            words.push(0);
        }
    }
}

fn decode_record(words: &[u64]) -> Option<LockstepRecord> {
    if words.len() < 4 || words[0] == NO_RECORD {
        return None;
    }
    Some(LockstepRecord {
        index: words[0],
        kind: CollectiveKind::from_code(words[1] >> 32),
        tag: (words[1] & 0xffff_ffff) as u32,
        len: words[2],
        seq: words[3],
    })
}

/// u64 → f64 bit transport. The values are never used arithmetically, so
/// NaN payloads and subnormals pass through the byte codec untouched.
fn to_f64_bits(words: &[u64]) -> Vec<f64> {
    words.iter().map(|&w| f64::from_bits(w)).collect()
}

fn from_f64_bits(slots: &[f64]) -> Vec<u64> {
    slots.iter().map(|s| s.to_bits()).collect()
}

/// Decode a peer's contribution metadata block. Returns `None` when the
/// block has the wrong size (a peer without the sanitizer enabled).
pub fn parse_contribution_meta(slots: &[f64]) -> Option<Fingerprint> {
    if slots.len() != META_F64S {
        return None;
    }
    let words = from_f64_bits(slots);
    let mut ring = Vec::with_capacity(RING_LEN);
    for slot in 0..RING_LEN {
        if let Some(rec) = decode_record(&words[2 + slot * 4..2 + slot * 4 + 4]) {
            ring.push(rec);
        }
    }
    Some(Fingerprint { count: words[0], hash: words[1], ring })
}

/// Diff two fingerprints; `None` when they agree. `mine` is rank 0's
/// view, `peer` the contributing rank's.
pub fn first_divergence(mine: &Fingerprint, peer: &Fingerprint) -> Option<Divergence> {
    if mine.count == peer.count && mine.hash == peer.hash {
        return None;
    }
    // Earliest stream index where both rings have a record and the
    // signatures disagree: that is the first *located* mismatch.
    for m in &mine.ring {
        if let Some(p) = peer.ring.iter().find(|p| p.index == m.index) {
            if (m.kind, m.tag, m.len, m.seq) != (p.kind, p.tag, p.len, p.seq) {
                return Some(Divergence { index: m.index, expected: Some(*m), got: Some(*p) });
            }
        }
    }
    // No overlapping record disagrees: the streams diverged either past
    // the shorter stream's end (count drift) or before the ring window.
    let index = if mine.count != peer.count {
        mine.count.min(peer.count)
    } else {
        // Same length, different history: oldest index still visible.
        mine.ring.first().map_or(0, |r| r.index)
    };
    let expected = mine.ring.iter().find(|r| r.index == index).copied();
    let got = peer.ring.iter().find(|r| r.index == index).copied();
    Some(Divergence { index, expected, got })
}

/// Encode the root's verdict block ([`VERDICT_F64S`] slots): all-clear,
/// or the first divergence found (in rank order).
pub fn encode_verdict(divergence: Option<(usize, u64, u64, Divergence)>) -> Vec<f64> {
    let mut words = Vec::with_capacity(VERDICT_F64S);
    match divergence {
        None => words.resize(VERDICT_F64S, 0),
        Some((rank, root_count, peer_count, div)) => {
            words.push(1);
            words.push(rank as u64);
            words.push(div.index);
            words.push(root_count);
            words.push(peer_count);
            encode_record(div.expected, &mut words);
            encode_record(div.got, &mut words);
        }
    }
    to_f64_bits(&words)
}

/// A decoded divergence verdict, as broadcast by rank 0.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Verdict {
    /// The first divergent rank (in rank order).
    pub rank: usize,
    /// First mismatched collective index.
    pub index: u64,
    /// Rank 0's collective count at the check.
    pub root_count: u64,
    /// The divergent rank's collective count at the check.
    pub peer_count: u64,
    /// Rank 0's record at `index`, if it was still in the ring.
    pub expected: Option<LockstepRecord>,
    /// The divergent rank's record at `index`, if still in its ring.
    pub got: Option<LockstepRecord>,
}

/// Decode a verdict block; `None` for all-clear or a malformed block.
pub fn parse_verdict(slots: &[f64]) -> Option<Verdict> {
    if slots.len() != VERDICT_F64S {
        return None;
    }
    let words = from_f64_bits(slots);
    if words[0] != 1 {
        return None;
    }
    Some(Verdict {
        rank: words[1] as usize,
        index: words[2],
        root_count: words[3],
        peer_count: words[4],
        expected: decode_record(&words[5..9]),
        got: decode_record(&words[9..13]),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_with(n: u64) -> LockstepState {
        let mut s = LockstepState::new(LockstepConfig::default());
        for i in 0..n {
            s.record(CollectiveKind::AllReduce, 0xffff_0000, 8, i);
        }
        s
    }

    #[test]
    fn identical_streams_have_no_divergence() {
        let a = state_with(20).fingerprint();
        let b = state_with(20).fingerprint();
        assert_eq!(a.hash, b.hash);
        assert!(first_divergence(&a, &b).is_none());
    }

    #[test]
    fn skipped_collective_is_located_at_its_index() {
        let mine = state_with(6);
        let mut peer = LockstepState::new(LockstepConfig::default());
        for i in 0..6u64 {
            if i == 3 {
                continue; // peer skips its 4th collective
            }
            peer.record(CollectiveKind::AllReduce, 0xffff_0000, 8, i);
        }
        let div = first_divergence(&mine.fingerprint(), &peer.fingerprint())
            .expect("divergence must be detected");
        // The peer's record *at stream index 3* carries seq 4 — the first
        // point where the streams disagree.
        assert_eq!(div.index, 3);
        assert_eq!(div.expected.map(|r| r.seq), Some(3));
        assert_eq!(div.got.map(|r| r.seq), Some(4));
    }

    #[test]
    fn count_drift_past_ring_reports_min_count() {
        let mine = state_with(40);
        let peer = state_with(39);
        // The last ring entries disagree (index 39 exists only on one
        // side), and records 32..39 share indices but different seqs? No —
        // identical prefix, one side one short: overlapping records agree.
        let div = first_divergence(&mine.fingerprint(), &peer.fingerprint())
            .expect("count drift must be detected");
        assert_eq!(div.index, 39);
    }

    #[test]
    fn meta_roundtrip_preserves_fingerprint() {
        let s = state_with(11);
        let meta = s.contribution_meta();
        assert_eq!(meta.len(), META_F64S);
        let fp = parse_contribution_meta(&meta).expect("meta parses");
        assert_eq!(fp, s.fingerprint());
    }

    #[test]
    fn verdict_roundtrip() {
        let rec = LockstepRecord { index: 7, kind: CollectiveKind::Send, tag: 1, len: 384, seq: 7 };
        let div = Divergence { index: 7, expected: Some(rec), got: None };
        let v = encode_verdict(Some((2, 9, 8, div)));
        assert_eq!(v.len(), VERDICT_F64S);
        let parsed = parse_verdict(&v).expect("divergent verdict parses");
        assert_eq!(parsed.rank, 2);
        assert_eq!(parsed.index, 7);
        assert_eq!(parsed.root_count, 9);
        assert_eq!(parsed.peer_count, 8);
        assert_eq!(parsed.expected, Some(rec));
        assert_eq!(parsed.got, None);
        assert!(parse_verdict(&encode_verdict(None)).is_none());
    }

    #[test]
    fn hash_is_sensitive_to_every_field() {
        let base = state_with(5).fingerprint().hash;
        for (kind, tag, len, seq) in [
            (CollectiveKind::Send, 0xffff_0000, 8, 4),
            (CollectiveKind::AllReduce, 0xffff_0002, 8, 4),
            (CollectiveKind::AllReduce, 0xffff_0000, 16, 4),
            (CollectiveKind::AllReduce, 0xffff_0000, 8, 5),
        ] {
            let mut s = state_with(4);
            s.record(kind, tag, len, seq);
            assert_ne!(s.fingerprint().hash, base, "{kind:?}/{tag:#x}/{len}/{seq}");
        }
    }

    #[test]
    fn check_due_respects_period() {
        let s = LockstepState::new(LockstepConfig { check_every: 4 });
        let due: Vec<u64> = (0..10).filter(|&n| s.check_due(n)).collect();
        assert_eq!(due, vec![3, 7]);
        let every = LockstepState::new(LockstepConfig { check_every: 1 });
        assert!((0..5).all(|n| every.check_due(n)));
    }

    #[test]
    fn env_config_parsing() {
        // Serialize against other env-reading tests by using a unique var
        // through the public API only when set by us.
        std::env::remove_var("QUDA_LOCKSTEP");
        assert_eq!(LockstepConfig::from_env(), None);
        std::env::set_var("QUDA_LOCKSTEP", "0");
        assert_eq!(LockstepConfig::from_env(), None);
        std::env::set_var("QUDA_LOCKSTEP", "8");
        assert_eq!(LockstepConfig::from_env(), Some(LockstepConfig { check_every: 8 }));
        std::env::set_var("QUDA_LOCKSTEP", "1");
        assert_eq!(LockstepConfig::from_env(), Some(LockstepConfig { check_every: 1 }));
        std::env::set_var("QUDA_LOCKSTEP", "on");
        assert_eq!(LockstepConfig::from_env(), Some(LockstepConfig::default()));
        std::env::remove_var("QUDA_LOCKSTEP");
    }
}
