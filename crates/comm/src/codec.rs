//! Byte-level packing of face payloads.
//!
//! Ghost faces travel between ranks as raw byte messages, exactly like MPI
//! buffers. These helpers pack and unpack the three storage element types
//! (f64, f32, i16-fixed-point) plus the f32 normalization arrays that ride
//! with half-precision faces.

use bytes::{Bytes, BytesMut};

/// Pack a slice of f64 into little-endian bytes.
pub fn pack_f64(data: &[f64]) -> Bytes {
    let mut buf = BytesMut::with_capacity(data.len() * 8);
    for &x in data {
        buf.extend_from_slice(&x.to_le_bytes());
    }
    buf.freeze()
}

/// Unpack little-endian f64.
pub fn unpack_f64(bytes: &[u8]) -> Vec<f64> {
    assert!(bytes.len() % 8 == 0, "payload not a whole number of f64");
    bytes.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect()
}

/// Pack a slice of f32 into little-endian bytes.
pub fn pack_f32(data: &[f32]) -> Bytes {
    let mut buf = BytesMut::with_capacity(data.len() * 4);
    for &x in data {
        buf.extend_from_slice(&x.to_le_bytes());
    }
    buf.freeze()
}

/// Unpack little-endian f32.
pub fn unpack_f32(bytes: &[u8]) -> Vec<f32> {
    assert!(bytes.len() % 4 == 0, "payload not a whole number of f32");
    bytes.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect()
}

/// Pack a slice of i16 (the half-precision storage integers).
pub fn pack_i16(data: &[i16]) -> Bytes {
    let mut buf = BytesMut::with_capacity(data.len() * 2);
    for &x in data {
        buf.extend_from_slice(&x.to_le_bytes());
    }
    buf.freeze()
}

/// Unpack little-endian i16.
pub fn unpack_i16(bytes: &[u8]) -> Vec<i16> {
    assert!(bytes.len() % 2 == 0, "payload not a whole number of i16");
    bytes.chunks_exact(2).map(|c| i16::from_le_bytes(c.try_into().unwrap())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip() {
        let data = vec![0.0, 1.5, -2.25e300, f64::MIN_POSITIVE];
        assert_eq!(unpack_f64(&pack_f64(&data)), data);
    }

    #[test]
    fn f32_roundtrip() {
        let data = vec![0.0f32, -1.5, 3.25e30];
        assert_eq!(unpack_f32(&pack_f32(&data)), data);
    }

    #[test]
    fn i16_roundtrip() {
        let data = vec![0i16, 32767, -32768, 123];
        assert_eq!(unpack_i16(&pack_i16(&data)), data);
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn ragged_payload_rejected() {
        unpack_f64(&[1, 2, 3]);
    }

    #[test]
    fn sizes_match_mpi_buffer_sizes() {
        // A single-precision 12-component face site is 48 bytes on the wire.
        assert_eq!(pack_f32(&[0.0; 12]).len(), 48);
        // Half precision: 24 bytes + (separately) one 4-byte norm.
        assert_eq!(pack_i16(&[0; 12]).len(), 24);
    }
}
