//! Byte-level packing of face payloads, plus message framing.
//!
//! Ghost faces travel between ranks as raw byte messages, exactly like MPI
//! buffers. These helpers pack and unpack the three storage element types
//! (f64, f32, i16-fixed-point) plus the f32 normalization arrays that ride
//! with half-precision faces.
//!
//! On the wire every payload is wrapped in a 12-byte frame — a 4-byte
//! little-endian length and an 8-byte FNV-1a checksum — so a truncated or
//! bit-flipped message is *detected* at the receiver instead of being
//! silently summed into the solve ([`unframe`] reports a typed
//! [`DecodeError`]). The frame header is link-level bookkeeping and is not
//! counted in the traffic statistics the performance model prices.

use crate::error::DecodeError;
use bytes::{Bytes, BytesMut};

/// Bytes of framing added to each wire message (length + checksum).
pub const FRAME_OVERHEAD: usize = 12;

/// Infallible fixed-width copy out of a slice whose length the caller has
/// already established (constant-offset slicing or `chunks_exact`), keeping
/// the hot decode paths free of panicking conversions.
#[inline(always)]
pub fn le_bytes<const N: usize>(bytes: &[u8]) -> [u8; N] {
    let mut a = [0u8; N];
    a.copy_from_slice(bytes);
    a
}

/// FNV-1a 64-bit hash of a byte slice — the per-message checksum.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Wrap a payload in a `[len u32][checksum u64][payload]` frame.
pub fn frame(payload: &Bytes) -> Bytes {
    let mut buf = BytesMut::with_capacity(FRAME_OVERHEAD + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&checksum(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    buf.freeze()
}

/// Validate a frame and return its payload.
///
/// Detects short frames ([`DecodeError::Truncated`]) and corrupted
/// payloads ([`DecodeError::BadChecksum`]).
pub fn unframe(framed: &Bytes) -> Result<Bytes, DecodeError> {
    if framed.len() < FRAME_OVERHEAD {
        return Err(DecodeError::Truncated { expected: FRAME_OVERHEAD, got: framed.len() });
    }
    let len = u32::from_le_bytes(le_bytes(&framed[0..4])) as usize;
    let want = u64::from_le_bytes(le_bytes(&framed[4..12]));
    if framed.len() != FRAME_OVERHEAD + len {
        return Err(DecodeError::Truncated { expected: FRAME_OVERHEAD + len, got: framed.len() });
    }
    let payload = framed.slice(FRAME_OVERHEAD..framed.len());
    let got = checksum(&payload);
    if got != want {
        return Err(DecodeError::BadChecksum { expected: want, got });
    }
    Ok(payload)
}

/// Pack a slice of f64 into little-endian bytes.
pub fn pack_f64(data: &[f64]) -> Bytes {
    let mut buf = BytesMut::with_capacity(data.len() * 8);
    for &x in data {
        buf.extend_from_slice(&x.to_le_bytes());
    }
    buf.freeze()
}

/// Unpack little-endian f64.
pub fn unpack_f64(bytes: &[u8]) -> Result<Vec<f64>, DecodeError> {
    if bytes.len() % 8 != 0 {
        return Err(DecodeError::LengthMismatch { element_size: 8, len: bytes.len() });
    }
    Ok(bytes.chunks_exact(8).map(|c| f64::from_le_bytes(le_bytes(c))).collect())
}

/// Pack a slice of f32 into little-endian bytes.
pub fn pack_f32(data: &[f32]) -> Bytes {
    let mut buf = BytesMut::with_capacity(data.len() * 4);
    for &x in data {
        buf.extend_from_slice(&x.to_le_bytes());
    }
    buf.freeze()
}

/// Unpack little-endian f32.
pub fn unpack_f32(bytes: &[u8]) -> Result<Vec<f32>, DecodeError> {
    if bytes.len() % 4 != 0 {
        return Err(DecodeError::LengthMismatch { element_size: 4, len: bytes.len() });
    }
    Ok(bytes.chunks_exact(4).map(|c| f32::from_le_bytes(le_bytes(c))).collect())
}

/// Pack a slice of i16 (the half-precision storage integers).
pub fn pack_i16(data: &[i16]) -> Bytes {
    let mut buf = BytesMut::with_capacity(data.len() * 2);
    for &x in data {
        buf.extend_from_slice(&x.to_le_bytes());
    }
    buf.freeze()
}

/// Unpack little-endian i16.
pub fn unpack_i16(bytes: &[u8]) -> Result<Vec<i16>, DecodeError> {
    if bytes.len() % 2 != 0 {
        return Err(DecodeError::LengthMismatch { element_size: 2, len: bytes.len() });
    }
    Ok(bytes.chunks_exact(2).map(|c| i16::from_le_bytes(le_bytes(c))).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip() {
        let data = vec![0.0, 1.5, -2.25e300, f64::MIN_POSITIVE];
        assert_eq!(unpack_f64(&pack_f64(&data)).unwrap(), data);
    }

    #[test]
    fn f32_roundtrip() {
        let data = vec![0.0f32, -1.5, 3.25e30];
        assert_eq!(unpack_f32(&pack_f32(&data)).unwrap(), data);
    }

    #[test]
    fn i16_roundtrip() {
        let data = vec![0i16, 32767, -32768, 123];
        assert_eq!(unpack_i16(&pack_i16(&data)).unwrap(), data);
    }

    #[test]
    fn ragged_payload_rejected() {
        assert_eq!(
            unpack_f64(&[1, 2, 3]),
            Err(DecodeError::LengthMismatch { element_size: 8, len: 3 })
        );
        assert!(unpack_f32(&[0; 5]).is_err());
        assert!(unpack_i16(&[0; 3]).is_err());
    }

    #[test]
    fn sizes_match_mpi_buffer_sizes() {
        // A single-precision 12-component face site is 48 bytes on the wire.
        assert_eq!(pack_f32(&[0.0; 12]).len(), 48);
        // Half precision: 24 bytes + (separately) one 4-byte norm.
        assert_eq!(pack_i16(&[0; 12]).len(), 24);
    }

    #[test]
    fn frame_roundtrip() {
        let payload = pack_f64(&[1.0, -2.5, 3.75]);
        let framed = frame(&payload);
        assert_eq!(framed.len(), payload.len() + FRAME_OVERHEAD);
        assert_eq!(&unframe(&framed).unwrap()[..], &payload[..]);
    }

    #[test]
    fn frame_detects_bit_flip() {
        let framed = frame(&pack_f64(&[42.0]));
        let mut bad = framed.to_vec();
        bad[FRAME_OVERHEAD + 3] ^= 0x10;
        match unframe(&Bytes::from(bad)) {
            Err(DecodeError::BadChecksum { .. }) => {}
            other => panic!("expected BadChecksum, got {other:?}"),
        }
    }

    #[test]
    fn frame_detects_truncation() {
        let framed = frame(&pack_f64(&[1.0, 2.0]));
        let cut = Bytes::from(framed[..framed.len() - 5].to_vec());
        match unframe(&cut) {
            Err(DecodeError::Truncated { expected, got }) => {
                assert_eq!(expected, framed.len());
                assert_eq!(got, framed.len() - 5);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        // Shorter than even a header:
        assert!(matches!(
            unframe(&Bytes::from(vec![1u8, 2, 3])),
            Err(DecodeError::Truncated { expected: FRAME_OVERHEAD, got: 3 })
        ));
    }

    #[test]
    fn checksum_is_stable() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(checksum(&[]), 0xcbf2_9ce4_8422_2325);
        assert_ne!(checksum(b"abc"), checksum(b"abd"));
    }
}
