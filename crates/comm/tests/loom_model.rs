//! Model-checked protocol models of the communicator (ISSUE PR 4).
//!
//! The production [`quda_comm::Communicator`] rides on crossbeam channels,
//! which the model checker cannot instrument. These tests re-express the
//! two protocols that could deadlock — the `(from, tag)` send/recv
//! rendezvous with its stash semantics, and the gather-to-root allreduce
//! barrier — over `loom::sync::{Mutex, Condvar}` mailboxes, and let the
//! checker exhaust every thread interleaving (up to the preemption bound)
//! looking for deadlocks and lost wakeups.
//!
//! The vendored `loom` is a replay-based DFS explorer (see
//! `vendor/loom/src/lib.rs`); these models run under plain `cargo test`
//! with 2 ranks, and a heavier 3-rank allreduce is gated behind
//! `RUSTFLAGS="--cfg loom"` for the dedicated CI job.
//!
//! Regression note (satellite f): exploration of the initial mailbox model
//! surfaced the classic lost-wakeup bug — checking for a message *without*
//! holding the mailbox lock across the wait decision, then waiting without
//! re-checking. The correct while-loop rendezvous is what
//! `Communicator::recv`'s drain-then-block structure implements with
//! channel timeouts; the buggy variant is kept here as a `#[should_panic]`
//! regression test proving the checker still catches that class of bug.

use loom::sync::{Arc, Condvar, Mutex};
use std::collections::VecDeque;

/// One message: `(from, tag, value)`.
type Msg = (usize, u32, f64);

/// A world of per-rank mailboxes — the model analogue of the channel mesh
/// built by `comm_world`.
struct Mailboxes {
    inbox: Vec<Mutex<VecDeque<Msg>>>,
    arrived: Vec<Condvar>,
}

impl Mailboxes {
    fn new(ranks: usize) -> Self {
        Mailboxes {
            inbox: (0..ranks).map(|_| Mutex::new(VecDeque::new())).collect(),
            arrived: (0..ranks).map(|_| Condvar::new()).collect(),
        }
    }

    /// Non-blocking send, like the eager-protocol `Communicator::send`.
    fn send(&self, from: usize, to: usize, tag: u32, value: f64) {
        let mut q = self.inbox[to].lock().unwrap();
        q.push_back((from, tag, value));
        self.arrived[to].notify_all();
    }

    /// Blocking receive matching `(from, tag)`; other messages stay
    /// stashed. The while-loop re-check under the lock is the invariant
    /// the model exists to verify.
    fn recv(&self, me: usize, from: usize, tag: u32) -> f64 {
        let mut q = self.inbox[me].lock().unwrap();
        loop {
            if let Some(pos) = q.iter().position(|&(f, t, _)| f == from && t == tag) {
                // The stash keeps non-matching messages queued, exactly
                // like `Communicator::try_take`.
                let (_, _, value) = q.remove(pos).unwrap();
                return value;
            }
            q = self.arrived[me].wait(q).unwrap();
        }
    }

    /// BUGGY receive for the regression test: the empty-check releases the
    /// lock before the wait decision, so a send landing in between leaves
    /// the waiter parked forever (lost wakeup).
    fn buggy_recv(&self, me: usize, from: usize, tag: u32) -> f64 {
        let empty = { self.inbox[me].lock().unwrap().is_empty() };
        let mut q = self.inbox[me].lock().unwrap();
        if empty {
            // BUG: the message (and its notify) may arrive right here.
            q = self.arrived[me].wait(q).unwrap();
        }
        let pos = q.iter().position(|&(f, t, _)| f == from && t == tag);
        match pos {
            Some(p) => q.remove(p).unwrap().2,
            None => f64::NAN,
        }
    }
}

/// Deterministic gather-to-root allreduce-sum — the model of
/// `Communicator::allreduce_sum_f64` (and, with value 0.0, `barrier`).
fn allreduce(boxes: &Mailboxes, ranks: usize, me: usize, local: f64) -> f64 {
    const TAG_GATHER: u32 = 100;
    const TAG_BCAST: u32 = 101;
    if me == 0 {
        let mut acc = local;
        for from in 1..ranks {
            acc += boxes.recv(0, from, TAG_GATHER);
        }
        for to in 1..ranks {
            boxes.send(0, to, TAG_BCAST, acc);
        }
        acc
    } else {
        boxes.send(me, 0, TAG_GATHER, local);
        boxes.recv(me, 0, TAG_BCAST)
    }
}

/// Run `body(rank)` on `ranks` model threads sharing one mailbox world.
fn spawn_world<F>(ranks: usize, boxes: Arc<Mailboxes>, body: F)
where
    F: Fn(usize, &Mailboxes) + Send + Sync + Copy + 'static,
{
    let handles: Vec<_> = (1..ranks)
        .map(|rank| {
            let boxes = boxes.clone();
            loom::thread::spawn(move || body(rank, &boxes))
        })
        .collect();
    body(0, &boxes);
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn rendezvous_delivers_in_every_interleaving() {
    // Cross sends with mismatched arrival order: rank 0 asks for tag 2
    // before tag 1 while rank 1 sends 1 then 2 — the stash must hold the
    // early message in every schedule without deadlocking.
    loom::model(|| {
        let boxes = Arc::new(Mailboxes::new(2));
        spawn_world(2, boxes, |rank, boxes| {
            if rank == 1 {
                boxes.send(1, 0, 1, 10.0);
                boxes.send(1, 0, 2, 20.0);
            } else {
                assert_eq!(boxes.recv(0, 1, 2), 20.0);
                assert_eq!(boxes.recv(0, 1, 1), 10.0);
            }
        });
    });
}

#[test]
fn allreduce_barrier_agrees_on_every_schedule() {
    loom::model(|| {
        let boxes = Arc::new(Mailboxes::new(2));
        spawn_world(2, boxes, |rank, boxes| {
            let total = allreduce(boxes, 2, rank, (rank + 1) as f64);
            assert_eq!(total, 3.0, "rank {rank} saw a torn reduction");
            // A second round doubles as the barrier: no schedule may let
            // round-2 traffic be confused with round-1 traffic.
            let again = allreduce(boxes, 2, rank, total);
            assert_eq!(again, 6.0);
        });
    });
}

#[test]
#[should_panic(expected = "deadlock")]
fn lost_wakeup_recv_is_caught_by_the_checker() {
    // Regression test for the lost-wakeup class of bug (see module docs):
    // some explored schedule must park the buggy receiver forever, and the
    // checker must report it as a deadlock.
    loom::model(|| {
        let boxes = Arc::new(Mailboxes::new(2));
        spawn_world(2, boxes, |rank, boxes| {
            if rank == 1 {
                boxes.send(1, 0, 7, 1.0);
            } else {
                boxes.buggy_recv(0, 1, 7);
            }
        });
    });
}

/// Heavier 3-rank model, run only by the dedicated loom CI job
/// (`RUSTFLAGS="--cfg loom"`): the schedule space grows combinatorially
/// with rank count, so the plain test suite stays on the 2-rank models.
#[cfg(loom)]
#[test]
fn three_rank_allreduce_explores_clean() {
    loom::model(|| {
        let boxes = Arc::new(Mailboxes::new(3));
        spawn_world(3, boxes, |rank, boxes| {
            let total = allreduce(boxes, 3, rank, (rank + 1) as f64);
            assert_eq!(total, 6.0, "rank {rank} saw a torn reduction");
        });
    });
}
