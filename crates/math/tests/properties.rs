//! Property-based tests of the per-site algebra: SU(3) structure under
//! compression, projector identities, clover Hermiticity, and the
//! half-precision quantization error bound — over randomized inputs.

use proptest::prelude::*;
use quda_math::clover::{CloverBlock, CloverSite, BLOCK_OFFDIAG};
use quda_math::colorvec::ColorVec;
use quda_math::complex::C64;
use quda_math::gamma::{GammaBasis, SpinBasis};
use quda_math::half::{dequantize_block, max_quantization_error, quantize_block, Fixed16};
use quda_math::spinor::Spinor;
use quda_math::su3::Su3;

fn arb_c64() -> impl Strategy<Value = C64> {
    (-1.0f64..1.0, -1.0f64..1.0).prop_map(|(re, im)| C64::new(re, im))
}

fn arb_su3() -> impl Strategy<Value = Su3<f64>> {
    // Random complex matrix, projected onto the group. Bias towards
    // non-degenerate rows so Gram-Schmidt is well conditioned.
    proptest::collection::vec(arb_c64(), 9).prop_filter_map("degenerate rows", |v| {
        let mut m = Su3::identity();
        for i in 0..3 {
            for j in 0..3 {
                m.m[i][j] += v[i * 3 + j];
            }
        }
        let u = m.reunitarize();
        u.is_special_unitary(1e-9).then_some(u)
    })
}

fn arb_spinor() -> impl Strategy<Value = Spinor<f64>> {
    proptest::collection::vec(arb_c64(), 12).prop_map(|v| {
        let mut sp = Spinor::zero();
        for s in 0..4 {
            for c in 0..3 {
                sp.s[s].c[c] = v[s * 3 + c];
            }
        }
        sp
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reunitarized_matrices_are_group_elements(u in arb_su3()) {
        prop_assert!(u.is_special_unitary(1e-9));
        // Elements bounded by 1 — the precondition of half-precision gauge
        // storage.
        prop_assert!(u.max_abs() <= 1.0 + 1e-9);
    }

    #[test]
    fn compression_roundtrip_preserves_link(u in arb_su3()) {
        let rec = u.compress().reconstruct();
        let mut diff = 0.0f64;
        for i in 0..3 {
            for j in 0..3 {
                diff = diff.max((rec.m[i][j] - u.m[i][j]).norm_sqr());
            }
        }
        prop_assert!(diff < 1e-18, "reconstruction error {diff}");
    }

    #[test]
    fn adjoint_multiplication_preserves_norm(u in arb_su3(), v in arb_spinor()) {
        let w = u.mul_vec(&v.s[0]);
        prop_assert!((w.norm_sqr() - v.s[0].norm_sqr()).abs() < 1e-10);
        let back = u.adj_mul_vec(&w);
        let diff: f64 = (0..3).map(|i| (back.c[i] - v.s[0].c[i]).norm_sqr()).sum();
        prop_assert!(diff < 1e-18, "U†U != 1 on vector: {diff}");
    }

    #[test]
    fn projector_identities_hold_on_random_spinors(sp in arb_spinor()) {
        for basis in [GammaBasis::DeGrandRossi, GammaBasis::NonRelativistic] {
            let b = SpinBasis::new(basis);
            for mu in 0..4 {
                let plus = &b.proj[mu][1];
                let minus = &b.proj[mu][0];
                // P+ + P- = 2.
                let sum = plus.apply_dense(&sp) + minus.apply_dense(&sp);
                prop_assert!((sum - sp.scale_re(2.0)).norm_sqr() < 1e-20);
                // P± is idempotent up to the factor 2: P±² = 2 P±.
                let p2 = plus.apply_dense(&plus.apply_dense(&sp));
                prop_assert!((p2 - plus.apply_dense(&sp).scale_re(2.0)).norm_sqr() < 1e-18);
                // The rank-2 path agrees with the dense path.
                let via_half = plus.reconstruct(&plus.project(&sp));
                prop_assert!((via_half - plus.apply_dense(&sp)).norm_sqr() < 1e-20);
            }
        }
    }

    #[test]
    fn clover_block_apply_is_hermitian(
        diag in proptest::collection::vec(-2.0f64..2.0, 6),
        off in proptest::collection::vec(arb_c64(), BLOCK_OFFDIAG),
        x in arb_spinor(),
        y in arb_spinor(),
    ) {
        let mut block = CloverBlock::identity();
        block.diag.copy_from_slice(&diag);
        block.offdiag.copy_from_slice(&off);
        let site = CloverSite { block: [block, block] };
        let lhs = x.dot(&site.apply_chiral(&y));
        let rhs = site.apply_chiral(&x).dot(&y);
        prop_assert!((lhs.re - rhs.re).abs() < 1e-9);
        prop_assert!((lhs.im - rhs.im).abs() < 1e-9);
    }

    #[test]
    fn clover_inverse_is_inverse(
        diag in proptest::collection::vec(3.0f64..6.0, 6),
        off in proptest::collection::vec(arb_c64(), BLOCK_OFFDIAG),
        x in arb_spinor(),
    ) {
        // Diagonally dominant => invertible.
        let mut block = CloverBlock::identity();
        block.diag.copy_from_slice(&diag);
        for (dst, src) in block.offdiag.iter_mut().zip(&off) {
            *dst = src.scale(0.2);
        }
        let site = CloverSite { block: [block, block] };
        let inv = site.invert().expect("diagonally dominant block must invert");
        let inv_site = CloverSite { block: inv.block };
        let back = inv_site.apply_chiral(&site.apply_chiral(&x));
        prop_assert!((back - x).norm_sqr() < 1e-16);
    }

    #[test]
    fn quantization_error_within_bound(vals in proptest::collection::vec(-100.0f32..100.0, 24)) {
        let mut q = vec![Fixed16::default(); 24];
        let norm = quantize_block(&vals, &mut q);
        let mut back = vec![0.0f32; 24];
        dequantize_block(&q, norm, &mut back);
        let bound = max_quantization_error(norm) * 1.01 + 1e-12;
        for (a, b) in vals.iter().zip(&back) {
            prop_assert!((a - b).abs() <= bound, "{a} vs {b}, bound {bound}");
        }
    }

    #[test]
    fn spinor_reals_roundtrip(sp in arb_spinor()) {
        let r = sp.to_reals();
        prop_assert_eq!(Spinor::from_reals(&r), sp);
    }

    #[test]
    fn dot_products_are_cauchy_schwarz(a in arb_spinor(), b in arb_spinor()) {
        let d = a.dot(&b);
        let bound = a.norm_sqr().sqrt() * b.norm_sqr().sqrt();
        prop_assert!(d.norm_sqr().sqrt() <= bound * (1.0 + 1e-12));
    }

    #[test]
    fn conj_cross_reproduces_det_one(u in arb_su3()) {
        // The reconstructed third row makes det exactly 1.
        let rec = u.compress().reconstruct();
        let det = rec.det();
        prop_assert!((det.re - 1.0).abs() < 1e-9);
        prop_assert!(det.im.abs() < 1e-9);
    }

    #[test]
    fn colorvec_scaling_linear(v in arb_spinor(), s in -3.0f64..3.0) {
        let scaled: ColorVec<f64> = v.s[1].scale_re(s);
        prop_assert!((scaled.norm_sqr() - s * s * v.s[1].norm_sqr()).abs() < 1e-10);
    }
}
