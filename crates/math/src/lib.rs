//! # quda-math
//!
//! Scalar, color, and spin linear algebra for `quda-rs` — a Rust
//! reproduction of *"Parallelizing the QUDA Library for Multi-GPU
//! Calculations in Lattice Quantum Chromodynamics"* (Babich, Clark, Joó,
//! SC10 2010).
//!
//! This crate is deliberately free of any lattice/geometry knowledge: it
//! provides the per-site mathematical objects —
//!
//! * [`complex::Complex`] numbers over [`real::Real`] scalars,
//! * [`colorvec::ColorVec`] color vectors and [`su3::Su3`] link matrices
//!   with 2-row compression ([`su3::Su3Compressed`]),
//! * [`spinor::Spinor`] / [`spinor::HalfSpinor`] color-spinors,
//! * [`gamma::SpinBasis`] gamma matrices in the DeGrand-Rossi and
//!   non-relativistic bases, with compiled rank-2 projectors
//!   ([`gamma::HalfProj`]),
//! * the packed 72-real [`clover::CloverSite`] clover term, and
//! * the 16-bit fixed-point storage format ([`half::Fixed16`]).

#![warn(missing_docs)]

pub mod clover;
pub mod colorvec;
pub mod complex;
pub mod gamma;
pub mod half;
pub mod real;
pub mod spinor;
pub mod su3;

pub use clover::{CloverBasisMap, CloverBlock, CloverSite, CLOVER_REALS};
pub use colorvec::ColorVec;
pub use complex::{Complex, C32, C64};
pub use gamma::{GammaBasis, HalfProj, PermPhase, SpinBasis, NDIM};
pub use half::{Fixed16, FIXED16_SCALE};
pub use real::Real;
pub use spinor::{HalfSpinor, Spinor, HALF_SPINOR_REALS, SPINOR_REALS};
pub use su3::{Su3, Su3Compressed};
