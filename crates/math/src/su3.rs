//! SU(3) link matrices, 2-row compression, and re-unitarization.
//!
//! The gauge field is a field of special-unitary 3×3 complex matrices living
//! on the links of the lattice. QUDA stores only the first two rows in device
//! memory (12 real numbers) and reconstructs the third row in registers as
//! the conjugate cross product of the first two (Section V-C1). This module
//! provides the matrix algebra, the compression/reconstruction pair, and the
//! Gram-Schmidt re-unitarization used when building weak-field configurations.

use crate::colorvec::ColorVec;
use crate::complex::Complex;
use crate::real::Real;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A 3×3 complex matrix in row-major order.
///
/// Not every `Su3` value is unitary — the type also represents intermediate
/// sums (e.g. clover-leaf accumulations). [`Su3::is_special_unitary`] checks
/// group membership and [`Su3::reunitarize`] projects back onto the group.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
#[repr(C)]
pub struct Su3<T> {
    /// Rows of the matrix; `m[row][col]`.
    pub m: [[Complex<T>; 3]; 3],
}

impl<T: Real> Su3<T> {
    /// The zero matrix.
    pub fn zero() -> Self {
        Su3 { m: [[Complex::zero(); 3]; 3] }
    }

    /// The identity matrix.
    pub fn identity() -> Self {
        let mut u = Self::zero();
        for i in 0..3 {
            u.m[i][i] = Complex::one();
        }
        u
    }

    /// Hermitian conjugate (adjoint) `U†`.
    pub fn adjoint(&self) -> Self {
        let mut out = Self::zero();
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] = self.m[j][i].conj();
            }
        }
        out
    }

    /// Matrix-vector product `U v`.
    #[inline]
    pub fn mul_vec(&self, v: &ColorVec<T>) -> ColorVec<T> {
        let mut out = ColorVec::zero();
        for i in 0..3 {
            let mut acc = Complex::zero();
            for j in 0..3 {
                acc = self.m[i][j].mul_add(v.c[j], acc);
            }
            out.c[i] = acc;
        }
        out
    }

    /// Adjoint matrix-vector product `U† v` without forming the adjoint.
    ///
    /// This is the "matrix conjugation performed at no cost through register
    /// relabeling" of Section V-B: the backward gather needs `U†` but we just
    /// read the same 9 (or 6 compressed) numbers with swapped indices.
    #[inline]
    pub fn adj_mul_vec(&self, v: &ColorVec<T>) -> ColorVec<T> {
        let mut out = ColorVec::zero();
        for i in 0..3 {
            let mut acc = Complex::zero();
            for j in 0..3 {
                acc = self.m[j][i].conj_mul_add(v.c[j], acc);
            }
            out.c[i] = acc;
        }
        out
    }

    /// Trace.
    pub fn trace(&self) -> Complex<T> {
        self.m[0][0] + self.m[1][1] + self.m[2][2]
    }

    /// Determinant (Laplace expansion along the first row).
    pub fn det(&self) -> Complex<T> {
        let m = &self.m;
        let c0 = m[1][1] * m[2][2] - m[1][2] * m[2][1];
        let c1 = m[1][2] * m[2][0] - m[1][0] * m[2][2];
        let c2 = m[1][0] * m[2][1] - m[1][1] * m[2][0];
        m[0][0] * c0 + m[0][1] * c1 + m[0][2] * c2
    }

    /// Multiply every element by a complex scalar.
    pub fn scale(&self, s: Complex<T>) -> Self {
        let mut out = *self;
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] *= s;
            }
        }
        out
    }

    /// Multiply every element by a real scalar.
    pub fn scale_re(&self, s: T) -> Self {
        let mut out = *self;
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] = out.m[i][j].scale(s);
            }
        }
        out
    }

    /// Frobenius-norm squared, accumulated in f64.
    pub fn norm_sqr(&self) -> f64 {
        self.m.iter().flatten().map(|z| z.norm_sqr().to_f64()).sum()
    }

    /// Maximum absolute real component (used to validate half-precision
    /// storage: all elements of a unitary matrix lie in [-1, 1]).
    pub fn max_abs(&self) -> f64 {
        self.m
            .iter()
            .flatten()
            .flat_map(|z| [z.re.to_f64().abs(), z.im.to_f64().abs()])
            .fold(0.0, f64::max)
    }

    /// True if `U† U = 1` and `det U = 1` to tolerance `tol`.
    pub fn is_special_unitary(&self, tol: f64) -> bool {
        let prod = self.adjoint() * *self;
        let mut dev: f64 = 0.0;
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                dev = dev.max((prod.m[i][j].re.to_f64() - expect).abs());
                dev = dev.max(prod.m[i][j].im.to_f64().abs());
            }
        }
        let d = self.det();
        dev = dev.max((d.re.to_f64() - 1.0).abs()).max(d.im.to_f64().abs());
        dev <= tol
    }

    /// Row `i` as a color vector.
    fn row(&self, i: usize) -> ColorVec<T> {
        ColorVec { c: self.m[i] }
    }

    fn set_row(&mut self, i: usize, v: ColorVec<T>) {
        self.m[i] = v.c;
    }

    /// Gram-Schmidt projection back onto SU(3).
    ///
    /// Normalizes row 0, orthonormalizes row 1 against it, and sets row 2 to
    /// the conjugate cross product — exactly the "re-unitarizing the links"
    /// step of the weak-field construction in Section VII-A.
    pub fn reunitarize(&self) -> Self {
        let mut r0 = self.row(0);
        let n0 = r0.norm_sqr().sqrt();
        r0 = r0.scale_re(T::from_f64(1.0 / n0));
        let mut r1 = self.row(1);
        let proj = r0.dot(&r1); // f64 inner product
        let projc = Complex::<T>::new(T::from_f64(proj.re), T::from_f64(proj.im));
        r1 -= r0.scale(projc);
        let n1 = r1.norm_sqr().sqrt();
        r1 = r1.scale_re(T::from_f64(1.0 / n1));
        let r2 = conj_cross(&r0, &r1);
        let mut out = Self::zero();
        out.set_row(0, r0);
        out.set_row(1, r1);
        out.set_row(2, r2);
        out
    }

    /// Compress to 2-row (12-real) storage.
    pub fn compress(&self) -> Su3Compressed<T> {
        Su3Compressed { rows: [self.m[0], self.m[1]] }
    }

    /// Precision cast.
    pub fn cast<U: Real>(&self) -> Su3<U> {
        let mut out = Su3::zero();
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] = self.m[i][j].cast();
            }
        }
        out
    }
}

/// Third row of a special-unitary matrix from the first two:
/// `row2 = conj(row0 × row1)`.
#[inline]
pub fn conj_cross<T: Real>(a: &ColorVec<T>, b: &ColorVec<T>) -> ColorVec<T> {
    ColorVec {
        c: [
            (a.c[1] * b.c[2] - a.c[2] * b.c[1]).conj(),
            (a.c[2] * b.c[0] - a.c[0] * b.c[2]).conj(),
            (a.c[0] * b.c[1] - a.c[1] * b.c[0]).conj(),
        ],
    }
}

/// The 12-real compressed representation of an SU(3) link matrix
/// (Section V-C1: "only the first two rows ... are stored in device memory").
#[derive(Copy, Clone, Debug, Default, PartialEq)]
#[repr(C)]
pub struct Su3Compressed<T> {
    /// First two rows of the matrix.
    pub rows: [[Complex<T>; 3]; 2],
}

impl<T: Real> Su3Compressed<T> {
    /// Reconstruct the full matrix: the third row is the conjugate cross
    /// product of the first two. This costs extra flops that the paper's
    /// "effective Gflops" metric deliberately does not count.
    #[inline]
    pub fn reconstruct(&self) -> Su3<T> {
        let r0 = ColorVec { c: self.rows[0] };
        let r1 = ColorVec { c: self.rows[1] };
        let r2 = conj_cross(&r0, &r1);
        let mut out = Su3::zero();
        out.m[0] = r0.c;
        out.m[1] = r1.c;
        out.m[2] = r2.c;
        out
    }
}

impl<T: Real> Mul for Su3<T> {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        let mut out = Self::zero();
        for i in 0..3 {
            for j in 0..3 {
                let mut acc = Complex::zero();
                for k in 0..3 {
                    acc = self.m[i][k].mul_add(rhs.m[k][j], acc);
                }
                out.m[i][j] = acc;
            }
        }
        out
    }
}

impl<T: Real> Add for Su3<T> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        let mut out = Self::zero();
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] = self.m[i][j] + rhs.m[i][j];
            }
        }
        out
    }
}

impl<T: Real> Sub for Su3<T> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        let mut out = Self::zero();
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] = self.m[i][j] - rhs.m[i][j];
            }
        }
        out
    }
}

impl<T> Index<(usize, usize)> for Su3<T> {
    type Output = Complex<T>;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &Complex<T> {
        &self.m[i][j]
    }
}

impl<T> IndexMut<(usize, usize)> for Su3<T> {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex<T> {
        &mut self.m[i][j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::C64;

    /// A hand-built SU(3) element: block-diagonal embedding of an SU(2)
    /// rotation together with a compensating phase.
    fn sample_su3() -> Su3<f64> {
        let (c, s) = (0.6, 0.8);
        let mut u = Su3::identity();
        u.m[0][0] = C64::new(c, 0.0);
        u.m[0][1] = C64::new(s, 0.0);
        u.m[1][0] = C64::new(-s, 0.0);
        u.m[1][1] = C64::new(c, 0.0);
        u
    }

    fn sample_su3_complex() -> Su3<f64> {
        // exp(i θ λ) style element built by reunitarizing a perturbed identity.
        let mut u = Su3::identity();
        u.m[0][1] = C64::new(0.3, 0.2);
        u.m[1][2] = C64::new(-0.1, 0.4);
        u.m[2][0] = C64::new(0.05, -0.15);
        u.m[0][0] = C64::new(0.9, 0.1);
        u.reunitarize()
    }

    #[test]
    fn identity_is_special_unitary() {
        assert!(Su3::<f64>::identity().is_special_unitary(1e-15));
    }

    #[test]
    fn sample_is_special_unitary() {
        assert!(sample_su3().is_special_unitary(1e-15));
        assert!(sample_su3_complex().is_special_unitary(1e-12));
    }

    #[test]
    fn adjoint_is_inverse_for_unitary() {
        let u = sample_su3_complex();
        let prod = u * u.adjoint();
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod.m[i][j].re - expect).abs() < 1e-12);
                assert!(prod.m[i][j].im.abs() < 1e-12);
            }
        }
    }

    #[test]
    fn compress_reconstruct_roundtrip() {
        let u = sample_su3_complex();
        let rec = u.compress().reconstruct();
        for i in 0..3 {
            for j in 0..3 {
                assert!((rec.m[i][j].re - u.m[i][j].re).abs() < 1e-12, "({i},{j})");
                assert!((rec.m[i][j].im - u.m[i][j].im).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn adj_mul_vec_matches_explicit_adjoint() {
        let u = sample_su3_complex();
        let v = ColorVec::new(C64::new(1.0, 2.0), C64::new(-0.5, 0.3), C64::new(0.0, -1.0));
        let a = u.adj_mul_vec(&v);
        let b = u.adjoint().mul_vec(&v);
        for i in 0..3 {
            assert!((a.c[i].re - b.c[i].re).abs() < 1e-13);
            assert!((a.c[i].im - b.c[i].im).abs() < 1e-13);
        }
    }

    #[test]
    fn mul_vec_preserves_norm_for_unitary() {
        let u = sample_su3_complex();
        let v = ColorVec::new(C64::new(1.0, -1.0), C64::new(2.0, 0.5), C64::new(0.0, 3.0));
        let w = u.mul_vec(&v);
        assert!((w.norm_sqr() - v.norm_sqr()).abs() < 1e-12);
    }

    #[test]
    fn det_of_group_element_is_one() {
        let d = sample_su3_complex().det();
        assert!((d.re - 1.0).abs() < 1e-12);
        assert!(d.im.abs() < 1e-12);
    }

    #[test]
    fn trace_of_identity() {
        let t = Su3::<f64>::identity().trace();
        assert_eq!(t, C64::new(3.0, 0.0));
    }

    #[test]
    fn reunitarize_fixes_perturbed_matrix() {
        let mut u = sample_su3();
        u.m[0][0].re += 0.05;
        u.m[1][2].im += 0.03;
        assert!(!u.is_special_unitary(1e-6));
        assert!(u.reunitarize().is_special_unitary(1e-12));
    }

    #[test]
    fn unitary_elements_bounded_by_one() {
        // The half-precision gauge format relies on this (Section V-C3).
        let u = sample_su3_complex();
        assert!(u.max_abs() <= 1.0 + 1e-12);
    }

    #[test]
    fn matrix_product_associative() {
        let a = sample_su3();
        let b = sample_su3_complex();
        let c = b.adjoint();
        let lhs = (a * b) * c;
        let rhs = a * (b * c);
        assert!((lhs.norm_sqr() - rhs.norm_sqr()).abs() < 1e-10);
        for i in 0..3 {
            for j in 0..3 {
                assert!((lhs.m[i][j].re - rhs.m[i][j].re).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cast_roundtrip_f32() {
        let u = sample_su3_complex();
        let v: Su3<f32> = u.cast();
        let w: Su3<f64> = v.cast();
        for i in 0..3 {
            for j in 0..3 {
                assert!((w.m[i][j].re - u.m[i][j].re).abs() < 1e-6);
            }
        }
    }
}
