//! 16-bit fixed-point ("half precision") storage.
//!
//! Section V-C3: QUDA stores gauge and spinor fields as signed 16-bit
//! integers that the texture unit expands to floats in `[-1, 1]`
//! (`cudaReadModeNormalizedFloat`). Gauge-link elements already lie in that
//! range by unitarity and are stored directly; spinors carry one shared
//! `f32` normalization per 24-component site spinor (or per transferred
//! 12-component half spinor).
//!
//! We reproduce the format exactly: a [`Fixed16`] is an `i16` whose value is
//! `v / 32767.0`, and quantization uses round-to-nearest. This makes the
//! precision loss of the half solver *real* rather than emulated — the mixed
//! precision experiments rely on it.

/// Scale factor of the normalized 16-bit format: `i16::MAX`.
pub const FIXED16_SCALE: f32 = i16::MAX as f32;

/// Bytes of device storage per half-precision real.
pub const FIXED16_BYTES: usize = 2;

/// One 16-bit fixed-point value representing a real in `[-1, 1]`.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
#[repr(transparent)]
pub struct Fixed16(pub i16);

impl Fixed16 {
    /// Quantize a float already normalized to `[-1, 1]`.
    ///
    /// Values outside the range clamp, matching GPU texture behaviour.
    #[inline(always)]
    pub fn quantize(x: f32) -> Self {
        let scaled = (x * FIXED16_SCALE).round();
        Fixed16(scaled.clamp(-FIXED16_SCALE, FIXED16_SCALE) as i16)
    }

    /// Expand back to a float in `[-1, 1]`.
    #[inline(always)]
    pub fn dequantize(self) -> f32 {
        self.0 as f32 / FIXED16_SCALE
    }
}

/// Quantize a slice of reals sharing one normalization constant.
///
/// Returns the normalization used (the sup-norm of the data, or 1.0 for an
/// all-zero block so dequantization stays well-defined).
pub fn quantize_block(data: &[f32], out: &mut [Fixed16]) -> f32 {
    assert_eq!(data.len(), out.len());
    let norm = data.iter().fold(0.0f32, |m, x| m.max(x.abs()));
    let norm = if norm == 0.0 { 1.0 } else { norm };
    let inv = 1.0 / norm;
    for (o, &x) in out.iter_mut().zip(data) {
        *o = Fixed16::quantize(x * inv);
    }
    norm
}

/// Dequantize a block with its shared normalization.
pub fn dequantize_block(data: &[Fixed16], norm: f32, out: &mut [f32]) {
    assert_eq!(data.len(), out.len());
    for (o, &q) in out.iter_mut().zip(data) {
        *o = q.dequantize() * norm;
    }
}

/// Worst-case absolute error of the format for a block with norm `norm`:
/// half a quantization step.
pub fn max_quantization_error(norm: f32) -> f32 {
    norm * 0.5 / FIXED16_SCALE
}

/// Quantize `sites × block` f64 reals into raw 16-bit storage integers with
/// one shared `f32` sup-norm per `block`-real site, appended to `norms`.
///
/// This is the single sanctioned path from float data to the half-precision
/// wire/storage format outside this crate (Section VI-C: "the extra
/// normalization constant for each (12 component) spinor"); an all-zero
/// site gets norm 1.0 so dequantization stays well-defined.
pub fn quantize_sites16(values: &[f64], block: usize, ints: &mut Vec<i16>, norms: &mut Vec<f32>) {
    assert_eq!(values.len() % block, 0, "values must be whole site blocks");
    for site in values.chunks_exact(block) {
        let norm = site_norm(site);
        norms.push(norm as f32);
        for &x in site {
            ints.push(Fixed16::quantize((x / norm) as f32).0);
        }
    }
}

/// 8-bit (quarter precision) variant of [`quantize_sites16`].
pub fn quantize_sites8(values: &[f64], block: usize, ints: &mut Vec<i8>, norms: &mut Vec<f32>) {
    assert_eq!(values.len() % block, 0, "values must be whole site blocks");
    for site in values.chunks_exact(block) {
        let norm = site_norm(site);
        norms.push(norm as f32);
        for &x in site {
            ints.push(Fixed8::quantize((x / norm) as f32).0);
        }
    }
}

/// Expand raw 16-bit storage integers back to f64, applying each site's
/// shared norm — the inverse of [`quantize_sites16`].
pub fn dequantize_sites16(ints: &[i16], norms: &[f32], block: usize, out: &mut Vec<f64>) {
    assert_eq!(ints.len(), norms.len() * block, "one norm per site block");
    for (site, &norm) in ints.chunks_exact(block).zip(norms) {
        for &q in site {
            out.push(Fixed16(q).dequantize() as f64 * norm as f64);
        }
    }
}

/// 8-bit variant of [`dequantize_sites16`].
pub fn dequantize_sites8(ints: &[i8], norms: &[f32], block: usize, out: &mut Vec<f64>) {
    assert_eq!(ints.len(), norms.len() * block, "one norm per site block");
    for (site, &norm) in ints.chunks_exact(block).zip(norms) {
        for &q in site {
            out.push(Fixed8(q).dequantize() as f64 * norm as f64);
        }
    }
}

/// Sup-norm of one site block, with the zero-block fallback.
fn site_norm(site: &[f64]) -> f64 {
    let norm = site.iter().fold(0.0f64, |m, x| m.max(x.abs()));
    if norm == 0.0 {
        1.0
    } else {
        norm
    }
}

/// Scale factor of the normalized 8-bit format: `i8::MAX`.
pub const FIXED8_SCALE: f32 = i8::MAX as f32;

/// One 8-bit fixed-point value in `[-1, 1]` — the texture unit accepts
/// "a signed 16-bit (or even 8-bit) integer" (Section V-C3); this is the
/// 8-bit variant, provided as an extension beyond the paper's production
/// configuration.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
#[repr(transparent)]
pub struct Fixed8(pub i8);

impl Fixed8 {
    /// Quantize a float already normalized to `[-1, 1]` (clamping).
    #[inline(always)]
    pub fn quantize(x: f32) -> Self {
        let scaled = (x * FIXED8_SCALE).round();
        Fixed8(scaled.clamp(-FIXED8_SCALE, FIXED8_SCALE) as i8)
    }

    /// Expand back to a float in `[-1, 1]`.
    #[inline(always)]
    pub fn dequantize(self) -> f32 {
        self.0 as f32 / FIXED8_SCALE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_roundtrip() {
        for x in [-1.0f32, 0.0, 1.0] {
            assert_eq!(Fixed16::quantize(x).dequantize(), x);
        }
    }

    #[test]
    fn clamps_out_of_range() {
        assert_eq!(Fixed16::quantize(2.0).dequantize(), 1.0);
        assert_eq!(Fixed16::quantize(-7.5).dequantize(), -1.0);
    }

    #[test]
    fn quantization_error_bounded() {
        let mut x = -1.0f32;
        while x <= 1.0 {
            let err = (Fixed16::quantize(x).dequantize() - x).abs();
            assert!(err <= 0.5 / FIXED16_SCALE + f32::EPSILON, "x={x} err={err}");
            x += 0.001_7;
        }
    }

    #[test]
    fn block_roundtrip_error_bounded_by_norm() {
        let data: Vec<f32> = (0..24).map(|i| ((i * 37 % 17) as f32 - 8.0) * 0.33).collect();
        let mut q = vec![Fixed16::default(); 24];
        let norm = quantize_block(&data, &mut q);
        let mut back = vec![0.0f32; 24];
        dequantize_block(&q, norm, &mut back);
        let bound = max_quantization_error(norm) * 1.001;
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() <= bound, "{a} vs {b} (bound {bound})");
        }
    }

    #[test]
    fn norm_is_sup_norm() {
        let data = [0.25f32, -3.0, 1.5];
        let mut q = [Fixed16::default(); 3];
        let norm = quantize_block(&data, &mut q);
        assert_eq!(norm, 3.0);
        // The largest-magnitude element maps to exactly ±1.
        assert_eq!(q[1].dequantize(), -1.0);
    }

    #[test]
    fn zero_block_uses_unit_norm() {
        let data = [0.0f32; 8];
        let mut q = [Fixed16::default(); 8];
        let norm = quantize_block(&data, &mut q);
        assert_eq!(norm, 1.0);
        let mut back = [1.0f32; 8];
        dequantize_block(&q, norm, &mut back);
        assert!(back.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn storage_is_two_bytes() {
        assert_eq!(std::mem::size_of::<Fixed16>(), FIXED16_BYTES);
    }

    #[test]
    fn fixed8_roundtrip_and_bounds() {
        for x in [-1.0f32, 0.0, 1.0] {
            assert_eq!(Fixed8::quantize(x).dequantize(), x);
        }
        assert_eq!(Fixed8::quantize(3.0).dequantize(), 1.0);
        let mut x = -1.0f32;
        while x <= 1.0 {
            let err = (Fixed8::quantize(x).dequantize() - x).abs();
            assert!(err <= 0.5 / FIXED8_SCALE + f32::EPSILON);
            x += 0.003;
        }
        assert_eq!(std::mem::size_of::<Fixed8>(), 1);
    }

    #[test]
    fn site_block_roundtrip_16() {
        // Two 12-real sites with very different scales: per-site norms keep
        // the small site's relative error bounded.
        let mut values: Vec<f64> = (0..12).map(|i| (i as f64 - 6.0) * 1e3).collect();
        values.extend((0..12).map(|i| (i as f64 - 5.0) * 1e-4));
        let mut ints = Vec::new();
        let mut norms = Vec::new();
        quantize_sites16(&values, 12, &mut ints, &mut norms);
        assert_eq!(ints.len(), 24);
        assert_eq!(norms.len(), 2);
        let mut back = Vec::new();
        dequantize_sites16(&ints, &norms, 12, &mut back);
        for (site, (a, b)) in values.iter().zip(&back).enumerate().map(|(i, p)| (i / 12, p)) {
            // Half a quantization step, plus the f32 rounding of `x / norm`.
            let bound =
                (max_quantization_error(norms[site]) + norms[site] * f32::EPSILON) as f64 * 1.001;
            assert!((a - b).abs() <= bound, "{a} vs {b} (site {site}, bound {bound})");
        }
    }

    #[test]
    fn site_block_roundtrip_8_and_zero_site() {
        let mut values = vec![0.0f64; 6]; // all-zero site → norm 1.0
        values.extend([0.5, -2.0, 1.0, 0.25, -0.125, 2.0]);
        let mut ints = Vec::new();
        let mut norms = Vec::new();
        quantize_sites8(&values, 6, &mut ints, &mut norms);
        assert_eq!(norms[0], 1.0);
        assert_eq!(norms[1], 2.0);
        let mut back = Vec::new();
        dequantize_sites8(&ints, &norms, 6, &mut back);
        assert!(back[..6].iter().all(|&x| x == 0.0));
        for (a, b) in values[6..].iter().zip(&back[6..]) {
            assert!((a - b).abs() <= 2.0 * 0.5 / FIXED8_SCALE as f64 * 1.001, "{a} vs {b}");
        }
    }

    #[test]
    fn monotone() {
        // Quantization preserves order — needed so max-norm reductions in
        // half precision are meaningful.
        let mut prev = Fixed16::quantize(-1.0);
        let mut x = -1.0f32;
        while x <= 1.0 {
            let q = Fixed16::quantize(x);
            assert!(q.0 >= prev.0);
            prev = q;
            x += 0.01;
        }
    }
}
