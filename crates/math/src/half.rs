//! 16-bit fixed-point ("half precision") storage.
//!
//! Section V-C3: QUDA stores gauge and spinor fields as signed 16-bit
//! integers that the texture unit expands to floats in `[-1, 1]`
//! (`cudaReadModeNormalizedFloat`). Gauge-link elements already lie in that
//! range by unitarity and are stored directly; spinors carry one shared
//! `f32` normalization per 24-component site spinor (or per transferred
//! 12-component half spinor).
//!
//! We reproduce the format exactly: a [`Fixed16`] is an `i16` whose value is
//! `v / 32767.0`, and quantization uses round-to-nearest. This makes the
//! precision loss of the half solver *real* rather than emulated — the mixed
//! precision experiments rely on it.

/// Scale factor of the normalized 16-bit format: `i16::MAX`.
pub const FIXED16_SCALE: f32 = i16::MAX as f32;

/// Bytes of device storage per half-precision real.
pub const FIXED16_BYTES: usize = 2;

/// One 16-bit fixed-point value representing a real in `[-1, 1]`.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
#[repr(transparent)]
pub struct Fixed16(pub i16);

impl Fixed16 {
    /// Quantize a float already normalized to `[-1, 1]`.
    ///
    /// Values outside the range clamp, matching GPU texture behaviour.
    #[inline(always)]
    pub fn quantize(x: f32) -> Self {
        let scaled = (x * FIXED16_SCALE).round();
        Fixed16(scaled.clamp(-FIXED16_SCALE, FIXED16_SCALE) as i16)
    }

    /// Expand back to a float in `[-1, 1]`.
    #[inline(always)]
    pub fn dequantize(self) -> f32 {
        self.0 as f32 / FIXED16_SCALE
    }
}

/// Quantize a slice of reals sharing one normalization constant.
///
/// Returns the normalization used (the sup-norm of the data, or 1.0 for an
/// all-zero block so dequantization stays well-defined).
pub fn quantize_block(data: &[f32], out: &mut [Fixed16]) -> f32 {
    assert_eq!(data.len(), out.len());
    let norm = data.iter().fold(0.0f32, |m, x| m.max(x.abs()));
    let norm = if norm == 0.0 { 1.0 } else { norm };
    let inv = 1.0 / norm;
    for (o, &x) in out.iter_mut().zip(data) {
        *o = Fixed16::quantize(x * inv);
    }
    norm
}

/// Dequantize a block with its shared normalization.
pub fn dequantize_block(data: &[Fixed16], norm: f32, out: &mut [f32]) {
    assert_eq!(data.len(), out.len());
    for (o, &q) in out.iter_mut().zip(data) {
        *o = q.dequantize() * norm;
    }
}

/// Worst-case absolute error of the format for a block with norm `norm`:
/// half a quantization step.
pub fn max_quantization_error(norm: f32) -> f32 {
    norm * 0.5 / FIXED16_SCALE
}

/// Scale factor of the normalized 8-bit format: `i8::MAX`.
pub const FIXED8_SCALE: f32 = i8::MAX as f32;

/// One 8-bit fixed-point value in `[-1, 1]` — the texture unit accepts
/// "a signed 16-bit (or even 8-bit) integer" (Section V-C3); this is the
/// 8-bit variant, provided as an extension beyond the paper's production
/// configuration.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
#[repr(transparent)]
pub struct Fixed8(pub i8);

impl Fixed8 {
    /// Quantize a float already normalized to `[-1, 1]` (clamping).
    #[inline(always)]
    pub fn quantize(x: f32) -> Self {
        let scaled = (x * FIXED8_SCALE).round();
        Fixed8(scaled.clamp(-FIXED8_SCALE, FIXED8_SCALE) as i8)
    }

    /// Expand back to a float in `[-1, 1]`.
    #[inline(always)]
    pub fn dequantize(self) -> f32 {
        self.0 as f32 / FIXED8_SCALE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_roundtrip() {
        for x in [-1.0f32, 0.0, 1.0] {
            assert_eq!(Fixed16::quantize(x).dequantize(), x);
        }
    }

    #[test]
    fn clamps_out_of_range() {
        assert_eq!(Fixed16::quantize(2.0).dequantize(), 1.0);
        assert_eq!(Fixed16::quantize(-7.5).dequantize(), -1.0);
    }

    #[test]
    fn quantization_error_bounded() {
        let mut x = -1.0f32;
        while x <= 1.0 {
            let err = (Fixed16::quantize(x).dequantize() - x).abs();
            assert!(err <= 0.5 / FIXED16_SCALE + f32::EPSILON, "x={x} err={err}");
            x += 0.001_7;
        }
    }

    #[test]
    fn block_roundtrip_error_bounded_by_norm() {
        let data: Vec<f32> = (0..24).map(|i| ((i * 37 % 17) as f32 - 8.0) * 0.33).collect();
        let mut q = vec![Fixed16::default(); 24];
        let norm = quantize_block(&data, &mut q);
        let mut back = vec![0.0f32; 24];
        dequantize_block(&q, norm, &mut back);
        let bound = max_quantization_error(norm) * 1.001;
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() <= bound, "{a} vs {b} (bound {bound})");
        }
    }

    #[test]
    fn norm_is_sup_norm() {
        let data = [0.25f32, -3.0, 1.5];
        let mut q = [Fixed16::default(); 3];
        let norm = quantize_block(&data, &mut q);
        assert_eq!(norm, 3.0);
        // The largest-magnitude element maps to exactly ±1.
        assert_eq!(q[1].dequantize(), -1.0);
    }

    #[test]
    fn zero_block_uses_unit_norm() {
        let data = [0.0f32; 8];
        let mut q = [Fixed16::default(); 8];
        let norm = quantize_block(&data, &mut q);
        assert_eq!(norm, 1.0);
        let mut back = [1.0f32; 8];
        dequantize_block(&q, norm, &mut back);
        assert!(back.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn storage_is_two_bytes() {
        assert_eq!(std::mem::size_of::<Fixed16>(), FIXED16_BYTES);
    }

    #[test]
    fn fixed8_roundtrip_and_bounds() {
        for x in [-1.0f32, 0.0, 1.0] {
            assert_eq!(Fixed8::quantize(x).dequantize(), x);
        }
        assert_eq!(Fixed8::quantize(3.0).dequantize(), 1.0);
        let mut x = -1.0f32;
        while x <= 1.0 {
            let err = (Fixed8::quantize(x).dequantize() - x).abs();
            assert!(err <= 0.5 / FIXED8_SCALE + f32::EPSILON);
            x += 0.003;
        }
        assert_eq!(std::mem::size_of::<Fixed8>(), 1);
    }

    #[test]
    fn monotone() {
        // Quantization preserves order — needed so max-norm reductions in
        // half precision are meaningful.
        let mut prev = Fixed16::quantize(-1.0);
        let mut x = -1.0f32;
        while x <= 1.0 {
            let q = Fixed16::quantize(x);
            assert!(q.0 >= prev.0);
            prev = q;
            x += 0.01;
        }
    }
}
