//! Floating-point abstraction used throughout the library.
//!
//! QUDA runs its kernels in three arithmetic precisions: double (`f64`),
//! single (`f32`), and "half" — a 16-bit fixed-point *storage* format that is
//! always widened to `f32` for arithmetic (Section V-C3 of the paper). The
//! [`Real`] trait abstracts the two true arithmetic precisions; the half
//! format lives in [`crate::half`] as a storage transform on top of `f32`.

use std::fmt::Debug;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real scalar type usable in lattice kernels.
///
/// Implemented for `f32` and `f64`. The bound set mirrors what the fused
/// linear-algebra kernels and the Dirac stencil need: ring operations,
/// comparisons, square roots, and conversions to/from `f64` for accumulating
/// reductions in high precision.
pub trait Real:
    Copy
    + Clone
    + Debug
    + PartialEq
    + PartialOrd
    + Default
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Number of bytes one value occupies in device storage.
    const STORAGE_BYTES: usize;
    /// Human-readable name matching the paper's terminology.
    const NAME: &'static str;

    /// Lossless widening to `f64` (used for reductions).
    fn to_f64(self) -> f64;
    /// Narrowing conversion from `f64`.
    fn from_f64(x: f64) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Fused (or at least well-defined) multiply-add `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Maximum of two values.
    fn max(self, other: Self) -> Self;
}

impl Real for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const STORAGE_BYTES: usize = 4;
    const NAME: &'static str = "single";

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f32::mul_add(self, a, b)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }
}

impl Real for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const STORAGE_BYTES: usize = 8;
    const NAME: &'static str = "double";

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<R: Real>(x: f64) -> f64 {
        R::from_f64(x).to_f64()
    }

    #[test]
    fn f64_roundtrip_is_exact() {
        for &x in &[0.0, 1.0, -2.5, 1e-300, 1e300] {
            assert_eq!(roundtrip::<f64>(x), x);
        }
    }

    #[test]
    fn f32_roundtrip_within_eps() {
        for &x in &[0.0, 1.0, -2.5, std::f64::consts::PI] {
            assert!((roundtrip::<f32>(x) - x).abs() <= x.abs() * 1e-6);
        }
    }

    #[test]
    fn constants_match() {
        assert_eq!(f32::ZERO, 0.0f32);
        assert_eq!(f64::ONE, 1.0f64);
        assert_eq!(f32::STORAGE_BYTES, 4);
        assert_eq!(f64::STORAGE_BYTES, 8);
        assert_eq!(f32::NAME, "single");
        assert_eq!(f64::NAME, "double");
    }

    #[test]
    fn mul_add_and_sqrt() {
        assert_eq!(2.0f64.mul_add(3.0, 4.0), 10.0);
        assert_eq!(9.0f32.sqrt(), 3.0);
        assert_eq!((-3.0f64).abs(), 3.0);
        assert_eq!(1.0f32.max(2.0), 2.0);
    }
}
