//! Euclidean gamma matrices, spin bases, and rank-2 projector machinery.
//!
//! The Wilson operator applies the spin projectors `P±μ = 1 ± γμ` to each
//! neighbor spinor. Because each projector has rank 2, only two of the four
//! projected spin components are independent; QUDA exploits this to halve the
//! SU(3) multiplies and to transfer only 12 numbers per face site.
//!
//! Two bases are provided:
//!
//! * **DeGrand-Rossi** — the common "chiral" basis in which `γ5` is diagonal
//!   and the clover term is block diagonal (that is where the 72-real clover
//!   packing comes from);
//! * **non-relativistic** — the basis reached by the similarity transform of
//!   Section V-C2, in which `γ4` (and hence `P±4`, Eq. 6) is *diagonal*, so a
//!   temporal projection is a plain copy of 12 contiguous numbers. This is
//!   the basis the multi-GPU ghost-zone exchange relies on.
//!
//! All gamma matrices in both bases have exactly one nonzero, unit-modulus
//! entry per row; the [`PermPhase`] form captures that and lets kernels apply
//! a gamma with 4 complex "multiplies" that are really sign flips and
//! re/im swaps.

use crate::complex::{Complex, C64};
use crate::real::Real;
use crate::spinor::{HalfSpinor, Spinor};

/// Number of spacetime dimensions (and of gamma matrices).
pub const NDIM: usize = 4;

/// Dense 4×4 complex matrix in spin space.
pub type Mat4 = [[C64; 4]; 4];

/// Zero 4×4 matrix.
pub fn mat4_zero() -> Mat4 {
    [[C64::zero(); 4]; 4]
}

/// Identity 4×4 matrix.
pub fn mat4_identity() -> Mat4 {
    let mut m = mat4_zero();
    for i in 0..4 {
        m[i][i] = C64::one();
    }
    m
}

/// Dense matrix product.
pub fn mat4_mul(a: &Mat4, b: &Mat4) -> Mat4 {
    let mut out = mat4_zero();
    for i in 0..4 {
        for j in 0..4 {
            let mut acc = C64::zero();
            for k in 0..4 {
                acc += a[i][k] * b[k][j];
            }
            out[i][j] = acc;
        }
    }
    out
}

/// Dense matrix sum.
pub fn mat4_add(a: &Mat4, b: &Mat4) -> Mat4 {
    let mut out = mat4_zero();
    for i in 0..4 {
        for j in 0..4 {
            out[i][j] = a[i][j] + b[i][j];
        }
    }
    out
}

/// Scale a dense matrix.
pub fn mat4_scale(a: &Mat4, s: C64) -> Mat4 {
    let mut out = *a;
    for row in out.iter_mut() {
        for z in row.iter_mut() {
            *z *= s;
        }
    }
    out
}

/// Hermitian conjugate.
pub fn mat4_adjoint(a: &Mat4) -> Mat4 {
    let mut out = mat4_zero();
    for i in 0..4 {
        for j in 0..4 {
            out[i][j] = a[j][i].conj();
        }
    }
    out
}

/// Apply a dense spin matrix to a spinor: `out_s = Σ_t m[s][t] ψ_t`
/// (acting on the spin index only; color is untouched).
pub fn mat4_apply<T: Real>(m: &Mat4, psi: &Spinor<T>) -> Spinor<T> {
    let mut out = Spinor::zero();
    for s in 0..4 {
        for t in 0..4 {
            let coeff = m[s][t];
            if coeff.re == 0.0 && coeff.im == 0.0 {
                continue;
            }
            let c = Complex::<T>::new(T::from_f64(coeff.re), T::from_f64(coeff.im));
            out.s[s] += psi.s[t].scale(c);
        }
    }
    out
}

/// Maximum absolute difference between two dense matrices.
pub fn mat4_max_diff(a: &Mat4, b: &Mat4) -> f64 {
    let mut d: f64 = 0.0;
    for i in 0..4 {
        for j in 0..4 {
            d = d.max((a[i][j].re - b[i][j].re).abs());
            d = d.max((a[i][j].im - b[i][j].im).abs());
        }
    }
    d
}

fn c(re: f64, im: f64) -> C64 {
    C64::new(re, im)
}

/// The DeGrand-Rossi gamma matrices (Hermitian, `γμ² = 1`).
pub fn degrand_rossi_gammas() -> [Mat4; 4] {
    let z = C64::zero();
    let i = c(0.0, 1.0);
    let ni = c(0.0, -1.0);
    let one = c(1.0, 0.0);
    let none = c(-1.0, 0.0);
    let g1: Mat4 = [[z, z, z, i], [z, z, i, z], [z, ni, z, z], [ni, z, z, z]];
    let g2: Mat4 = [[z, z, z, none], [z, z, one, z], [z, one, z, z], [none, z, z, z]];
    let g3: Mat4 = [[z, z, i, z], [z, z, z, ni], [ni, z, z, z], [z, i, z, z]];
    let g4: Mat4 = [[z, z, one, z], [z, z, z, one], [one, z, z, z], [z, one, z, z]];
    [g1, g2, g3, g4]
}

/// The unitary similarity transform `S` taking the DeGrand-Rossi basis to the
/// non-relativistic basis: `γ_NR = S γ_DR S†`, chosen so `S γ4 S† =
/// diag(1,1,-1,-1)`.
pub fn nr_transform() -> Mat4 {
    let r = 1.0 / f64::sqrt(2.0);
    let z = C64::zero();
    let p = c(r, 0.0);
    let n = c(-r, 0.0);
    // Block form (1/√2) [[I, I], [-I, I]].
    [[p, z, p, z], [z, p, z, p], [n, z, p, z], [z, n, z, p]]
}

/// Which gamma-matrix basis a field or operator is expressed in.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum GammaBasis {
    /// Chiral basis: `γ5` diagonal; clover block diagonal.
    DeGrandRossi,
    /// QUDA's internal basis: `γ4` diagonal, so `P±4` is diagonal (Eq. 6).
    NonRelativistic,
}

/// A gamma matrix in permutation-phase form:
/// `(γ ψ)_s = phase[s] · ψ_{perm[s]}`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct PermPhase {
    /// Column of the single nonzero in each row.
    pub perm: [usize; 4],
    /// Value of that nonzero (unit modulus).
    pub phase: [C64; 4],
}

impl PermPhase {
    /// Extract the permutation-phase form from a dense matrix, or `None` if
    /// any row does not have exactly one nonzero unit-modulus entry.
    pub fn from_dense(m: &Mat4) -> Option<Self> {
        let mut perm = [0usize; 4];
        let mut phase = [C64::zero(); 4];
        for s in 0..4 {
            let mut found = None;
            for t in 0..4 {
                let z = m[s][t];
                if z.re.abs() > 1e-12 || z.im.abs() > 1e-12 {
                    if found.is_some() {
                        return None;
                    }
                    found = Some((t, z));
                }
            }
            let (t, z) = found?;
            if (z.norm_sqr() - 1.0).abs() > 1e-9 {
                return None;
            }
            perm[s] = t;
            phase[s] = z;
        }
        Some(PermPhase { perm, phase })
    }

    /// Reconstitute the dense form.
    pub fn to_dense(&self) -> Mat4 {
        let mut m = mat4_zero();
        for s in 0..4 {
            m[s][self.perm[s]] = self.phase[s];
        }
        m
    }

    /// Apply to a spinor.
    pub fn apply<T: Real>(&self, psi: &Spinor<T>) -> Spinor<T> {
        let mut out = Spinor::zero();
        for s in 0..4 {
            let ph =
                Complex::<T>::new(T::from_f64(self.phase[s].re), T::from_f64(self.phase[s].im));
            out.s[s] = psi.s[self.perm[s]].scale(ph);
        }
        out
    }
}

/// Compiled form of a rank-2 projector `P±μ = 1 ± γμ`.
///
/// `rows` names the two spin components that must actually be computed and
/// multiplied by the link matrix; `rec_*` describes how all four output spin
/// components are recovered from those two products. For the diagonalized
/// temporal projectors, the two computed rows are a plain ×2 copy of existing
/// components and two of the reconstruction coefficients are zero — which is
/// exactly why a temporal face transfer is 12 contiguous numbers.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct HalfProj {
    /// Dense form, for reference and testing.
    pub dense: Mat4,
    /// The two independent row indices.
    pub rows: [usize; 2],
    /// Terms building each computed row: `h_i = Σ_k coeff · ψ_{col}`.
    /// Each row has at most 2 terms; unused slots have `count` excluded.
    pub terms: [[(usize, C64); 2]; 2],
    /// Number of valid terms per computed row (1 or 2).
    pub nterms: [usize; 2],
    /// For each output spin s: which computed row it copies (0 or 1).
    pub rec_src: [usize; 4],
    /// Coefficient applied to that computed row (possibly zero).
    pub rec_coeff: [C64; 4],
    /// True when this projector is diagonal in spin (temporal, NR basis).
    pub diagonal: bool,
}

impl HalfProj {
    /// Build the compiled projector from `1 + sign·γ`.
    ///
    /// Panics if the matrix is not rank ≤ 2 with the row structure produced
    /// by `1 ± γ` for a Hermitian unit-modulus permutation gamma — which is
    /// an internal invariant, verified by the constructor tests.
    pub fn new(gamma: &Mat4, sign: f64) -> Self {
        let p = mat4_add(&mat4_identity(), &mat4_scale(gamma, c(sign, 0.0)));
        let mut rows_vec: Vec<usize> = Vec::new();
        let mut rec_src = [0usize; 4];
        let mut rec_coeff = [C64::zero(); 4];
        // Classify each row of P as zero, a multiple of an earlier chosen
        // row, or a new independent row.
        for s in 0..4 {
            let row_s = p[s];
            let zero = row_s.iter().all(|z| z.re.abs() < 1e-12 && z.im.abs() < 1e-12);
            if zero {
                rec_src[s] = 0;
                rec_coeff[s] = C64::zero();
                continue;
            }
            let mut matched = false;
            for (ri, &r) in rows_vec.iter().enumerate() {
                if let Some(cf) = row_multiple(&p[r], &row_s) {
                    rec_src[s] = ri;
                    rec_coeff[s] = cf;
                    matched = true;
                    break;
                }
            }
            if !matched {
                assert!(rows_vec.len() < 2, "projector rank exceeds 2");
                rec_src[s] = rows_vec.len();
                rec_coeff[s] = C64::one();
                rows_vec.push(s);
            }
        }
        assert!(!rows_vec.is_empty(), "projector is zero");
        // Rank-1 cannot happen for 1 ± γ with γ² = 1 traceless; but be safe
        // and duplicate the row so indices stay valid.
        if rows_vec.len() == 1 {
            rows_vec.push(rows_vec[0]);
        }
        let rows = [rows_vec[0], rows_vec[1]];
        let mut terms = [[(0usize, C64::zero()); 2]; 2];
        let mut nterms = [0usize; 2];
        for i in 0..2 {
            let mut k = 0;
            for t in 0..4 {
                let z = p[rows[i]][t];
                if z.re.abs() > 1e-12 || z.im.abs() > 1e-12 {
                    assert!(k < 2, "projector row has more than 2 terms");
                    terms[i][k] = (t, z);
                    k += 1;
                }
            }
            assert!(k >= 1);
            nterms[i] = k;
        }
        let diagonal =
            PermPhase::from_dense(gamma).map(|pp| pp.perm == [0, 1, 2, 3]).unwrap_or(false);
        HalfProj { dense: p, rows, terms, nterms, rec_src, rec_coeff, diagonal }
    }

    /// Project a full spinor to the two independent components.
    #[inline]
    pub fn project<T: Real>(&self, psi: &Spinor<T>) -> HalfSpinor<T> {
        let mut h = HalfSpinor::zero();
        for i in 0..2 {
            let mut acc = crate::colorvec::ColorVec::zero();
            for k in 0..self.nterms[i] {
                let (col, cf) = self.terms[i][k];
                acc += mul_c64(&psi.s[col], cf);
            }
            h.h[i] = acc;
        }
        h
    }

    /// Expand two (already link-multiplied) color vectors back to the full
    /// 4-component spinor contribution.
    #[inline]
    pub fn reconstruct<T: Real>(&self, h: &HalfSpinor<T>) -> Spinor<T> {
        let mut out = Spinor::zero();
        for s in 0..4 {
            let cf = self.rec_coeff[s];
            if cf.re == 0.0 && cf.im == 0.0 {
                continue;
            }
            out.s[s] = mul_c64(&h.h[self.rec_src[s]], cf);
        }
        out
    }

    /// Apply the full dense projector (reference path for tests).
    pub fn apply_dense<T: Real>(&self, psi: &Spinor<T>) -> Spinor<T> {
        mat4_apply(&self.dense, psi)
    }
}

#[inline(always)]
fn mul_c64<T: Real>(v: &crate::colorvec::ColorVec<T>, cf: C64) -> crate::colorvec::ColorVec<T> {
    // Fast paths for the coefficients that actually occur (±1, ±i, 2).
    if cf.im == 0.0 {
        if cf.re == 1.0 {
            return *v;
        }
        if cf.re == -1.0 {
            return -*v;
        }
        return v.scale_re(T::from_f64(cf.re));
    }
    if cf.re == 0.0 {
        if cf.im == 1.0 {
            return v.mul_i();
        }
        if cf.im == -1.0 {
            return v.mul_neg_i();
        }
    }
    v.scale(Complex::new(T::from_f64(cf.re), T::from_f64(cf.im)))
}

fn row_multiple(base: &[C64; 4], row: &[C64; 4]) -> Option<C64> {
    // Find coefficient c with row = c * base, if it exists.
    let mut coeff: Option<C64> = None;
    for t in 0..4 {
        let b = base[t];
        let r = row[t];
        let bz = b.re.abs() < 1e-12 && b.im.abs() < 1e-12;
        let rz = r.re.abs() < 1e-12 && r.im.abs() < 1e-12;
        match (bz, rz) {
            (true, true) => {}
            (true, false) | (false, true) => return None,
            (false, false) => {
                let q = r.div(b);
                match coeff {
                    None => coeff = Some(q),
                    Some(cprev) => {
                        if (q.re - cprev.re).abs() > 1e-10 || (q.im - cprev.im).abs() > 1e-10 {
                            return None;
                        }
                    }
                }
            }
        }
    }
    coeff
}

/// A complete spin basis: the four gammas, `γ5`, and the compiled projectors
/// for all eight directions.
#[derive(Clone, Debug)]
pub struct SpinBasis {
    /// Which basis this is.
    pub basis: GammaBasis,
    /// Dense gamma matrices `γ1..γ4`.
    pub gamma: [Mat4; 4],
    /// Dense `γ5 = γ1 γ2 γ3 γ4`.
    pub gamma5: Mat4,
    /// Permutation-phase forms of the gammas.
    pub pp: [PermPhase; 4],
    /// `proj[mu][0] = P−μ = 1 − γμ`, `proj[mu][1] = P+μ = 1 + γμ`.
    pub proj: [[HalfProj; 2]; 4],
}

impl SpinBasis {
    /// Construct the requested basis.
    pub fn new(basis: GammaBasis) -> Self {
        let dr = degrand_rossi_gammas();
        let gamma: [Mat4; 4] = match basis {
            GammaBasis::DeGrandRossi => dr,
            GammaBasis::NonRelativistic => {
                let s = nr_transform();
                let sdag = mat4_adjoint(&s);
                [
                    mat4_mul(&mat4_mul(&s, &dr[0]), &sdag),
                    mat4_mul(&mat4_mul(&s, &dr[1]), &sdag),
                    mat4_mul(&mat4_mul(&s, &dr[2]), &sdag),
                    mat4_mul(&mat4_mul(&s, &dr[3]), &sdag),
                ]
            }
        };
        // Clean numerical fuzz from the similarity transform so the
        // perm-phase extraction sees exact zeros and ±1.
        let gamma = gamma.map(|g| {
            let mut out = g;
            for row in out.iter_mut() {
                for z in row.iter_mut() {
                    if z.re.abs() < 1e-12 {
                        z.re = 0.0;
                    }
                    if z.im.abs() < 1e-12 {
                        z.im = 0.0;
                    }
                    z.re = round_unit(z.re);
                    z.im = round_unit(z.im);
                }
            }
            out
        });
        let gamma5 = mat4_mul(&mat4_mul(&gamma[0], &gamma[1]), &mat4_mul(&gamma[2], &gamma[3]));
        let pp = [
            PermPhase::from_dense(&gamma[0]).expect("γ1 is perm-phase"),
            PermPhase::from_dense(&gamma[1]).expect("γ2 is perm-phase"),
            PermPhase::from_dense(&gamma[2]).expect("γ3 is perm-phase"),
            PermPhase::from_dense(&gamma[3]).expect("γ4 is perm-phase"),
        ];
        let proj = [
            [HalfProj::new(&gamma[0], -1.0), HalfProj::new(&gamma[0], 1.0)],
            [HalfProj::new(&gamma[1], -1.0), HalfProj::new(&gamma[1], 1.0)],
            [HalfProj::new(&gamma[2], -1.0), HalfProj::new(&gamma[2], 1.0)],
            [HalfProj::new(&gamma[3], -1.0), HalfProj::new(&gamma[3], 1.0)],
        ];
        SpinBasis { basis, gamma, gamma5, pp, proj }
    }

    /// The projector `1 + sign·γμ` with `mu` in `0..4`.
    pub fn projector(&self, mu: usize, sign: f64) -> &HalfProj {
        &self.proj[mu][if sign > 0.0 { 1 } else { 0 }]
    }
}

fn round_unit(x: f64) -> f64 {
    for target in [-1.0, 0.0, 1.0] {
        if (x - target).abs() < 1e-12 {
            return target;
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bases() -> [SpinBasis; 2] {
        [SpinBasis::new(GammaBasis::DeGrandRossi), SpinBasis::new(GammaBasis::NonRelativistic)]
    }

    #[test]
    fn clifford_algebra_holds_in_both_bases() {
        for b in bases() {
            for mu in 0..4 {
                for nu in 0..4 {
                    let anti = mat4_add(
                        &mat4_mul(&b.gamma[mu], &b.gamma[nu]),
                        &mat4_mul(&b.gamma[nu], &b.gamma[mu]),
                    );
                    let expect = if mu == nu {
                        mat4_scale(&mat4_identity(), C64::new(2.0, 0.0))
                    } else {
                        mat4_zero()
                    };
                    assert!(
                        mat4_max_diff(&anti, &expect) < 1e-12,
                        "{{γ{mu},γ{nu}}} wrong in {:?}",
                        b.basis
                    );
                }
            }
        }
    }

    #[test]
    fn gammas_hermitian() {
        for b in bases() {
            for mu in 0..4 {
                assert!(mat4_max_diff(&b.gamma[mu], &mat4_adjoint(&b.gamma[mu])) < 1e-12);
            }
        }
    }

    #[test]
    fn gamma5_diagonal_in_degrand_rossi() {
        let b = SpinBasis::new(GammaBasis::DeGrandRossi);
        for s in 0..4 {
            for t in 0..4 {
                if s != t {
                    assert!(b.gamma5[s][t].norm_sqr() < 1e-20);
                }
            }
            assert!((b.gamma5[s][s].re.abs() - 1.0).abs() < 1e-12);
            assert!(b.gamma5[s][s].im.abs() < 1e-12);
        }
    }

    #[test]
    fn gamma4_diagonal_in_nr_basis() {
        let b = SpinBasis::new(GammaBasis::NonRelativistic);
        let g4 = &b.gamma[3];
        // diag(1, 1, -1, -1) — this is what makes Eq. 6 hold.
        for s in 0..4 {
            for t in 0..4 {
                if s != t {
                    assert!(g4[s][t].norm_sqr() < 1e-20, "off-diagonal γ4 in NR basis");
                }
            }
        }
        assert!((g4[0][0].re - 1.0).abs() < 1e-12);
        assert!((g4[1][1].re - 1.0).abs() < 1e-12);
        assert!((g4[2][2].re + 1.0).abs() < 1e-12);
        assert!((g4[3][3].re + 1.0).abs() < 1e-12);
    }

    #[test]
    fn temporal_projectors_match_eq6() {
        // P+4 = diag(2,2,0,0), P-4 = diag(0,0,2,2) in the NR basis.
        let b = SpinBasis::new(GammaBasis::NonRelativistic);
        let pplus = &b.proj[3][1].dense;
        let pminus = &b.proj[3][0].dense;
        let mut expect_p = mat4_zero();
        expect_p[0][0] = C64::new(2.0, 0.0);
        expect_p[1][1] = C64::new(2.0, 0.0);
        let mut expect_m = mat4_zero();
        expect_m[2][2] = C64::new(2.0, 0.0);
        expect_m[3][3] = C64::new(2.0, 0.0);
        assert!(mat4_max_diff(pplus, &expect_p) < 1e-12);
        assert!(mat4_max_diff(pminus, &expect_m) < 1e-12);
        assert!(b.proj[3][0].diagonal && b.proj[3][1].diagonal);
    }

    #[test]
    fn projector_algebra() {
        // (1±γ)² = 2(1±γ);  (1+γ)(1-γ) = 0.
        for b in bases() {
            for mu in 0..4 {
                let p = &b.proj[mu][1].dense;
                let m = &b.proj[mu][0].dense;
                let p2 = mat4_mul(p, p);
                assert!(mat4_max_diff(&p2, &mat4_scale(p, C64::new(2.0, 0.0))) < 1e-12);
                let pm = mat4_mul(p, m);
                assert!(mat4_max_diff(&pm, &mat4_zero()) < 1e-12);
            }
        }
    }

    fn sample_spinor() -> Spinor<f64> {
        let mut sp = Spinor::zero();
        for s in 0..4 {
            for co in 0..3 {
                sp.s[s].c[co] = C64::new(
                    0.3 * (s as f64 + 1.0) - 0.1 * co as f64,
                    0.2 * co as f64 - 0.15 * s as f64,
                );
            }
        }
        sp
    }

    #[test]
    fn project_reconstruct_equals_dense_projector() {
        let psi = sample_spinor();
        for b in bases() {
            for mu in 0..4 {
                for pi in 0..2 {
                    let proj = &b.proj[mu][pi];
                    let via_half = proj.reconstruct(&proj.project(&psi));
                    let via_dense = proj.apply_dense(&psi);
                    let diff = (via_half - via_dense).norm_sqr();
                    assert!(diff < 1e-24, "mu={mu} pi={pi} basis={:?} diff={diff}", b.basis);
                }
            }
        }
    }

    #[test]
    fn perm_phase_roundtrip() {
        for b in bases() {
            for mu in 0..4 {
                let d = b.pp[mu].to_dense();
                assert!(mat4_max_diff(&d, &b.gamma[mu]) < 1e-12);
                // Application matches dense application.
                let psi = sample_spinor();
                let a = b.pp[mu].apply(&psi);
                let c = mat4_apply(&b.gamma[mu], &psi);
                assert!((a - c).norm_sqr() < 1e-24);
            }
        }
    }

    #[test]
    fn nr_transform_is_unitary() {
        let s = nr_transform();
        let prod = mat4_mul(&s, &mat4_adjoint(&s));
        assert!(mat4_max_diff(&prod, &mat4_identity()) < 1e-12);
    }

    #[test]
    fn bases_are_similar() {
        // γ_NR = S γ_DR S† means traces agree.
        let dr = SpinBasis::new(GammaBasis::DeGrandRossi);
        let nr = SpinBasis::new(GammaBasis::NonRelativistic);
        for mu in 0..4 {
            let tr_dr: C64 = (0..4).fold(C64::zero(), |a, i| a + dr.gamma[mu][i][i]);
            let tr_nr: C64 = (0..4).fold(C64::zero(), |a, i| a + nr.gamma[mu][i][i]);
            assert!((tr_dr.re - tr_nr.re).abs() < 1e-12);
            assert!((tr_dr.im - tr_nr.im).abs() < 1e-12);
        }
    }

    #[test]
    fn spatial_projection_transfers_12_numbers() {
        // Every projector, in every basis, reduces to 2 independent color
        // vectors = 12 reals — footnote 3 of the paper.
        for b in bases() {
            for mu in 0..4 {
                for pi in 0..2 {
                    let h = b.proj[mu][pi].project(&sample_spinor());
                    assert_eq!(h.to_reals().len(), 12);
                }
            }
        }
    }
}
