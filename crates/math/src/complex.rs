//! Minimal complex-number type.
//!
//! Lattice QCD fields are complex-valued; QUDA stores them as interleaved
//! `(re, im)` pairs inside short-vector blocks. We keep the type deliberately
//! small (`repr(C)`, two reals) so a `&[Complex<T>]` can be viewed as the
//! flat real array the field-layout code (Eqs. 3-5) indexes into.

use crate::real::Real;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number over a [`Real`] scalar.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
#[repr(C)]
pub struct Complex<T> {
    /// Real part.
    pub re: T,
    /// Imaginary part.
    pub im: T,
}

impl<T: Real> Complex<T> {
    /// The complex zero.
    pub const fn zero() -> Self
    where
        T: Copy,
    {
        Complex { re: T::ZERO, im: T::ZERO }
    }

    /// The complex one.
    pub const fn one() -> Self {
        Complex { re: T::ONE, im: T::ZERO }
    }

    /// The imaginary unit `i`.
    pub const fn i() -> Self {
        Complex { re: T::ZERO, im: T::ONE }
    }

    /// Construct from parts.
    #[inline(always)]
    pub fn new(re: T, im: T) -> Self {
        Complex { re, im }
    }

    /// Construct a purely real value.
    #[inline(always)]
    pub fn from_real(re: T) -> Self {
        Complex { re, im: T::ZERO }
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Complex { re: self.re, im: -self.im }
    }

    /// Squared modulus `|z|²` as the scalar type.
    #[inline(always)]
    pub fn norm_sqr(self) -> T {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline(always)]
    pub fn abs(self) -> T {
        self.norm_sqr().sqrt()
    }

    /// Multiply by a real scalar.
    #[inline(always)]
    pub fn scale(self, s: T) -> Self {
        Complex { re: self.re * s, im: self.im * s }
    }

    /// Multiply by `i` (cheap rotation, used by the gamma-matrix tables).
    #[inline(always)]
    pub fn mul_i(self) -> Self {
        Complex { re: -self.im, im: self.re }
    }

    /// Multiply by `-i`.
    #[inline(always)]
    pub fn mul_neg_i(self) -> Self {
        Complex { re: self.im, im: -self.re }
    }

    /// `self * a + b`, written so the compiler can fuse the multiplies.
    #[inline(always)]
    pub fn mul_add(self, a: Self, b: Self) -> Self {
        Complex {
            re: self.re.mul_add(a.re, (-self.im).mul_add(a.im, b.re)),
            im: self.re.mul_add(a.im, self.im.mul_add(a.re, b.im)),
        }
    }

    /// `conj(self) * a + b` — the conjugated accumulate used when applying
    /// the adjoint link matrix in the backward gather.
    #[inline(always)]
    pub fn conj_mul_add(self, a: Self, b: Self) -> Self {
        Complex {
            re: self.re.mul_add(a.re, self.im.mul_add(a.im, b.re)),
            im: self.re.mul_add(a.im, (-self.im).mul_add(a.re, b.im)),
        }
    }

    /// Multiplicative inverse. Panics on zero in debug builds.
    #[inline]
    pub fn inv(self) -> Self {
        let n = self.norm_sqr();
        debug_assert!(n.to_f64() != 0.0, "inverting complex zero");
        Complex { re: self.re / n, im: -self.im / n }
    }

    /// Division `self / rhs`.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }

    /// Convert the scalar type (e.g. f64 field → f32 field).
    #[inline(always)]
    pub fn cast<U: Real>(self) -> Complex<U> {
        Complex { re: U::from_f64(self.re.to_f64()), im: U::from_f64(self.im.to_f64()) }
    }
}

impl<T: Real> Add for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Complex { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl<T: Real> Sub for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Complex { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl<T: Real> Neg for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Complex { re: -self.re, im: -self.im }
    }
}

impl<T: Real> Mul for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Complex { re: self.re * rhs.re - self.im * rhs.im, im: self.re * rhs.im + self.im * rhs.re }
    }
}

impl<T: Real> AddAssign for Complex<T> {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<T: Real> SubAssign for Complex<T> {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<T: Real> MulAssign for Complex<T> {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

/// Convenience alias for double precision.
pub type C64 = Complex<f64>;
/// Convenience alias for single precision.
pub type C32 = Complex<f32>;

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> C64 {
        Complex::new(re, im)
    }

    #[test]
    fn field_axioms() {
        let a = c(1.0, 2.0);
        let b = c(-3.0, 0.5);
        let z = C64::zero();
        let one = C64::one();
        assert_eq!(a + z, a);
        assert_eq!(a * one, a);
        assert_eq!(a + b, b + a);
        assert_eq!(a * b, b * a);
        assert_eq!(a - a, z);
        assert_eq!(-a + a, z);
    }

    #[test]
    fn i_squares_to_minus_one() {
        assert_eq!(C64::i() * C64::i(), -C64::one());
    }

    #[test]
    fn mul_i_matches_multiplication() {
        let a = c(1.5, -2.5);
        assert_eq!(a.mul_i(), a * C64::i());
        assert_eq!(a.mul_neg_i(), a * -C64::i());
    }

    #[test]
    fn conj_and_norm() {
        let a = c(3.0, 4.0);
        assert_eq!(a.conj(), c(3.0, -4.0));
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        // z * conj(z) = |z|^2
        let p = a * a.conj();
        assert_eq!(p, c(25.0, 0.0));
    }

    #[test]
    fn inverse_and_division() {
        let a = c(2.0, -1.0);
        let inv = a.inv();
        let prod = a * inv;
        assert!((prod.re - 1.0).abs() < 1e-15);
        assert!(prod.im.abs() < 1e-15);
        let b = c(0.5, 3.0);
        let q = b.div(a);
        let back = q * a;
        assert!((back.re - b.re).abs() < 1e-14);
        assert!((back.im - b.im).abs() < 1e-14);
    }

    #[test]
    fn mul_add_matches_composed_ops() {
        let a = c(1.0, 2.0);
        let b = c(3.0, -4.0);
        let d = c(-0.5, 0.25);
        let fused = a.mul_add(b, d);
        let loose = a * b + d;
        assert!((fused.re - loose.re).abs() < 1e-14);
        assert!((fused.im - loose.im).abs() < 1e-14);
        let fusedc = a.conj_mul_add(b, d);
        let loosec = a.conj() * b + d;
        assert!((fusedc.re - loosec.re).abs() < 1e-14);
        assert!((fusedc.im - loosec.im).abs() < 1e-14);
    }

    #[test]
    fn cast_between_precisions() {
        let a = c(1.0 / 3.0, -2.0 / 7.0);
        let s: C32 = a.cast();
        let back: C64 = s.cast();
        assert!((back.re - a.re).abs() < 1e-7);
        assert!((back.im - a.im).abs() < 1e-7);
    }

    #[test]
    fn scale_by_real() {
        let a = c(1.0, -2.0);
        assert_eq!(a.scale(2.0), c(2.0, -4.0));
    }
}
