//! The clover term: a local 12×12 Hermitian matrix per site, packed into
//! 72 real numbers.
//!
//! In a chiral basis the matrix `A = 1 + (c_sw/2) σ_{μν} F_{μν}` is block
//! diagonal in chirality: two Hermitian 6×6 blocks over (2 spins ⊗ 3 colors).
//! Each block is fully described by 6 real diagonal entries + 15 complex
//! lower-triangle entries = 36 reals — hence the paper's "72 real numbers"
//! (Section II, footnote 1).
//!
//! The even-odd preconditioned operator also needs `(4 + m + A)⁻¹` on one
//! parity; the inverse of a block is computed with a dense Hermitian solve
//! and stored in the same packed form.

use crate::complex::{Complex, C64};
use crate::gamma::{mat4_adjoint, nr_transform, Mat4};
use crate::real::Real;
use crate::spinor::Spinor;

/// Dimension of one chiral block (2 spins × 3 colors).
pub const BLOCK_DIM: usize = 6;
/// Number of packed reals per site (two blocks × 36).
pub const CLOVER_REALS: usize = 72;
/// Off-diagonal complex entries per block: 6·5/2.
pub const BLOCK_OFFDIAG: usize = 15;

/// One packed Hermitian 6×6 block: real diagonal + lower triangle.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct CloverBlock<T> {
    /// Real diagonal entries.
    pub diag: [T; BLOCK_DIM],
    /// Lower-triangle entries `(i > j)` in row-major order:
    /// (1,0), (2,0), (2,1), (3,0), ...
    pub offdiag: [Complex<T>; BLOCK_OFFDIAG],
}

/// Index of `(i, j)` with `i > j` in the packed lower triangle.
#[inline(always)]
pub fn tri_index(i: usize, j: usize) -> usize {
    debug_assert!(i > j && i < BLOCK_DIM);
    i * (i - 1) / 2 + j
}

impl<T: Real> CloverBlock<T> {
    /// The identity block.
    pub fn identity() -> Self {
        CloverBlock { diag: [T::ONE; BLOCK_DIM], offdiag: [Complex::zero(); BLOCK_OFFDIAG] }
    }

    /// Element `(i, j)` of the full Hermitian matrix.
    pub fn get(&self, i: usize, j: usize) -> Complex<T> {
        if i == j {
            Complex::from_real(self.diag[i])
        } else if i > j {
            self.offdiag[tri_index(i, j)]
        } else {
            self.offdiag[tri_index(j, i)].conj()
        }
    }

    /// Build from a dense Hermitian 6×6 (f64) matrix. Asymmetric parts are
    /// averaged away; the diagonal imaginary part is dropped.
    pub fn from_dense(m: &[[C64; BLOCK_DIM]; BLOCK_DIM]) -> Self {
        let mut b =
            CloverBlock { diag: [T::ZERO; BLOCK_DIM], offdiag: [Complex::zero(); BLOCK_OFFDIAG] };
        for i in 0..BLOCK_DIM {
            b.diag[i] = T::from_f64(m[i][i].re);
            for j in 0..i {
                let avg = (m[i][j] + m[j][i].conj()).scale(0.5);
                b.offdiag[tri_index(i, j)] = Complex::new(T::from_f64(avg.re), T::from_f64(avg.im));
            }
        }
        b
    }

    /// Expand to a dense f64 matrix.
    pub fn to_dense(&self) -> [[C64; BLOCK_DIM]; BLOCK_DIM] {
        let mut m = [[C64::zero(); BLOCK_DIM]; BLOCK_DIM];
        for i in 0..BLOCK_DIM {
            for j in 0..BLOCK_DIM {
                m[i][j] = self.get(i, j).cast();
            }
        }
        m
    }

    /// Matrix-vector product on a 6-component complex vector.
    #[inline]
    pub fn mul_vec(&self, v: &[Complex<T>; BLOCK_DIM]) -> [Complex<T>; BLOCK_DIM] {
        let mut out = [Complex::zero(); BLOCK_DIM];
        for i in 0..BLOCK_DIM {
            let mut acc = v[i].scale(self.diag[i]);
            for j in 0..BLOCK_DIM {
                if j == i {
                    continue;
                }
                acc = self.get(i, j).mul_add(v[j], acc);
            }
            out[i] = acc;
        }
        out
    }

    /// Add `shift` to the diagonal (builds `4 + m + A` from `A`).
    pub fn shifted(&self, shift: T) -> Self {
        let mut out = *self;
        for d in out.diag.iter_mut() {
            *d += shift;
        }
        out
    }

    /// Invert via Gaussian elimination with partial pivoting in f64.
    ///
    /// Returns `None` if the block is numerically singular.
    pub fn invert(&self) -> Option<Self> {
        let a = self.to_dense();
        let inv = invert_dense6(&a)?;
        Some(Self::from_dense(&inv))
    }

    /// Precision cast.
    pub fn cast<U: Real>(&self) -> CloverBlock<U> {
        let mut out =
            CloverBlock { diag: [U::ZERO; BLOCK_DIM], offdiag: [Complex::zero(); BLOCK_OFFDIAG] };
        for i in 0..BLOCK_DIM {
            out.diag[i] = U::from_f64(self.diag[i].to_f64());
        }
        for k in 0..BLOCK_OFFDIAG {
            out.offdiag[k] = self.offdiag[k].cast();
        }
        out
    }

    /// Sup-norm over the packed reals (for half-precision normalization).
    pub fn max_abs(&self) -> f64 {
        let mut m = self.diag.iter().map(|d| d.to_f64().abs()).fold(0.0, f64::max);
        for z in &self.offdiag {
            m = m.max(z.re.to_f64().abs()).max(z.im.to_f64().abs());
        }
        m
    }

    /// Flatten to 36 reals (diag then offdiag pairs).
    pub fn to_reals(&self) -> [T; 36] {
        let mut out = [T::ZERO; 36];
        out[..BLOCK_DIM].copy_from_slice(&self.diag);
        for k in 0..BLOCK_OFFDIAG {
            out[BLOCK_DIM + 2 * k] = self.offdiag[k].re;
            out[BLOCK_DIM + 2 * k + 1] = self.offdiag[k].im;
        }
        out
    }

    /// Inverse of [`CloverBlock::to_reals`].
    pub fn from_reals(r: &[T]) -> Self {
        assert!(r.len() >= 36);
        let mut b =
            CloverBlock { diag: [T::ZERO; BLOCK_DIM], offdiag: [Complex::zero(); BLOCK_OFFDIAG] };
        b.diag.copy_from_slice(&r[..BLOCK_DIM]);
        for k in 0..BLOCK_OFFDIAG {
            b.offdiag[k] = Complex::new(r[BLOCK_DIM + 2 * k], r[BLOCK_DIM + 2 * k + 1]);
        }
        b
    }
}

/// Dense complex 6×6 inverse (Gauss-Jordan with partial pivoting).
fn invert_dense6(a: &[[C64; BLOCK_DIM]; BLOCK_DIM]) -> Option<[[C64; BLOCK_DIM]; BLOCK_DIM]> {
    let n = BLOCK_DIM;
    let mut aug = [[C64::zero(); 2 * BLOCK_DIM]; BLOCK_DIM];
    for i in 0..n {
        aug[i][..n].copy_from_slice(&a[i]);
        aug[i][n + i] = C64::one();
    }
    for col in 0..n {
        // Pivot.
        let mut best = col;
        let mut best_mag = aug[col][col].norm_sqr();
        for row in (col + 1)..n {
            let mag = aug[row][col].norm_sqr();
            if mag > best_mag {
                best = row;
                best_mag = mag;
            }
        }
        if best_mag < 1e-28 {
            return None;
        }
        aug.swap(col, best);
        let pivot_inv = aug[col][col].inv();
        for k in 0..2 * n {
            aug[col][k] *= pivot_inv;
        }
        for row in 0..n {
            if row == col {
                continue;
            }
            let factor = aug[row][col];
            if factor.norm_sqr() == 0.0 {
                continue;
            }
            for k in 0..2 * n {
                aug[row][k] -= factor * aug[col][k];
            }
        }
    }
    let mut out = [[C64::zero(); BLOCK_DIM]; BLOCK_DIM];
    for i in 0..n {
        out[i].copy_from_slice(&aug[i][n..]);
    }
    Some(out)
}

/// The packed per-site clover term: two chiral blocks, 72 reals total.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct CloverSite<T> {
    /// Upper (chirality +) and lower (chirality −) blocks, in the
    /// DeGrand-Rossi chiral spin ordering: block 0 = spins {0,1},
    /// block 1 = spins {2,3}.
    pub block: [CloverBlock<T>; 2],
}

impl<T: Real> CloverSite<T> {
    /// The identity clover term (free field).
    pub fn identity() -> Self {
        CloverSite { block: [CloverBlock::identity(); 2] }
    }

    /// Apply to a spinor expressed in the **chiral** basis.
    pub fn apply_chiral(&self, psi: &Spinor<T>) -> Spinor<T> {
        let mut out = Spinor::zero();
        for (b, base_spin) in [(0usize, 0usize), (1, 2)] {
            let mut v = [Complex::zero(); BLOCK_DIM];
            for sp in 0..2 {
                for co in 0..3 {
                    v[sp * 3 + co] = psi.s[base_spin + sp].c[co];
                }
            }
            let w = self.block[b].mul_vec(&v);
            for sp in 0..2 {
                for co in 0..3 {
                    out.s[base_spin + sp].c[co] = w[sp * 3 + co];
                }
            }
        }
        out
    }

    /// Add `shift` to both diagonals (builds `(4+m) + A`).
    pub fn shifted(&self, shift: T) -> Self {
        CloverSite { block: [self.block[0].shifted(shift), self.block[1].shifted(shift)] }
    }

    /// Invert both blocks.
    pub fn invert(&self) -> Option<Self> {
        Some(CloverSite { block: [self.block[0].invert()?, self.block[1].invert()?] })
    }

    /// Precision cast.
    pub fn cast<U: Real>(&self) -> CloverSite<U> {
        CloverSite { block: [self.block[0].cast(), self.block[1].cast()] }
    }

    /// Sup-norm over the 72 packed reals.
    pub fn max_abs(&self) -> f64 {
        self.block[0].max_abs().max(self.block[1].max_abs())
    }

    /// Flatten to the canonical 72-real layout.
    pub fn to_reals(&self) -> [T; CLOVER_REALS] {
        let mut out = [T::ZERO; CLOVER_REALS];
        out[..36].copy_from_slice(&self.block[0].to_reals());
        out[36..].copy_from_slice(&self.block[1].to_reals());
        out
    }

    /// Inverse of [`CloverSite::to_reals`].
    pub fn from_reals(r: &[T]) -> Self {
        assert!(r.len() >= CLOVER_REALS);
        CloverSite {
            block: [CloverBlock::from_reals(&r[..36]), CloverBlock::from_reals(&r[36..72])],
        }
    }
}

/// Cached spin-basis conversion matrices for applying a (chirally packed)
/// clover term to spinors stored in the non-relativistic basis.
///
/// `A_NR ψ = S (A_chiral (S† ψ))` where `S` is [`nr_transform`].
#[derive(Clone, Debug)]
pub struct CloverBasisMap {
    /// `S` (chiral → NR).
    pub s: Mat4,
    /// `S†` (NR → chiral).
    pub s_dag: Mat4,
}

impl Default for CloverBasisMap {
    fn default() -> Self {
        Self::new()
    }
}

impl CloverBasisMap {
    /// Build the transform pair.
    pub fn new() -> Self {
        let s = nr_transform();
        let s_dag = mat4_adjoint(&s);
        CloverBasisMap { s, s_dag }
    }

    /// Apply a clover site term to a spinor given in the NR basis.
    pub fn apply_nr<T: Real>(&self, a: &CloverSite<T>, psi: &Spinor<T>) -> Spinor<T> {
        let chi = crate::gamma::mat4_apply(&self.s_dag, psi);
        let achi = a.apply_chiral(&chi);
        crate::gamma::mat4_apply(&self.s, &achi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::{mat4_apply, mat4_identity, mat4_max_diff, mat4_mul};

    fn sample_block() -> CloverBlock<f64> {
        let mut b = CloverBlock::identity();
        for i in 0..BLOCK_DIM {
            b.diag[i] = 1.0 + 0.1 * i as f64;
        }
        for k in 0..BLOCK_OFFDIAG {
            b.offdiag[k] = C64::new(0.03 * k as f64 - 0.1, 0.02 * (k % 5) as f64);
        }
        b
    }

    fn sample_spinor() -> Spinor<f64> {
        let mut sp = Spinor::zero();
        for s in 0..4 {
            for co in 0..3 {
                sp.s[s].c[co] = C64::new(0.2 * s as f64 + 0.1, -0.3 * co as f64 + 0.05);
            }
        }
        sp
    }

    #[test]
    fn tri_index_covers_lower_triangle() {
        let mut seen = [false; BLOCK_OFFDIAG];
        for i in 0..BLOCK_DIM {
            for j in 0..i {
                let k = tri_index(i, j);
                assert!(!seen[k]);
                seen[k] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn dense_roundtrip_is_hermitian() {
        let b = sample_block();
        let d = b.to_dense();
        for i in 0..BLOCK_DIM {
            for j in 0..BLOCK_DIM {
                assert!((d[i][j].re - d[j][i].re).abs() < 1e-15);
                assert!((d[i][j].im + d[j][i].im).abs() < 1e-15);
            }
        }
        let back = CloverBlock::<f64>::from_dense(&d);
        assert_eq!(back, b);
    }

    #[test]
    fn packed_site_is_72_reals() {
        let site = CloverSite { block: [sample_block(), sample_block().shifted(0.5)] };
        let r = site.to_reals();
        assert_eq!(r.len(), CLOVER_REALS);
        assert_eq!(CloverSite::from_reals(&r), site);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let b = sample_block();
        let d = b.to_dense();
        let v: [C64; 6] = std::array::from_fn(|i| C64::new(0.1 * i as f64, 1.0 - 0.2 * i as f64));
        let fast = b.mul_vec(&v);
        for i in 0..BLOCK_DIM {
            let mut acc = C64::zero();
            for j in 0..BLOCK_DIM {
                acc += d[i][j] * v[j];
            }
            assert!((fast[i].re - acc.re).abs() < 1e-13);
            assert!((fast[i].im - acc.im).abs() < 1e-13);
        }
    }

    #[test]
    fn invert_gives_inverse() {
        let b = sample_block().shifted(4.0); // well-conditioned
        let inv = b.invert().unwrap();
        let v: [C64; 6] = std::array::from_fn(|i| C64::new(1.0 - 0.11 * i as f64, 0.07 * i as f64));
        let w = inv.mul_vec(&b.mul_vec(&v));
        for i in 0..BLOCK_DIM {
            assert!((w[i].re - v[i].re).abs() < 1e-10);
            assert!((w[i].im - v[i].im).abs() < 1e-10);
        }
    }

    #[test]
    fn singular_block_returns_none() {
        let mut b = CloverBlock::<f64>::identity();
        b.diag = [0.0; BLOCK_DIM];
        assert!(b.invert().is_none());
    }

    #[test]
    fn identity_clover_is_identity_map() {
        let a = CloverSite::<f64>::identity();
        let psi = sample_spinor();
        assert!((a.apply_chiral(&psi) - psi).norm_sqr() < 1e-28);
        let map = CloverBasisMap::new();
        assert!((map.apply_nr(&a, &psi) - psi).norm_sqr() < 1e-24);
    }

    #[test]
    fn apply_is_hermitian_operator() {
        // <x, A y> = <A x, y> for the site operator.
        let a = CloverSite { block: [sample_block(), sample_block().shifted(-0.2)] };
        let x = sample_spinor();
        let mut y = sample_spinor();
        y.s[1].c[2] = C64::new(-1.0, 0.7);
        let lhs = x.dot(&a.apply_chiral(&y));
        let rhs = a.apply_chiral(&x).dot(&y);
        assert!((lhs.re - rhs.re).abs() < 1e-12);
        assert!((lhs.im - rhs.im).abs() < 1e-12);
    }

    #[test]
    fn nr_application_is_similarity_transform() {
        // A_NR = S A_chiral S† as dense spin-color operators, checked on
        // basis spinors.
        let a = CloverSite { block: [sample_block(), sample_block()] };
        let map = CloverBasisMap::new();
        // S S† = 1.
        let prod = mat4_mul(&map.s, &map.s_dag);
        assert!(mat4_max_diff(&prod, &mat4_identity()) < 1e-12);
        // Direct check: applying in NR basis equals conjugated application.
        let psi = sample_spinor();
        let via_map = map.apply_nr(&a, &psi);
        let chi = mat4_apply(&map.s_dag, &psi);
        let expect = mat4_apply(&map.s, &a.apply_chiral(&chi));
        assert!((via_map - expect).norm_sqr() < 1e-24);
    }

    #[test]
    fn shifted_adds_to_diagonal_only() {
        let b = sample_block();
        let s = b.shifted(2.5);
        for i in 0..BLOCK_DIM {
            assert_eq!(s.diag[i], b.diag[i] + 2.5);
        }
        assert_eq!(s.offdiag, b.offdiag);
    }

    #[test]
    fn cast_roundtrip() {
        let b = sample_block();
        let lo: CloverBlock<f32> = b.cast();
        let hi: CloverBlock<f64> = lo.cast();
        for i in 0..BLOCK_DIM {
            assert!((hi.diag[i] - b.diag[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn max_abs_bounds_all_entries() {
        let site = CloverSite { block: [sample_block(), sample_block().shifted(3.0)] };
        let m = site.max_abs();
        for r in site.to_reals() {
            assert!(r.abs() <= m);
        }
    }
}
