//! 3-component color vectors — the SU(3) fundamental representation.

use crate::complex::Complex;
use crate::real::Real;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A color vector: 3 complex components (6 reals).
///
/// One spin component of a color-spinor. The Wilson-clover stencil spends
/// most of its arithmetic multiplying these by SU(3) link matrices.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
#[repr(C)]
pub struct ColorVec<T> {
    /// Components indexed by color.
    pub c: [Complex<T>; 3],
}

impl<T: Real> ColorVec<T> {
    /// The zero vector.
    pub fn zero() -> Self {
        ColorVec { c: [Complex::zero(); 3] }
    }

    /// Construct from components.
    pub fn new(c0: Complex<T>, c1: Complex<T>, c2: Complex<T>) -> Self {
        ColorVec { c: [c0, c1, c2] }
    }

    /// Basis vector with a 1 in color slot `i`.
    pub fn basis(i: usize) -> Self {
        let mut v = Self::zero();
        v.c[i] = Complex::one();
        v
    }

    /// Squared 2-norm, accumulated in f64 as the reduction kernels do.
    pub fn norm_sqr(&self) -> f64 {
        self.c.iter().map(|z| z.norm_sqr().to_f64()).sum()
    }

    /// Hermitian inner product `⟨self, rhs⟩ = Σ conj(self_i) rhs_i` in f64.
    pub fn dot(&self, rhs: &Self) -> Complex<f64> {
        let mut acc = Complex::<f64>::zero();
        for i in 0..3 {
            acc += self.c[i].cast::<f64>().conj() * rhs.c[i].cast::<f64>();
        }
        acc
    }

    /// Multiply every component by a complex scalar.
    #[inline(always)]
    pub fn scale(&self, s: Complex<T>) -> Self {
        ColorVec { c: [self.c[0] * s, self.c[1] * s, self.c[2] * s] }
    }

    /// Multiply every component by a real scalar.
    #[inline(always)]
    pub fn scale_re(&self, s: T) -> Self {
        ColorVec { c: [self.c[0].scale(s), self.c[1].scale(s), self.c[2].scale(s)] }
    }

    /// Multiply every component by `i`.
    #[inline(always)]
    pub fn mul_i(&self) -> Self {
        ColorVec { c: [self.c[0].mul_i(), self.c[1].mul_i(), self.c[2].mul_i()] }
    }

    /// Multiply every component by `-i`.
    #[inline(always)]
    pub fn mul_neg_i(&self) -> Self {
        ColorVec { c: [self.c[0].mul_neg_i(), self.c[1].mul_neg_i(), self.c[2].mul_neg_i()] }
    }

    /// Largest absolute value over the 6 real components (half-precision
    /// normalization uses the per-spinor maximum).
    pub fn max_abs(&self) -> f64 {
        self.c.iter().flat_map(|z| [z.re.to_f64().abs(), z.im.to_f64().abs()]).fold(0.0, f64::max)
    }

    /// Precision cast.
    pub fn cast<U: Real>(&self) -> ColorVec<U> {
        ColorVec { c: [self.c[0].cast(), self.c[1].cast(), self.c[2].cast()] }
    }
}

impl<T: Real> Add for ColorVec<T> {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        ColorVec { c: [self.c[0] + rhs.c[0], self.c[1] + rhs.c[1], self.c[2] + rhs.c[2]] }
    }
}

impl<T: Real> Sub for ColorVec<T> {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        ColorVec { c: [self.c[0] - rhs.c[0], self.c[1] - rhs.c[1], self.c[2] - rhs.c[2]] }
    }
}

impl<T: Real> Neg for ColorVec<T> {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        ColorVec { c: [-self.c[0], -self.c[1], -self.c[2]] }
    }
}

impl<T: Real> AddAssign for ColorVec<T> {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<T: Real> SubAssign for ColorVec<T> {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<T: Real> Mul<Complex<T>> for ColorVec<T> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Complex<T>) -> Self {
        self.scale(rhs)
    }
}

impl<T> Index<usize> for ColorVec<T> {
    type Output = Complex<T>;
    #[inline(always)]
    fn index(&self, i: usize) -> &Complex<T> {
        &self.c[i]
    }
}

impl<T> IndexMut<usize> for ColorVec<T> {
    #[inline(always)]
    fn index_mut(&mut self, i: usize) -> &mut Complex<T> {
        &mut self.c[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::C64;

    fn v(xs: [(f64, f64); 3]) -> ColorVec<f64> {
        ColorVec::new(
            C64::new(xs[0].0, xs[0].1),
            C64::new(xs[1].0, xs[1].1),
            C64::new(xs[2].0, xs[2].1),
        )
    }

    #[test]
    fn vector_space_axioms() {
        let a = v([(1.0, 2.0), (0.0, -1.0), (3.0, 0.5)]);
        let b = v([(-1.0, 0.0), (2.0, 2.0), (0.0, 0.0)]);
        assert_eq!(a + b, b + a);
        assert_eq!(a - a, ColorVec::zero());
        assert_eq!(-a + a, ColorVec::zero());
        assert_eq!(a.scale(C64::one()), a);
    }

    #[test]
    fn norm_and_dot_consistency() {
        let a = v([(1.0, 0.0), (0.0, 2.0), (2.0, 1.0)]);
        // |a|^2 = <a, a>
        let d = a.dot(&a);
        assert!((d.re - a.norm_sqr()).abs() < 1e-14);
        assert!(d.im.abs() < 1e-14);
        assert_eq!(a.norm_sqr(), 1.0 + 4.0 + 5.0);
    }

    #[test]
    fn dot_is_sesquilinear() {
        let a = v([(1.0, 1.0), (2.0, 0.0), (0.0, -1.0)]);
        let b = v([(0.5, -0.5), (1.0, 1.0), (3.0, 0.0)]);
        let s = C64::new(2.0, -3.0);
        // <a, s b> = s <a, b>
        let lhs = a.dot(&b.scale(s));
        let rhs = a.dot(&b) * s;
        assert!((lhs.re - rhs.re).abs() < 1e-12);
        assert!((lhs.im - rhs.im).abs() < 1e-12);
        // <s a, b> = conj(s) <a, b>
        let lhs2 = a.scale(s).dot(&b);
        let rhs2 = a.dot(&b) * s.conj();
        assert!((lhs2.re - rhs2.re).abs() < 1e-12);
        assert!((lhs2.im - rhs2.im).abs() < 1e-12);
    }

    #[test]
    fn basis_vectors_orthonormal() {
        for i in 0..3 {
            for j in 0..3 {
                let d = ColorVec::<f64>::basis(i).dot(&ColorVec::basis(j));
                let expect = if i == j { 1.0 } else { 0.0 };
                assert_eq!(d.re, expect);
                assert_eq!(d.im, 0.0);
            }
        }
    }

    #[test]
    fn mul_i_rotations() {
        let a = v([(1.0, 2.0), (-1.0, 0.5), (0.0, 3.0)]);
        assert_eq!(a.mul_i().mul_neg_i(), a);
        assert_eq!(a.mul_i().mul_i(), -a);
    }

    #[test]
    fn max_abs_finds_largest_component() {
        let a = v([(1.0, -7.0), (2.0, 0.0), (0.0, 3.0)]);
        assert_eq!(a.max_abs(), 7.0);
    }
}
