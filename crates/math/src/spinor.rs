//! Color-spinors: the per-site degrees of freedom of a quark field.
//!
//! A (full) spinor has 4 spin × 3 color complex components = 24 reals.
//! A half spinor — the result of applying a spin projector `P±μ` — has only
//! 2 independent spin components (12 reals), which is why only 12 numbers per
//! face site ever cross the network (Section VI-C, footnote 3).

use crate::colorvec::ColorVec;
use crate::complex::Complex;
use crate::real::Real;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// Number of real components in a full spinor.
pub const SPINOR_REALS: usize = 24;
/// Number of real components in a projected half spinor.
pub const HALF_SPINOR_REALS: usize = 12;

/// A full color-spinor: 4 spin components, each a [`ColorVec`].
#[derive(Copy, Clone, Debug, Default, PartialEq)]
#[repr(C)]
pub struct Spinor<T> {
    /// Spin components.
    pub s: [ColorVec<T>; 4],
}

impl<T: Real> Spinor<T> {
    /// The zero spinor.
    pub fn zero() -> Self {
        Spinor { s: [ColorVec::zero(); 4] }
    }

    /// A point source: 1 in spin `spin`, color `color`.
    pub fn point(spin: usize, color: usize) -> Self {
        let mut p = Self::zero();
        p.s[spin].c[color] = Complex::one();
        p
    }

    /// Squared 2-norm over all 24 reals, accumulated in f64.
    pub fn norm_sqr(&self) -> f64 {
        self.s.iter().map(ColorVec::norm_sqr).sum()
    }

    /// Hermitian inner product in f64.
    pub fn dot(&self, rhs: &Self) -> Complex<f64> {
        let mut acc = Complex::zero();
        for i in 0..4 {
            acc += self.s[i].dot(&rhs.s[i]);
        }
        acc
    }

    /// Scale by a complex scalar.
    pub fn scale(&self, z: Complex<T>) -> Self {
        Spinor {
            s: [self.s[0].scale(z), self.s[1].scale(z), self.s[2].scale(z), self.s[3].scale(z)],
        }
    }

    /// Scale by a real scalar.
    pub fn scale_re(&self, a: T) -> Self {
        Spinor {
            s: [
                self.s[0].scale_re(a),
                self.s[1].scale_re(a),
                self.s[2].scale_re(a),
                self.s[3].scale_re(a),
            ],
        }
    }

    /// Largest absolute value among the 24 real components — the shared
    /// normalization factor of the half-precision storage format.
    pub fn max_abs(&self) -> f64 {
        self.s.iter().map(ColorVec::max_abs).fold(0.0, f64::max)
    }

    /// Precision cast.
    pub fn cast<U: Real>(&self) -> Spinor<U> {
        Spinor { s: [self.s[0].cast(), self.s[1].cast(), self.s[2].cast(), self.s[3].cast()] }
    }

    /// View as a flat array of 24 reals in (spin, color, re/im) order —
    /// the "internal index n" of the field-layout equations (Eqs. 3-5).
    pub fn to_reals(&self) -> [T; SPINOR_REALS] {
        let mut out = [T::ZERO; SPINOR_REALS];
        let mut k = 0;
        for sp in 0..4 {
            for co in 0..3 {
                out[k] = self.s[sp].c[co].re;
                out[k + 1] = self.s[sp].c[co].im;
                k += 2;
            }
        }
        out
    }

    /// Inverse of [`Spinor::to_reals`].
    pub fn from_reals(r: &[T]) -> Self {
        assert!(r.len() >= SPINOR_REALS);
        let mut out = Self::zero();
        let mut k = 0;
        for sp in 0..4 {
            for co in 0..3 {
                out.s[sp].c[co] = Complex::new(r[k], r[k + 1]);
                k += 2;
            }
        }
        out
    }
}

impl<T: Real> Add for Spinor<T> {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Spinor {
            s: [
                self.s[0] + rhs.s[0],
                self.s[1] + rhs.s[1],
                self.s[2] + rhs.s[2],
                self.s[3] + rhs.s[3],
            ],
        }
    }
}

impl<T: Real> Sub for Spinor<T> {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Spinor {
            s: [
                self.s[0] - rhs.s[0],
                self.s[1] - rhs.s[1],
                self.s[2] - rhs.s[2],
                self.s[3] - rhs.s[3],
            ],
        }
    }
}

impl<T: Real> Neg for Spinor<T> {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Spinor { s: [-self.s[0], -self.s[1], -self.s[2], -self.s[3]] }
    }
}

impl<T: Real> AddAssign for Spinor<T> {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<T: Real> SubAssign for Spinor<T> {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<T: Real> Mul<Complex<T>> for Spinor<T> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Complex<T>) -> Self {
        self.scale(rhs)
    }
}

impl<T> Index<usize> for Spinor<T> {
    type Output = ColorVec<T>;
    #[inline(always)]
    fn index(&self, i: usize) -> &ColorVec<T> {
        &self.s[i]
    }
}

impl<T> IndexMut<usize> for Spinor<T> {
    #[inline(always)]
    fn index_mut(&mut self, i: usize) -> &mut ColorVec<T> {
        &mut self.s[i]
    }
}

/// A projected half spinor: the 2 independent spin components that survive
/// a `P±μ` projection. This is the unit of face communication.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
#[repr(C)]
pub struct HalfSpinor<T> {
    /// The two independent spin components.
    pub h: [ColorVec<T>; 2],
}

impl<T: Real> HalfSpinor<T> {
    /// The zero half spinor.
    pub fn zero() -> Self {
        HalfSpinor { h: [ColorVec::zero(); 2] }
    }

    /// Flatten to 12 reals for transport.
    pub fn to_reals(&self) -> [T; HALF_SPINOR_REALS] {
        let mut out = [T::ZERO; HALF_SPINOR_REALS];
        let mut k = 0;
        for i in 0..2 {
            for co in 0..3 {
                out[k] = self.h[i].c[co].re;
                out[k + 1] = self.h[i].c[co].im;
                k += 2;
            }
        }
        out
    }

    /// Inverse of [`HalfSpinor::to_reals`].
    pub fn from_reals(r: &[T]) -> Self {
        assert!(r.len() >= HALF_SPINOR_REALS);
        let mut out = Self::zero();
        let mut k = 0;
        for i in 0..2 {
            for co in 0..3 {
                out.h[i].c[co] = Complex::new(r[k], r[k + 1]);
                k += 2;
            }
        }
        out
    }

    /// Precision cast.
    pub fn cast<U: Real>(&self) -> HalfSpinor<U> {
        HalfSpinor { h: [self.h[0].cast(), self.h[1].cast()] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::C64;

    fn sample() -> Spinor<f64> {
        let mut sp = Spinor::zero();
        for spin in 0..4 {
            for co in 0..3 {
                sp.s[spin].c[co] = C64::new((spin * 3 + co) as f64 * 0.1, -(co as f64) * 0.2);
            }
        }
        sp
    }

    #[test]
    fn reals_roundtrip() {
        let sp = sample();
        let r = sp.to_reals();
        assert_eq!(r.len(), 24);
        let back = Spinor::from_reals(&r);
        assert_eq!(back, sp);
    }

    #[test]
    fn half_spinor_reals_roundtrip() {
        let h = HalfSpinor { h: [sample().s[0], sample().s[2]] };
        let r = h.to_reals();
        assert_eq!(r.len(), 12);
        assert_eq!(HalfSpinor::from_reals(&r), h);
    }

    #[test]
    fn point_source_has_unit_norm() {
        for spin in 0..4 {
            for color in 0..3 {
                let p = Spinor::<f64>::point(spin, color);
                assert_eq!(p.norm_sqr(), 1.0);
            }
        }
    }

    #[test]
    fn norm_matches_dot() {
        let sp = sample();
        let d = sp.dot(&sp);
        assert!((d.re - sp.norm_sqr()).abs() < 1e-13);
        assert!(d.im.abs() < 1e-13);
    }

    #[test]
    fn linear_ops() {
        let a = sample();
        let b = a.scale_re(2.0);
        assert_eq!(a + a, b);
        assert_eq!(b - a, a);
        assert_eq!(-a + a, Spinor::zero());
        let z = C64::new(0.0, 1.0);
        let c = a.scale(z);
        assert!((c.norm_sqr() - a.norm_sqr()).abs() < 1e-13);
    }

    #[test]
    fn max_abs_is_sup_norm() {
        let mut sp = sample();
        sp.s[3].c[2] = C64::new(0.0, -42.0);
        assert_eq!(sp.max_abs(), 42.0);
    }

    #[test]
    fn cast_roundtrip() {
        let sp = sample();
        let lo: Spinor<f32> = sp.cast();
        let hi: Spinor<f64> = lo.cast();
        for spin in 0..4 {
            for co in 0..3 {
                assert!((hi.s[spin].c[co].re - sp.s[spin].c[co].re).abs() < 1e-6);
            }
        }
    }
}
