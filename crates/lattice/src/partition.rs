//! Domain decomposition across GPUs.
//!
//! The paper parallelizes "by only dividing the time dimension, with the
//! full extent of the spatial dimensions confined to a single GPU", slicing
//! T into N equal local extents ([`TimePartition`], Section VI-A). Ranks
//! are arranged on a periodic 1-d ring; rank `r` owns global time-slices
//! `[r·T/N, (r+1)·T/N)`.
//!
//! [`DecompPlan`] generalizes this to the multi-dimensional process grids
//! of the sequel paper (arXiv:1109.2935): up to `nx×ny×nz×nt` domains with
//! a periodic ring per partitioned dimension. A 1×1×1×N plan is exactly the
//! 1-d temporal slice.

use crate::geometry::{Coord, LatticeDims};

/// A 1-d temporal partition of a global lattice over `n_ranks` domains.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TimePartition {
    /// The full lattice.
    pub global: LatticeDims,
    /// Number of domains (GPUs).
    pub n_ranks: usize,
}

impl TimePartition {
    /// Create a partition; `T` must divide evenly by `n_ranks` and every
    /// local extent must stay even (for the checkerboard indexing).
    pub fn new(global: LatticeDims, n_ranks: usize) -> Self {
        assert!(n_ranks >= 1, "need at least one rank");
        assert!(global.t % n_ranks == 0, "T={} not divisible by n_ranks={}", global.t, n_ranks);
        let local_t = global.t / n_ranks;
        assert!(local_t >= 2 && local_t % 2 == 0, "local T extent {local_t} must be even and >= 2");
        TimePartition { global, n_ranks }
    }

    /// Local T extent `T/N`.
    #[inline(always)]
    pub fn local_t(&self) -> usize {
        self.global.t / self.n_ranks
    }

    /// The local lattice dimensions on every rank.
    pub fn local_dims(&self) -> LatticeDims {
        LatticeDims::new(self.global.x, self.global.y, self.global.z, self.local_t())
    }

    /// Local sites per rank: `V/N`.
    pub fn local_volume(&self) -> usize {
        self.global.volume() / self.n_ranks
    }

    /// Rank owning global time-slice `t`.
    #[inline(always)]
    pub fn rank_of_t(&self, t: usize) -> usize {
        debug_assert!(t < self.global.t);
        t / self.local_t()
    }

    /// Local time-slice of global `t` on its owning rank.
    #[inline(always)]
    pub fn local_t_of(&self, t: usize) -> usize {
        t % self.local_t()
    }

    /// Global time-slice of local slice `lt` on rank `rank`.
    #[inline(always)]
    pub fn global_t_of(&self, rank: usize, lt: usize) -> usize {
        debug_assert!(rank < self.n_ranks && lt < self.local_t());
        rank * self.local_t() + lt
    }

    /// Forward neighbor on the periodic rank ring.
    #[inline(always)]
    pub fn forward_rank(&self, rank: usize) -> usize {
        (rank + 1) % self.n_ranks
    }

    /// Backward neighbor on the periodic rank ring.
    #[inline(always)]
    pub fn backward_rank(&self, rank: usize) -> usize {
        (rank + self.n_ranks - 1) % self.n_ranks
    }

    /// Whether the domain boundaries are real (more than one rank). A
    /// single-rank "partition" keeps periodic wraps local.
    #[inline(always)]
    pub fn is_partitioned(&self) -> bool {
        self.n_ranks > 1
    }

    /// Face sites per parity exchanged with each neighbor: `Vs/2`.
    pub fn face_sites_cb(&self) -> usize {
        self.global.half_spatial_volume()
    }
}

/// A process grid decomposing a global lattice over up to four dimensions.
///
/// Rank `r` sits at grid coordinates `coords_of(r)` with the X grid
/// coordinate fastest, so a `[1, 1, 1, N]` plan numbers ranks exactly like
/// the 1-d [`TimePartition`] ring (`rank == ct`). Each partitioned
/// dimension forms an independent periodic ring; every local extent is
/// even and at least 2, which keeps local checkerboard parity equal to
/// global parity (all domain origins are even in every coordinate).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DecompPlan {
    global: LatticeDims,
    grid: [usize; 4],
}

impl DecompPlan {
    /// Create a plan; each `grid[d]` must divide the global extent of
    /// dimension `d` with an even local extent of at least 2.
    pub fn new(global: LatticeDims, grid: [usize; 4]) -> Self {
        Self::try_new(global, grid).unwrap_or_else(|e| panic!("invalid process grid: {e}"))
    }

    /// Fallible constructor used when enumerating candidate grids.
    pub fn try_new(global: LatticeDims, grid: [usize; 4]) -> Result<Self, String> {
        for (dim, &g) in grid.iter().enumerate() {
            if g < 1 {
                return Err(format!("grid[{dim}] must be >= 1"));
            }
            let extent = global.extent(dim);
            if extent % g != 0 {
                return Err(format!("extent {extent} of dim {dim} not divisible by {g}"));
            }
            let local = extent / g;
            if local < 2 || local % 2 != 0 {
                return Err(format!("local extent {local} of dim {dim} must be even and >= 2"));
            }
        }
        Ok(DecompPlan { global, grid })
    }

    /// The plan equivalent to a 1-d temporal partition.
    pub fn from_time(part: &TimePartition) -> Self {
        DecompPlan { global: part.global, grid: [1, 1, 1, part.n_ranks] }
    }

    /// The full lattice.
    #[inline(always)]
    pub fn global(&self) -> LatticeDims {
        self.global
    }

    /// The process-grid extents `[nx, ny, nz, nt]`.
    #[inline(always)]
    pub fn grid(&self) -> [usize; 4] {
        self.grid
    }

    /// Total number of ranks (domains) in the grid.
    pub fn n_ranks(&self) -> usize {
        self.grid.iter().product()
    }

    /// The local lattice dimensions on every rank.
    pub fn local_dims(&self) -> LatticeDims {
        LatticeDims::new(
            self.global.x / self.grid[0],
            self.global.y / self.grid[1],
            self.global.z / self.grid[2],
            self.global.t / self.grid[3],
        )
    }

    /// Local extent of dimension `dim`.
    #[inline(always)]
    pub fn local_extent(&self, dim: usize) -> usize {
        self.global.extent(dim) / self.grid[dim]
    }

    /// Grid coordinates of `rank` (X fastest).
    pub fn coords_of(&self, rank: usize) -> [usize; 4] {
        debug_assert!(rank < self.n_ranks());
        let [gx, gy, gz, _] = self.grid;
        [rank % gx, rank / gx % gy, rank / (gx * gy) % gz, rank / (gx * gy * gz)]
    }

    /// Rank at grid coordinates `c` (inverse of [`DecompPlan::coords_of`]).
    pub fn rank_of(&self, c: [usize; 4]) -> usize {
        let [gx, gy, gz, _] = self.grid;
        c[0] + gx * (c[1] + gy * (c[2] + gz * c[3]))
    }

    /// Neighbor of `rank` one step along `dim` on that dimension's
    /// periodic ring.
    pub fn neighbor(&self, rank: usize, dim: usize, forward: bool) -> usize {
        let mut c = self.coords_of(rank);
        let g = self.grid[dim];
        c[dim] = if forward { (c[dim] + 1) % g } else { (c[dim] + g - 1) % g };
        self.rank_of(c)
    }

    /// Global coordinate of the local origin (site (0,0,0,0)) of `rank`.
    /// Every component is even, so local parity equals global parity.
    pub fn origin(&self, rank: usize) -> Coord {
        let c = self.coords_of(rank);
        Coord::new(
            c[0] * self.local_extent(0),
            c[1] * self.local_extent(1),
            c[2] * self.local_extent(2),
            c[3] * self.local_extent(3),
        )
    }

    /// Global coordinate of local site `local` on `rank`.
    pub fn global_coord(&self, rank: usize, local: Coord) -> Coord {
        let o = self.origin(rank);
        Coord::new(o.x + local.x, o.y + local.y, o.z + local.z, o.t + local.t)
    }

    /// Whether dimension `dim` has real domain boundaries (ghost exchange
    /// needed). Single-domain dimensions keep periodic wraps local.
    #[inline(always)]
    pub fn open(&self, dim: usize) -> bool {
        self.grid[dim] > 1
    }

    /// The per-dimension open-boundary flags, X..T.
    pub fn open_dims(&self) -> [bool; 4] {
        [self.open(0), self.open(1), self.open(2), self.open(3)]
    }

    /// Partitioned dimensions in ascending order (the fixed exchange and
    /// exterior-update order of the 4-d driver).
    pub fn active_dims(&self) -> impl Iterator<Item = usize> + '_ {
        (0..4).filter(|&d| self.open(d))
    }

    /// Whether any dimension is partitioned.
    pub fn is_partitioned(&self) -> bool {
        self.n_ranks() > 1
    }

    /// Face sites per parity exchanged with each neighbor along `dim`:
    /// half the local boundary-slice volume.
    pub fn face_sites_cb(&self, dim: usize) -> usize {
        let ld = self.local_dims();
        ld.volume() / ld.extent(dim) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_partitions_are_valid() {
        // The configurations measured in Section VII.
        let big = LatticeDims::spatial_cube(32, 256);
        let small = LatticeDims::spatial_cube(24, 128);
        for n in [1usize, 2, 4, 8, 16, 32] {
            let p = TimePartition::new(big, n);
            assert_eq!(p.local_t() * n, 256);
            let q = TimePartition::new(small, n);
            assert_eq!(q.local_t() * n, 128);
        }
        // Weak scaling local volumes: 32^4 and 24^3x32 per GPU.
        assert_eq!(TimePartition::new(big, 8).local_dims(), LatticeDims::hypercubic(32));
        assert_eq!(TimePartition::new(small, 4).local_dims(), LatticeDims::new(24, 24, 24, 32));
    }

    #[test]
    fn rank_time_mapping_roundtrip() {
        let p = TimePartition::new(LatticeDims::new(4, 4, 4, 16), 4);
        for t in 0..16 {
            let r = p.rank_of_t(t);
            let lt = p.local_t_of(t);
            assert_eq!(p.global_t_of(r, lt), t);
        }
    }

    #[test]
    fn ring_topology() {
        let p = TimePartition::new(LatticeDims::new(4, 4, 4, 16), 4);
        assert_eq!(p.forward_rank(3), 0);
        assert_eq!(p.backward_rank(0), 3);
        for r in 0..4 {
            assert_eq!(p.backward_rank(p.forward_rank(r)), r);
        }
    }

    #[test]
    fn local_volume_sums_to_global() {
        let d = LatticeDims::new(8, 8, 8, 32);
        for n in [1, 2, 4, 8, 16] {
            let p = TimePartition::new(d, n);
            assert_eq!(p.local_volume() * n, d.volume());
        }
    }

    #[test]
    fn single_rank_is_unpartitioned() {
        let p = TimePartition::new(LatticeDims::new(4, 4, 4, 8), 1);
        assert!(!p.is_partitioned());
        assert!(TimePartition::new(LatticeDims::new(4, 4, 4, 8), 2).is_partitioned());
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_t_rejected() {
        TimePartition::new(LatticeDims::new(4, 4, 4, 10), 4);
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_local_t_rejected() {
        // T=12 over 6 ranks -> local T=2 ok; over 12 ranks -> local T=1 bad.
        TimePartition::new(LatticeDims::new(4, 4, 4, 12), 6);
        TimePartition::new(LatticeDims::new(4, 4, 4, 12), 12);
    }

    #[test]
    fn face_sites() {
        let p = TimePartition::new(LatticeDims::spatial_cube(24, 128), 8);
        assert_eq!(p.face_sites_cb(), 24 * 24 * 24 / 2);
    }

    #[test]
    fn one_d_plan_matches_time_partition() {
        let d = LatticeDims::new(8, 8, 8, 16);
        let part = TimePartition::new(d, 4);
        let plan = DecompPlan::from_time(&part);
        assert_eq!(plan, DecompPlan::new(d, [1, 1, 1, 4]));
        assert_eq!(plan.n_ranks(), 4);
        assert_eq!(plan.local_dims(), part.local_dims());
        assert_eq!(plan.face_sites_cb(3), part.face_sites_cb());
        for r in 0..4 {
            // Rank numbering and ring topology coincide with the 1-d ring.
            assert_eq!(plan.coords_of(r), [0, 0, 0, r]);
            assert_eq!(plan.neighbor(r, 3, true), part.forward_rank(r));
            assert_eq!(plan.neighbor(r, 3, false), part.backward_rank(r));
            assert_eq!(plan.origin(r), Coord::new(0, 0, 0, part.global_t_of(r, 0)));
        }
        assert_eq!(plan.active_dims().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn four_d_plan_coords_roundtrip_and_origins_are_even() {
        let d = LatticeDims::new(8, 8, 8, 16);
        let plan = DecompPlan::new(d, [2, 2, 2, 2]);
        assert_eq!(plan.n_ranks(), 16);
        assert_eq!(plan.local_dims(), LatticeDims::new(4, 4, 4, 8));
        for r in 0..16 {
            assert_eq!(plan.rank_of(plan.coords_of(r)), r);
            let o = plan.origin(r);
            for dim in 0..4 {
                assert_eq!(o.get(dim) % 2, 0, "odd origin breaks parity alignment");
                // Each dimension's ring is involutive.
                assert_eq!(plan.neighbor(plan.neighbor(r, dim, true), dim, false), r);
            }
        }
        assert_eq!(plan.active_dims().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        // X-face: half the YZT slice; T-face: half the spatial slice.
        assert_eq!(plan.face_sites_cb(0), 4 * 4 * 8 / 2);
        assert_eq!(plan.face_sites_cb(3), 4 * 4 * 4 / 2);
    }

    #[test]
    fn invalid_grids_are_rejected() {
        let d = LatticeDims::new(8, 8, 8, 16);
        assert!(DecompPlan::try_new(d, [3, 1, 1, 1]).is_err(), "3 does not divide 8");
        assert!(DecompPlan::try_new(d, [4, 1, 1, 1]).is_ok(), "local X extent 2 is fine");
        assert!(DecompPlan::try_new(d, [1, 1, 1, 8]).is_ok());
        assert!(DecompPlan::try_new(d, [8, 1, 1, 1]).is_err(), "local X extent 1 is odd");
        assert!(DecompPlan::try_new(d, [1, 1, 1, 16]).is_err(), "local T extent 1");
        assert!(DecompPlan::try_new(d, [0, 1, 1, 1]).is_err());
    }
}
