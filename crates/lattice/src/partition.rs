//! Temporal domain decomposition across GPUs (Section VI-A).
//!
//! The paper parallelizes "by only dividing the time dimension, with the
//! full extent of the spatial dimensions confined to a single GPU", slicing
//! T into N equal local extents. Ranks are arranged on a periodic 1-d ring;
//! rank `r` owns global time-slices `[r·T/N, (r+1)·T/N)`.

use crate::geometry::LatticeDims;

/// A 1-d temporal partition of a global lattice over `n_ranks` domains.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TimePartition {
    /// The full lattice.
    pub global: LatticeDims,
    /// Number of domains (GPUs).
    pub n_ranks: usize,
}

impl TimePartition {
    /// Create a partition; `T` must divide evenly by `n_ranks` and every
    /// local extent must stay even (for the checkerboard indexing).
    pub fn new(global: LatticeDims, n_ranks: usize) -> Self {
        assert!(n_ranks >= 1, "need at least one rank");
        assert!(global.t % n_ranks == 0, "T={} not divisible by n_ranks={}", global.t, n_ranks);
        let local_t = global.t / n_ranks;
        assert!(local_t >= 2 && local_t % 2 == 0, "local T extent {local_t} must be even and >= 2");
        TimePartition { global, n_ranks }
    }

    /// Local T extent `T/N`.
    #[inline(always)]
    pub fn local_t(&self) -> usize {
        self.global.t / self.n_ranks
    }

    /// The local lattice dimensions on every rank.
    pub fn local_dims(&self) -> LatticeDims {
        LatticeDims::new(self.global.x, self.global.y, self.global.z, self.local_t())
    }

    /// Local sites per rank: `V/N`.
    pub fn local_volume(&self) -> usize {
        self.global.volume() / self.n_ranks
    }

    /// Rank owning global time-slice `t`.
    #[inline(always)]
    pub fn rank_of_t(&self, t: usize) -> usize {
        debug_assert!(t < self.global.t);
        t / self.local_t()
    }

    /// Local time-slice of global `t` on its owning rank.
    #[inline(always)]
    pub fn local_t_of(&self, t: usize) -> usize {
        t % self.local_t()
    }

    /// Global time-slice of local slice `lt` on rank `rank`.
    #[inline(always)]
    pub fn global_t_of(&self, rank: usize, lt: usize) -> usize {
        debug_assert!(rank < self.n_ranks && lt < self.local_t());
        rank * self.local_t() + lt
    }

    /// Forward neighbor on the periodic rank ring.
    #[inline(always)]
    pub fn forward_rank(&self, rank: usize) -> usize {
        (rank + 1) % self.n_ranks
    }

    /// Backward neighbor on the periodic rank ring.
    #[inline(always)]
    pub fn backward_rank(&self, rank: usize) -> usize {
        (rank + self.n_ranks - 1) % self.n_ranks
    }

    /// Whether the domain boundaries are real (more than one rank). A
    /// single-rank "partition" keeps periodic wraps local.
    #[inline(always)]
    pub fn is_partitioned(&self) -> bool {
        self.n_ranks > 1
    }

    /// Face sites per parity exchanged with each neighbor: `Vs/2`.
    pub fn face_sites_cb(&self) -> usize {
        self.global.half_spatial_volume()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_partitions_are_valid() {
        // The configurations measured in Section VII.
        let big = LatticeDims::spatial_cube(32, 256);
        let small = LatticeDims::spatial_cube(24, 128);
        for n in [1usize, 2, 4, 8, 16, 32] {
            let p = TimePartition::new(big, n);
            assert_eq!(p.local_t() * n, 256);
            let q = TimePartition::new(small, n);
            assert_eq!(q.local_t() * n, 128);
        }
        // Weak scaling local volumes: 32^4 and 24^3x32 per GPU.
        assert_eq!(TimePartition::new(big, 8).local_dims(), LatticeDims::hypercubic(32));
        assert_eq!(TimePartition::new(small, 4).local_dims(), LatticeDims::new(24, 24, 24, 32));
    }

    #[test]
    fn rank_time_mapping_roundtrip() {
        let p = TimePartition::new(LatticeDims::new(4, 4, 4, 16), 4);
        for t in 0..16 {
            let r = p.rank_of_t(t);
            let lt = p.local_t_of(t);
            assert_eq!(p.global_t_of(r, lt), t);
        }
    }

    #[test]
    fn ring_topology() {
        let p = TimePartition::new(LatticeDims::new(4, 4, 4, 16), 4);
        assert_eq!(p.forward_rank(3), 0);
        assert_eq!(p.backward_rank(0), 3);
        for r in 0..4 {
            assert_eq!(p.backward_rank(p.forward_rank(r)), r);
        }
    }

    #[test]
    fn local_volume_sums_to_global() {
        let d = LatticeDims::new(8, 8, 8, 32);
        for n in [1, 2, 4, 8, 16] {
            let p = TimePartition::new(d, n);
            assert_eq!(p.local_volume() * n, d.volume());
        }
    }

    #[test]
    fn single_rank_is_unpartitioned() {
        let p = TimePartition::new(LatticeDims::new(4, 4, 4, 8), 1);
        assert!(!p.is_partitioned());
        assert!(TimePartition::new(LatticeDims::new(4, 4, 4, 8), 2).is_partitioned());
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_t_rejected() {
        TimePartition::new(LatticeDims::new(4, 4, 4, 10), 4);
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_local_t_rejected() {
        // T=12 over 6 ranks -> local T=2 ok; over 12 ranks -> local T=1 bad.
        TimePartition::new(LatticeDims::new(4, 4, 4, 12), 6);
        TimePartition::new(LatticeDims::new(4, 4, 4, 12), 12);
    }

    #[test]
    fn face_sites() {
        let p = TimePartition::new(LatticeDims::spatial_cube(24, 128), 8);
        assert_eq!(p.face_sites_cb(), 24 * 24 * 24 / 2);
    }
}
