//! 4-dimensional lattice geometry and even-odd (red-black) site ordering.
//!
//! Site coordinates are `(x, y, z, t)`; the linear ("lexicographic") index
//! runs x fastest and t slowest, matching the paper's Fig. 2 where the time
//! index runs slowest within a block so the two temporal faces are each
//! contiguous. Even-odd preconditioning reorders sites so that all sites of
//! one parity are contiguous; the checkerboard index used throughout the
//! solver is `cb = (x/2) + (X/2)·(y + Y·(z + Z·t))`.

use std::fmt;

/// Direction labels for the four dimensions.
pub const DIR_X: usize = 0;
/// Y direction index.
pub const DIR_Y: usize = 1;
/// Z direction index.
pub const DIR_Z: usize = 2;
/// T direction index — the one the multi-GPU decomposition slices.
pub const DIR_T: usize = 3;

/// Site parity for red-black (even-odd) preconditioning.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Parity {
    /// `(x+y+z+t) % 2 == 0`.
    Even,
    /// `(x+y+z+t) % 2 == 1`.
    Odd,
}

impl Parity {
    /// The opposite parity.
    #[inline(always)]
    pub fn other(self) -> Parity {
        match self {
            Parity::Even => Parity::Odd,
            Parity::Odd => Parity::Even,
        }
    }

    /// 0 for even, 1 for odd.
    #[inline(always)]
    pub fn as_usize(self) -> usize {
        match self {
            Parity::Even => 0,
            Parity::Odd => 1,
        }
    }

    /// Inverse of [`Parity::as_usize`].
    #[inline(always)]
    pub fn from_usize(p: usize) -> Parity {
        if p % 2 == 0 {
            Parity::Even
        } else {
            Parity::Odd
        }
    }
}

/// A site coordinate.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Spatial x.
    pub x: usize,
    /// Spatial y.
    pub y: usize,
    /// Spatial z.
    pub z: usize,
    /// Temporal t.
    pub t: usize,
}

impl Coord {
    /// Construct from components.
    pub fn new(x: usize, y: usize, z: usize, t: usize) -> Self {
        Coord { x, y, z, t }
    }

    /// Component by direction index.
    #[inline(always)]
    pub fn get(&self, dir: usize) -> usize {
        match dir {
            DIR_X => self.x,
            DIR_Y => self.y,
            DIR_Z => self.z,
            DIR_T => self.t,
            _ => panic!("direction out of range: {dir}"),
        }
    }

    /// Mutable component by direction index.
    #[inline(always)]
    pub fn get_mut(&mut self, dir: usize) -> &mut usize {
        match dir {
            DIR_X => &mut self.x,
            DIR_Y => &mut self.y,
            DIR_Z => &mut self.z,
            DIR_T => &mut self.t,
            _ => panic!("direction out of range: {dir}"),
        }
    }

    /// Site parity.
    #[inline(always)]
    pub fn parity(&self) -> Parity {
        Parity::from_usize(self.x + self.y + self.z + self.t)
    }
}

/// The extents of a 4-d lattice.
///
/// All four extents must be even (required both by even-odd preconditioning
/// and by the `x/2` checkerboard indexing), and ≥ 2.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct LatticeDims {
    /// X extent.
    pub x: usize,
    /// Y extent.
    pub y: usize,
    /// Z extent.
    pub z: usize,
    /// T extent.
    pub t: usize,
}

impl fmt::Display for LatticeDims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}x{}", self.x, self.y, self.z, self.t)
    }
}

impl LatticeDims {
    /// Construct, validating evenness.
    pub fn new(x: usize, y: usize, z: usize, t: usize) -> Self {
        assert!(
            x >= 2 && y >= 2 && z >= 2 && t >= 2,
            "lattice extents must be at least 2, got {x}x{y}x{z}x{t}"
        );
        assert!(
            x % 2 == 0 && y % 2 == 0 && z % 2 == 0 && t % 2 == 0,
            "lattice extents must be even for even-odd preconditioning, got {x}x{y}x{z}x{t}"
        );
        LatticeDims { x, y, z, t }
    }

    /// Symmetric lattice `L⁴`.
    pub fn hypercubic(l: usize) -> Self {
        Self::new(l, l, l, l)
    }

    /// `L³ × T` lattice — the shape of every volume in the paper.
    pub fn spatial_cube(l: usize, t: usize) -> Self {
        Self::new(l, l, l, t)
    }

    /// Extent along a direction index.
    #[inline(always)]
    pub fn extent(&self, dir: usize) -> usize {
        match dir {
            DIR_X => self.x,
            DIR_Y => self.y,
            DIR_Z => self.z,
            DIR_T => self.t,
            _ => panic!("direction out of range: {dir}"),
        }
    }

    /// Total number of sites `V`.
    #[inline(always)]
    pub fn volume(&self) -> usize {
        self.x * self.y * self.z * self.t
    }

    /// Spatial volume `Vs = X·Y·Z` — the padding unit of Eq. 5 and the face
    /// size of the temporal decomposition.
    #[inline(always)]
    pub fn spatial_volume(&self) -> usize {
        self.x * self.y * self.z
    }

    /// Sites of one parity: `V/2`.
    #[inline(always)]
    pub fn half_volume(&self) -> usize {
        self.volume() / 2
    }

    /// Spatial sites of one parity: `Vs/2`.
    #[inline(always)]
    pub fn half_spatial_volume(&self) -> usize {
        self.spatial_volume() / 2
    }

    /// Lexicographic index (x fastest, t slowest).
    #[inline(always)]
    pub fn lex_index(&self, c: Coord) -> usize {
        debug_assert!(c.x < self.x && c.y < self.y && c.z < self.z && c.t < self.t);
        c.x + self.x * (c.y + self.y * (c.z + self.z * c.t))
    }

    /// Inverse of [`LatticeDims::lex_index`].
    #[inline(always)]
    pub fn lex_coord(&self, mut i: usize) -> Coord {
        debug_assert!(i < self.volume());
        let x = i % self.x;
        i /= self.x;
        let y = i % self.y;
        i /= self.y;
        let z = i % self.z;
        let t = i / self.z;
        Coord { x, y, z, t }
    }

    /// Checkerboard index of a coordinate within its parity block:
    /// `cb = x/2 + (X/2)(y + Y(z + Z t))`.
    #[inline(always)]
    pub fn cb_index(&self, c: Coord) -> usize {
        (c.x / 2) + (self.x / 2) * (c.y + self.y * (c.z + self.z * c.t))
    }

    /// Reconstruct the coordinate from `(parity, cb)`.
    #[inline(always)]
    pub fn cb_coord(&self, parity: Parity, mut cb: usize) -> Coord {
        debug_assert!(cb < self.half_volume());
        let xh = cb % (self.x / 2);
        cb /= self.x / 2;
        let y = cb % self.y;
        cb /= self.y;
        let z = cb % self.z;
        let t = cb / self.z;
        let x = 2 * xh + ((parity.as_usize() + y + z + t) & 1);
        Coord { x, y, z, t }
    }

    /// Neighbor coordinate in direction `dir`, displaced by `±1` with
    /// periodic wrap-around. Returns the new coordinate and whether the move
    /// wrapped the lattice boundary in that direction.
    #[inline]
    pub fn neighbor(&self, c: Coord, dir: usize, forward: bool) -> (Coord, bool) {
        let ext = self.extent(dir);
        let mut out = c;
        let v = out.get_mut(dir);
        let wrapped;
        if forward {
            if *v + 1 == ext {
                *v = 0;
                wrapped = true;
            } else {
                *v += 1;
                wrapped = false;
            }
        } else if *v == 0 {
            *v = ext - 1;
            wrapped = true;
        } else {
            *v -= 1;
            wrapped = false;
        }
        (out, wrapped)
    }

    /// Iterate all coordinates in lexicographic order.
    pub fn coords(&self) -> impl Iterator<Item = Coord> + '_ {
        (0..self.volume()).map(move |i| self.lex_coord(i))
    }

    /// Time-slice range of checkerboard indices for one parity:
    /// sites with a given `t` occupy `[t·Vs/2, (t+1)·Vs/2)` — the contiguity
    /// the face gathers rely on (Fig. 2).
    #[inline]
    pub fn cb_timeslice_range(&self, t: usize) -> std::ops::Range<usize> {
        let half_vs = self.half_spatial_volume();
        t * half_vs..(t + 1) * half_vs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_roundtrip() {
        let d = LatticeDims::new(4, 6, 2, 8);
        for i in 0..d.volume() {
            assert_eq!(d.lex_index(d.lex_coord(i)), i);
        }
    }

    #[test]
    fn cb_roundtrip_both_parities() {
        let d = LatticeDims::new(4, 4, 6, 2);
        for p in [Parity::Even, Parity::Odd] {
            for cb in 0..d.half_volume() {
                let c = d.cb_coord(p, cb);
                assert_eq!(c.parity(), p, "cb={cb}");
                assert_eq!(d.cb_index(c), cb);
            }
        }
    }

    #[test]
    fn cb_partition_is_exact_bipartition() {
        let d = LatticeDims::new(4, 4, 4, 4);
        let mut even = 0;
        let mut odd = 0;
        for c in d.coords() {
            match c.parity() {
                Parity::Even => even += 1,
                Parity::Odd => odd += 1,
            }
        }
        assert_eq!(even, d.half_volume());
        assert_eq!(odd, d.half_volume());
    }

    #[test]
    fn stencil_neighbors_have_opposite_parity() {
        // Fig. 1: the nearest-neighbor stencil only couples red to black.
        let d = LatticeDims::new(4, 4, 4, 6);
        for c in d.coords() {
            for dir in 0..4 {
                for fwd in [false, true] {
                    let (n, _) = d.neighbor(c, dir, fwd);
                    assert_eq!(n.parity(), c.parity().other());
                }
            }
        }
    }

    #[test]
    fn neighbor_wraps_periodically() {
        let d = LatticeDims::new(4, 4, 4, 4);
        let c = Coord::new(3, 0, 2, 3);
        let (n, w) = d.neighbor(c, DIR_X, true);
        assert_eq!(n.x, 0);
        assert!(w);
        let (n, w) = d.neighbor(c, DIR_Y, false);
        assert_eq!(n.y, 3);
        assert!(w);
        let (n, w) = d.neighbor(c, DIR_T, true);
        assert_eq!(n.t, 0);
        assert!(w);
        let (n, w) = d.neighbor(c, DIR_Z, false);
        assert_eq!(n.z, 1);
        assert!(!w);
    }

    #[test]
    fn neighbor_is_involutive() {
        let d = LatticeDims::new(4, 6, 8, 2);
        for c in d.coords() {
            for dir in 0..4 {
                let (n, _) = d.neighbor(c, dir, true);
                let (back, _) = d.neighbor(n, dir, false);
                assert_eq!(back, c);
            }
        }
    }

    #[test]
    fn volumes() {
        let d = LatticeDims::spatial_cube(24, 128);
        assert_eq!(d.volume(), 24 * 24 * 24 * 128);
        assert_eq!(d.spatial_volume(), 24 * 24 * 24);
        assert_eq!(d.half_volume(), d.volume() / 2);
        let h = LatticeDims::hypercubic(32);
        assert_eq!(h.volume(), 32usize.pow(4));
    }

    #[test]
    fn timeslice_ranges_are_contiguous_and_cover() {
        let d = LatticeDims::new(4, 4, 4, 6);
        let mut covered = 0;
        for t in 0..d.t {
            let r = d.cb_timeslice_range(t);
            assert_eq!(r.start, covered);
            covered = r.end;
            // Every cb index in the range maps to time t, for both parities.
            for p in [Parity::Even, Parity::Odd] {
                for cb in r.clone() {
                    assert_eq!(d.cb_coord(p, cb).t, t);
                }
            }
        }
        assert_eq!(covered, d.half_volume());
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_extent_rejected() {
        LatticeDims::new(3, 4, 4, 4);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn zero_extent_rejected() {
        LatticeDims::new(0, 4, 4, 4);
    }

    #[test]
    fn parity_helpers() {
        assert_eq!(Parity::Even.other(), Parity::Odd);
        assert_eq!(Parity::Odd.other(), Parity::Even);
        assert_eq!(Parity::from_usize(2), Parity::Even);
        assert_eq!(Parity::from_usize(3), Parity::Odd);
        assert_eq!(Parity::Even.as_usize(), 0);
    }
}
