//! # quda-lattice
//!
//! Lattice geometry and memory layout for `quda-rs`:
//!
//! * [`geometry`] — 4-d extents, lexicographic and even-odd (checkerboard)
//!   site indexing, periodic neighbors (paper Fig. 1);
//! * [`layout`] — the QUDA device field layout of Eqs. 3–5 and Fig. 2:
//!   `Nvec` short-vector blocking, partition-camping pad, gauge ghost slice
//!   in the pad, spinor ghost end zone;
//! * [`stencil`] — precomputed neighbor tables with temporal-boundary
//!   classification for the multi-GPU domain decomposition;
//! * [`partition`] — the 1-d temporal slicing of Section VI-A.

#![warn(missing_docs)]

pub mod geometry;
pub mod layout;
pub mod partition;
pub mod stencil;

pub use geometry::{Coord, LatticeDims, Parity, DIR_T, DIR_X, DIR_Y, DIR_Z};
pub use layout::{species, FieldLayout, NVec};
pub use partition::TimePartition;
pub use stencil::{BoundaryKind, NeighborRef, ParityStencil, Stencil};
