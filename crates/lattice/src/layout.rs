//! The QUDA device-field memory layout (Section V-B, Eqs. 3–5, Fig. 2).
//!
//! A field with `N_int` internal reals per site over `sites` sites is stored
//! as `N_int / N_vec` *blocks*. Each block holds one short-vector
//! (`N_vec` reals) per site, so consecutive threads (sites) read consecutive
//! `N_vec`-real chunks — the coalescing condition. Blocks are separated by a
//! padding region of `pad` sites to break partition camping; the paper picks
//! `pad = Vs = X·Y·Z` so a ghost time-slice of gauge links fits exactly
//! inside the pad.
//!
//! The linear index of internal real `n` at site `x` is Eq. 5:
//!
//! ```text
//! i = N_vec * ( stride * (n / N_vec) + x ) + n % N_vec ,   stride = sites + pad
//! ```
//!
//! Spinor fields additionally carry a ghost *end zone* appended after all
//! blocks (Section VI-C): `2 × face_sites` half-spinors (12 reals each), the
//! first half holding the projected components received from the backward
//! neighbor and the second half those from the forward neighbor. Keeping the
//! ghosts *outside* the blocks keeps the main data contiguous so reduction
//! kernels can simply exclude the end zone.

use crate::geometry::LatticeDims;
use quda_math::spinor::HALF_SPINOR_REALS;

/// Short-vector lengths used by QUDA (`float`, `float2`/`double`, `float4`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum NVec {
    /// Scalar loads.
    N1,
    /// 2-wide (16-byte `double2`, optimal in double precision).
    N2,
    /// 4-wide (16-byte `float4`, optimal in single/half precision).
    N4,
}

impl NVec {
    /// Numeric value.
    #[inline(always)]
    pub fn value(self) -> usize {
        match self {
            NVec::N1 => 1,
            NVec::N2 => 2,
            NVec::N4 => 4,
        }
    }

    /// The paper's optimum for a given storage width in bytes: 16-byte
    /// vectors, i.e. `float4` for 4-byte reals and `double2` for 8-byte.
    pub fn optimal_for_bytes(storage_bytes: usize) -> NVec {
        match storage_bytes {
            8 => NVec::N2,
            4 => NVec::N4,
            2 => NVec::N4, // short4 in half precision
            1 => NVec::N4, // char4 in the 8-bit extension
            _ => NVec::N1,
        }
    }
}

/// Memory layout of one field (Eq. 5 of the paper).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FieldLayout {
    /// Number of real data sites (V, or V/2 for single-parity fields).
    pub sites: usize,
    /// Padding sites between blocks (the paper uses one spatial volume).
    pub pad: usize,
    /// Internal reals per site (24 spinor, 12 compressed link, 72 clover).
    pub n_int: usize,
    /// Short-vector length.
    pub n_vec: usize,
    /// Extra ghost sites appended as an end zone, each carrying
    /// [`HALF_SPINOR_REALS`] reals (spinor fields only; 0 otherwise).
    pub ghost_sites: usize,
}

impl FieldLayout {
    /// Build a layout; `n_int` must be divisible by `n_vec`.
    pub fn new(sites: usize, pad: usize, n_int: usize, n_vec: NVec, ghost_sites: usize) -> Self {
        let nv = n_vec.value();
        assert!(n_int % nv == 0, "n_int={n_int} not divisible by n_vec={nv}");
        assert!(sites > 0);
        FieldLayout { sites, pad, n_int, n_vec: nv, ghost_sites }
    }

    /// Distance between blocks in units of short vectors: `sites + pad`.
    #[inline(always)]
    pub fn stride(&self) -> usize {
        self.sites + self.pad
    }

    /// Number of blocks: `N_int / N_vec`.
    #[inline(always)]
    pub fn blocks(&self) -> usize {
        self.n_int / self.n_vec
    }

    /// Total reals of the main (blocked + padded) region.
    #[inline(always)]
    pub fn body_len(&self) -> usize {
        self.blocks() * self.stride() * self.n_vec
    }

    /// Total reals including the ghost end zone.
    #[inline(always)]
    pub fn total_len(&self) -> usize {
        self.body_len() + self.ghost_sites * HALF_SPINOR_REALS
    }

    /// Eq. 5: linear index of internal real `n` at site `x`.
    #[inline(always)]
    pub fn index(&self, site: usize, n: usize) -> usize {
        debug_assert!(site < self.sites, "site {site} out of {}", self.sites);
        debug_assert!(n < self.n_int);
        self.n_vec * (self.stride() * (n / self.n_vec) + site) + n % self.n_vec
    }

    /// Index of internal real `n` for pad slot `slot` (0..pad) — where the
    /// gauge-field ghost time-slice lives (Section VI-B / Fig. 2).
    #[inline(always)]
    pub fn pad_index(&self, slot: usize, n: usize) -> usize {
        debug_assert!(slot < self.pad, "pad slot {slot} out of {}", self.pad);
        debug_assert!(n < self.n_int);
        self.n_vec * (self.stride() * (n / self.n_vec) + self.sites + slot) + n % self.n_vec
    }

    /// Index into the spinor ghost end zone.
    ///
    /// `backward == true` selects the first half of the end zone (data
    /// received from the backward neighbor, i.e. the `P+4`-projected upper
    /// components), `false` the second half (forward neighbor, `P-4`).
    #[inline(always)]
    pub fn ghost_index(&self, backward: bool, face_site: usize, n: usize) -> usize {
        let faces = self.ghost_sites / 2;
        debug_assert!(face_site < faces);
        debug_assert!(n < HALF_SPINOR_REALS);
        let base = self.body_len();
        let half = if backward { 0 } else { faces * HALF_SPINOR_REALS };
        base + half + face_site * HALF_SPINOR_REALS + n
    }

    /// Inverse of [`FieldLayout::index`], for testing and reshuffling:
    /// returns `(site, n)` for a body index, or `None` if the index falls in
    /// padding or the ghost zone.
    pub fn decompose(&self, i: usize) -> Option<(usize, usize)> {
        if i >= self.body_len() {
            return None;
        }
        let nv = self.n_vec;
        let within = i % nv;
        let chunk = i / nv;
        let site = chunk % self.stride();
        let block = chunk / self.stride();
        if site >= self.sites {
            return None; // padding
        }
        Some((site, block * nv + within))
    }

    /// Bytes of device memory this layout occupies at `storage_bytes` per
    /// real (ghost normalization arrays are accounted separately by the
    /// field types).
    pub fn device_bytes(&self, storage_bytes: usize) -> usize {
        self.total_len() * storage_bytes
    }
}

/// Layout constructors matching QUDA's field species.
pub mod species {
    use super::*;
    use quda_math::clover::CLOVER_REALS;
    use quda_math::spinor::SPINOR_REALS;

    /// Reals per compressed link matrix (2 rows × 3 colors × complex).
    pub const LINK_COMPRESSED_REALS: usize = 12;
    /// Reals per full link matrix.
    pub const LINK_FULL_REALS: usize = 18;

    /// Single-parity spinor layout with a `Vs/2` pad and a two-face ghost
    /// end zone of `Vs/2` sites each (used by the even-odd solver).
    pub fn spinor_cb(dims: &LatticeDims, n_vec: NVec, with_ghost: bool) -> FieldLayout {
        let sites = dims.half_volume();
        let pad = dims.half_spatial_volume();
        let ghost = if with_ghost { 2 * dims.half_spatial_volume() } else { 0 };
        FieldLayout::new(sites, pad, SPINOR_REALS, n_vec, ghost)
    }

    /// Single-parity compressed gauge layout (per direction μ) with the
    /// `Vs/2` pad that doubles as the ghost slice (Fig. 2).
    pub fn gauge_cb(dims: &LatticeDims, n_vec: NVec, compressed: bool) -> FieldLayout {
        let sites = dims.half_volume();
        let pad = dims.half_spatial_volume();
        let n_int = if compressed { LINK_COMPRESSED_REALS } else { LINK_FULL_REALS };
        // 18 is not divisible by 4; full storage uses N2.
        let n_vec = if !compressed && n_vec == NVec::N4 { NVec::N2 } else { n_vec };
        FieldLayout::new(sites, pad, n_int, n_vec, 0)
    }

    /// Single-parity clover layout (72 reals/site).
    pub fn clover_cb(dims: &LatticeDims, n_vec: NVec) -> FieldLayout {
        let sites = dims.half_volume();
        let pad = dims.half_spatial_volume();
        FieldLayout::new(sites, pad, CLOVER_REALS, n_vec, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::LatticeDims;

    #[test]
    fn eq4_reduces_to_eq5_with_zero_pad() {
        // With pad = 0, Eq. 5 is exactly Eq. 4.
        let l = FieldLayout::new(100, 0, 24, NVec::N4, 0);
        let v = 100;
        for &(x, n) in &[(0usize, 0usize), (7, 3), (99, 23), (42, 12)] {
            let expect = 4 * (v * (n / 4) + x) + n % 4;
            assert_eq!(l.index(x, n), expect);
        }
    }

    #[test]
    fn index_is_bijective_over_body() {
        let l = FieldLayout::new(48, 8, 24, NVec::N4, 0);
        let mut seen = vec![false; l.body_len()];
        for site in 0..l.sites {
            for n in 0..l.n_int {
                let i = l.index(site, n);
                assert!(!seen[i], "collision at site={site} n={n}");
                seen[i] = true;
                assert_eq!(l.decompose(i), Some((site, n)));
            }
        }
        // Unvisited positions are exactly the pad slots.
        let unvisited = seen.iter().filter(|&&s| !s).count();
        assert_eq!(unvisited, l.pad * l.blocks() * l.n_vec);
    }

    #[test]
    fn consecutive_sites_are_coalesced() {
        // Threads x and x+1 must read adjacent N_vec-real chunks.
        let l = FieldLayout::new(64, 16, 24, NVec::N4, 0);
        for n0 in [0usize, 4, 20] {
            for x in 0..l.sites - 1 {
                assert_eq!(l.index(x + 1, n0), l.index(x, n0) + 4);
            }
        }
    }

    #[test]
    fn pad_region_disjoint_from_body() {
        let l = FieldLayout::new(32, 8, 12, NVec::N4, 0);
        let mut body = vec![false; l.body_len()];
        for site in 0..l.sites {
            for n in 0..l.n_int {
                body[l.index(site, n)] = true;
            }
        }
        for slot in 0..l.pad {
            for n in 0..l.n_int {
                let i = l.pad_index(slot, n);
                assert!(!body[i], "pad overlaps body at slot={slot} n={n}");
                assert!(i < l.body_len());
            }
        }
    }

    #[test]
    fn gauge_ghost_slice_fits_exactly_in_pad() {
        // The paper chose pad = Vs so a time-slice of links hides in it.
        let dims = LatticeDims::new(4, 4, 4, 8);
        let l = species::gauge_cb(&dims, NVec::N4, true);
        assert_eq!(l.pad, dims.half_spatial_volume());
        // One ghost link per pad slot, all 12 reals addressable.
        for slot in 0..l.pad {
            for n in 0..l.n_int {
                let i = l.pad_index(slot, n);
                assert!(i < l.body_len());
            }
        }
    }

    #[test]
    fn spinor_ghost_end_zone_is_contiguous_and_after_body() {
        let dims = LatticeDims::new(4, 4, 4, 8);
        let l = species::spinor_cb(&dims, NVec::N4, true);
        let faces = l.ghost_sites / 2;
        assert_eq!(faces, dims.half_spatial_volume());
        let mut expected = l.body_len();
        for backward in [true, false] {
            for fs in 0..faces {
                for n in 0..12 {
                    assert_eq!(l.ghost_index(backward, fs, n), expected);
                    expected += 1;
                }
            }
        }
        assert_eq!(expected, l.total_len());
    }

    #[test]
    fn reductions_can_exclude_end_zone() {
        // The ghost end zone lies wholly beyond body_len, so a reduction over
        // [0, body_len) never double counts ghosts (Section VI-C).
        let dims = LatticeDims::new(4, 4, 4, 4);
        let l = species::spinor_cb(&dims, NVec::N4, true);
        assert!(l.ghost_index(true, 0, 0) >= l.body_len());
        assert_eq!(l.total_len() - l.body_len(), l.ghost_sites * 12);
    }

    #[test]
    fn optimal_nvec_is_16_bytes() {
        assert_eq!(NVec::optimal_for_bytes(4), NVec::N4); // float4
        assert_eq!(NVec::optimal_for_bytes(8), NVec::N2); // double2
        assert_eq!(NVec::optimal_for_bytes(2), NVec::N4); // short4
    }

    #[test]
    fn spinor_blocks_match_paper_example() {
        // "in single precision ... 6 blocks would be needed to store the 24V
        // numbers that make up a color-spinor" (Fig. 2 caption).
        let dims = LatticeDims::new(4, 4, 4, 4);
        let l = species::spinor_cb(&dims, NVec::N4, false);
        assert_eq!(l.blocks(), 6);
        // "in 2-row storage, the gauge field would need 3 blocks".
        let g = species::gauge_cb(&dims, NVec::N4, true);
        assert_eq!(g.blocks(), 3);
    }

    #[test]
    fn full_gauge_falls_back_to_n2() {
        let dims = LatticeDims::new(4, 4, 4, 4);
        let g = species::gauge_cb(&dims, NVec::N4, false);
        assert_eq!(g.n_int, 18);
        assert_eq!(g.n_vec, 2);
    }

    #[test]
    fn device_bytes_scale_with_storage() {
        let l = FieldLayout::new(128, 32, 24, NVec::N4, 64);
        assert_eq!(l.device_bytes(4), l.total_len() * 4);
        assert_eq!(l.device_bytes(2), l.total_len() * 2);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_nvec_rejected() {
        FieldLayout::new(10, 0, 18, NVec::N4, 0);
    }
}
