//! Precomputed nearest-neighbor stencil tables for the even-odd Dirac
//! operator, with explicit classification of temporal-boundary crossings.
//!
//! The multi-GPU decomposition slices only the time dimension (Section
//! VI-A), so spatial neighbors always wrap periodically *within* the local
//! volume, while temporal neighbors may cross into a neighboring GPU's
//! domain. A table built with `t_open = true` marks those crossings as ghost
//! references carrying the *face index* — the position of the site within
//! its (contiguous) time-slice — which is exactly the offset used in both
//! the ghost end zone of the spinor field and the pad region of the gauge
//! field.

use crate::geometry::{Coord, LatticeDims, Parity, DIR_T};

/// How a neighbor access resolves.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BoundaryKind {
    /// Neighbor is a local site; `idx` is its checkerboard index.
    Interior,
    /// Neighbor lives on the backward-T neighboring domain; `idx` is the
    /// face index into the backward ghost zone.
    GhostBackward,
    /// Neighbor lives on the forward-T neighboring domain; `idx` is the
    /// face index into the forward ghost zone.
    GhostForward,
}

/// One resolved neighbor reference.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct NeighborRef {
    /// Checkerboard index (Interior) or face index (Ghost*).
    pub idx: u32,
    /// Classification.
    pub kind: BoundaryKind,
}

/// Stencil tables for one output parity.
#[derive(Clone, Debug)]
pub struct ParityStencil {
    /// `fwd[mu][site]`: the +μ neighbor of each site.
    pub fwd: [Vec<NeighborRef>; 4],
    /// `bwd[mu][site]`: the −μ neighbor of each site.
    pub bwd: [Vec<NeighborRef>; 4],
    /// For each site, `Some(face_idx)` if it lies on the first (t = 0)
    /// time-slice — its backward-T gauge link must be read from the pad.
    pub on_back_face: Vec<Option<u32>>,
    /// For each site, `Some(face_idx)` if it lies on the last time-slice.
    pub on_front_face: Vec<Option<u32>>,
}

/// Complete stencil for both parities.
#[derive(Clone, Debug)]
pub struct Stencil {
    /// Local lattice dimensions.
    pub dims: LatticeDims,
    /// Whether temporal boundaries are domain boundaries (multi-GPU slice)
    /// rather than periodic wraps (single GPU owning the full extent).
    pub t_open: bool,
    /// Tables indexed by output parity (`[even, odd]`).
    pub parity: [ParityStencil; 2],
}

impl Stencil {
    /// Build the stencil for a local volume.
    pub fn new(dims: LatticeDims, t_open: bool) -> Self {
        let even = build_parity(&dims, Parity::Even, t_open);
        let odd = build_parity(&dims, Parity::Odd, t_open);
        Stencil { dims, t_open, parity: [even, odd] }
    }

    /// Table for a given output parity.
    #[inline(always)]
    pub fn for_parity(&self, p: Parity) -> &ParityStencil {
        &self.parity[p.as_usize()]
    }

    /// Face index of a coordinate: its checkerboard position within the
    /// time-slice (`cb mod Vs/2`). Identical for a site and its temporal
    /// neighbor, which is what makes sender/receiver ghost offsets agree.
    #[inline(always)]
    pub fn face_index(dims: &LatticeDims, c: Coord) -> usize {
        dims.cb_index(c) % dims.half_spatial_volume()
    }
}

fn build_parity(dims: &LatticeDims, out_parity: Parity, t_open: bool) -> ParityStencil {
    let n = dims.half_volume();
    let mut fwd: [Vec<NeighborRef>; 4] = std::array::from_fn(|_| Vec::with_capacity(n));
    let mut bwd: [Vec<NeighborRef>; 4] = std::array::from_fn(|_| Vec::with_capacity(n));
    let mut on_back_face = Vec::with_capacity(n);
    let mut on_front_face = Vec::with_capacity(n);
    for cb in 0..n {
        let c = dims.cb_coord(out_parity, cb);
        let face = Stencil::face_index(dims, c) as u32;
        on_back_face.push((c.t == 0).then_some(face));
        on_front_face.push((c.t == dims.t - 1).then_some(face));
        for (mu, table) in fwd.iter_mut().enumerate() {
            table.push(resolve(dims, c, mu, true, t_open));
        }
        for (mu, table) in bwd.iter_mut().enumerate() {
            table.push(resolve(dims, c, mu, false, t_open));
        }
    }
    ParityStencil { fwd, bwd, on_back_face, on_front_face }
}

fn resolve(dims: &LatticeDims, c: Coord, mu: usize, forward: bool, t_open: bool) -> NeighborRef {
    let (nc, wrapped) = dims.neighbor(c, mu, forward);
    if t_open && mu == DIR_T && wrapped {
        let face = Stencil::face_index(dims, nc) as u32;
        let kind = if forward { BoundaryKind::GhostForward } else { BoundaryKind::GhostBackward };
        NeighborRef { idx: face, kind }
    } else {
        NeighborRef { idx: dims.cb_index(nc) as u32, kind: BoundaryKind::Interior }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{DIR_X, DIR_Y, DIR_Z};

    fn dims() -> LatticeDims {
        LatticeDims::new(4, 4, 6, 8)
    }

    #[test]
    fn closed_stencil_has_no_ghosts() {
        let s = Stencil::new(dims(), false);
        for p in [Parity::Even, Parity::Odd] {
            let t = s.for_parity(p);
            for mu in 0..4 {
                assert!(t.fwd[mu].iter().all(|r| r.kind == BoundaryKind::Interior));
                assert!(t.bwd[mu].iter().all(|r| r.kind == BoundaryKind::Interior));
            }
        }
    }

    #[test]
    fn open_stencil_marks_only_temporal_faces() {
        let d = dims();
        let s = Stencil::new(d, true);
        for p in [Parity::Even, Parity::Odd] {
            let t = s.for_parity(p);
            for (cb, r) in t.fwd[DIR_T].iter().enumerate() {
                let c = d.cb_coord(p, cb);
                if c.t == d.t - 1 {
                    assert_eq!(r.kind, BoundaryKind::GhostForward);
                } else {
                    assert_eq!(r.kind, BoundaryKind::Interior);
                }
            }
            for (cb, r) in t.bwd[DIR_T].iter().enumerate() {
                let c = d.cb_coord(p, cb);
                if c.t == 0 {
                    assert_eq!(r.kind, BoundaryKind::GhostBackward);
                } else {
                    assert_eq!(r.kind, BoundaryKind::Interior);
                }
            }
            // Spatial directions never ghost.
            for mu in [DIR_X, DIR_Y, DIR_Z] {
                assert!(t.fwd[mu].iter().all(|r| r.kind == BoundaryKind::Interior));
                assert!(t.bwd[mu].iter().all(|r| r.kind == BoundaryKind::Interior));
            }
        }
    }

    #[test]
    fn interior_refs_match_geometry() {
        let d = dims();
        let s = Stencil::new(d, false);
        for p in [Parity::Even, Parity::Odd] {
            let t = s.for_parity(p);
            for cb in 0..d.half_volume() {
                let c = d.cb_coord(p, cb);
                for mu in 0..4 {
                    let (nf, _) = d.neighbor(c, mu, true);
                    assert_eq!(t.fwd[mu][cb].idx as usize, d.cb_index(nf));
                    let (nb, _) = d.neighbor(c, mu, false);
                    assert_eq!(t.bwd[mu][cb].idx as usize, d.cb_index(nb));
                }
            }
        }
    }

    #[test]
    fn ghost_face_indices_cover_half_spatial_volume() {
        let d = dims();
        let s = Stencil::new(d, true);
        let half_vs = d.half_spatial_volume();
        for p in [Parity::Even, Parity::Odd] {
            let t = s.for_parity(p);
            let mut seen_fwd = vec![false; half_vs];
            let mut seen_bwd = vec![false; half_vs];
            for r in &t.fwd[DIR_T] {
                if r.kind == BoundaryKind::GhostForward {
                    assert!(!seen_fwd[r.idx as usize], "duplicate face index");
                    seen_fwd[r.idx as usize] = true;
                }
            }
            for r in &t.bwd[DIR_T] {
                if r.kind == BoundaryKind::GhostBackward {
                    assert!(!seen_bwd[r.idx as usize]);
                    seen_bwd[r.idx as usize] = true;
                }
            }
            assert!(seen_fwd.iter().all(|&x| x), "forward face not fully covered");
            assert!(seen_bwd.iter().all(|&x| x));
        }
    }

    #[test]
    fn face_flags_match_time_coordinate() {
        let d = dims();
        let s = Stencil::new(d, true);
        for p in [Parity::Even, Parity::Odd] {
            let t = s.for_parity(p);
            for cb in 0..d.half_volume() {
                let c = d.cb_coord(p, cb);
                assert_eq!(t.on_back_face[cb].is_some(), c.t == 0);
                assert_eq!(t.on_front_face[cb].is_some(), c.t == d.t - 1);
                if let Some(f) = t.on_back_face[cb] {
                    assert_eq!(f as usize, Stencil::face_index(&d, c));
                }
            }
        }
    }

    #[test]
    fn face_index_agrees_between_site_and_temporal_neighbor() {
        let d = dims();
        for p in [Parity::Even, Parity::Odd] {
            for cb in 0..d.half_volume() {
                let c = d.cb_coord(p, cb);
                let (nf, _) = d.neighbor(c, DIR_T, true);
                assert_eq!(Stencil::face_index(&d, c), Stencil::face_index(&d, nf));
            }
        }
    }

    #[test]
    fn warp_divergence_condition_holds() {
        // Section VI-C: "warp divergence is avoided because the number of
        // spatial sites Vs is divisible by the warp size" — check the
        // production volumes.
        for (l, t) in [(24usize, 128usize), (32, 256)] {
            let d = LatticeDims::spatial_cube(l, t);
            assert_eq!(d.spatial_volume() % 32, 0);
            assert_eq!(d.half_spatial_volume() % 32, 0);
        }
    }
}
