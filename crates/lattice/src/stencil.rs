//! Precomputed nearest-neighbor stencil tables for the even-odd Dirac
//! operator, with explicit classification of domain-boundary crossings.
//!
//! The paper's multi-GPU decomposition slices only the time dimension
//! (Section VI-A), so spatial neighbors always wrap periodically *within*
//! the local volume, while temporal neighbors may cross into a neighboring
//! GPU's domain. The 4-d generalization (arXiv:1109.2935) opens any subset
//! of dimensions: a table built with [`Stencil::with_open`] marks crossings
//! of each open dimension as ghost references carrying the per-dimension
//! *face index* — the position of the site within its boundary slice —
//! which is exactly the offset used in both the ghost zones of the spinor
//! field and the ghost-link store of the gauge field.

use crate::geometry::{Coord, LatticeDims, Parity, DIR_T, DIR_X, DIR_Y, DIR_Z};

/// How a neighbor access resolves.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BoundaryKind {
    /// Neighbor is a local site; `idx` is its checkerboard index.
    Interior,
    /// Neighbor lives on the backward neighboring domain of the hop's
    /// dimension; `idx` is the face index into the backward ghost zone.
    GhostBackward,
    /// Neighbor lives on the forward neighboring domain of the hop's
    /// dimension; `idx` is the face index into the forward ghost zone.
    GhostForward,
}

/// One resolved neighbor reference.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct NeighborRef {
    /// Checkerboard index (Interior) or face index (Ghost*).
    pub idx: u32,
    /// Classification.
    pub kind: BoundaryKind,
}

/// Stencil tables for one output parity.
#[derive(Clone, Debug)]
pub struct ParityStencil {
    /// `fwd[mu][site]`: the +μ neighbor of each site.
    pub fwd: [Vec<NeighborRef>; 4],
    /// `bwd[mu][site]`: the −μ neighbor of each site.
    pub bwd: [Vec<NeighborRef>; 4],
    /// For each site, `Some(face_idx)` if it lies on the first (t = 0)
    /// time-slice — its backward-T gauge link must be read from the pad.
    pub on_back_face: Vec<Option<u32>>,
    /// For each site, `Some(face_idx)` if it lies on the last time-slice.
    pub on_front_face: Vec<Option<u32>>,
    /// For each site, the *highest* open dimension on whose boundary the
    /// site lies (`None` = interior of every open dimension). Driving the
    /// exterior updates in ascending-dimension order and gating each site
    /// on its highest face dimension updates every boundary site exactly
    /// once, after all the ghosts it reads have arrived — including corner
    /// sites on several faces at once.
    pub last_face_dim: Vec<Option<u8>>,
}

/// Complete stencil for both parities.
#[derive(Clone, Debug)]
pub struct Stencil {
    /// Local lattice dimensions.
    pub dims: LatticeDims,
    /// Whether temporal boundaries are domain boundaries (the 1-d slice's
    /// flag, kept for the time-only decomposition; equals `open[3]`).
    pub t_open: bool,
    /// Per-dimension domain-boundary flags, X..T. An open dimension's
    /// periodic wraps resolve to ghost references instead of local sites.
    pub open: [bool; 4],
    /// Tables indexed by output parity (`[even, odd]`).
    pub parity: [ParityStencil; 2],
}

impl Stencil {
    /// Build the stencil for a local volume with only the temporal
    /// boundary optionally open (the paper's 1-d slice).
    pub fn new(dims: LatticeDims, t_open: bool) -> Self {
        Self::with_open(dims, [false, false, false, t_open])
    }

    /// Build the stencil with an arbitrary set of open dimensions (the
    /// 4-d process-grid decomposition).
    pub fn with_open(dims: LatticeDims, open: [bool; 4]) -> Self {
        let even = build_parity(&dims, Parity::Even, open);
        let odd = build_parity(&dims, Parity::Odd, open);
        Stencil { dims, t_open: open[DIR_T], open, parity: [even, odd] }
    }

    /// Table for a given output parity.
    #[inline(always)]
    pub fn for_parity(&self, p: Parity) -> &ParityStencil {
        &self.parity[p.as_usize()]
    }

    /// Face index of a coordinate: its checkerboard position within the
    /// time-slice (`cb mod Vs/2`). Identical for a site and its temporal
    /// neighbor, which is what makes sender/receiver ghost offsets agree.
    #[inline(always)]
    pub fn face_index(dims: &LatticeDims, c: Coord) -> usize {
        dims.cb_index(c) % dims.half_spatial_volume()
    }

    /// Face index of a coordinate on a `dir`-boundary slice: its
    /// checkerboard position within that slice. One transverse coordinate
    /// is halved (Y for X-faces, X otherwise), so a site and its cross-face
    /// neighbor — which differ only in the `dir` coordinate — share the
    /// index. For `dir == DIR_T` this equals [`Stencil::face_index`].
    #[inline(always)]
    pub fn face_index_dim(dims: &LatticeDims, c: Coord, dir: usize) -> usize {
        match dir {
            DIR_X => c.y / 2 + (dims.y / 2) * (c.z + dims.z * c.t),
            DIR_Y => c.x / 2 + (dims.x / 2) * (c.z + dims.z * c.t),
            DIR_Z => c.x / 2 + (dims.x / 2) * (c.y + dims.y * c.t),
            _ => c.x / 2 + (dims.x / 2) * (c.y + dims.y * c.z),
        }
    }

    /// Inverse of [`Stencil::face_index_dim`]: the coordinate of face site
    /// `face` on the `dir`-boundary slice `c_dir = fixed`, for a site of
    /// checkerboard `parity`. The halved transverse coordinate is
    /// reconstructed from the parity constraint.
    pub fn face_coord(
        dims: &LatticeDims,
        dir: usize,
        parity: Parity,
        fixed: usize,
        face: usize,
    ) -> Coord {
        let p = parity.as_usize();
        match dir {
            DIR_X => {
                let yh = face % (dims.y / 2);
                let rest = face / (dims.y / 2);
                let (z, t) = (rest % dims.z, rest / dims.z);
                let y = 2 * yh + ((p + fixed + z + t) & 1);
                Coord::new(fixed, y, z, t)
            }
            DIR_Y => {
                let xh = face % (dims.x / 2);
                let rest = face / (dims.x / 2);
                let (z, t) = (rest % dims.z, rest / dims.z);
                let x = 2 * xh + ((p + fixed + z + t) & 1);
                Coord::new(x, fixed, z, t)
            }
            DIR_Z => {
                let xh = face % (dims.x / 2);
                let rest = face / (dims.x / 2);
                let (y, t) = (rest % dims.y, rest / dims.y);
                let x = 2 * xh + ((p + y + fixed + t) & 1);
                Coord::new(x, y, fixed, t)
            }
            _ => {
                let xh = face % (dims.x / 2);
                let rest = face / (dims.x / 2);
                let (y, z) = (rest % dims.y, rest / dims.y);
                let x = 2 * xh + ((p + y + z + fixed) & 1);
                Coord::new(x, y, z, fixed)
            }
        }
    }

    /// Face sites per parity of a `dir`-boundary slice of `dims`.
    #[inline(always)]
    pub fn face_sites_dim(dims: &LatticeDims, dir: usize) -> usize {
        dims.volume() / dims.extent(dir) / 2
    }
}

fn build_parity(dims: &LatticeDims, out_parity: Parity, open: [bool; 4]) -> ParityStencil {
    let n = dims.half_volume();
    let mut fwd: [Vec<NeighborRef>; 4] = std::array::from_fn(|_| Vec::with_capacity(n));
    let mut bwd: [Vec<NeighborRef>; 4] = std::array::from_fn(|_| Vec::with_capacity(n));
    let mut on_back_face = Vec::with_capacity(n);
    let mut on_front_face = Vec::with_capacity(n);
    let mut last_face_dim = Vec::with_capacity(n);
    for cb in 0..n {
        let c = dims.cb_coord(out_parity, cb);
        let face = Stencil::face_index(dims, c) as u32;
        on_back_face.push((c.t == 0).then_some(face));
        on_front_face.push((c.t == dims.t - 1).then_some(face));
        let mut last = None;
        for (dim, &is_open) in open.iter().enumerate() {
            if is_open && (c.get(dim) == 0 || c.get(dim) == dims.extent(dim) - 1) {
                last = Some(dim as u8);
            }
        }
        last_face_dim.push(last);
        for (mu, table) in fwd.iter_mut().enumerate() {
            table.push(resolve(dims, c, mu, true, open));
        }
        for (mu, table) in bwd.iter_mut().enumerate() {
            table.push(resolve(dims, c, mu, false, open));
        }
    }
    ParityStencil { fwd, bwd, on_back_face, on_front_face, last_face_dim }
}

fn resolve(dims: &LatticeDims, c: Coord, mu: usize, forward: bool, open: [bool; 4]) -> NeighborRef {
    let (nc, wrapped) = dims.neighbor(c, mu, forward);
    if open[mu] && wrapped {
        let face = Stencil::face_index_dim(dims, nc, mu) as u32;
        let kind = if forward { BoundaryKind::GhostForward } else { BoundaryKind::GhostBackward };
        NeighborRef { idx: face, kind }
    } else {
        NeighborRef { idx: dims.cb_index(nc) as u32, kind: BoundaryKind::Interior }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> LatticeDims {
        LatticeDims::new(4, 4, 6, 8)
    }

    #[test]
    fn closed_stencil_has_no_ghosts() {
        let s = Stencil::new(dims(), false);
        for p in [Parity::Even, Parity::Odd] {
            let t = s.for_parity(p);
            for mu in 0..4 {
                assert!(t.fwd[mu].iter().all(|r| r.kind == BoundaryKind::Interior));
                assert!(t.bwd[mu].iter().all(|r| r.kind == BoundaryKind::Interior));
            }
            assert!(t.last_face_dim.iter().all(|l| l.is_none()));
        }
    }

    #[test]
    fn open_stencil_marks_only_temporal_faces() {
        let d = dims();
        let s = Stencil::new(d, true);
        for p in [Parity::Even, Parity::Odd] {
            let t = s.for_parity(p);
            for (cb, r) in t.fwd[DIR_T].iter().enumerate() {
                let c = d.cb_coord(p, cb);
                if c.t == d.t - 1 {
                    assert_eq!(r.kind, BoundaryKind::GhostForward);
                } else {
                    assert_eq!(r.kind, BoundaryKind::Interior);
                }
            }
            for (cb, r) in t.bwd[DIR_T].iter().enumerate() {
                let c = d.cb_coord(p, cb);
                if c.t == 0 {
                    assert_eq!(r.kind, BoundaryKind::GhostBackward);
                } else {
                    assert_eq!(r.kind, BoundaryKind::Interior);
                }
            }
            // Spatial directions never ghost.
            for mu in [DIR_X, DIR_Y, DIR_Z] {
                assert!(t.fwd[mu].iter().all(|r| r.kind == BoundaryKind::Interior));
                assert!(t.bwd[mu].iter().all(|r| r.kind == BoundaryKind::Interior));
            }
        }
    }

    #[test]
    fn interior_refs_match_geometry() {
        let d = dims();
        let s = Stencil::new(d, false);
        for p in [Parity::Even, Parity::Odd] {
            let t = s.for_parity(p);
            for cb in 0..d.half_volume() {
                let c = d.cb_coord(p, cb);
                for mu in 0..4 {
                    let (nf, _) = d.neighbor(c, mu, true);
                    assert_eq!(t.fwd[mu][cb].idx as usize, d.cb_index(nf));
                    let (nb, _) = d.neighbor(c, mu, false);
                    assert_eq!(t.bwd[mu][cb].idx as usize, d.cb_index(nb));
                }
            }
        }
    }

    #[test]
    fn ghost_face_indices_cover_half_spatial_volume() {
        let d = dims();
        let s = Stencil::new(d, true);
        let half_vs = d.half_spatial_volume();
        for p in [Parity::Even, Parity::Odd] {
            let t = s.for_parity(p);
            let mut seen_fwd = vec![false; half_vs];
            let mut seen_bwd = vec![false; half_vs];
            for r in &t.fwd[DIR_T] {
                if r.kind == BoundaryKind::GhostForward {
                    assert!(!seen_fwd[r.idx as usize], "duplicate face index");
                    seen_fwd[r.idx as usize] = true;
                }
            }
            for r in &t.bwd[DIR_T] {
                if r.kind == BoundaryKind::GhostBackward {
                    assert!(!seen_bwd[r.idx as usize]);
                    seen_bwd[r.idx as usize] = true;
                }
            }
            assert!(seen_fwd.iter().all(|&x| x), "forward face not fully covered");
            assert!(seen_bwd.iter().all(|&x| x));
        }
    }

    #[test]
    fn face_flags_match_time_coordinate() {
        let d = dims();
        let s = Stencil::new(d, true);
        for p in [Parity::Even, Parity::Odd] {
            let t = s.for_parity(p);
            for cb in 0..d.half_volume() {
                let c = d.cb_coord(p, cb);
                assert_eq!(t.on_back_face[cb].is_some(), c.t == 0);
                assert_eq!(t.on_front_face[cb].is_some(), c.t == d.t - 1);
                if let Some(f) = t.on_back_face[cb] {
                    assert_eq!(f as usize, Stencil::face_index(&d, c));
                }
                // With only T open, last_face_dim reduces to the T flags.
                let on_t_face = c.t == 0 || c.t == d.t - 1;
                assert_eq!(t.last_face_dim[cb], on_t_face.then_some(DIR_T as u8));
            }
        }
    }

    #[test]
    fn face_index_agrees_between_site_and_temporal_neighbor() {
        let d = dims();
        for p in [Parity::Even, Parity::Odd] {
            for cb in 0..d.half_volume() {
                let c = d.cb_coord(p, cb);
                let (nf, _) = d.neighbor(c, DIR_T, true);
                assert_eq!(Stencil::face_index(&d, c), Stencil::face_index(&d, nf));
            }
        }
    }

    #[test]
    fn face_index_dim_agrees_between_site_and_cross_face_neighbor() {
        // The property that makes sender and receiver ghost offsets line
        // up in every dimension, not just T.
        let d = dims();
        for dir in 0..4 {
            for p in [Parity::Even, Parity::Odd] {
                for cb in 0..d.half_volume() {
                    let c = d.cb_coord(p, cb);
                    for forward in [true, false] {
                        let (nc, _) = d.neighbor(c, dir, forward);
                        assert_eq!(
                            Stencil::face_index_dim(&d, c, dir),
                            Stencil::face_index_dim(&d, nc, dir),
                            "dir={dir} c={c:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn face_index_dim_matches_legacy_for_t() {
        let d = dims();
        for p in [Parity::Even, Parity::Odd] {
            for cb in 0..d.half_volume() {
                let c = d.cb_coord(p, cb);
                assert_eq!(Stencil::face_index_dim(&d, c, DIR_T), Stencil::face_index(&d, c));
            }
        }
    }

    #[test]
    fn face_coord_inverts_face_index_dim_on_every_boundary() {
        let d = dims();
        for dir in 0..4 {
            let fs = Stencil::face_sites_dim(&d, dir);
            for fixed in [0, d.extent(dir) - 1] {
                for p in [Parity::Even, Parity::Odd] {
                    let mut seen = vec![false; fs];
                    for face in 0..fs {
                        let c = Stencil::face_coord(&d, dir, p, fixed, face);
                        assert_eq!(c.get(dir), fixed);
                        assert_eq!(c.parity(), p, "reconstructed parity wrong");
                        let idx = Stencil::face_index_dim(&d, c, dir);
                        assert_eq!(idx, face, "face_coord must invert face_index_dim");
                        assert!(!seen[idx], "face enumeration must be a bijection");
                        seen[idx] = true;
                    }
                }
            }
        }
    }

    #[test]
    fn open_dimensions_ghost_and_closed_wrap_in_4d_stencil() {
        let d = dims();
        let open = [true, false, true, true];
        let s = Stencil::with_open(d, open);
        for p in [Parity::Even, Parity::Odd] {
            let t = s.for_parity(p);
            for cb in 0..d.half_volume() {
                let c = d.cb_coord(p, cb);
                for mu in 0..4 {
                    let fwd_ghost = open[mu] && c.get(mu) == d.extent(mu) - 1;
                    let bwd_ghost = open[mu] && c.get(mu) == 0;
                    assert_eq!(t.fwd[mu][cb].kind == BoundaryKind::GhostForward, fwd_ghost);
                    assert_eq!(t.bwd[mu][cb].kind == BoundaryKind::GhostBackward, bwd_ghost);
                }
                // last_face_dim is the maximum open boundary dimension.
                let expect = (0..4)
                    .filter(|&dim| {
                        open[dim] && (c.get(dim) == 0 || c.get(dim) == d.extent(dim) - 1)
                    })
                    .max()
                    .map(|dim| dim as u8);
                assert_eq!(t.last_face_dim[cb], expect);
            }
        }
    }

    #[test]
    fn warp_divergence_condition_holds() {
        // Section VI-C: "warp divergence is avoided because the number of
        // spatial sites Vs is divisible by the warp size" — check the
        // production volumes.
        for (l, t) in [(24usize, 128usize), (32, 256)] {
            let d = LatticeDims::spatial_cube(l, t);
            assert_eq!(d.spatial_volume() % 32, 0);
            assert_eq!(d.half_spatial_volume() % 32, 0);
        }
    }
}
