//! Property-based tests of geometry and layout over randomized lattice
//! shapes: index bijectivity, stencil involution, layout disjointness.

use proptest::prelude::*;
use quda_lattice::geometry::{LatticeDims, Parity};
use quda_lattice::layout::{FieldLayout, NVec};
use quda_lattice::partition::TimePartition;
use quda_lattice::stencil::{BoundaryKind, Stencil};

fn arb_dims() -> impl Strategy<Value = LatticeDims> {
    // Small even extents keep the exhaustive checks fast.
    let even = prop_oneof![Just(2usize), Just(4), Just(6)];
    (even.clone(), even.clone(), even.clone(), prop_oneof![Just(4usize), Just(8), Just(12)])
        .prop_map(|(x, y, z, t)| LatticeDims::new(x, y, z, t))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn lex_and_cb_indexing_are_bijective(d in arb_dims()) {
        let mut seen = vec![false; d.volume()];
        for p in [Parity::Even, Parity::Odd] {
            for cb in 0..d.half_volume() {
                let c = d.cb_coord(p, cb);
                prop_assert_eq!(c.parity(), p);
                prop_assert_eq!(d.cb_index(c), cb);
                let lex = d.lex_index(c);
                prop_assert!(!seen[lex]);
                seen[lex] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn neighbor_moves_are_involutive_and_parity_flipping(d in arb_dims()) {
        for c in d.coords() {
            for mu in 0..4 {
                let (f, _) = d.neighbor(c, mu, true);
                prop_assert_eq!(f.parity(), c.parity().other());
                let (back, _) = d.neighbor(f, mu, false);
                prop_assert_eq!(back, c);
            }
        }
    }

    #[test]
    fn layout_body_and_pad_partition_memory(
        d in arb_dims(),
        nvec in prop_oneof![Just(NVec::N1), Just(NVec::N2), Just(NVec::N4)],
    ) {
        let l = FieldLayout::new(d.half_volume(), d.half_spatial_volume(), 24, nvec, 0);
        let mut kind = vec![0u8; l.body_len()]; // 0 untouched, 1 site, 2 pad
        for site in 0..l.sites {
            for n in 0..l.n_int {
                let i = l.index(site, n);
                prop_assert_eq!(kind[i], 0);
                kind[i] = 1;
                prop_assert_eq!(l.decompose(i), Some((site, n)));
            }
        }
        for slot in 0..l.pad {
            for n in 0..l.n_int {
                let i = l.pad_index(slot, n);
                prop_assert_eq!(kind[i], 0, "pad overlaps site data");
                kind[i] = 2;
            }
        }
        prop_assert!(kind.iter().all(|&k| k != 0), "memory neither site nor pad");
    }

    #[test]
    fn coalescing_holds_for_all_nvec(
        d in arb_dims(),
        nvec in prop_oneof![Just(NVec::N2), Just(NVec::N4)],
    ) {
        let l = FieldLayout::new(d.half_volume(), 16, 24, nvec, 0);
        let v = nvec.value();
        for n0 in (0..24).step_by(v) {
            for site in 0..l.sites.saturating_sub(1) {
                prop_assert_eq!(l.index(site + 1, n0), l.index(site, n0) + v);
            }
        }
    }

    #[test]
    fn open_stencil_ghosts_exactly_on_time_boundaries(d in arb_dims()) {
        let s = Stencil::new(d, true);
        for p in [Parity::Even, Parity::Odd] {
            let t = s.for_parity(p);
            for cb in 0..d.half_volume() {
                let c = d.cb_coord(p, cb);
                let fwd_ghost = t.fwd[3][cb].kind == BoundaryKind::GhostForward;
                let bwd_ghost = t.bwd[3][cb].kind == BoundaryKind::GhostBackward;
                prop_assert_eq!(fwd_ghost, c.t == d.t - 1);
                prop_assert_eq!(bwd_ghost, c.t == 0);
                for mu in 0..3 {
                    prop_assert_eq!(t.fwd[mu][cb].kind, BoundaryKind::Interior);
                    prop_assert_eq!(t.bwd[mu][cb].kind, BoundaryKind::Interior);
                }
            }
        }
    }

    #[test]
    fn partitions_tile_the_time_axis(d in arb_dims(), log_n in 0usize..3) {
        let n = 1usize << log_n;
        prop_assume!(d.t % n == 0 && (d.t / n) % 2 == 0 && d.t / n >= 2);
        let part = TimePartition::new(d, n);
        let mut owner = vec![usize::MAX; d.t];
        for rank in 0..n {
            for lt in 0..part.local_t() {
                let g = part.global_t_of(rank, lt);
                prop_assert_eq!(owner[g], usize::MAX, "time slice owned twice");
                owner[g] = rank;
                prop_assert_eq!(part.rank_of_t(g), rank);
                prop_assert_eq!(part.local_t_of(g), lt);
            }
        }
        prop_assert!(owner.iter().all(|&o| o != usize::MAX));
    }

    #[test]
    fn ghost_end_zone_never_overlaps_body(d in arb_dims()) {
        let l = quda_lattice::layout::species::spinor_cb(&d, NVec::N4, true);
        let body = l.body_len();
        let faces = l.ghost_sites / 2;
        for backward in [true, false] {
            for f in 0..faces {
                for n in 0..12 {
                    let i = l.ghost_index(backward, f, n);
                    prop_assert!(i >= body && i < l.total_len());
                }
            }
        }
    }
}
