//! `cargo xtask` — workspace automation entry point.
//!
//! Subcommands:
//!
//! * `lint [--json]` — run the project lints over every workspace `.rs`
//!   file; exits non-zero if any diagnostic is produced.
//! * `lint --list` — print the rules and what they check.
//! * `collectives [--json]` — run the interprocedural collective-ordering
//!   analysis over the whole workspace; exits non-zero on any finding.
//! * `collectives --list` — print the collective rules.
//! * `hotpath [--json]` — run the hot-path allocation/indexing/locking
//!   analysis over the whole workspace; exits non-zero on any finding.
//! * `hotpath --list` — print the hot-path rules.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("collectives") => collectives(&args[1..]),
        Some("hotpath") => hotpath(&args[1..]),
        Some(other) => {
            eprintln!("unknown xtask subcommand `{other}`");
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!("usage: cargo xtask <lint | collectives | hotpath> [--json | --list]");
}

fn hotpath(flags: &[String]) -> ExitCode {
    let mut json = false;
    let mut list = false;
    for flag in flags {
        match flag.as_str() {
            "--json" => json = true,
            "--list" => list = true,
            other => {
                eprintln!("unknown hotpath flag `{other}`");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }
    if list {
        for (name, description) in xtask::hotpath::rule_list() {
            println!("{name:<24} {description}");
        }
        return ExitCode::SUCCESS;
    }
    let root = xtask::find_workspace_root();
    let report = match xtask::hotpath_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask hotpath: i/o error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        print!("{}", report.to_json());
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        eprintln!(
            "xtask hotpath: {} file(s) analyzed, {} rule(s), {} diagnostic(s)",
            report.files_scanned,
            report.rules.len(),
            report.diagnostics.len()
        );
    }
    if report.diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn collectives(flags: &[String]) -> ExitCode {
    let mut json = false;
    let mut list = false;
    for flag in flags {
        match flag.as_str() {
            "--json" => json = true,
            "--list" => list = true,
            other => {
                eprintln!("unknown collectives flag `{other}`");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }
    if list {
        for (name, description) in xtask::collectives::rule_list() {
            println!("{name:<24} {description}");
        }
        return ExitCode::SUCCESS;
    }
    let root = xtask::find_workspace_root();
    let report = match xtask::collectives_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask collectives: i/o error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        print!("{}", report.to_json());
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        eprintln!(
            "xtask collectives: {} file(s) analyzed, {} rule(s), {} diagnostic(s)",
            report.files_scanned,
            report.rules.len(),
            report.diagnostics.len()
        );
    }
    if report.diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn lint(flags: &[String]) -> ExitCode {
    let mut json = false;
    let mut list = false;
    for flag in flags {
        match flag.as_str() {
            "--json" => json = true,
            "--list" => list = true,
            other => {
                eprintln!("unknown lint flag `{other}`");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }
    if list {
        for rule in xtask::rules::builtin_lints() {
            println!("{:<20} {}", rule.name(), rule.description());
        }
        return ExitCode::SUCCESS;
    }
    let root = xtask::find_workspace_root();
    let report = match xtask::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask lint: i/o error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        print!("{}", report.to_json());
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        eprintln!(
            "xtask lint: {} file(s) scanned, {} rule(s), {} diagnostic(s)",
            report.files_scanned,
            report.rules.len(),
            report.diagnostics.len()
        );
    }
    if report.diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
