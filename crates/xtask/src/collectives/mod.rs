//! Flow-sensitive, interprocedural collective-ordering analysis — the
//! engine behind `cargo xtask collectives`.
//!
//! The lexical lints catch per-line style hazards; this pass catches the
//! cross-rank ones: a collective that only some ranks reach is not a bug
//! you can debug at runtime, it is a silent deadlock of the whole world
//! (the lockstep sanitizer in `quda-comm` catches it *at* runtime; this
//! pass catches it before the code ever runs). The analysis:
//!
//! 1. extracts every function from the masked token view into a flat
//!    model of call sites, branches and loops ([`model`]),
//! 2. classifies calls into collective kinds — `allreduce_*`, `barrier`
//!    and the solver-layer `reduce`/`reduce_c` are *symmetric* (every rank
//!    must issue them), `send`/`recv` are *paired*,
//! 3. closes over the call graph so wrappers of collectives count as
//!    collective sites at their callers,
//! 4. propagates rank-taint from `self.rank`-style expressions through
//!    simple `let` bindings, and
//! 5. runs four rules ([`rules`]): `rank-branch-collective`,
//!    `rank-loop-collective`, `tag-pairing`, `tag-namespace`.
//!
//! Findings use the same diagnostic format, `// quda-lint: allow(<rule>)`
//! suppressions and test-code exemptions as the lexical lints.

pub use crate::model;

pub mod rules;

use crate::report::Diagnostic;
use crate::source::SourceFile;

/// Run every collective rule over a set of parsed files.
pub fn analyze(files: &[SourceFile]) -> Vec<Diagnostic> {
    let model = model::Model::build(files);
    let mut out = Vec::new();
    rules::rank_branch_collective(&model, &mut out);
    rules::rank_loop_collective(&model, &mut out);
    rules::tag_pairing(&model, &mut out);
    rules::tag_namespace(&model, &mut out);
    out.sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    out
}

/// `(name, description)` of the collective rules, for `--list`.
pub fn rule_list() -> [(&'static str, &'static str); 4] {
    rules::rule_list()
}
