//! The four collective-ordering rules, evaluated over a [`Model`].
//!
//! Unlike the per-file lexical lints, these rules see the whole workspace
//! at once: the call-graph closure decides what counts as a collective
//! site, and tag pairing matches `send`s against `recv`s across files.
//! Diagnostics are only *emitted* for non-test code in the communication
//! hot paths (`crates/{comm,multigpu,solvers,core}/src`), but evidence —
//! a pairing `recv`, a callee definition — may live anywhere scanned.

use crate::model::{
    contains, is_int_literal, is_recv_site, is_registry_tag, is_send_site, resolve_tag, BranchInfo,
    Model,
};
use crate::report::Diagnostic;
use crate::source::{find_word, SourceFile};
use std::collections::{HashMap, HashSet};

/// Rule names, stable for reports and `// quda-lint: allow(...)`.
pub const RANK_BRANCH: &str = "rank-branch-collective";
/// See [`RANK_BRANCH`].
pub const RANK_LOOP: &str = "rank-loop-collective";
/// See [`RANK_BRANCH`].
pub const TAG_PAIRING: &str = "tag-pairing";
/// See [`RANK_BRANCH`].
pub const TAG_NAMESPACE: &str = "tag-namespace";

/// `(name, description)` of every collective rule, in reporting order.
pub fn rule_list() -> [(&'static str, &'static str); 4] {
    [
        (
            RANK_BRANCH,
            "symmetric collectives must be reached by every rank: a collective under a \
             rank-dependent branch with no matching collective on the other path hangs the world",
        ),
        (
            RANK_LOOP,
            "collectives inside a loop whose trip count depends on the rank desynchronize the \
             per-rank collective sequence",
        ),
        (
            TAG_PAIRING,
            "every send tag from the registry needs a matching recv somewhere (and vice versa); \
             an unpaired tag is a message no one will ever receive",
        ),
        (
            TAG_NAMESPACE,
            "message tags live in comm::tags: no tag constants outside the registry, no raw \
             integer tags at call sites, no value collisions inside the registry",
        ),
    ]
}

/// The crates whose `src/` trees the rules police.
fn in_scope(rel_path: &str) -> bool {
    ["crates/comm/src/", "crates/multigpu/src/", "crates/solvers/src/", "crates/core/src/"]
        .iter()
        .any(|p| rel_path.starts_with(p))
}

/// The one file allowed to define tag constants.
const TAG_REGISTRY: &str = "crates/comm/src/tags.rs";

/// Emit unless the site is test code or suppressed.
fn report(
    file: &SourceFile,
    rule: &'static str,
    offset: usize,
    message: String,
    out: &mut Vec<Diagnostic>,
) {
    if file.is_test_target() || file.is_test_line(file.line_of(offset)) {
        return;
    }
    crate::rules::emit(file, rule, offset, message, out);
}

/// Is the site at `offset` in `file` admissible as pairing evidence /
/// subject to emission? Test code is neither.
fn live_code(file: &SourceFile, offset: usize) -> bool {
    !file.is_test_target() && !file.is_test_line(file.line_of(offset))
}

/// Condensed condition text for messages.
fn short(text: &str) -> String {
    let squished = text.split_whitespace().collect::<Vec<_>>().join(" ");
    if squished.len() > 48 {
        format!("{}...", &squished[..45])
    } else {
        squished
    }
}

/// The end offset of a whole `if`/`else` construct.
fn branch_end(b: &BranchInfo) -> usize {
    b.else_range.map_or(b.then_range.1, |r| r.1.max(b.then_range.1))
}

/// Does the masked range contain `word` at an identifier boundary?
fn range_has_word(file: &SourceFile, range: (usize, usize), word: &str) -> bool {
    find_word(&file.masked[range.0..range.1], word, 0).is_some()
}

/// Rule `rank-branch-collective`: a symmetric collective reachable only
/// under rank-dependent control flow, either directly (inside a tainted
/// branch arm whose sibling issues no collective) or via an earlier
/// rank-dependent early return that only some ranks take.
pub fn rank_branch_collective(model: &Model, out: &mut Vec<Diagnostic>) {
    for f in &model.fns {
        let file = &model.files[f.file];
        if !in_scope(&file.rel_path) {
            continue;
        }
        for c in &f.calls {
            if !model.is_symmetric_site(f, c) {
                continue;
            }
            if let Some((b, in_then)) = f.innermost_tainted_branch(c.offset) {
                let sibling = if in_then { b.else_range } else { Some(b.then_range) };
                let matched = sibling.is_some_and(|r| {
                    f.calls.iter().any(|o| {
                        o.offset != c.offset
                            && contains(r, o.offset)
                            && model.is_symmetric_site(f, o)
                    })
                });
                if !matched {
                    let tail = if sibling.is_some() {
                        "the other branch issues no matching collective, so the ranks that \
                         take it desynchronize"
                    } else {
                        "ranks that skip the branch never issue it, and the world hangs at \
                         the next collective"
                    };
                    report(
                        file,
                        RANK_BRANCH,
                        c.offset,
                        format!(
                            "symmetric collective `{}` is only reached under the \
                             rank-dependent condition `{}`; {tail}",
                            c.callee,
                            short(&b.cond),
                        ),
                        out,
                    );
                }
            } else if let Some(b) = f.branches.iter().find(|b| {
                f.expr_tainted(&b.cond) && branch_end(b) <= c.offset && {
                    let then_returns = range_has_word(file, b.then_range, "return");
                    let else_returns =
                        b.else_range.is_some_and(|r| range_has_word(file, r, "return"));
                    then_returns != else_returns
                }
            }) {
                report(
                    file,
                    RANK_BRANCH,
                    c.offset,
                    format!(
                        "symmetric collective `{}` is unreachable for ranks that return early \
                         under the rank-dependent condition `{}` (line {}); the remaining \
                         ranks hang here",
                        c.callee,
                        short(&b.cond),
                        file.line_of(b.offset),
                    ),
                    out,
                );
            }
        }
    }
}

/// Rule `rank-loop-collective`: any collective (symmetric or paired)
/// inside a loop whose header mentions the rank — different ranks run a
/// different number of iterations and disagree on the collective count.
pub fn rank_loop_collective(model: &Model, out: &mut Vec<Diagnostic>) {
    for f in &model.fns {
        let file = &model.files[f.file];
        if !in_scope(&file.rel_path) {
            continue;
        }
        for c in &f.calls {
            if !(model.is_symmetric_site(f, c) || is_send_site(c) || is_recv_site(c)) {
                continue;
            }
            if let Some(l) = f.enclosing_tainted_loop(c.offset) {
                report(
                    file,
                    RANK_LOOP,
                    c.offset,
                    format!(
                        "collective `{}` runs inside a loop whose trip count depends on the \
                         rank (`{}`); ranks disagree on how many collectives they issue",
                        c.callee,
                        short(&l.header),
                    ),
                    out,
                );
            }
        }
    }
}

/// Rule `tag-pairing`: every registry-named send tag must have a recv with
/// the same canonical tag somewhere in non-test code, and vice versa.
pub fn tag_pairing(model: &Model, out: &mut Vec<Diagnostic>) {
    let mut send_tags: HashSet<String> = HashSet::new();
    let mut recv_tags: HashSet<String> = HashSet::new();
    // (file, offset, canonical tag, is_send) for every live paired call.
    let mut sites: Vec<(usize, usize, String, bool)> = Vec::new();
    for f in &model.fns {
        let file = &model.files[f.file];
        for c in &f.calls {
            let is_send = is_send_site(c);
            if !is_send && !is_recv_site(c) {
                continue;
            }
            if !live_code(file, c.offset) {
                continue;
            }
            let canon = resolve_tag(f, &c.args[1]);
            if is_send {
                send_tags.insert(canon.clone());
            } else {
                recv_tags.insert(canon.clone());
            }
            sites.push((f.file, c.offset, canon, is_send));
        }
    }
    for (file_idx, offset, canon, is_send) in sites {
        let file = &model.files[file_idx];
        if !in_scope(&file.rel_path) || !is_registry_tag(&canon) {
            continue;
        }
        let (have, verb, missing) =
            if is_send { (&recv_tags, "send", "recv") } else { (&send_tags, "recv", "send") };
        if !have.contains(&canon) {
            report(
                file,
                TAG_PAIRING,
                offset,
                format!(
                    "`{verb}` with tag `{canon}` has no matching `{missing}` with the same \
                     tag anywhere in non-test code; the message can never pair"
                ),
                out,
            );
        }
    }
}

/// Rule `tag-namespace`: tag constants only in the registry, no raw
/// integer tags at call sites, and no value collisions inside the
/// registry itself.
pub fn tag_namespace(model: &Model, out: &mut Vec<Diagnostic>) {
    for file in model.files {
        if !in_scope(&file.rel_path) {
            continue;
        }
        if file.rel_path == TAG_REGISTRY {
            registry_collisions(file, out);
            continue;
        }
        for c in scan_consts(file) {
            if is_tag_name(&c.name) && is_int_type(&c.ty) {
                report(
                    file,
                    TAG_NAMESPACE,
                    c.name_offset,
                    format!(
                        "tag constant `{}` defined outside the central registry \
                         ({TAG_REGISTRY}); ad-hoc tag namespaces collide silently — add it \
                         to `comm::tags` instead",
                        c.name
                    ),
                    out,
                );
            }
        }
    }
    for f in &model.fns {
        let file = &model.files[f.file];
        if !in_scope(&file.rel_path) {
            continue;
        }
        for c in &f.calls {
            if !is_send_site(c) && !is_recv_site(c) {
                continue;
            }
            let canon = resolve_tag(f, &c.args[1]);
            if is_int_literal(&canon) {
                report(
                    file,
                    TAG_NAMESPACE,
                    c.offset,
                    format!(
                        "raw integer tag `{canon}` at a `{}` call; use a named constant from \
                         `comm::tags` so pairing stays auditable",
                        c.callee
                    ),
                    out,
                );
            }
        }
    }
}

/// A `const NAME: TY = EXPR;` item found lexically.
struct ConstDef {
    name: String,
    name_offset: usize,
    ty: String,
    value: String,
}

/// Lexical scan for const items (generic `const N: usize` parameters have
/// no `=` and are skipped; `const fn` has no `:`).
fn scan_consts(file: &SourceFile) -> Vec<ConstDef> {
    let masked = &file.masked;
    let bytes = masked.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(at) = find_word(masked, "const", from) {
        from = at + 5;
        let mut i = at + 5;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let name_offset = i;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        if i == name_offset {
            continue;
        }
        let name = masked[name_offset..i].to_string();
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b':' {
            continue;
        }
        i += 1;
        let ty_start = i;
        let mut depth = 0i32;
        while i < bytes.len() {
            match bytes[i] {
                b'(' | b'[' | b'<' => depth += 1,
                b')' | b']' | b'>' => depth -= 1,
                b'=' | b';' | b',' if depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b'=' {
            continue;
        }
        let ty = masked[ty_start..i].trim().to_string();
        let value_start = i + 1;
        while i < bytes.len() && bytes[i] != b';' {
            i += 1;
        }
        out.push(ConstDef {
            name,
            name_offset,
            ty,
            value: masked[value_start..i].trim().to_string(),
        });
        from = i;
    }
    out
}

/// Does the name read as a message-tag constant (`TAG_X`, `X_TAG`, ...)?
fn is_tag_name(name: &str) -> bool {
    name.split('_').any(|seg| seg == "TAG" || seg == "TAGS")
}

fn is_int_type(ty: &str) -> bool {
    matches!(ty, "u8" | "u16" | "u32" | "u64" | "usize" | "i32" | "i64")
}

/// Check the registry itself: two constants with the same evaluated value
/// would let unrelated collectives cross-match. `*_BASE` constants are
/// namespace boundaries, not tags — they feed the evaluation environment
/// (`BASE + n`) but are exempt from the collision check, matching the
/// registry's own `ALL_NAMED` convention.
fn registry_collisions(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let mut env: HashMap<String, u64> = HashMap::new();
    let mut first_by_value: HashMap<u64, String> = HashMap::new();
    for c in scan_consts(file) {
        if !is_int_type(&c.ty) {
            continue;
        }
        let Some(v) = eval_tag_expr(&c.value, &env) else {
            continue;
        };
        env.insert(c.name.clone(), v);
        if c.name.ends_with("_BASE") {
            continue;
        }
        if let Some(earlier) = first_by_value.get(&v) {
            report(
                file,
                TAG_NAMESPACE,
                c.name_offset,
                format!(
                    "tag constant `{}` has the same value ({v:#x}) as `{earlier}`; \
                     collectives using either tag can cross-match",
                    c.name
                ),
                out,
            );
        } else {
            first_by_value.insert(v, c.name.clone());
        }
    }
}

/// Evaluate a registry const expression: integer literals, names of
/// earlier registry constants, and sums of those.
fn eval_tag_expr(expr: &str, env: &HashMap<String, u64>) -> Option<u64> {
    let t: String = expr.chars().filter(|ch| !ch.is_whitespace()).collect();
    if let Some(hex) = t.strip_prefix("0x") {
        return u64::from_str_radix(&hex.replace('_', ""), 16).ok();
    }
    if t.as_bytes().first().is_some_and(u8::is_ascii_digit) {
        return t.replace('_', "").parse().ok();
    }
    if let Some((a, b)) = t.split_once('+') {
        return eval_tag_expr(a, env)?.checked_add(eval_tag_expr(b, env)?);
    }
    env.get(&t).copied()
}
