//! Program model shared by the analysis passes (`collectives`, `hotpath`).
//!
//! The model is deliberately sub-AST: each function body is scanned on the
//! masked token view into flat lists of *call sites*, *branches* and
//! *loops* (with byte ranges), plus a rank-taint set computed over simple
//! `let` bindings. Containment between a call and a control construct is a
//! byte-range test, which sidesteps building a tree while staying
//! position-accurate. The same trade-off as the lexical lints: no type
//! information, but the collective API surface is small and name-stable
//! enough (see `comm::Communicator`) that name-based classification plus a
//! call-graph closure is precise in practice. The hot-path pass reuses the
//! same function/loop extraction for byte-range loop-containment tests.

use crate::source::{find_word, matching, SourceFile};
use std::collections::HashSet;

/// One call expression inside a function body.
#[derive(Debug)]
pub struct CallSite {
    /// Byte offset of the callee identifier.
    pub offset: usize,
    /// Callee identifier (the final path segment).
    pub callee: String,
    /// Written as a method call (`recv.f(...)`), not a free/path call.
    pub is_method: bool,
    /// Top-level argument texts (masked view, trimmed).
    pub args: Vec<String>,
}

/// One `if`/`else` construct.
#[derive(Debug)]
pub struct BranchInfo {
    /// Byte offset of the `if` keyword.
    pub offset: usize,
    /// Condition text (masked, trimmed).
    pub cond: String,
    /// Byte range inside the then-block braces.
    pub then_range: (usize, usize),
    /// Byte range of the else part: inside the braces for `else {}`, or
    /// spanning the whole chain for `else if`.
    pub else_range: Option<(usize, usize)>,
}

/// One `for`/`while`/`loop` construct.
#[derive(Debug)]
pub struct LoopInfo {
    /// Byte offset of the loop keyword.
    pub offset: usize,
    /// Header text between the keyword and the body brace (empty for `loop`).
    pub header: String,
    /// Byte range inside the body braces.
    pub body_range: (usize, usize),
}

/// One function definition with everything the rules consult.
#[derive(Debug)]
pub struct FnInfo {
    /// Index into the file list.
    pub file: usize,
    /// Function name.
    pub name: String,
    /// Byte offset of the name identifier.
    pub name_offset: usize,
    /// Byte range inside the body braces.
    pub body: (usize, usize),
    /// Every call expression in the body, in source order.
    pub calls: Vec<CallSite>,
    /// Every `if` construct in the body.
    pub branches: Vec<BranchInfo>,
    /// Every loop construct in the body.
    pub loops: Vec<LoopInfo>,
    /// Simple `let <ident> = <init>;` bindings, in source order.
    pub lets: Vec<(String, String)>,
    /// Local names whose value (transitively) derives from the rank.
    pub tainted: HashSet<String>,
}

/// Does the half-open byte range contain `offset`?
pub fn contains(range: (usize, usize), offset: usize) -> bool {
    range.0 <= offset && offset < range.1
}

impl FnInfo {
    /// Is this expression text rank-dependent in this function's scope?
    pub fn expr_tainted(&self, text: &str) -> bool {
        idents(text).iter().any(|id| is_rank_name(id) || self.tainted.contains(*id))
    }

    /// The smallest rank-tainted branch arm containing `offset`, with
    /// `true` when the offset sits in the then-arm.
    pub fn innermost_tainted_branch(&self, offset: usize) -> Option<(&BranchInfo, bool)> {
        self.branches
            .iter()
            .filter(|b| self.expr_tainted(&b.cond))
            .filter_map(|b| {
                if contains(b.then_range, offset) {
                    Some((b, true, b.then_range.1 - b.then_range.0))
                } else {
                    b.else_range.filter(|&r| contains(r, offset)).map(|r| (b, false, r.1 - r.0))
                }
            })
            .min_by_key(|&(_, _, size)| size)
            .map(|(b, in_then, _)| (b, in_then))
    }

    /// The smallest enclosing loop whose header is rank-dependent.
    pub fn enclosing_tainted_loop(&self, offset: usize) -> Option<&LoopInfo> {
        self.loops
            .iter()
            .filter(|l| contains(l.body_range, offset) && self.expr_tainted(&l.header))
            .min_by_key(|l| l.body_range.1 - l.body_range.0)
    }
}

/// The whole-workspace analysis input: every parsed file, every extracted
/// function, and the call-graph closure of "performs a symmetric
/// collective on some path".
pub struct Model<'a> {
    /// The parsed files, in the order they index [`FnInfo::file`].
    pub files: &'a [SourceFile],
    /// Every function extracted from every file.
    pub fns: Vec<FnInfo>,
    /// Names of functions that (transitively) issue a symmetric collective.
    pub performers: HashSet<String>,
}

/// Ubiquitous trait-method names excluded from call-graph propagation:
/// a collective inside e.g. some `fmt` impl must not turn every
/// formatting call in the workspace into a collective site.
const PROPAGATION_STOP: &[&str] = &[
    "new", "default", "clone", "drop", "fmt", "from", "into", "eq", "cmp", "hash", "next", "deref",
    "index", "len", "is_empty", "get", "push", "insert", "collect", "map", "iter",
];

impl<'a> Model<'a> {
    /// Extract functions from every file and close over the call graph.
    pub fn build(files: &'a [SourceFile]) -> Model<'a> {
        let fns = extract_fns(files);
        let mut performers: HashSet<String> = HashSet::new();
        loop {
            let mut changed = false;
            for f in &fns {
                if performers.contains(&f.name) {
                    continue;
                }
                let rel = &files[f.file].rel_path;
                let performs = f.calls.iter().any(|c| {
                    base_symmetric(rel, c)
                        || (!PROPAGATION_STOP.contains(&c.callee.as_str())
                            && performers.contains(&c.callee))
                });
                if performs {
                    performers.insert(f.name.clone());
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        Model { files, fns, performers }
    }

    /// Does this call issue a symmetric collective — directly by name, or
    /// by calling a function the call-graph closure marked as a performer?
    pub fn is_symmetric_site(&self, f: &FnInfo, c: &CallSite) -> bool {
        base_symmetric(&self.files[f.file].rel_path, c)
            || (!PROPAGATION_STOP.contains(&c.callee.as_str())
                && self.performers.contains(&c.callee))
    }
}

/// Is this call one of the symmetric collective primitives by name?
/// `reduce`/`reduce_c` count only as method calls in the solver and
/// multi-GPU layers, where the global-reduction discipline (enforced by
/// `cargo xtask lint`) reserves those names for the world-wide reduction —
/// and never in `blas.rs`, the designated local-part kernel module.
pub fn base_symmetric(rel_path: &str, c: &CallSite) -> bool {
    match c.callee.as_str() {
        "allreduce_sum_f64" | "allreduce_max_f64" | "allreduce_vec" | "barrier" => true,
        "reduce" | "reduce_c" => {
            c.is_method
                && !rel_path.ends_with("/blas.rs")
                && (rel_path.starts_with("crates/solvers/")
                    || rel_path.starts_with("crates/multigpu/"))
        }
        _ => false,
    }
}

/// Is this call a point-to-point `send(to, tag, payload)`?
pub fn is_send_site(c: &CallSite) -> bool {
    c.is_method && c.callee == "send" && c.args.len() == 3
}

/// Is this call a point-to-point `recv(from, tag)`?
pub fn is_recv_site(c: &CallSite) -> bool {
    c.is_method && c.callee == "recv" && c.args.len() == 2
}

/// Resolve a tag argument to a canonical, whitespace-free form: a plain
/// identifier is substituted through the function's `let` bindings (one
/// level), and `quda_comm::tags::`/`crate::tags::` prefixes collapse to
/// `tags::` so the same registry entry spells identically everywhere.
pub fn resolve_tag(f: &FnInfo, arg: &str) -> String {
    let t = arg.trim();
    let resolved = if is_plain_ident(t) {
        f.lets
            .iter()
            .rev()
            .find(|(name, _)| name == t)
            .map_or_else(|| t.to_string(), |(_, init)| init.clone())
    } else {
        t.to_string()
    };
    let squished: String = resolved.chars().filter(|c| !c.is_whitespace()).collect();
    squished.replace("quda_comm::tags::", "tags::").replace("crate::tags::", "tags::")
}

/// Does this canonical tag name an entry of the central registry?
pub fn is_registry_tag(canon: &str) -> bool {
    canon.starts_with("tags::")
}

/// Is this canonical tag a bare integer literal?
pub fn is_int_literal(canon: &str) -> bool {
    let t = canon.strip_prefix("0x").unwrap_or(canon);
    !t.is_empty()
        && canon.as_bytes()[0].is_ascii_digit()
        && t.bytes().all(|b| b.is_ascii_hexdigit() || b == b'_')
}

fn is_plain_ident(t: &str) -> bool {
    !t.is_empty() && is_ident_start(t.as_bytes()[0]) && t.bytes().all(is_ident_byte)
}

/// Does this identifier name a rank by the project's naming convention?
fn is_rank_name(id: &str) -> bool {
    id == "rank" || id.starts_with("rank_") || id.ends_with("_rank") || id.contains("_rank_")
}

/// All identifier tokens in `text`, in order.
pub fn idents(text: &str) -> Vec<&str> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if is_ident_start(bytes[i]) && (i == 0 || !is_ident_byte(bytes[i - 1])) {
            let start = i;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            out.push(&text[start..i]);
        } else {
            i += 1;
        }
    }
    out
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Words that can never be a callee even when followed by `(`.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "fn", "match", "let", "mut", "pub", "use", "mod", "impl",
    "struct", "enum", "trait", "type", "where", "unsafe", "move", "async", "await", "as", "in",
    "ref", "break", "continue", "return", "dyn", "static", "const", "crate", "super", "self",
    "Self", "true", "false", "box", "yield",
];

fn extract_fns(files: &[SourceFile]) -> Vec<FnInfo> {
    let mut fns = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        let masked = &file.masked;
        let mut from = 0;
        while let Some(at) = find_word(masked, "fn", from) {
            from = at + 2;
            let Some((name, name_offset, body)) = parse_fn(masked, at) else {
                continue;
            };
            let Some(body) = body else {
                continue; // bodyless trait declaration
            };
            let mut f = FnInfo {
                file: fi,
                name,
                name_offset,
                body,
                calls: Vec::new(),
                branches: Vec::new(),
                loops: Vec::new(),
                lets: Vec::new(),
                tainted: HashSet::new(),
            };
            scan_block(masked, body, &mut f);
            collect_lets(masked, body, &mut f);
            compute_taint(&mut f);
            fns.push(f);
        }
    }
    fns
}

/// A parsed `fn` header: name, name offset, and the body range (`None`
/// for a bodyless trait method).
type ParsedFn = (String, usize, Option<(usize, usize)>);

/// From the `fn` keyword at `at`: the name, its offset, and the body range
/// (None for a bodyless trait method).
fn parse_fn(masked: &str, at: usize) -> Option<ParsedFn> {
    let bytes = masked.as_bytes();
    let mut i = at + 2;
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    if i >= bytes.len() || !is_ident_start(bytes[i]) {
        return None; // `fn(...)` pointer type, not a definition
    }
    let name_offset = i;
    let mut j = i;
    while j < bytes.len() && is_ident_byte(bytes[j]) {
        j += 1;
    }
    let name = masked[i..j].to_string();
    // The signature (generics, params, return type, where clause) cannot
    // contain a brace, so the first `{` opens the body; a `;` first means
    // a trait declaration without a default body.
    let mut k = j;
    while k < bytes.len() {
        match bytes[k] {
            b'{' => {
                let close = matching(bytes, k, b'{', b'}')?;
                return Some((name, name_offset, Some((k + 1, close))));
            }
            b';' => return Some((name, name_offset, None)),
            _ => k += 1,
        }
    }
    None
}

/// First `{` at paren/bracket depth 0 in `[from, limit)` — the body brace
/// of an `if`/`while`/`for` header (struct literals are illegal there).
fn block_open(bytes: &[u8], from: usize, limit: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = from;
    while i < limit {
        match bytes[i] {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b'{' if depth == 0 => return Some(i),
            _ => {}
        }
        i += 1;
    }
    None
}

/// Offset just past the final `}` of an `if`/`else if`/.../`else` chain
/// whose first `if` keyword sits at `if_at`.
fn if_chain_end(bytes: &[u8], mut if_at: usize) -> Option<usize> {
    loop {
        let open = block_open(bytes, if_at + 2, bytes.len())?;
        let close = matching(bytes, open, b'{', b'}')?;
        let mut k = close + 1;
        while k < bytes.len() && bytes[k].is_ascii_whitespace() {
            k += 1;
        }
        if !rest_starts_word(bytes, k, b"else") {
            return Some(close + 1);
        }
        let mut m = k + 4;
        while m < bytes.len() && bytes[m].is_ascii_whitespace() {
            m += 1;
        }
        if m < bytes.len() && bytes[m] == b'{' {
            return Some(matching(bytes, m, b'{', b'}')? + 1);
        }
        if rest_starts_word(bytes, m, b"if") {
            if_at = m;
            continue;
        }
        return Some(close + 1);
    }
}

/// Does `bytes[at..]` start with `word` at an identifier boundary?
fn rest_starts_word(bytes: &[u8], at: usize, word: &[u8]) -> bool {
    at + word.len() <= bytes.len()
        && &bytes[at..at + word.len()] == word
        && bytes.get(at + word.len()).is_none_or(|&b| !is_ident_byte(b))
        && (at == 0 || !is_ident_byte(bytes[at - 1]))
}

/// Scan a body range, recording calls, branches and loops on `f`.
/// Nested `fn` items are skipped (they are extracted separately).
fn scan_block(masked: &str, range: (usize, usize), f: &mut FnInfo) {
    let bytes = masked.as_bytes();
    let mut i = range.0;
    while i < range.1 {
        if !is_ident_start(bytes[i]) || (i > 0 && is_ident_byte(bytes[i - 1])) {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i;
        while j < range.1 && is_ident_byte(bytes[j]) {
            j += 1;
        }
        match &masked[start..j] {
            "if" => {
                let Some(open) = block_open(bytes, j, range.1) else {
                    i = j;
                    continue;
                };
                let Some(close) = matching(bytes, open, b'{', b'}') else {
                    i = j;
                    continue;
                };
                let cond_range = (j, open);
                let then_range = (open + 1, close);
                // Else part: a plain block, an `else if` chain, or absent.
                let mut k = close + 1;
                while k < range.1 && bytes[k].is_ascii_whitespace() {
                    k += 1;
                }
                let mut else_range = None;
                let mut resume = close + 1;
                if rest_starts_word(bytes, k, b"else") {
                    let mut m = k + 4;
                    while m < range.1 && bytes[m].is_ascii_whitespace() {
                        m += 1;
                    }
                    if m < range.1 && bytes[m] == b'{' {
                        if let Some(c2) = matching(bytes, m, b'{', b'}') {
                            else_range = Some((m + 1, c2));
                            resume = c2 + 1;
                        }
                    } else if rest_starts_word(bytes, m, b"if") {
                        if let Some(end) = if_chain_end(bytes, m) {
                            else_range = Some((m, end));
                            resume = m; // the inner `if` is scanned as its own branch
                        }
                    }
                }
                f.branches.push(BranchInfo {
                    offset: start,
                    cond: masked[cond_range.0..cond_range.1].trim().to_string(),
                    then_range,
                    else_range,
                });
                scan_block(masked, cond_range, f);
                scan_block(masked, then_range, f);
                if let Some(r) = else_range {
                    if resume != r.0 {
                        scan_block(masked, r, f);
                    }
                }
                i = resume;
            }
            "while" | "for" => {
                let Some(open) = block_open(bytes, j, range.1) else {
                    i = j;
                    continue;
                };
                let Some(close) = matching(bytes, open, b'{', b'}') else {
                    i = j;
                    continue;
                };
                f.loops.push(LoopInfo {
                    offset: start,
                    header: masked[j..open].trim().to_string(),
                    body_range: (open + 1, close),
                });
                scan_block(masked, (j, open), f);
                scan_block(masked, (open + 1, close), f);
                i = close + 1;
            }
            "loop" => {
                let mut k = j;
                while k < range.1 && bytes[k].is_ascii_whitespace() {
                    k += 1;
                }
                if k < range.1 && bytes[k] == b'{' {
                    if let Some(close) = matching(bytes, k, b'{', b'}') {
                        f.loops.push(LoopInfo {
                            offset: start,
                            header: String::new(),
                            body_range: (k + 1, close),
                        });
                        scan_block(masked, (k + 1, close), f);
                        i = close + 1;
                        continue;
                    }
                }
                i = j;
            }
            "fn" => {
                // Nested item: its calls belong to its own FnInfo.
                i = match parse_fn(masked, start) {
                    Some((_, _, Some((_, close)))) => close + 1,
                    _ => j,
                };
            }
            word => {
                if let Some(site) = parse_call(bytes, masked, start, j) {
                    let _ = word;
                    f.calls.push(site);
                }
                i = j;
            }
        }
    }
}

/// Parse a potential call expression whose callee identifier spans
/// `[start, j)`. Keywords, macros, and uppercase-initial names (tuple
/// variants, struct literals, type paths) are excluded.
fn parse_call(bytes: &[u8], masked: &str, start: usize, j: usize) -> Option<CallSite> {
    let callee = &masked[start..j];
    if KEYWORDS.contains(&callee) || callee.as_bytes()[0].is_ascii_uppercase() {
        return None;
    }
    let mut k = j;
    while k < bytes.len() && bytes[k].is_ascii_whitespace() {
        k += 1;
    }
    if k >= bytes.len() || bytes[k] == b'!' {
        return None; // macro invocation
    }
    // Turbofish: `name::<T>(...)`. A `::` followed by another identifier is
    // a longer path — the final segment will be scanned on its own.
    if bytes[k] == b':' {
        if bytes.get(k + 1) != Some(&b':') {
            return None;
        }
        let mut m = k + 2;
        while m < bytes.len() && bytes[m].is_ascii_whitespace() {
            m += 1;
        }
        if m >= bytes.len() || bytes[m] != b'<' {
            return None;
        }
        k = matching(bytes, m, b'<', b'>')? + 1;
        while k < bytes.len() && bytes[k].is_ascii_whitespace() {
            k += 1;
        }
    }
    if k >= bytes.len() || bytes[k] != b'(' {
        return None;
    }
    let close = matching(bytes, k, b'(', b')')?;
    // Method call: the token before the name is a single `.` (not `..`).
    let mut q = start;
    while q > 0 && bytes[q - 1].is_ascii_whitespace() {
        q -= 1;
    }
    let is_method = q > 0 && bytes[q - 1] == b'.' && !(q > 1 && bytes[q - 2] == b'.');
    Some(CallSite {
        offset: start,
        callee: callee.to_string(),
        is_method,
        args: split_args(&masked[k + 1..close]),
    })
}

/// Split an argument list on top-level commas.
fn split_args(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (i, b) in text.bytes().enumerate() {
        match b {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b',' if depth == 0 => {
                out.push(text[start..i].trim().to_string());
                start = i + 1;
            }
            _ => {}
        }
    }
    let last = text[start..].trim();
    if !last.is_empty() {
        out.push(last.to_string());
    }
    out
}

/// Record simple `let <ident> = <init>;` bindings (patterns more complex
/// than a single identifier are skipped — taint through them is out of
/// this model's scope).
fn collect_lets(masked: &str, range: (usize, usize), f: &mut FnInfo) {
    let bytes = masked.as_bytes();
    let body = &masked[range.0..range.1];
    let mut from = 0;
    while let Some(rel) = find_word(body, "let", from) {
        from = rel + 3;
        let mut i = range.0 + rel + 3;
        while i < range.1 && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if rest_starts_word(bytes, i, b"mut") {
            i += 3;
            while i < range.1 && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
        }
        if i >= range.1 || !is_ident_start(bytes[i]) {
            continue;
        }
        let name_start = i;
        while i < range.1 && is_ident_byte(bytes[i]) {
            i += 1;
        }
        let name = &masked[name_start..i];
        if KEYWORDS.contains(&name) || name.as_bytes()[0].is_ascii_uppercase() {
            continue; // `if let Some(x)` patterns and friends
        }
        while i < range.1 && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        // Optional type ascription: skip to the `=` at bracket depth 0.
        if i < range.1 && bytes[i] == b':' {
            let mut depth = 0i32;
            i += 1;
            while i < range.1 {
                match bytes[i] {
                    b'(' | b'[' | b'<' => depth += 1,
                    b')' | b']' | b'>' => depth -= 1,
                    b'=' if depth == 0 => break,
                    b';' => break,
                    _ => {}
                }
                i += 1;
            }
        }
        if i >= range.1 || bytes[i] != b'=' || bytes.get(i + 1) == Some(&b'=') {
            continue;
        }
        let init_start = i + 1;
        let mut depth = 0i32;
        let mut m = init_start;
        while m < range.1 {
            match bytes[m] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => depth -= 1,
                b';' if depth == 0 => break,
                _ => {}
            }
            m += 1;
        }
        f.lets.push((name.to_string(), masked[init_start..m].trim().to_string()));
        from = m - range.0;
    }
}

/// Fixpoint of rank-taint over the `let` bindings.
fn compute_taint(f: &mut FnInfo) {
    loop {
        let mut changed = false;
        for idx in 0..f.lets.len() {
            let (name, init) = &f.lets[idx];
            if f.tainted.contains(name) {
                continue;
            }
            if f.expr_tainted(init) {
                let name = name.clone();
                f.tainted.insert(name);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_of(src: &str) -> (Vec<SourceFile>, Vec<FnInfo>) {
        let files = vec![SourceFile::parse("crates/comm/src/demo.rs", src)];
        let fns = extract_fns(&files);
        (files, fns)
    }

    #[test]
    fn extracts_fns_calls_and_constructs() {
        let src = "fn a(&mut self) {\n    if self.rank == 0 {\n        self.send(1, 7, v)?;\n    } else {\n        let x = self.recv(0, 7)?;\n    }\n    for i in 0..n {\n        self.barrier()?;\n    }\n}\n";
        let (_, fns) = model_of(src);
        assert_eq!(fns.len(), 1);
        let f = &fns[0];
        assert_eq!(f.name, "a");
        assert_eq!(f.branches.len(), 1);
        assert_eq!(f.loops.len(), 1);
        let names: Vec<&str> = f.calls.iter().map(|c| c.callee.as_str()).collect();
        assert_eq!(names, ["send", "recv", "barrier"]);
        assert!(f.calls[0].is_method);
        assert_eq!(f.calls[0].args, ["1", "7", "v"]);
    }

    #[test]
    fn rank_taint_flows_through_lets() {
        let src = "fn a(&self) {\n    let me = self.rank;\n    let peer = (me + 1) % self.size;\n    let n = self.size;\n    if peer == 0 { work(); }\n}\n";
        let (_, fns) = model_of(src);
        let f = &fns[0];
        assert!(f.tainted.contains("me"));
        assert!(f.tainted.contains("peer"));
        assert!(!f.tainted.contains("n"));
        assert!(f.expr_tainted("peer == 0"));
        assert!(!f.expr_tainted("n == 0"));
    }

    #[test]
    fn else_if_chains_have_an_else_range() {
        let src = "fn a(&self) {\n    if self.rank == 0 { one(); } else if self.rank == 1 { two(); } else { three(); }\n}\n";
        let (_, fns) = model_of(src);
        let f = &fns[0];
        assert_eq!(f.branches.len(), 2);
        let outer = &f.branches[0];
        let inner = &f.branches[1];
        assert!(outer.else_range.is_some());
        // The inner branch and its else-block sit inside the outer's else range.
        let r = outer.else_range.expect("outer else");
        assert!(contains(r, inner.offset));
        assert!(inner.else_range.is_some());
    }

    #[test]
    fn nested_fn_calls_are_not_attributed_to_the_outer_fn() {
        let src = "fn outer(&self) {\n    fn inner() { helper(); }\n    top();\n}\n";
        let (_, fns) = model_of(src);
        assert_eq!(fns.len(), 2);
        let outer = fns.iter().find(|f| f.name == "outer").expect("outer");
        let names: Vec<&str> = outer.calls.iter().map(|c| c.callee.as_str()).collect();
        assert_eq!(names, ["top"]);
    }

    #[test]
    fn call_graph_closure_marks_transitive_performers() {
        let src = "fn leafy(&self) { self.barrier()?; }\nfn wrapper(&self) { self.leafy()?; }\nfn unrelated(&self) { tidy(); }\n";
        let files = vec![SourceFile::parse("crates/comm/src/demo.rs", src)];
        let m = Model::build(&files);
        assert!(m.performers.contains("leafy"));
        assert!(m.performers.contains("wrapper"));
        assert!(!m.performers.contains("unrelated"));
    }

    #[test]
    fn tag_resolution_follows_lets_and_collapses_paths() {
        let src = "fn a(&self) {\n    let tag = quda_comm::tags::gauge(parity.as_usize());\n    self.send(to, tag, v)?;\n}\n";
        let (_, fns) = model_of(src);
        let f = &fns[0];
        let send = f.calls.iter().find(|c| c.callee == "send").expect("send");
        assert_eq!(resolve_tag(f, &send.args[1]), "tags::gauge(parity.as_usize())");
        assert!(is_registry_tag(&resolve_tag(f, &send.args[1])));
        assert!(is_int_literal("17"));
        assert!(is_int_literal("0xffff_0000"));
        assert!(!is_int_literal("tags::FACE_FWD"));
    }
}
