//! quda-rs workspace automation: the static-analysis driver behind
//! `cargo xtask lint`.
//!
//! The lints encode the cross-crate invariants this codebase relies on
//! but the compiler cannot see — the global-reduction discipline, the
//! half-precision normalization contract, the single definition of the
//! ghost-face wire format, and the no-panic rule for code that other
//! ranks block on. See `DESIGN.md` ("Static analysis and machine-checked
//! invariants") for the rationale behind each rule.
//!
//! Architecture: [`source::SourceFile`] lexes a file into a masked token
//! view (comments/strings blanked, positions preserved); each
//! [`rules::Lint`] scans that view and emits [`report::Diagnostic`]s;
//! inline `// quda-lint: allow(<rule>)` comments suppress findings on
//! the same or next line. [`lint_workspace`] walks every workspace `.rs`
//! file and aggregates a [`report::LintReport`] which renders as text or
//! JSON (`--json`).

pub mod collectives;
pub mod hotpath;
pub mod model;
pub mod report;
pub mod rules;
pub mod source;

use report::{Diagnostic, LintReport};
use source::SourceFile;
use std::path::{Path, PathBuf};

/// Lint a single source text as if it lived at `rel_path` in the
/// workspace. This is the entry point the fixture tests drive.
pub fn lint_text(rel_path: &str, text: &str) -> Vec<Diagnostic> {
    let lints = rules::builtin_lints();
    let file = SourceFile::parse(rel_path, text);
    let mut out = Vec::new();
    for lint in &lints {
        if lint.applies(&file.rel_path) {
            lint.check(&file, &mut out);
        }
    }
    out.sort_by_key(|d| (d.line, d.col));
    out
}

/// Directories under the workspace root that contain lintable sources.
const SCAN_ROOTS: [&str; 4] = ["crates", "examples", "tests", "vendor"];

/// Paths (relative, `/`-separated) excluded from scanning: fixture files
/// contain violations on purpose.
fn excluded(rel_path: &str) -> bool {
    rel_path.starts_with("crates/xtask/tests/fixtures/") || rel_path.contains("/target/")
}

/// Walk the workspace and run every rule on every `.rs` file.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let lints = rules::builtin_lints();
    let mut files = Vec::new();
    for dir in SCAN_ROOTS {
        collect_rs_files(&root.join(dir), &mut files)?;
    }
    files.sort();
    let mut diagnostics = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let rel = path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/");
        if excluded(&rel) {
            continue;
        }
        let text = std::fs::read_to_string(path)?;
        scanned += 1;
        let file = SourceFile::parse(&rel, &text);
        for lint in &lints {
            if lint.applies(&file.rel_path) {
                lint.check(&file, &mut diagnostics);
            }
        }
    }
    diagnostics.sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
    Ok(LintReport {
        diagnostics,
        files_scanned: scanned,
        rules: rules::builtin_lints().iter().map(|l| l.name()).collect(),
    })
}

/// Run the collective-ordering analysis on source texts as if they lived
/// at the given workspace-relative paths. Fixture-test entry point.
pub fn collectives_texts(files: &[(&str, &str)]) -> Vec<Diagnostic> {
    let parsed: Vec<SourceFile> =
        files.iter().map(|(rel, text)| SourceFile::parse(rel, text)).collect();
    collectives::analyze(&parsed)
}

/// Walk the workspace and run the collective-ordering analysis over every
/// `.rs` file at once (the analysis is interprocedural: pairing evidence
/// and callee definitions may live in a different file than the finding).
pub fn collectives_workspace(root: &Path) -> std::io::Result<LintReport> {
    let mut paths = Vec::new();
    for dir in SCAN_ROOTS {
        collect_rs_files(&root.join(dir), &mut paths)?;
    }
    paths.sort();
    let mut parsed = Vec::new();
    for path in &paths {
        let rel = path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/");
        if excluded(&rel) {
            continue;
        }
        let text = std::fs::read_to_string(path)?;
        parsed.push(SourceFile::parse(&rel, &text));
    }
    let files_scanned = parsed.len();
    Ok(LintReport {
        diagnostics: collectives::analyze(&parsed),
        files_scanned,
        rules: collectives::rule_list().iter().map(|&(name, _)| name).collect(),
    })
}

/// Run the hot-path analysis on source texts as if they lived at the
/// given workspace-relative paths. Fixture-test entry point.
pub fn hotpath_texts(files: &[(&str, &str)]) -> Vec<Diagnostic> {
    let parsed: Vec<SourceFile> =
        files.iter().map(|(rel, text)| SourceFile::parse(rel, text)).collect();
    hotpath::analyze(&parsed)
}

/// Walk the workspace and run the hot-path analysis over every `.rs`
/// file (the rules are per-file, but sharing the walk with the other
/// passes keeps exclusion and ordering identical).
pub fn hotpath_workspace(root: &Path) -> std::io::Result<LintReport> {
    let mut paths = Vec::new();
    for dir in SCAN_ROOTS {
        collect_rs_files(&root.join(dir), &mut paths)?;
    }
    paths.sort();
    let mut parsed = Vec::new();
    for path in &paths {
        let rel = path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/");
        if excluded(&rel) {
            continue;
        }
        let text = std::fs::read_to_string(path)?;
        parsed.push(SourceFile::parse(&rel, &text));
    }
    let files_scanned = parsed.len();
    Ok(LintReport {
        diagnostics: hotpath::analyze(&parsed),
        files_scanned,
        rules: hotpath::rule_list().iter().map(|&(name, _)| name).collect(),
    })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locate the workspace root: walk up from `CARGO_MANIFEST_DIR` (set when
/// run via `cargo xtask`) or the current directory to the first ancestor
/// holding a `Cargo.toml` with a `[workspace]` table.
pub fn find_workspace_root() -> PathBuf {
    let start =
        std::env::var_os("CARGO_MANIFEST_DIR").map_or_else(|| PathBuf::from("."), PathBuf::from);
    let mut dir = start.as_path();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir.to_path_buf();
            }
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return PathBuf::from("."),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_file_has_no_diagnostics() {
        let src = "pub fn add(a: u32, b: u32) -> u32 { a + b }\n";
        assert!(lint_text("crates/comm/src/clean.rs", src).is_empty());
    }

    #[test]
    fn rules_are_scoped_by_path() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        // In-scope crate: flagged.
        assert_eq!(lint_text("crates/comm/src/a.rs", src).len(), 1);
        // Out-of-scope crate: the no-panic rule does not apply.
        assert!(lint_text("crates/lattice/src/a.rs", src).is_empty());
    }
}
