//! Diagnostics and output formatting (human and machine-readable).

use std::fmt;

/// One lint finding, anchored to a file position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule name (e.g. `no-panic`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}: [{}] {}", self.path, self.line, self.col, self.rule, self.message)
    }
}

/// Result of a whole lint run.
#[derive(Debug)]
pub struct LintReport {
    /// All findings, sorted by path then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Names of the rules that ran.
    pub rules: Vec<&'static str>,
}

impl LintReport {
    /// Render as a stable JSON document for tooling/CI.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"files_scanned\": ");
        s.push_str(&self.files_scanned.to_string());
        s.push_str(",\n  \"rules\": [");
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&json_string(r));
        }
        s.push_str("],\n  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {\"rule\": ");
            s.push_str(&json_string(d.rule));
            s.push_str(", \"path\": ");
            s.push_str(&json_string(&d.path));
            s.push_str(&format!(", \"line\": {}, \"col\": {}, ", d.line, d.col));
            s.push_str("\"message\": ");
            s.push_str(&json_string(&d.message));
            s.push('}');
        }
        if !self.diagnostics.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn report_json_shape() {
        let r = LintReport {
            diagnostics: vec![Diagnostic {
                rule: "no-panic",
                path: "crates/comm/src/world.rs".into(),
                line: 3,
                col: 7,
                message: "don't".into(),
            }],
            files_scanned: 1,
            rules: vec!["no-panic"],
        };
        let j = r.to_json();
        assert!(j.contains("\"files_scanned\": 1"));
        assert!(j.contains("\"line\": 3"));
        assert!(j.contains("\"rule\": \"no-panic\""));
    }
}
