//! Lexical model of one Rust source file.
//!
//! The lint rules do not need a full parse tree; they need the *token
//! stream minus noise*. [`SourceFile::parse`] runs a small Rust lexer that
//! produces a **masked** copy of the text — every comment, string, char
//! literal and lifetime blanked to spaces, byte-for-byte the same length,
//! newlines preserved — so rules can do position-accurate token searches
//! without tripping on `"panic!"` inside a string or an example in a doc
//! comment. Alongside the mask it records:
//!
//! * every comment with its line (for `// SAFETY:` and suppression rules),
//! * `// quda-lint: allow(rule, ...)` suppressions,
//! * which lines sit inside `#[cfg(test)]`-gated items.

use std::collections::{HashMap, HashSet};

/// One comment, sans delimiters, with the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line of the first character of the comment.
    pub line: u32,
    /// Comment text without the `//` / `/*` delimiters.
    pub text: String,
}

/// A lexed workspace source file ready for rule checks.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (e.g. `crates/comm/src/world.rs`).
    pub rel_path: String,
    /// Original text.
    pub text: String,
    /// Same length as `text`; comments, strings, chars and lifetimes are
    /// spaces, everything else verbatim.
    pub masked: String,
    /// All comments in order of appearance.
    pub comments: Vec<Comment>,
    /// Byte offset of the start of each line (index 0 = line 1).
    line_starts: Vec<usize>,
    /// Per line (index 0 = line 1): inside a `#[cfg(test)]` item.
    test_lines: Vec<bool>,
    /// Suppressions: line -> rule names allowed on that line.
    allows: HashMap<u32, HashSet<String>>,
}

impl SourceFile {
    /// Lex `text` (workspace-relative `rel_path` is used for scoping only).
    pub fn parse(rel_path: &str, text: &str) -> SourceFile {
        let (masked, comments) = mask(text);
        let line_starts = line_starts(text);
        let nlines = line_starts.len();
        let mut file = SourceFile {
            rel_path: rel_path.replace('\\', "/"),
            text: text.to_string(),
            masked,
            comments,
            line_starts,
            test_lines: vec![false; nlines],
            allows: HashMap::new(),
        };
        file.collect_allows();
        file.mark_test_regions();
        file
    }

    /// 1-based line containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> u32 {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => (i + 1) as u32,
            Err(i) => i as u32,
        }
    }

    /// 1-based column of byte `offset` within its line.
    pub fn col_of(&self, offset: usize) -> u32 {
        let line = self.line_of(offset) as usize;
        (offset - self.line_starts[line - 1] + 1) as u32
    }

    /// Does `line` (1-based) sit inside a `#[cfg(test)]`-gated item?
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines.get((line as usize).saturating_sub(1)).copied().unwrap_or(false)
    }

    /// Is the whole file a test/bench/example target (by path convention)?
    pub fn is_test_target(&self) -> bool {
        let p = &self.rel_path;
        p.starts_with("tests/")
            || p.starts_with("examples/")
            || p.contains("/tests/")
            || p.contains("/benches/")
            || p.contains("/examples/")
    }

    /// Is `rule` suppressed on `line` via `// quda-lint: allow(...)` on the
    /// same line or the line directly above?
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        [line, line.saturating_sub(1)]
            .iter()
            .any(|l| self.allows.get(l).is_some_and(|set| set.contains(rule)))
    }

    fn collect_allows(&mut self) {
        for c in &self.comments {
            let Some(rest) = c.text.trim().strip_prefix("quda-lint:") else {
                continue;
            };
            let rest = rest.trim();
            let Some(inner) = rest.strip_prefix("allow(").and_then(|r| r.strip_suffix(')')) else {
                continue;
            };
            let set = self.allows.entry(c.line).or_default();
            for rule in inner.split(',') {
                set.insert(rule.trim().to_string());
            }
        }
    }

    /// Find `#[cfg(test)]` / `#[cfg(all(test, ...))]` attributes and mark
    /// the lines of the item they gate (through its closing brace).
    fn mark_test_regions(&mut self) {
        let bytes = self.masked.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] != b'#' {
                i += 1;
                continue;
            }
            let mut j = i + 1;
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if j >= bytes.len() || bytes[j] != b'[' {
                i += 1;
                continue;
            }
            let Some(close) = matching(bytes, j, b'[', b']') else {
                i += 1;
                continue;
            };
            let attr = &self.masked[j + 1..close];
            if is_test_cfg(attr) {
                if let Some(end) = self.item_end(close + 1) {
                    let from = self.line_of(i) as usize - 1;
                    let to = self.line_of(end) as usize - 1;
                    for l in from..=to.min(self.test_lines.len() - 1) {
                        self.test_lines[l] = true;
                    }
                }
            }
            i = close + 1;
        }
    }

    /// From just past an attribute, find the end offset of the gated item:
    /// the matching `}` of its body, or the `;` for body-less items. Skips
    /// any further attributes in between.
    fn item_end(&self, mut i: usize) -> Option<usize> {
        let bytes = self.masked.as_bytes();
        loop {
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if i >= bytes.len() {
                return None;
            }
            if bytes[i] == b'#' {
                // Another attribute: skip it.
                let mut j = i + 1;
                while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                    j += 1;
                }
                if j < bytes.len() && bytes[j] == b'[' {
                    i = matching(bytes, j, b'[', b']')? + 1;
                    continue;
                }
                return None;
            }
            break;
        }
        // Scan to the item body `{` (or a terminating `;`).
        while i < bytes.len() {
            match bytes[i] {
                b'{' => return matching(bytes, i, b'{', b'}'),
                b';' => return Some(i),
                _ => i += 1,
            }
        }
        None
    }
}

/// Does attribute text (inside `#[...]`) gate code to test builds?
/// `cfg(test)` and `cfg(all(test, ...))`/`cfg(any(test, ...))` count;
/// `cfg(not(test))` and `cfg_attr(...)` do not.
fn is_test_cfg(attr: &str) -> bool {
    let t = attr.trim();
    let Some(args) = t.strip_prefix("cfg") else {
        return false;
    };
    let args = args.trim_start();
    if !args.starts_with('(') {
        return false; // e.g. cfg_attr already excluded by exact prefix + '(' check
    }
    // Reject cfg_attr (strip_prefix("cfg") leaves "_attr(...)" which fails
    // the '(' check above), then look for a bare `test` token not negated.
    contains_word(args, "test") && !args.replace(' ', "").contains("not(test")
}

/// Whole-word (identifier-boundary) containment test.
pub fn contains_word(haystack: &str, word: &str) -> bool {
    find_word(haystack, word, 0).is_some()
}

/// Find `word` at an identifier boundary in `haystack`, starting at `from`.
pub fn find_word(haystack: &str, word: &str, from: usize) -> Option<usize> {
    let bytes = haystack.as_bytes();
    let mut start = from;
    while let Some(pos) = haystack[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let after = at + word.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + 1;
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Offset of the matching `close` for the `open` delimiter at `at`.
pub(crate) fn matching(bytes: &[u8], at: usize, open: u8, close: u8) -> Option<usize> {
    debug_assert_eq!(bytes[at], open);
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(at) {
        if b == open {
            depth += 1;
        } else if b == close {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

fn line_starts(text: &str) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' && i + 1 < text.len() {
            starts.push(i + 1);
        }
    }
    starts
}

/// The lexer: blank comments/strings/chars/lifetimes; collect comments.
#[allow(clippy::too_many_lines)]
fn mask(text: &str) -> (String, Vec<Comment>) {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut comments = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0;

    macro_rules! blank {
        ($b:expr) => {
            out.push(if $b == b'\n' { b'\n' } else { b' ' })
        };
    }

    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            out.push(b'\n');
            i += 1;
            continue;
        }
        // Line comment (incl. /// and //! docs).
        if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
            let start_line = line;
            let mut j = i + 2;
            while j < bytes.len() && bytes[j] != b'\n' {
                j += 1;
            }
            comments.push(Comment { line: start_line, text: text[i + 2..j].to_string() });
            for k in i..j {
                blank!(bytes[k]);
            }
            i = j;
            continue;
        }
        // Block comment, possibly nested.
        if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
            let start_line = line;
            let mut depth = 1;
            let mut j = i + 2;
            while j < bytes.len() && depth > 0 {
                if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                    depth += 1;
                    j += 2;
                } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    if bytes[j] == b'\n' {
                        line += 1;
                    }
                    j += 1;
                }
            }
            let body_end = j.saturating_sub(2).max(i + 2);
            comments.push(Comment { line: start_line, text: text[i + 2..body_end].to_string() });
            for k in i..j {
                blank!(bytes[k]);
            }
            i = j;
            continue;
        }
        // Raw (byte) strings: r"...", r#"..."#, br##"..."##.
        if b == b'r' || (b == b'b' && bytes.get(i + 1) == Some(&b'r')) {
            let r_at = if b == b'r' { i } else { i + 1 };
            // Only when `r` starts a literal, not an identifier like `rank`.
            let prev_ident = i > 0 && is_ident_byte(bytes[i - 1]);
            let mut j = r_at + 1;
            let mut hashes = 0;
            while bytes.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if !prev_ident && bytes.get(j) == Some(&b'"') {
                j += 1;
                'raw: while j < bytes.len() {
                    if bytes[j] == b'"' {
                        let mut h = 0;
                        while h < hashes && bytes.get(j + 1 + h) == Some(&b'#') {
                            h += 1;
                        }
                        if h == hashes {
                            j += 1 + hashes;
                            break 'raw;
                        }
                    }
                    if bytes[j] == b'\n' {
                        line += 1;
                    }
                    j += 1;
                }
                for k in i..j {
                    blank!(bytes[k]);
                }
                i = j;
                continue;
            }
        }
        // Plain (byte) string.
        if b == b'"' || (b == b'b' && bytes.get(i + 1) == Some(&b'"')) {
            let q_at = if b == b'"' { i } else { i + 1 };
            if b == b'b' && i > 0 && is_ident_byte(bytes[i - 1]) {
                out.push(b);
                i += 1;
                continue;
            }
            let mut j = q_at + 1;
            while j < bytes.len() {
                match bytes[j] {
                    // An escaped newline (string line-continuation) still
                    // ends a source line — count it or every comment below
                    // is attributed one line too early.
                    b'\\' => {
                        if bytes.get(j + 1) == Some(&b'\n') {
                            line += 1;
                        }
                        j += 2;
                    }
                    b'"' => {
                        j += 1;
                        break;
                    }
                    b'\n' => {
                        line += 1;
                        j += 1;
                    }
                    _ => j += 1,
                }
            }
            for k in i..j.min(bytes.len()) {
                blank!(bytes[k]);
            }
            i = j;
            continue;
        }
        // Char literal vs lifetime.
        if b == b'\'' {
            let next = bytes.get(i + 1).copied();
            let is_lifetime = matches!(next, Some(c) if is_ident_byte(c))
                && bytes.get(i + 2) != Some(&b'\'')
                && next != Some(b'\\');
            if is_lifetime {
                // Blank the lifetime/label so `'a` never reads as a quote.
                blank!(b);
                let mut j = i + 1;
                while j < bytes.len() && is_ident_byte(bytes[j]) {
                    blank!(bytes[j]);
                    j += 1;
                }
                i = j;
                continue;
            }
            // Char literal: '\''-style escapes or a single (multi-byte) char.
            let mut j = i + 1;
            if bytes.get(j) == Some(&b'\\') {
                j += 2;
            } else {
                j += 1;
                while j < bytes.len() && bytes[j] != b'\'' && bytes[j] != b'\n' {
                    j += 1;
                }
            }
            while j < bytes.len() && bytes[j] != b'\'' && bytes[j] != b'\n' {
                j += 1; // e.g. '\u{1f600}'
            }
            if bytes.get(j) == Some(&b'\'') {
                j += 1;
            }
            for k in i..j.min(bytes.len()) {
                blank!(bytes[k]);
            }
            i = j;
            continue;
        }
        out.push(b);
        i += 1;
    }
    (String::from_utf8(out).expect("mask preserves ASCII structure"), comments)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_strings_and_comments() {
        let src = "let s = \"panic!\"; // panic! here\nlet c = 'x';\n";
        let f = SourceFile::parse("crates/demo/src/a.rs", src);
        assert!(!f.masked.contains("panic"));
        assert_eq!(f.masked.len(), src.len());
        assert_eq!(f.comments.len(), 1);
        assert!(f.comments[0].text.contains("panic! here"));
    }

    #[test]
    fn string_line_continuation_keeps_line_count() {
        let src = "let s = \"first \\\n         second\";\n// after\nlet t = 1;\n";
        let f = SourceFile::parse("crates/demo/src/a.rs", src);
        assert_eq!(f.comments.len(), 1);
        assert_eq!(f.comments[0].line, 3);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nlet y = 'y';\n";
        let f = SourceFile::parse("crates/demo/src/a.rs", src);
        assert!(f.masked.contains("fn f<"));
        assert!(f.masked.contains("str) ->"));
        assert!(!f.masked.contains("'y'"));
    }

    #[test]
    fn raw_strings_mask_fully() {
        let src = "let s = r#\"unwrap() \" inside\"#; let t = 1;";
        let f = SourceFile::parse("crates/demo/src/a.rs", src);
        assert!(!f.masked.contains("unwrap"));
        assert!(f.masked.contains("let t = 1;"));
    }

    #[test]
    fn cfg_test_region_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn live2() {}\n";
        let f = SourceFile::parse("crates/demo/src/a.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }\n";
        let f = SourceFile::parse("crates/demo/src/a.rs", src);
        assert!(!f.is_test_line(2));
    }

    #[test]
    fn allow_suppression_parsed() {
        let src = "// quda-lint: allow(no-panic, ghost-sizing)\nlet x = y.unwrap();\n";
        let f = SourceFile::parse("crates/demo/src/a.rs", src);
        assert!(f.is_allowed("no-panic", 2));
        assert!(f.is_allowed("ghost-sizing", 1));
        assert!(!f.is_allowed("half-normalization", 2));
    }

    #[test]
    fn word_boundaries() {
        assert!(contains_word("a.unwrap()", "unwrap"));
        assert!(!contains_word("a.unwrap_or(0)", "unwrap"));
        assert!(!contains_word("sunwrap()", "unwrap"));
    }
}
