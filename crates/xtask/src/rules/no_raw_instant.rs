//! Rule `no-raw-instant`: no direct `Instant::now()` in non-test code of
//! the comm, multigpu and solver crates.
//!
//! Phase attribution only works if every timestamp comes from the single
//! shared epoch clock in `quda-obs` (`clock::monotonic()`): raw `Instant`s
//! from scattered call sites cannot be compared across ranks or merged
//! into one trace, and ad-hoc timing silently bypasses the recorder's
//! span accounting. Hot-path code should open a tracer span (or use
//! `clock::monotonic()` for durations) instead.

use super::{emit, in_test_code, Lint};
use crate::report::Diagnostic;
use crate::source::{find_word, SourceFile};

/// See module docs.
pub struct NoRawInstant;

impl Lint for NoRawInstant {
    fn name(&self) -> &'static str {
        "no-raw-instant"
    }

    fn description(&self) -> &'static str {
        "no Instant::now() outside quda-obs in comm, multigpu and solver code"
    }

    fn applies(&self, rel_path: &str) -> bool {
        ["crates/comm/src/", "crates/multigpu/src/", "crates/solvers/src/"]
            .iter()
            .any(|p| rel_path.starts_with(p))
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if file.is_test_target() {
            return;
        }
        let bytes = file.masked.as_bytes();
        let mut at = 0;
        while let Some(pos) = find_word(&file.masked, "Instant", at) {
            at = pos + "Instant".len();
            if in_test_code(file, pos) {
                continue;
            }
            // Flag `Instant :: now`, whitespace-tolerant.
            let mut i = at;
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if !file.masked[i..].starts_with("::") {
                continue;
            }
            i += 2;
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if find_word(&file.masked, "now", i) == Some(i) {
                emit(
                    file,
                    self.name(),
                    pos,
                    "raw `Instant::now()` bypasses the shared trace clock; use a tracer \
                     span or `quda_obs::clock::monotonic()` so the sample lands in the \
                     phase breakdown"
                        .to_owned(),
                    out,
                );
            }
        }
    }
}
