//! Rule `global-reduce`: solver and multi-GPU code must not finish a
//! reduction locally — `.sum()`, `.fold()`, `.product()` and plain
//! accumulator loops bypass the global-reduce API.
//!
//! In the paper's multi-GPU CG (Section VI-E), every inner product and
//! norm is a *partial* sum until `allreduce` combines it across ranks;
//! a local `.sum()` that skips `LinearOperator::reduce` /
//! `Communicator::allreduce_*` silently computes rank-local dot products
//! and the solver diverges only at scale. Local-part kernels live in
//! `quda-solvers/src/blas.rs`, which is the one exempt module.

use super::{emit, in_test_code, next_nonspace, prev_nonspace, Lint};
use crate::report::Diagnostic;
use crate::source::{find_word, SourceFile};

/// See module docs.
pub struct GlobalReduce;

const ITER_REDUCERS: [&str; 3] = ["sum", "fold", "product"];

impl Lint for GlobalReduce {
    fn name(&self) -> &'static str {
        "global-reduce"
    }

    fn description(&self) -> &'static str {
        "reductions in solver/multigpu code must go through the global-reduce API"
    }

    fn applies(&self, rel_path: &str) -> bool {
        if rel_path == "crates/solvers/src/blas.rs" {
            return false; // the designated local-part kernel module
        }
        ["crates/solvers/src/", "crates/multigpu/src/"].iter().any(|p| rel_path.starts_with(p))
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if file.is_test_target() {
            return;
        }
        self.check_iterator_reducers(file, out);
        self.check_accumulator_loops(file, out);
    }
}

impl GlobalReduce {
    fn check_iterator_reducers(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for reducer in ITER_REDUCERS {
            let mut at = 0;
            while let Some(pos) = find_word(&file.masked, reducer, at) {
                at = pos + reducer.len();
                if in_test_code(file, pos) {
                    continue;
                }
                // `.sum(`, `.sum::<`, `.fold(` — a method call on an iterator.
                let follows = next_nonspace(&file.masked, at);
                let called = follows == Some(b'(') || follows == Some(b':');
                if prev_nonspace(&file.masked, pos) == Some(b'.') && called {
                    emit(
                        file,
                        self.name(),
                        pos,
                        format!(
                            "`.{reducer}()` finishes a reduction locally; partial sums must \
                             go through LinearOperator::reduce / Communicator::allreduce so \
                             every rank agrees on the result"
                        ),
                        out,
                    );
                }
            }
        }
    }

    /// Heuristic: `let mut acc = 0.0;` followed (within a short window) by
    /// a `for` loop that does `acc += ...` is a hand-rolled local
    /// reduction. The window keeps the rule from pairing unrelated code.
    fn check_accumulator_loops(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let masked = &file.masked;
        let mut at = 0;
        while let Some(pos) = find_word(masked, "let", at) {
            at = pos + 3;
            let Some(acc) = parse_float_accumulator(masked, pos) else {
                continue;
            };
            if in_test_code(file, pos) {
                continue;
            }
            // Look ahead up to 40 lines for `for ... { acc += ... }`.
            let window_end = nth_newline_after(masked, pos, 40);
            let Some(for_at) = find_word(&masked[..window_end], "for", at) else {
                continue;
            };
            let mut search = for_at;
            while let Some(plus_at) = find_word(&masked[..window_end], &acc, search) {
                search = plus_at + acc.len();
                if next_nonspace(masked, search) == Some(b'+')
                    && masked.as_bytes().get(plus_of(masked, search) + 1) == Some(&b'=')
                {
                    // Anchor at the accumulator declaration: that is where a
                    // `quda-lint: allow` suppression naturally sits.
                    emit(
                        file,
                        self.name(),
                        pos,
                        format!(
                            "accumulator loop over `{acc}` is a local reduction; use the \
                             blas local-part kernels plus a global reduce instead"
                        ),
                        out,
                    );
                    break;
                }
            }
        }
    }
}

/// If `let` at `pos` starts `let mut <id>[: f64] = 0.0…;`, return `<id>`.
fn parse_float_accumulator(masked: &str, let_pos: usize) -> Option<String> {
    let rest = &masked[let_pos + 3..];
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("mut")?;
    let rest = rest.trim_start();
    let id_len = rest.bytes().take_while(|b| b.is_ascii_alphanumeric() || *b == b'_').count();
    if id_len == 0 {
        return None;
    }
    let (id, rest) = rest.split_at(id_len);
    let rest = rest.trim_start();
    let rest = rest.strip_prefix(": f64").unwrap_or(rest).trim_start();
    let rest = rest.strip_prefix('=')?.trim_start();
    for zero in ["0.0f64;", "0.0;", "0f64;", "0.;"] {
        if rest.starts_with(zero) {
            return Some(id.to_string());
        }
    }
    None
}

/// Byte offset just past the `n`-th newline after `from` (or end of text).
fn nth_newline_after(masked: &str, from: usize, n: usize) -> usize {
    let mut seen = 0;
    for (i, b) in masked.bytes().enumerate().skip(from) {
        if b == b'\n' {
            seen += 1;
            if seen == n {
                return i;
            }
        }
    }
    masked.len()
}

/// Offset of the `+` that [`super::next_nonspace`] saw at/after `from`.
fn plus_of(masked: &str, from: usize) -> usize {
    masked.as_bytes()[from..]
        .iter()
        .position(|b| !b.is_ascii_whitespace())
        .map_or(masked.len(), |i| from + i)
}
