//! Rule `ghost-sizing`: ghost-face byte lengths come from the sizing
//! functions in `quda-multigpu::ghost` — the single source of truth —
//! never from locally re-derived `sites * reals * bytes` arithmetic.
//!
//! The wire format of a face (Section VI-D of the paper: spin-projected
//! half spinors plus, for half/quarter precision, the per-site norms) is
//! easy to re-derive and easy to re-derive *wrongly* — forgetting the
//! norm tail under- allocates receive buffers only for half precision,
//! which is exactly the kind of corruption that surfaces as a wrong
//! residual three crates away. Any code multiplying a face-site count by
//! storage sizes outside `ghost.rs` is flagged.

use super::{emit, in_test_code, Lint};
use crate::report::Diagnostic;
use crate::source::{find_word, SourceFile};

/// See module docs.
pub struct GhostSizing;

/// Tokens that mean "I am computing a storage size by hand".
const SIZE_TOKENS: [&str; 4] = ["STORAGE_BYTES", "storage_bytes", "HALF_SPINOR_REALS", "size_of"];

impl Lint for GhostSizing {
    fn name(&self) -> &'static str {
        "ghost-sizing"
    }

    fn description(&self) -> &'static str {
        "ghost-face byte lengths must come from quda-multigpu::ghost sizing functions"
    }

    fn applies(&self, rel_path: &str) -> bool {
        if rel_path == "crates/multigpu/src/ghost.rs" {
            return false; // the source of truth itself
        }
        ["crates/multigpu/src/", "crates/comm/src/", "crates/bench/"]
            .iter()
            .any(|p| rel_path.starts_with(p))
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if file.is_test_target() {
            return;
        }
        for token in SIZE_TOKENS {
            let mut at = 0;
            while let Some(pos) = find_word(&file.masked, token, at) {
                at = pos + token.len();
                if in_test_code(file, pos) {
                    continue;
                }
                // Only flag when the same line also talks about faces —
                // storage sizes are fine in non-face contexts.
                let line = file.line_of(pos) as usize;
                let line_text = file.masked.lines().nth(line - 1).unwrap_or("");
                if line_text.contains("face_wire_bytes") {
                    // Routing through the ghost.rs sizing functions is the
                    // sanctioned pattern, even when the call site forwards
                    // its own storage parameters.
                    continue;
                }
                if line_text.contains("face") {
                    emit(
                        file,
                        self.name(),
                        pos,
                        "face byte length derived locally; call \
                         quda_multigpu::ghost::face_wire_bytes* so the wire \
                         format has one definition"
                            .to_string(),
                        out,
                    );
                }
            }
        }
    }
}
