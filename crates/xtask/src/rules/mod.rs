//! The lint rules. Each rule is a [`Lint`] implementation scoped to the
//! part of the workspace where its invariant is load-bearing.

use crate::report::Diagnostic;
use crate::source::SourceFile;

mod ghost_sizing;
mod global_reduce;
mod half_normalization;
mod no_panic;
mod no_raw_instant;
mod safety_comment;

pub use ghost_sizing::GhostSizing;
pub use global_reduce::GlobalReduce;
pub use half_normalization::HalfNormalization;
pub use no_panic::NoPanic;
pub use no_raw_instant::NoRawInstant;
pub use safety_comment::SafetyComment;

/// A single statically-checked project invariant.
pub trait Lint {
    /// Stable rule name, used in reports and `quda-lint: allow(...)`.
    fn name(&self) -> &'static str;
    /// One-line description of the invariant.
    fn description(&self) -> &'static str;
    /// Whether the rule runs on this workspace-relative path.
    fn applies(&self, rel_path: &str) -> bool;
    /// Scan one file, pushing findings. Suppressions are handled by the
    /// caller; rules emit unconditionally via [`emit`].
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>);
}

/// All rules, in reporting order.
pub fn builtin_lints() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(NoPanic),
        Box::new(GlobalReduce),
        Box::new(HalfNormalization),
        Box::new(GhostSizing),
        Box::new(SafetyComment),
        Box::new(NoRawInstant),
    ]
}

/// Push a diagnostic at byte `offset` unless suppressed by an inline
/// `// quda-lint: allow(<rule>)` on the same or preceding line.
pub(crate) fn emit(
    file: &SourceFile,
    rule: &'static str,
    offset: usize,
    message: String,
    out: &mut Vec<Diagnostic>,
) {
    let line = file.line_of(offset);
    if file.is_allowed(rule, line) {
        return;
    }
    out.push(Diagnostic {
        rule,
        path: file.rel_path.clone(),
        line,
        col: file.col_of(offset),
        message,
    });
}

/// True when `offset` falls in `#[cfg(test)]`-gated code.
pub(crate) fn in_test_code(file: &SourceFile, offset: usize) -> bool {
    file.is_test_line(file.line_of(offset))
}

/// Next non-whitespace byte at or after `from`.
pub(crate) fn next_nonspace(masked: &str, from: usize) -> Option<u8> {
    masked.as_bytes()[from..].iter().copied().find(|b| !b.is_ascii_whitespace())
}

/// Previous non-whitespace byte strictly before `at`.
pub(crate) fn prev_nonspace(masked: &str, at: usize) -> Option<u8> {
    masked.as_bytes()[..at].iter().rev().copied().find(|b| !b.is_ascii_whitespace())
}
