//! Rule `half-normalization`: fixed-point (half/quarter) conversions go
//! through the `quda-math::half` normalization helpers — never raw
//! `Fixed16::quantize` / `Fixed8::quantize` calls or `Fixed16(bits)`
//! constructions outside `quda-math`.
//!
//! Half precision in the paper (Section VI-C) is a *block* format: 16-bit
//! mantissas are only meaningful together with the per-site float norm
//! that scales them. Code that quantizes a value without going through
//! the site-block helpers can silently drop or double-apply the norm,
//! which shows up as a precision loss the mixed-precision solver then
//! "corrects" with extra reliable updates — a performance bug that is
//! very hard to bisect.

use super::{emit, in_test_code, next_nonspace, Lint};
use crate::report::Diagnostic;
use crate::source::{find_word, SourceFile};

/// See module docs.
pub struct HalfNormalization;

const TYPES: [&str; 2] = ["Fixed16", "Fixed8"];

impl Lint for HalfNormalization {
    fn name(&self) -> &'static str {
        "half-normalization"
    }

    fn description(&self) -> &'static str {
        "fixed-point conversions must use quda-math::half site-block helpers"
    }

    fn applies(&self, rel_path: &str) -> bool {
        rel_path.starts_with("crates/") && !rel_path.starts_with("crates/math/")
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if file.is_test_target() {
            return;
        }
        for ty in TYPES {
            let mut at = 0;
            while let Some(pos) = find_word(&file.masked, ty, at) {
                at = pos + ty.len();
                if in_test_code(file, pos) {
                    continue;
                }
                match next_nonspace(&file.masked, at) {
                    // `Fixed16(bits)` — raw from-bits construction.
                    Some(b'(') => emit(
                        file,
                        self.name(),
                        pos,
                        format!(
                            "raw `{ty}(..)` construction bypasses block normalization; \
                             use the quda_math::half site-block helpers"
                        ),
                        out,
                    ),
                    // `Fixed16::quantize(..)` / `::dequantize` — per-value
                    // conversion without the site norm.
                    Some(b':') => {
                        let rest = &file.masked[at..];
                        let callee = rest.trim_start().trim_start_matches(':').trim_start();
                        if callee.starts_with("quantize") || callee.starts_with("dequantize") {
                            emit(
                                file,
                                self.name(),
                                pos,
                                format!(
                                    "`{ty}::quantize`/`dequantize` outside quda-math skips \
                                     per-site normalization; use quantize_sites16/8 or \
                                     dequantize_sites16/8 from quda_math::half"
                                ),
                                out,
                            );
                        }
                    }
                    _ => {}
                }
            }
        }
    }
}
