//! Rule `safety-comment`: every `unsafe` block or function carries a
//! `// SAFETY:` comment on it or just above it stating the invariant
//! that makes it sound.

use super::{emit, Lint};
use crate::report::Diagnostic;
use crate::source::{find_word, SourceFile};

/// See module docs.
pub struct SafetyComment;

impl Lint for SafetyComment {
    fn name(&self) -> &'static str {
        "safety-comment"
    }

    fn description(&self) -> &'static str {
        "every unsafe block needs a // SAFETY: comment"
    }

    fn applies(&self, rel_path: &str) -> bool {
        // Everywhere, tests included: an undocumented unsafe block in a
        // test is just as unauditable.
        rel_path.ends_with(".rs")
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let mut at = 0;
        while let Some(pos) = find_word(&file.masked, "unsafe", at) {
            at = pos + "unsafe".len();
            let line = file.line_of(pos);
            let documented = file
                .comments
                .iter()
                .any(|c| c.line + 3 >= line && c.line <= line && c.text.contains("SAFETY:"));
            if !documented {
                emit(
                    file,
                    self.name(),
                    pos,
                    "`unsafe` without a `// SAFETY:` comment; state the invariant \
                     that makes this sound"
                        .to_string(),
                    out,
                );
            }
        }
    }
}
