//! Rule `no-panic`: no `.unwrap()` / `.expect()` / panicking macros in
//! non-test code of the communication and solver hot paths.
//!
//! A rank that panics mid-collective hangs every other rank at the next
//! barrier (the failure mode Section VII of the paper's strong-scaling
//! runs make expensive); hot-path code must surface `CommError` /
//! `SolverError` instead so the caller can retire the rank.

use super::{emit, in_test_code, next_nonspace, prev_nonspace, Lint};
use crate::report::Diagnostic;
use crate::source::{find_word, SourceFile};

/// See module docs.
pub struct NoPanic;

const METHODS: [&str; 2] = ["unwrap", "expect"];
const MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

impl Lint for NoPanic {
    fn name(&self) -> &'static str {
        "no-panic"
    }

    fn description(&self) -> &'static str {
        "no unwrap()/expect()/panic! in non-test comm, multigpu and solver code"
    }

    fn applies(&self, rel_path: &str) -> bool {
        ["crates/comm/src/", "crates/multigpu/src/", "crates/solvers/src/"]
            .iter()
            .any(|p| rel_path.starts_with(p))
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if file.is_test_target() {
            return;
        }
        for method in METHODS {
            let mut at = 0;
            while let Some(pos) = find_word(&file.masked, method, at) {
                at = pos + method.len();
                if in_test_code(file, pos) {
                    continue;
                }
                // Method call: preceded by `.`, followed by `(`.
                if prev_nonspace(&file.masked, pos) == Some(b'.')
                    && next_nonspace(&file.masked, at) == Some(b'(')
                {
                    emit(
                        file,
                        self.name(),
                        pos,
                        format!(
                            "`.{method}()` in a hot path can hang peer ranks; \
                             propagate a typed error (CommError/SolverError) instead"
                        ),
                        out,
                    );
                }
            }
        }
        for mac in MACROS {
            let mut at = 0;
            while let Some(pos) = find_word(&file.masked, mac, at) {
                at = pos + mac.len();
                if in_test_code(file, pos) {
                    continue;
                }
                if next_nonspace(&file.masked, at) == Some(b'!') {
                    emit(
                        file,
                        self.name(),
                        pos,
                        format!(
                            "`{mac}!` aborts this rank and deadlocks the others at the \
                             next collective; return an error instead"
                        ),
                        out,
                    );
                }
            }
        }
    }
}
