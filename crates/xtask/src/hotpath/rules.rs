//! The four hot-path rules, evaluated over a [`Model`].
//!
//! All four are per-function: the [`Model`]'s flat loop list plus
//! byte-range containment is enough to ask "does this construct sit in a
//! loop body?", which is the whole question. Scope is the hot crates —
//! the ones the bandwidth model of the paper (Eq. 3–5) budgets — so a
//! `format!` in a cold CLI crate stays none of this pass's business.

use crate::model::{contains, FnInfo, Model};
use crate::report::Diagnostic;
use crate::source::SourceFile;

/// Rule names, stable for reports and `// quda-lint: allow(...)`.
pub const HOT_ALLOC: &str = "hot-alloc";
/// See [`HOT_ALLOC`].
pub const HOT_INDEX: &str = "hot-index";
/// See [`HOT_ALLOC`].
pub const HOT_LOCK: &str = "hot-lock";
/// See [`HOT_ALLOC`].
pub const SCRATCH_REUSE: &str = "scratch-reuse";

/// `(name, description)` of every hot-path rule, in reporting order.
pub fn rule_list() -> [(&'static str, &'static str); 4] {
    [
        (
            HOT_ALLOC,
            "no heap-allocating constructs (Vec::new, vec!, to_vec, collect, clone, Box::new, \
             format!, to_string) inside loop bodies of hot-crate code; allocate once in setup \
             and reach buffers through a workspace/scratch type",
        ),
        (
            HOT_INDEX,
            "site kernels must not iterate element-wise via `for i in 0..n { a[i] .. }`; use \
             the sanctioned field combinators or chunks_exact block slices, which elide bounds \
             checks and autovectorize",
        ),
        (
            HOT_LOCK,
            "no Mutex/RwLock acquisition inside a loop body of hot-crate code; hoist the guard \
             out of the loop or restructure so the kernel owns its data",
        ),
        (
            SCRATCH_REUSE,
            "hot pack/unpack/codec entry points must fill a &mut scratch buffer instead of \
             returning a freshly collected Vec, so steady-state iterations reuse capacity",
        ),
    ]
}

/// The crates whose `src/` trees the rules police — the hot crates of the
/// paper's bandwidth model.
fn in_scope(rel_path: &str) -> bool {
    [
        "crates/solvers/src/",
        "crates/dirac/src/",
        "crates/multigpu/src/",
        "crates/math/src/",
        "crates/service/src/",
    ]
    .iter()
    .any(|p| rel_path.starts_with(p))
}

/// The designated element-wise kernel modules `hot-index` polices: the
/// files whose loops *are* the memory-bandwidth budget.
fn is_site_kernel_file(rel_path: &str) -> bool {
    in_scope(rel_path)
        && ["/blas.rs", "/su3.rs", "/cpu_opt.rs", "/dslash.rs", "/clover_apply.rs"]
            .iter()
            .any(|f| rel_path.ends_with(f))
}

/// Emit unless the site is test code or suppressed.
fn report(
    file: &SourceFile,
    rule: &'static str,
    offset: usize,
    message: String,
    out: &mut Vec<Diagnostic>,
) {
    if file.is_test_target() || file.is_test_line(file.line_of(offset)) {
        return;
    }
    crate::rules::emit(file, rule, offset, message, out);
}

/// Is `offset` inside the body of any loop of `f`?
fn in_loop(f: &FnInfo, offset: usize) -> bool {
    f.loops.iter().any(|l| contains(l.body_range, offset))
}

/// Allocating constructs `hot-alloc` hunts for. Each entry is
/// `(needle, word_start)`: `word_start` needles must begin at an
/// identifier boundary (`Vec::new` must not match `MyVec::new`'s tail);
/// needles starting with `.` anchor themselves.
const ALLOC_NEEDLES: &[(&str, bool)] = &[
    ("Vec::new", true),
    ("Vec::with_capacity", true),
    ("vec!", true),
    ("Box::new", true),
    ("String::new", true),
    ("String::with_capacity", true),
    ("format!", true),
    (".to_vec()", false),
    (".to_string()", false),
    (".to_owned()", false),
    (".clone()", false),
    (".collect()", false),
    (".collect::<", false),
];

/// Rule `hot-alloc`: an allocating construct inside any loop body of a
/// hot-crate function. The flat loop list makes nesting irrelevant — the
/// construct is scanned once per function and tested for containment in
/// any loop, so nested loops yield one finding, not one per level.
pub fn hot_alloc(model: &Model, out: &mut Vec<Diagnostic>) {
    for f in &model.fns {
        let file = &model.files[f.file];
        if !in_scope(&file.rel_path) || f.loops.is_empty() {
            continue;
        }
        let body = &file.masked[f.body.0..f.body.1];
        for &(needle, word_start) in ALLOC_NEEDLES {
            let mut from = 0;
            while let Some(pos) = body[from..].find(needle) {
                let at = f.body.0 + from + pos;
                from += pos + needle.len();
                if word_start && at > 0 && is_ident_byte(file.masked.as_bytes()[at - 1]) {
                    continue;
                }
                if !in_loop(f, at) {
                    continue;
                }
                report(
                    file,
                    HOT_ALLOC,
                    at,
                    format!(
                        "`{}` allocates inside a loop body in a hot crate; allocate in setup \
                         and thread the buffer through a workspace/scratch type",
                        needle.trim_start_matches('.').trim_end_matches("::<"),
                    ),
                    out,
                );
            }
        }
    }
}

/// Parse a `for` header as an element-wise counted range: returns the
/// loop variable when the header reads `<ident> in 0..<bound>` (or
/// `0..=<bound>`) with a *runtime* bound. Literal bounds (`for d in 0..4`)
/// are fixed-extent color/spin/dimension loops the compiler fully
/// unrolls — not element-wise site iteration.
fn counted_range_var(header: &str) -> Option<&str> {
    let t = header.trim();
    let (var, range) = t.split_once(" in ")?;
    let var = var.trim();
    if var.is_empty() || !var.bytes().all(is_ident_byte) {
        return None;
    }
    let range = range.trim();
    let bound = range.strip_prefix("0..")?.trim_start_matches('=').trim();
    if !bound.is_empty() && bound.bytes().all(|b| b.is_ascii_digit() || b == b'_') {
        return None;
    }
    Some(var)
}

/// Does the loop body index element-wise with `var`: `a[var]`,
/// `.get(var)` or `.set(var, ..)`? The delimiters in each pattern pin the
/// identifier on both sides, so plain substring search is boundary-exact.
fn body_indexes_with(body: &str, var: &str) -> bool {
    [format!("[{var}]"), format!(".get({var})"), format!(".set({var},")]
        .iter()
        .any(|pat| body.contains(pat.as_str()))
}

/// Rule `hot-index`: an element-wise counted loop that indexes with its
/// counter, inside one of the designated site-kernel files. One finding
/// per loop, anchored at the loop keyword.
pub fn hot_index(model: &Model, out: &mut Vec<Diagnostic>) {
    for f in &model.fns {
        let file = &model.files[f.file];
        if !is_site_kernel_file(&file.rel_path) {
            continue;
        }
        for l in &f.loops {
            let Some(var) = counted_range_var(&l.header) else {
                continue;
            };
            let body = &file.masked[l.body_range.0..l.body_range.1];
            if body_indexes_with(body, var) {
                report(
                    file,
                    HOT_INDEX,
                    l.offset,
                    format!(
                        "element-wise indexed loop `for {} in {}` in a site-kernel module; \
                         rewrite with field combinators or chunks_exact block slices so bounds \
                         checks vanish and the loop autovectorizes",
                        var,
                        l.header.trim().split_once(" in ").map_or("0..n", |(_, r)| r.trim()),
                    ),
                    out,
                );
            }
        }
    }
}

/// Rule `hot-lock`: a `Mutex`/`RwLock` acquisition inside a loop body.
/// `.lock()` always counts; `.read()`/`.write()` count only with zero
/// arguments (the `RwLock` guard shape — `io::Read`/`io::Write` calls
/// take a buffer).
pub fn hot_lock(model: &Model, out: &mut Vec<Diagnostic>) {
    for f in &model.fns {
        let file = &model.files[f.file];
        if !in_scope(&file.rel_path) {
            continue;
        }
        for c in &f.calls {
            if !c.is_method || !in_loop(f, c.offset) {
                continue;
            }
            let is_lock = c.callee == "lock"
                || ((c.callee == "read" || c.callee == "write") && c.args.is_empty());
            if is_lock {
                report(
                    file,
                    HOT_LOCK,
                    c.offset,
                    format!(
                        "`.{}()` acquires a lock inside a loop body in a hot crate; hoist the \
                         guard above the loop or restructure so the kernel owns its data",
                        c.callee
                    ),
                    out,
                );
            }
        }
    }
}

/// Entry-point name prefixes `scratch-reuse` treats as hot codec/gather
/// functions: the ghost pack/unpack surface of the multi-GPU exchange.
const SCRATCH_PREFIXES: &[&str] = &["encode", "decode", "gather", "scatter", "pack", "unpack"];

/// Rule `scratch-reuse`: a hot codec/gather entry point whose signature
/// returns a fresh `Vec` instead of filling a caller-owned buffer.
pub fn scratch_reuse(model: &Model, out: &mut Vec<Diagnostic>) {
    for f in &model.fns {
        let file = &model.files[f.file];
        if !in_scope(&file.rel_path) {
            continue;
        }
        if !SCRATCH_PREFIXES.iter().any(|p| f.name.starts_with(p)) {
            continue;
        }
        let sig: String =
            file.masked[f.name_offset..f.body.0].chars().filter(|c| !c.is_whitespace()).collect();
        // Only the return type matters: arguments of type Vec are fine.
        let Some(ret) = sig.split_once("->").map(|(_, r)| r) else {
            continue;
        };
        // `Result<Vec<..>, E>` counts too: the Ok payload is still a fresh
        // allocation per call on the steady-state path.
        if ret.starts_with("Vec<")
            || ret.contains("(Vec<")
            || ret.contains(",Vec<")
            || ret.contains("<Vec<")
        {
            report(
                file,
                SCRATCH_REUSE,
                f.name_offset,
                format!(
                    "hot entry point `{}` returns a freshly allocated Vec; take a `&mut` \
                     scratch buffer (cleared and refilled in place) so steady-state calls \
                     reuse capacity",
                    f.name
                ),
                out,
            );
        }
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}
