//! Hot-path performance analysis — the engine behind `cargo xtask hotpath`.
//!
//! The paper's performance model (Eq. 3–5) says the solve is
//! bandwidth-bound: every byte an inner loop spends on a fresh heap
//! allocation, a bounds check, or a lock handshake is a byte not spent
//! streaming gauge links. This pass encodes that budget as four
//! machine-checked rules over the hot crates (`solvers`, `dirac`,
//! `multigpu`, `math`), built on the same masked-text lexer and sub-AST
//! program model ([`crate::model`]) as the collective-ordering analysis:
//!
//! * `hot-alloc` — no allocating constructs (`Vec::new`, `vec!`,
//!   `.to_vec()`, `.collect()`, `.clone()`, `Box::new`, `format!`, ...)
//!   inside any loop body; allocation belongs in setup, reached through a
//!   workspace/scratch type.
//! * `hot-index` — the designated site-kernel modules (`blas.rs`,
//!   `su3.rs`, the dslash/clover kernels) must not iterate element-wise
//!   via `for i in 0..n { a[i] ... }`; the sanctioned forms are field
//!   combinators and `chunks_exact` block slices, which elide bounds
//!   checks and autovectorize.
//! * `hot-lock` — no `Mutex`/`RwLock` acquisition inside a kernel loop.
//! * `scratch-reuse` — hot pack/unpack/codec entry points take `&mut`
//!   scratch buffers instead of returning freshly collected `Vec`s.
//!
//! Findings use the same diagnostic format, `// quda-lint: allow(<rule>)`
//! suppressions and test-code exemptions as the other passes.

pub mod rules;

use crate::report::Diagnostic;
use crate::source::SourceFile;

/// Run every hot-path rule over a set of parsed files.
pub fn analyze(files: &[SourceFile]) -> Vec<Diagnostic> {
    let model = crate::model::Model::build(files);
    let mut out = Vec::new();
    rules::hot_alloc(&model, &mut out);
    rules::hot_index(&model, &mut out);
    rules::hot_lock(&model, &mut out);
    rules::scratch_reuse(&model, &mut out);
    out.sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    out
}

/// `(name, description)` of the hot-path rules, for `--list`.
pub fn rule_list() -> [(&'static str, &'static str); 4] {
    rules::rule_list()
}
