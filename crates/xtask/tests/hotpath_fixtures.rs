//! Fixture tests for the hot-path performance analysis: each fixture under
//! `tests/fixtures/` is analyzed as if it lived in a hot crate, and the
//! produced diagnostics are asserted *exactly* — file, line, column and
//! rule — including `// quda-lint: allow(<rule>)` suppression and its
//! resurfacing when the comment is removed.
//!
//! The fixtures directory is excluded from the workspace walk, so the
//! deliberate allocations-in-loops here never fail `cargo xtask hotpath`.

use xtask::hotpath_texts;

/// Analyze one fixture text as `rel_path` and assert the exact
/// `(line, col, rule)` set.
fn assert_diags(rel_path: &str, text: &str, expected: &[(u32, u32, &str)]) {
    let got: Vec<(u32, u32, String)> = hotpath_texts(&[(rel_path, text)])
        .into_iter()
        .map(|d| {
            assert_eq!(d.path, rel_path);
            (d.line, d.col, d.rule.to_string())
        })
        .collect();
    let expected: Vec<(u32, u32, String)> =
        expected.iter().map(|&(l, c, r)| (l, c, r.to_string())).collect();
    assert_eq!(got, expected, "diagnostics for {rel_path}");
}

#[test]
fn general_fixture_exact_diagnostics() {
    // A `vec!` in a for body (10), a `.clone()` in a while body (20), a
    // `.lock()` and a zero-arg `.read()` inside loops (37, 45), and two
    // codec entry points returning fresh Vecs — directly (69) and inside a
    // Result (73). The setup-time allocations, the hoisted guard, the
    // `&mut` out-parameter decoder, the `Bytes` packer, the non-codec Vec
    // helper and the allow-suppressed `format!` are all clean.
    assert_diags(
        "crates/multigpu/src/fixture.rs",
        include_str!("fixtures/hotpath_general.rs"),
        &[
            (10, 27, "hot-alloc"),
            (20, 30, "hot-alloc"),
            (37, 31, "hot-lock"),
            (45, 32, "hot-lock"),
            (69, 8, "scratch-reuse"),
            (73, 8, "scratch-reuse"),
        ],
    );
}

#[test]
fn general_fixture_outside_hot_crates_is_clean() {
    // The same constructs in a crate outside solvers/dirac/multigpu/math
    // are out of the pass's emission scope.
    assert_diags("crates/gpusim/src/fixture.rs", include_str!("fixtures/hotpath_general.rs"), &[]);
}

#[test]
fn removing_the_allow_comment_resurfaces_the_diagnostic() {
    let text =
        include_str!("fixtures/hotpath_general.rs").replace("quda-lint: allow(hot-alloc)", "");
    assert_diags(
        "crates/multigpu/src/fixture.rs",
        &text,
        &[
            (10, 27, "hot-alloc"),
            (20, 30, "hot-alloc"),
            (37, 31, "hot-lock"),
            (45, 32, "hot-lock"),
            (63, 22, "hot-alloc"),
            (69, 8, "scratch-reuse"),
            (73, 8, "scratch-reuse"),
        ],
    );
}

#[test]
fn site_kernel_fixture_exact_diagnostics() {
    // Element-wise counted loops that index with their counter: the plain
    // `0..n` form (2), the inclusive `0..=n` form (9), and the layout
    // `get`/`set` round trip (16). The literal-bound unrolled loop, the
    // chunks_exact block form and the counter that never indexes are clean.
    assert_diags(
        "crates/solvers/src/blas.rs",
        include_str!("fixtures/hotpath_kernel.rs"),
        &[(2, 5, "hot-index"), (9, 5, "hot-index"), (16, 5, "hot-index")],
    );
}

#[test]
fn hot_index_only_polices_site_kernel_files() {
    // The same loops in a hot crate but outside the designated site-kernel
    // modules are hot-index-clean (the other rules still apply — there are
    // just no allocations or locks in this fixture).
    assert_diags("crates/solvers/src/fixture.rs", include_str!("fixtures/hotpath_kernel.rs"), &[]);
}

#[test]
fn test_code_is_exempt() {
    let src = "#[cfg(test)]\nmod tests {\n    fn t(n: usize) -> usize {\n        let mut s = 0;\n        for _ in 0..n {\n            s += vec![0u8; 4].len();\n        }\n        s\n    }\n}\n";
    assert_diags("crates/solvers/src/fixture.rs", src, &[]);
}

#[test]
fn workspace_analysis_is_clean_and_skips_fixtures() {
    // `cargo xtask hotpath` must pass on the real tree, and must never trip
    // over the deliberate hazards in tests/fixtures/.
    let root = xtask::find_workspace_root();
    let report = xtask::hotpath_workspace(&root).expect("workspace walk");
    assert!(
        !report.diagnostics.iter().any(|d| d.path.contains("fixtures")),
        "fixture files leaked into the workspace analysis: {:?}",
        report.diagnostics
    );
    assert!(
        report.diagnostics.is_empty(),
        "workspace hot-path analysis has findings: {:?}",
        report.diagnostics
    );
}
