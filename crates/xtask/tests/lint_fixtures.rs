//! Fixture tests for the lint rules: each fixture under `tests/fixtures/`
//! is linted as if it lived at a hot-path workspace location, and the
//! produced diagnostics are asserted *exactly* — file, line, column and
//! rule — including that `// quda-lint: allow(<rule>)` suppressions hold.
//!
//! The fixtures directory is excluded from `cargo xtask lint`'s workspace
//! walk, so the deliberate violations here never fail the real lint run.

use xtask::lint_text;

/// Lint `text` as `rel_path` and assert the exact `(line, col, rule)` set.
fn assert_diags(rel_path: &str, text: &str, expected: &[(u32, u32, &str)]) {
    let got: Vec<(u32, u32, String)> = lint_text(rel_path, text)
        .into_iter()
        .map(|d| {
            assert_eq!(d.path, rel_path);
            (d.line, d.col, d.rule.to_string())
        })
        .collect();
    let expected: Vec<(u32, u32, String)> =
        expected.iter().map(|&(l, c, r)| (l, c, r.to_string())).collect();
    assert_eq!(got, expected, "diagnostics for {rel_path}");
}

#[test]
fn no_panic_fixture_exact_diagnostics() {
    // unwrap/expect/panic! flagged; the allow-suppressed unwrap and the
    // `#[cfg(test)]` module are not.
    assert_diags(
        "crates/comm/src/fixture.rs",
        include_str!("fixtures/no_panic.rs"),
        &[(4, 7, "no-panic"), (8, 7, "no-panic"), (12, 5, "no-panic")],
    );
}

#[test]
fn no_panic_fixture_outside_hot_paths_is_clean() {
    // The same violations in a crate outside comm/multigpu/solvers are out
    // of the rule's scope (safety-comment etc. still apply, but the
    // fixture has none of those).
    assert_diags("crates/lattice/src/fixture.rs", include_str!("fixtures/no_panic.rs"), &[]);
}

#[test]
fn global_reduce_fixture_exact_diagnostics() {
    // `.sum()`, `.fold()` and the accumulator loop flagged (the latter
    // anchored at the `let` declaration); the allowed loop is not.
    assert_diags(
        "crates/solvers/src/fixture.rs",
        include_str!("fixtures/global_reduce.rs"),
        &[(4, 15, "global-reduce"), (8, 15, "global-reduce"), (12, 5, "global-reduce")],
    );
}

#[test]
fn global_reduce_fixture_blas_module_is_exempt() {
    // blas.rs is the designated local-part kernel module.
    assert_diags("crates/solvers/src/blas.rs", include_str!("fixtures/global_reduce.rs"), &[]);
}

#[test]
fn half_normalization_fixture_exact_diagnostics() {
    assert_diags(
        "crates/fields/src/fixture.rs",
        include_str!("fixtures/half_normalization.rs"),
        &[(6, 5, "half-normalization"), (10, 5, "half-normalization")],
    );
}

#[test]
fn half_normalization_fixture_math_crate_is_exempt() {
    assert_diags("crates/math/src/fixture.rs", include_str!("fixtures/half_normalization.rs"), &[]);
}

#[test]
fn ghost_sizing_fixture_exact_diagnostics() {
    // The hand-derived `face * size_of` line is flagged; the delegation to
    // `face_wire_bytes_dyn` and the allow-suppressed line are not.
    assert_diags(
        "crates/multigpu/src/fixture.rs",
        include_str!("fixtures/ghost_sizing.rs"),
        &[(4, 33, "ghost-sizing")],
    );
}

#[test]
fn safety_comment_fixture_exact_diagnostics() {
    assert_diags(
        "crates/gpusim/src/fixture.rs",
        include_str!("fixtures/safety_comment.rs"),
        &[(4, 5, "safety-comment")],
    );
}

#[test]
fn no_raw_instant_fixture_exact_diagnostics() {
    // Plain, fully-qualified and whitespace-separated `Instant::now()`
    // flagged; the allow-suppressed call, the non-call `Instant` uses and
    // the `#[cfg(test)]` module are not.
    assert_diags(
        "crates/solvers/src/fixture.rs",
        include_str!("fixtures/no_raw_instant.rs"),
        &[(6, 5, "no-raw-instant"), (10, 16, "no-raw-instant"), (14, 5, "no-raw-instant")],
    );
}

#[test]
fn no_raw_instant_fixture_obs_crate_is_exempt() {
    // quda-obs owns the one sanctioned `Instant::now()` (its epoch clock);
    // the rule is scoped to comm/multigpu/solvers only.
    assert_diags("crates/obs/src/fixture.rs", include_str!("fixtures/no_raw_instant.rs"), &[]);
}

#[test]
fn removing_the_allow_comment_resurfaces_the_diagnostic() {
    // Prove the suppressions above are doing the work: strip the allow
    // comment and the suppressed unwrap at line 17 is reported again.
    let text = include_str!("fixtures/no_panic.rs").replace("quda-lint: allow(no-panic)", "");
    assert_diags(
        "crates/comm/src/fixture.rs",
        &text,
        &[(4, 7, "no-panic"), (8, 7, "no-panic"), (12, 5, "no-panic"), (17, 7, "no-panic")],
    );
}

#[test]
fn diagnostic_display_matches_compiler_style() {
    let diags = lint_text("crates/comm/src/fixture.rs", include_str!("fixtures/no_panic.rs"));
    assert_eq!(
        diags[0].to_string(),
        "crates/comm/src/fixture.rs:4:7: [no-panic] `.unwrap()` in a hot path can \
         hang peer ranks; propagate a typed error (CommError/SolverError) instead"
    );
}

#[test]
fn fixtures_directory_is_excluded_from_the_workspace_walk() {
    // The real `cargo xtask lint` run must never trip over the deliberate
    // violations in tests/fixtures/.
    let root = xtask::find_workspace_root();
    let report = xtask::lint_workspace(&root).expect("workspace walk");
    assert!(
        !report.diagnostics.iter().any(|d| d.path.contains("fixtures")),
        "fixture files leaked into the workspace lint: {:?}",
        report.diagnostics
    );
}
