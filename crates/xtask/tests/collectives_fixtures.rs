//! Fixture tests for the collective-ordering analysis: each fixture under
//! `tests/fixtures/` is analyzed as if it lived at a communication hot
//! path, and the produced diagnostics are asserted *exactly* — file, line,
//! column and rule — including `// quda-lint: allow(<rule>)` suppression
//! and its resurfacing when the comment is removed.
//!
//! The fixtures directory is excluded from the workspace walk, so the
//! deliberate hangs-in-waiting here never fail `cargo xtask collectives`.

use xtask::collectives_texts;

/// Analyze one fixture text as `rel_path` and assert the exact
/// `(line, col, rule)` set.
fn assert_diags(rel_path: &str, text: &str, expected: &[(u32, u32, &str)]) {
    let got: Vec<(u32, u32, String)> = collectives_texts(&[(rel_path, text)])
        .into_iter()
        .map(|d| {
            assert_eq!(d.path, rel_path);
            (d.line, d.col, d.rule.to_string())
        })
        .collect();
    let expected: Vec<(u32, u32, String)> =
        expected.iter().map(|&(l, c, r)| (l, c, r.to_string())).collect();
    assert_eq!(got, expected, "diagnostics for {rel_path}");
}

#[test]
fn rank_branch_fixture_exact_diagnostics() {
    // A barrier in a rank-only branch (8), a collective after a
    // rank-dependent early return (24), and a rank-gated call to a wrapper
    // the call-graph closure marks as a collective performer (30). The
    // if/else with a collective on both arms and the allow-suppressed
    // barrier are clean.
    assert_diags(
        "crates/comm/src/fixture.rs",
        include_str!("fixtures/rank_branch.rs"),
        &[
            (8, 18, "rank-branch-collective"),
            (24, 14, "rank-branch-collective"),
            (30, 18, "rank-branch-collective"),
        ],
    );
}

#[test]
fn rank_branch_fixture_outside_hot_paths_is_clean() {
    // The same hazards in a crate outside comm/multigpu/solvers/core are
    // out of the analysis' emission scope.
    assert_diags("crates/gpusim/src/fixture.rs", include_str!("fixtures/rank_branch.rs"), &[]);
}

#[test]
fn removing_the_allow_comment_resurfaces_the_diagnostic() {
    let text = include_str!("fixtures/rank_branch.rs")
        .replace("quda-lint: allow(rank-branch-collective)", "");
    assert_diags(
        "crates/comm/src/fixture.rs",
        &text,
        &[
            (8, 18, "rank-branch-collective"),
            (24, 14, "rank-branch-collective"),
            (30, 18, "rank-branch-collective"),
            (41, 18, "rank-branch-collective"),
        ],
    );
}

#[test]
fn rank_loop_fixture_exact_diagnostics() {
    // A collective in a loop bounded by the rank (9) and a send in a while
    // loop whose condition mentions the rank (21); the size-bounded loop
    // is clean, and the FACE_FWD send/recv pair keeps tag-pairing quiet.
    assert_diags(
        "crates/multigpu/src/fixture.rs",
        include_str!("fixtures/rank_loop.rs"),
        &[(9, 18, "rank-loop-collective"), (21, 18, "rank-loop-collective")],
    );
}

#[test]
fn tag_pairing_fixture_exact_diagnostics() {
    // GAUGE_EVEN is sent but never received (7); GAUGE_ODD is received but
    // never sent (11); the FACE_FWD pair is clean.
    assert_diags(
        "crates/comm/src/fixture.rs",
        include_str!("fixtures/tag_pairing.rs"),
        &[(7, 14, "tag-pairing"), (11, 22, "tag-pairing")],
    );
}

#[test]
fn tag_pairing_is_satisfied_across_files() {
    // The analysis is whole-workspace: a send in one crate pairs with a
    // recv in another.
    let send =
        "impl C {\n    pub fn s(&mut self) {\n        self.send(1, tags::FACE_BWD, v);\n    }\n}\n";
    let recv = "impl D {\n    pub fn r(&mut self) {\n        let _ = self.recv(0, tags::FACE_BWD);\n    }\n}\n";
    let diags =
        collectives_texts(&[("crates/comm/src/a.rs", send), ("crates/multigpu/src/b.rs", recv)]);
    assert!(diags.is_empty(), "cross-file pair should satisfy tag-pairing: {diags:?}");
}

#[test]
fn tag_namespace_fixture_exact_diagnostics() {
    // A tag constant outside the registry (1) and raw integer tags at a
    // send (7) and a recv (8).
    assert_diags(
        "crates/comm/src/fixture.rs",
        include_str!("fixtures/tag_namespace.rs"),
        &[(1, 11, "tag-namespace"), (7, 14, "tag-namespace"), (8, 22, "tag-namespace")],
    );
}

#[test]
fn registry_value_collisions_are_flagged() {
    // Two registry constants evaluating to the same value collide; the
    // `_BASE` namespace marker itself is exempt (it is a boundary, not a
    // tag — mirroring the registry's own ALL_NAMED convention).
    let registry = "pub const INTERNAL_BASE: u32 = 0xffff_0000;\n\
                    pub const A_TAG: u32 = INTERNAL_BASE + 1;\n\
                    pub const B_TAG: u32 = INTERNAL_BASE + 1;\n";
    assert_diags("crates/comm/src/tags.rs", registry, &[(3, 11, "tag-namespace")]);
}

#[test]
fn test_code_is_exempt() {
    let src = "#[cfg(test)]\nmod tests {\n    fn t(c: &mut C) {\n        if c.rank == 0 {\n            c.barrier();\n        }\n    }\n}\n";
    assert_diags("crates/comm/src/fixture.rs", src, &[]);
}

#[test]
fn workspace_analysis_is_clean_and_skips_fixtures() {
    // `cargo xtask collectives` must pass on the real tree, and must never
    // trip over the deliberate hazards in tests/fixtures/.
    let root = xtask::find_workspace_root();
    let report = xtask::collectives_workspace(&root).expect("workspace walk");
    assert!(
        !report.diagnostics.iter().any(|d| d.path.contains("fixtures")),
        "fixture files leaked into the workspace analysis: {:?}",
        report.diagnostics
    );
    assert!(
        report.diagnostics.is_empty(),
        "workspace collective analysis has findings: {:?}",
        report.diagnostics
    );
}
