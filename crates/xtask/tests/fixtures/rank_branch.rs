pub struct C {
    rank: usize,
}

impl C {
    pub fn bad_branch(&mut self) {
        if self.rank == 0 {
            self.barrier();
        }
    }

    pub fn good_branch(&mut self) {
        if self.rank == 0 {
            self.allreduce_sum_f64(1.0);
        } else {
            self.allreduce_sum_f64(2.0);
        }
    }

    pub fn early_return(&mut self) {
        if self.rank > 2 {
            return;
        }
        self.barrier();
    }

    pub fn wrapped(&mut self) {
        let me = self.rank;
        if me == 0 {
            self.sync_all();
        }
    }

    fn sync_all(&mut self) {
        self.barrier();
    }

    pub fn allowed(&mut self) {
        if self.rank == 0 {
            // quda-lint: allow(rank-branch-collective)
            self.barrier();
        }
    }
}
