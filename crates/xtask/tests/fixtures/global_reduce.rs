//! `global-reduce` fixture, linted as `crates/solvers/src/fixture.rs`.

pub fn local_sum(xs: &[f64]) -> f64 {
    xs.iter().sum()
}

pub fn local_fold(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |a, b| a + b)
}

pub fn accumulator(xs: &[f64]) -> f64 {
    let mut total = 0.0;
    for x in xs {
        total += x;
    }
    total
}

pub fn suppressed(xs: &[f64]) -> f64 {
    // quda-lint: allow(global-reduce)
    let mut total = 0.0;
    for x in xs {
        total += x;
    }
    total
}
