pub struct Exchange {
    lock: std::sync::Mutex<u32>,
    state: std::sync::RwLock<u32>,
}

impl Exchange {
    pub fn bad_alloc_loop(&self, n: usize) -> f64 {
        let mut acc = 0.0;
        for i in 0..n {
            let scratch = vec![0.0f64; 8];
            acc += scratch[i % 8];
        }
        acc
    }

    pub fn bad_clone_while(&self, names: &[String]) -> usize {
        let mut total = 0;
        let mut k = 0;
        while k < names.len() {
            total += names[k].clone().len();
            k += 1;
        }
        total
    }

    pub fn good_setup_alloc(&self, n: usize) -> Vec<f64> {
        let mut buf = Vec::with_capacity(n);
        for _ in 0..n {
            buf.push(0.0);
        }
        buf
    }

    pub fn bad_lock_loop(&self, n: usize) -> u32 {
        let mut acc = 0;
        for _ in 0..n {
            acc += *self.lock.lock().expect("poisoned");
        }
        acc
    }

    pub fn bad_read_loop(&self, n: usize) -> u32 {
        let mut acc = 0;
        for _ in 0..n {
            acc += *self.state.read().expect("poisoned");
        }
        acc
    }

    pub fn good_hoisted_lock(&self, n: usize) -> u32 {
        let guard = self.lock.lock().expect("poisoned");
        let mut acc = 0;
        for _ in 0..n {
            acc += *guard;
        }
        acc
    }

    pub fn allowed_alloc(&self, n: usize) -> usize {
        let mut total = 0;
        for _ in 0..n {
            // quda-lint: allow(hot-alloc)
            total += format!("{n}").len();
        }
        total
    }
}

pub fn encode_face_bad(values: &[f64]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

pub fn decode_face_bad(bytes: &[u8]) -> Result<Vec<f64>, String> {
    Err(format!("{}", bytes.len()))
}

pub fn decode_face_into_good(bytes: &[u8], out: &mut Vec<f64>) {
    out.clear();
    out.extend(bytes.iter().map(|&b| b as f64));
}

pub fn pack_frame_good(values: &[f64]) -> Bytes {
    Bytes::from_reals(values)
}

pub fn helper_returns_vec(n: usize) -> Vec<u8> {
    Vec::with_capacity(n)
}

#[cfg(test)]
mod tests {
    pub fn test_alloc_loop(n: usize) -> usize {
        let mut total = 0;
        for _ in 0..n {
            total += vec![0u8; 4].len();
        }
        total
    }
}
