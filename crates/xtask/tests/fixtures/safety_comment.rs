//! `safety-comment` fixture, linted as `crates/gpusim/src/fixture.rs`.

pub fn undocumented(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn documented(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` points at a live byte.
    unsafe { *p }
}
