//! `ghost-sizing` fixture, linted as `crates/multigpu/src/fixture.rs`.

pub fn rederived(face_sites: usize) -> usize {
    face_sites * 12 * std::mem::size_of::<f64>()
}

pub fn sanctioned(face_sites: usize) -> usize {
    crate::ghost::face_wire_bytes_dyn(std::mem::size_of::<f64>(), false, face_sites)
}

pub fn suppressed(face_sites: usize) -> usize {
    // quda-lint: allow(ghost-sizing)
    face_sites * std::mem::size_of::<u16>()
}
