//! `half-normalization` fixture, linted as `crates/fields/src/fixture.rs`.

use quda_math::half::{Fixed16, Fixed8};

pub fn per_value_quantize(x: f32) -> i16 {
    Fixed16::quantize(x).0
}

pub fn raw_construction(bits: i8) -> Fixed8 {
    Fixed8(bits)
}

pub fn suppressed(x: f32) -> i16 {
    // quda-lint: allow(half-normalization)
    Fixed16::quantize(x).0
}
