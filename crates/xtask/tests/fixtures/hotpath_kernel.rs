pub fn bad_axpy(a: f64, x: &[f64], y: &mut [f64], n: usize) {
    for i in 0..n {
        y[i] += a * x[i];
    }
}

pub fn bad_inclusive(x: &[f64], n: usize) -> f64 {
    let mut acc = 0.0;
    for i in 0..=n {
        acc += x[i];
    }
    acc
}

pub fn bad_getset(src: &Field, dst: &mut Field, sites: usize) {
    for cb in 0..sites {
        let v = src.get(cb);
        dst.set(cb, &v);
    }
}

pub fn good_unrolled(m: &mut [[f64; 4]; 4]) {
    for d in 0..4 {
        m[d][d] = 1.0;
    }
}

pub fn good_blocks(x: &[f64], y: &mut [f64]) {
    for (xs, ys) in x.chunks_exact(8).zip(y.chunks_exact_mut(8)) {
        for (a, b) in xs.iter().zip(ys.iter_mut()) {
            *b += *a;
        }
    }
}

pub fn good_counter_not_index(x: &[f64], n: usize) -> f64 {
    let mut acc = 0.0;
    for _i in 0..n {
        acc += x.len() as f64;
    }
    acc
}
