use quda_comm::tags;

pub struct C;

impl C {
    pub fn orphan_send(&mut self) {
        self.send(1, tags::GAUGE_EVEN, vec![]);
    }

    pub fn orphan_recv(&mut self) {
        let _ = self.recv(0, tags::GAUGE_ODD);
    }

    pub fn paired(&mut self) {
        self.send(1, tags::FACE_FWD, vec![]);
        let _ = self.recv(0, tags::FACE_FWD);
    }
}
