//! `no-raw-instant` fixture, linted as `crates/solvers/src/fixture.rs`.

use std::time::Instant;

pub fn hot_timed() -> Instant {
    Instant::now()
}

pub fn hot_qualified() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn spaced() -> Instant {
    Instant :: now()
}

pub fn suppressed() -> Instant {
    // quda-lint: allow(no-raw-instant)
    Instant::now()
}

pub fn not_a_call(i: Instant) -> std::time::Duration {
    i.elapsed()
}

#[cfg(test)]
mod tests {
    pub fn in_tests() -> std::time::Instant {
        std::time::Instant::now()
    }
}
