pub const MY_TAG: u32 = 77;

pub struct C;

impl C {
    pub fn raw(&mut self) {
        self.send(1, 42, vec![]);
        let _ = self.recv(0, 42);
    }
}
