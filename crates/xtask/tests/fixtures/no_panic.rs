//! `no-panic` fixture, linted as `crates/comm/src/fixture.rs`.

pub fn hot_unwrap(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn hot_expect(x: Result<u32, ()>) -> u32 {
    x.expect("boom")
}

pub fn hot_panic() {
    panic!("rank died");
}

pub fn suppressed(x: Option<u32>) -> u32 {
    // quda-lint: allow(no-panic)
    x.unwrap()
}

#[cfg(test)]
mod tests {
    pub fn in_tests(x: Option<u32>) -> u32 {
        x.unwrap()
    }
}
