pub struct C {
    rank: usize,
    size: usize,
}

impl C {
    pub fn bad_loop(&mut self) {
        for _ in 0..self.rank {
            self.allreduce_sum_f64(1.0);
        }
    }

    pub fn good_loop(&mut self) {
        for _ in 0..self.size {
            self.allreduce_sum_f64(1.0);
        }
    }

    pub fn bad_send_loop(&mut self, my_rank: usize) {
        while self.counter < my_rank {
            self.send(0, tags::FACE_FWD, payload());
        }
    }

    pub fn pair(&mut self) {
        let _ = self.recv(0, tags::FACE_FWD);
    }
}
