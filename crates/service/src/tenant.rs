//! Per-tenant queues and weighted-fair virtual-time accounting.
//!
//! The scheduler is start-time weighted fairness (a stride scheduler):
//! each tenant carries a *virtual time* that advances by `1 / weight` per
//! dispatched request, and workers always serve the backlogged tenant
//! with the smallest virtual time (ties broken by tenant id for
//! determinism). While two tenants are both backlogged, their dispatch
//! counts stay proportional to their weights no matter how unequal their
//! arrival rates — a flooding tenant deepens only its own bounded queue.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use quda_fields::host::GaugeConfig;

use crate::batch::BatchKey;
use crate::request::{SolveRequest, TicketShared};

/// One queued request plus everything needed to dispatch and account it.
pub(crate) struct Queued {
    pub(crate) req: SolveRequest,
    /// The gauge field, captured at submission so freeing the handle
    /// later never invalidates queued work.
    pub(crate) gauge: Arc<GaugeConfig>,
    pub(crate) key: BatchKey,
    pub(crate) ticket: Arc<TicketShared>,
    pub(crate) enqueued_at: Instant,
    /// Tenant queue depth observed at submission (including this
    /// request) — surfaced as backpressure telemetry.
    pub(crate) depth_at_submit: usize,
}

/// Scheduler state of one tenant.
pub(crate) struct TenantState {
    pub(crate) weight: u32,
    pub(crate) queue_capacity: usize,
    pub(crate) queue: VecDeque<Queued>,
    /// Virtual time: advances by `1 / weight` per dispatched request.
    pub(crate) virtual_time: f64,
    /// Telemetry counters.
    pub(crate) completed: u64,
    pub(crate) rejected: u64,
    pub(crate) expired: u64,
    pub(crate) max_depth: usize,
}

impl TenantState {
    pub(crate) fn new(weight: u32, queue_capacity: usize) -> TenantState {
        TenantState {
            weight: weight.max(1),
            queue_capacity,
            queue: VecDeque::new(),
            virtual_time: 0.0,
            completed: 0,
            rejected: 0,
            expired: 0,
            max_depth: 0,
        }
    }

    /// Charge one dispatched request against this tenant's share.
    pub(crate) fn charge(&mut self) {
        self.virtual_time += 1.0 / f64::from(self.weight.max(1));
    }

    /// On becoming backlogged after an idle spell, a tenant may not claim
    /// credit for the time it was absent: its virtual time jumps forward
    /// to the current service floor.
    pub(crate) fn rejoin(&mut self, floor: f64) {
        if self.virtual_time < floor {
            self.virtual_time = floor;
        }
    }
}

/// The smallest virtual time among backlogged tenants — the service
/// "floor" idle tenants rejoin at.
pub(crate) fn backlog_floor<'a, I>(tenants: I) -> Option<f64>
where
    I: Iterator<Item = &'a TenantState>,
{
    let mut floor: Option<f64> = None;
    for t in tenants {
        if t.queue.is_empty() {
            continue;
        }
        match floor {
            Some(f) if f <= t.virtual_time => {}
            _ => floor = Some(t.virtual_time),
        }
    }
    floor
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_is_inverse_weight() {
        let mut a = TenantState::new(1, 8);
        let mut b = TenantState::new(4, 8);
        for _ in 0..4 {
            b.charge();
        }
        a.charge();
        assert_eq!(a.virtual_time, b.virtual_time);
    }

    #[test]
    fn zero_weight_clamps_to_one() {
        let mut t = TenantState::new(0, 8);
        t.charge();
        assert_eq!(t.virtual_time, 1.0);
    }

    #[test]
    fn rejoin_never_moves_backward() {
        let mut t = TenantState::new(1, 8);
        t.virtual_time = 5.0;
        t.rejoin(3.0);
        assert_eq!(t.virtual_time, 5.0);
        t.rejoin(7.0);
        assert_eq!(t.virtual_time, 7.0);
    }
}
