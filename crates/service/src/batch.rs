//! Batch compatibility: which queued requests may share one blocked solve.

use quda_core::{PrecisionMode, QudaInvertParam, SolverKind, TraceConfig};
use quda_multigpu::rank_op::CommStrategy;

use crate::request::ServiceGaugeId;

/// The compatibility class of a request: two requests fuse into one
/// multi-RHS solve **iff** their keys are equal, which guarantees they
/// share the gauge field, operator, precision mode, solver, and every
/// control that steers the iteration. Floats enter by bit pattern
/// (`f64::to_bits`), so "equal" means *exactly* equal — anything looser
/// would change iteration counts and break the bit-identity contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchKey {
    /// Cached gauge field.
    pub gauge: ServiceGaugeId,
    /// Quark mass bits.
    pub mass_bits: u64,
    /// Clover coefficient bits.
    pub c_sw_bits: u64,
    /// Residual-target bits.
    pub tol_bits: u64,
    /// Reliable-update δ bits.
    pub delta_bits: u64,
    /// Iteration cap.
    pub max_iter: usize,
    /// Precision mode.
    pub mode: PrecisionMode,
    /// Krylov method.
    pub solver: SolverKind,
    /// Face-exchange strategy.
    pub strategy: CommStrategy,
    /// GPUs the solve partitions over.
    pub num_gpus: usize,
    /// Trace depth (a traced solve records; an untraced one must not pay
    /// for a batchmate's recording).
    pub trace: TraceConfig,
    /// Lockstep-sanitizer toggle.
    pub lockstep: bool,
}

impl BatchKey {
    /// Derive the compatibility class of a request.
    pub fn of(gauge: ServiceGaugeId, param: &QudaInvertParam) -> BatchKey {
        BatchKey {
            gauge,
            mass_bits: param.mass.to_bits(),
            c_sw_bits: param.c_sw.to_bits(),
            tol_bits: param.tol.to_bits(),
            delta_bits: param.delta.to_bits(),
            max_iter: param.max_iter,
            mode: param.mode,
            solver: param.solver,
            strategy: param.strategy,
            num_gpus: param.num_gpus,
            trace: param.trace,
            lockstep: param.lockstep,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> QudaInvertParam {
        QudaInvertParam::paper_mode(PrecisionMode::Double, 2)
    }

    #[test]
    fn same_controls_same_key_regardless_of_tenant_and_deadline() {
        let g = ServiceGaugeId(3);
        let a = base().with_tenant(1);
        let b = base().with_tenant(2).with_deadline(std::time::Duration::from_secs(5));
        assert_eq!(BatchKey::of(g, &a), BatchKey::of(g, &b));
    }

    #[test]
    fn any_solve_control_splits_the_key() {
        let g = ServiceGaugeId(0);
        let k = BatchKey::of(g, &base());
        assert_ne!(k, BatchKey::of(ServiceGaugeId(1), &base()));
        assert_ne!(k, BatchKey::of(g, &base().with_mass(0.2)));
        assert_ne!(k, BatchKey::of(g, &base().with_tol(1e-9)));
        assert_ne!(k, BatchKey::of(g, &base().with_solver(SolverKind::Cgnr)));
        assert_ne!(k, BatchKey::of(g, &QudaInvertParam::paper_mode(PrecisionMode::SingleHalf, 2)));
        // Even a same-value, different-bit-pattern float splits: -0.0 vs 0.0.
        assert_ne!(
            k,
            BatchKey::of(
                g,
                &base()
                    .with_mass(-0.0)
                    .with_mass(0.0) // same value...
                    .with_mass(f64::from_bits(base().mass.to_bits() ^ 1))
            )
        );
    }
}
