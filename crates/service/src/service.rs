//! The service itself: gauge cache, admission control, scheduler, workers.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use quda_core::{GaugeId, Quda, QudaError, QueueTelemetry};
use quda_fields::host::GaugeConfig;

use crate::batch::BatchKey;
use crate::config::{ServiceConfig, TenantConfig};
use crate::request::{ServiceError, ServiceGaugeId, SolveRequest, Ticket, TicketShared};
use crate::tenant::{backlog_floor, Queued, TenantState};

/// Aggregate service telemetry, snapshot via [`Service::stats`] or
/// returned by [`Service::shutdown`].
#[derive(Clone, Debug, Default)]
pub struct ServiceStats {
    /// Requests accepted into a queue.
    pub submitted: u64,
    /// Requests solved and fulfilled.
    pub completed: u64,
    /// Requests whose solve returned an error.
    pub failed: u64,
    /// Requests rejected at admission (queue full).
    pub rejected: u64,
    /// Requests expired in the queue past their deadline.
    pub expired: u64,
    /// Blocked solves dispatched.
    pub batches: u64,
    /// Requests carried by those solves (mean batch size is
    /// `batched_requests / batches`).
    pub batched_requests: u64,
    /// Largest batch dispatched.
    pub max_batch: usize,
    /// Deepest any tenant queue got.
    pub max_queue_depth: usize,
    /// Per-tenant counters, ascending tenant id.
    pub per_tenant: Vec<(u32, TenantStats)>,
    /// Tenant of every dispatched request, in dispatch order — recorded
    /// only under [`ServiceConfig::log_dispatch_order`].
    pub dispatch_log: Vec<u32>,
}

/// Per-tenant slice of [`ServiceStats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct TenantStats {
    /// Requests solved and fulfilled.
    pub completed: u64,
    /// Requests rejected at admission.
    pub rejected: u64,
    /// Requests expired past their deadline.
    pub expired: u64,
    /// Deepest this tenant's queue got.
    pub max_depth: usize,
}

/// Global counters that are not per-tenant.
#[derive(Default)]
struct Counters {
    submitted: u64,
    completed: u64,
    failed: u64,
    batches: u64,
    batched_requests: u64,
    max_batch: usize,
    dispatch_log: Vec<u32>,
}

/// Everything behind the scheduler mutex.
struct SchedState {
    tenants: BTreeMap<u32, TenantState>,
    gauges: Vec<(ServiceGaugeId, Arc<GaugeConfig>)>,
    next_gauge: u64,
    started: bool,
    shutdown: bool,
    /// Requests sitting in queues.
    queued_total: usize,
    /// Requests popped for a batch whose tickets are not yet fulfilled.
    in_flight: usize,
    stats: Counters,
}

struct Inner {
    config: ServiceConfig,
    state: Mutex<SchedState>,
    /// Signalled on submission, start, and shutdown.
    work_ready: Condvar,
    /// Signalled whenever queued + in-flight work drains.
    idle: Condvar,
}

impl Inner {
    fn lock(&self) -> MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// One batch popped from the queues, ready to dispatch.
struct Batch {
    members: Vec<Queued>,
}

/// The multi-tenant batched inversion service (DESIGN.md §14). Created
/// paused by [`Service::new`] — submissions queue but nothing runs until
/// [`Service::start`] spawns the workers.
pub struct Service {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Service {
    /// Create a paused service: gauges can be loaded and requests queued,
    /// but no solve runs until [`Service::start`].
    pub fn new(config: ServiceConfig) -> Service {
        Service {
            inner: Arc::new(Inner {
                config,
                state: Mutex::new(SchedState {
                    tenants: BTreeMap::new(),
                    gauges: Vec::new(),
                    next_gauge: 0,
                    started: false,
                    shutdown: false,
                    queued_total: 0,
                    in_flight: 0,
                    stats: Counters::default(),
                }),
                work_ready: Condvar::new(),
                idle: Condvar::new(),
            }),
            workers: Vec::new(),
        }
    }

    /// Spawn the worker threads and begin dispatching. Idempotent.
    pub fn start(&mut self) {
        {
            let mut state = self.inner.lock();
            if state.started {
                return;
            }
            state.started = true;
        }
        let n = self.inner.config.workers.max(1);
        self.workers.reserve(n);
        for _ in 0..n {
            let inner = Arc::clone(&self.inner);
            self.workers.push(std::thread::spawn(move || worker_loop(&inner)));
        }
        self.inner.work_ready.notify_all();
    }

    /// Set a tenant's scheduling weight and queue bound (before or after
    /// its first submission).
    pub fn configure_tenant(&self, tenant: u32, config: TenantConfig) {
        let mut state = self.inner.lock();
        let default_cap = self.inner.config.queue_capacity;
        let t = state.tenants.entry(tenant).or_insert_with(|| TenantState::new(1, default_cap));
        t.weight = config.weight.max(1);
        t.queue_capacity = config.queue_capacity;
    }

    /// Validate and cache a gauge configuration, shared by all workers.
    /// The returned handle stays valid until [`Service::free_gauge`];
    /// requests queued before a free keep the field alive by refcount.
    pub fn load_gauge(&self, cfg: GaugeConfig) -> Result<ServiceGaugeId, ServiceError> {
        if !cfg.is_unitary(1e-8) {
            return Err(ServiceError::Solve(QudaError::NotUnitary));
        }
        let mut state = self.inner.lock();
        let id = ServiceGaugeId(state.next_gauge);
        state.next_gauge += 1;
        state.gauges.push((id, Arc::new(cfg)));
        Ok(id)
    }

    /// Drop the service's reference to a cached gauge field. Queued and
    /// running solves against it finish normally (they hold their own
    /// reference); new submissions are rejected with
    /// [`ServiceError::UnknownGauge`].
    pub fn free_gauge(&self, id: ServiceGaugeId) -> Result<(), ServiceError> {
        let mut state = self.inner.lock();
        let i = state
            .gauges
            .iter()
            .position(|(g, _)| *g == id)
            .ok_or(ServiceError::UnknownGauge(id))?;
        state.gauges.remove(i);
        Ok(())
    }

    /// Admit one solve request into its tenant's queue.
    ///
    /// Fails fast — before any queueing — on an unknown gauge handle, a
    /// source/gauge shape mismatch, an unsupported parameter combination,
    /// or a full tenant queue (backpressure: the caller decides whether
    /// to retry, shed, or slow down).
    pub fn submit(&self, req: SolveRequest) -> Result<Ticket, ServiceError> {
        let mut state = self.inner.lock();
        if state.shutdown {
            return Err(ServiceError::ShuttingDown);
        }
        if req.param.max_rank_deaths > 0 {
            return Err(ServiceError::Invalid(
                "batched service solves run the fail-fast driver; retry failed requests \
                 instead of max_rank_deaths > 0"
                    .to_owned(),
            ));
        }
        let gauge = state
            .gauges
            .iter()
            .find(|(g, _)| *g == req.gauge)
            .map(|(_, cfg)| Arc::clone(cfg))
            .ok_or(ServiceError::UnknownGauge(req.gauge))?;
        if req.source.dims != gauge.dims {
            return Err(ServiceError::DimsMismatch);
        }
        let tenant_id = req.param.tenant;
        let floor = backlog_floor(state.tenants.values()).unwrap_or(0.0);
        let default_weight = self.inner.config.default_weight;
        let default_cap = self.inner.config.queue_capacity;
        let tenant = state
            .tenants
            .entry(tenant_id)
            .or_insert_with(|| TenantState::new(default_weight, default_cap));
        if tenant.queue.len() >= tenant.queue_capacity {
            tenant.rejected += 1;
            let capacity = tenant.queue_capacity;
            return Err(ServiceError::QueueFull { tenant: tenant_id, capacity });
        }
        if tenant.queue.is_empty() {
            tenant.rejoin(floor);
        }
        let key = BatchKey::of(req.gauge, &req.param);
        let shared = TicketShared::new();
        let depth = tenant.queue.len() + 1;
        tenant.queue.push_back(Queued {
            req,
            gauge,
            key,
            ticket: Arc::clone(&shared),
            enqueued_at: Instant::now(),
            depth_at_submit: depth,
        });
        tenant.max_depth = tenant.max_depth.max(depth);
        state.queued_total += 1;
        state.stats.submitted += 1;
        drop(state);
        self.inner.work_ready.notify_one();
        Ok(Ticket { shared })
    }

    /// Block until every queued and in-flight request has been resolved.
    /// Only meaningful after [`Service::start`] — a paused service with
    /// queued work never drains.
    pub fn wait_idle(&self) {
        let mut state = self.inner.lock();
        while state.queued_total > 0 || state.in_flight > 0 {
            state = self.inner.idle.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Snapshot the telemetry counters.
    pub fn stats(&self) -> ServiceStats {
        snapshot(&self.inner.lock())
    }

    /// Drain and stop: started workers finish everything queued, then
    /// exit; on a never-started service, queued tickets are resolved with
    /// [`ServiceError::ShuttingDown`]. Returns the final telemetry.
    pub fn shutdown(mut self) -> ServiceStats {
        {
            let mut state = self.inner.lock();
            state.shutdown = true;
        }
        self.inner.work_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let mut state = self.inner.lock();
        // Anything still queued (only possible if the service never
        // started) is resolved, never silently dropped.
        let tenant_ids: Vec<u32> = state.tenants.keys().copied().collect();
        let mut drained = 0;
        for id in tenant_ids {
            if let Some(t) = state.tenants.get_mut(&id) {
                while let Some(q) = t.queue.pop_front() {
                    q.ticket.fulfill(Err(ServiceError::ShuttingDown));
                    drained += 1;
                }
            }
        }
        state.queued_total -= drained;
        snapshot(&state)
    }
}

fn snapshot(state: &SchedState) -> ServiceStats {
    let mut per_tenant = Vec::with_capacity(state.tenants.len());
    let mut rejected = 0;
    let mut expired = 0;
    let mut max_queue_depth = 0;
    for (id, t) in &state.tenants {
        rejected += t.rejected;
        expired += t.expired;
        max_queue_depth = max_queue_depth.max(t.max_depth);
        per_tenant.push((
            *id,
            TenantStats {
                completed: t.completed,
                rejected: t.rejected,
                expired: t.expired,
                max_depth: t.max_depth,
            },
        ));
    }
    ServiceStats {
        submitted: state.stats.submitted,
        completed: state.stats.completed,
        failed: state.stats.failed,
        rejected,
        expired,
        batches: state.stats.batches,
        batched_requests: state.stats.batched_requests,
        max_batch: state.stats.max_batch,
        max_queue_depth,
        per_tenant,
        dispatch_log: state.stats.dispatch_log.clone(),
    }
}

/// Resolve and drop every queued request whose deadline has passed.
fn expire_overdue(state: &mut SchedState, now: Instant) {
    let tenant_ids: Vec<u32> = state.tenants.keys().copied().collect();
    let mut dropped = 0;
    for id in &tenant_ids {
        let Some(t) = state.tenants.get_mut(id) else { continue };
        let mut i = 0;
        while i < t.queue.len() {
            let overdue = t.queue[i]
                .req
                .param
                .deadline
                .is_some_and(|d| now.duration_since(t.queue[i].enqueued_at) > d);
            if overdue {
                if let Some(q) = t.queue.remove(i) {
                    let waited = now.duration_since(q.enqueued_at);
                    q.ticket.fulfill(Err(ServiceError::DeadlineExpired(waited)));
                    t.expired += 1;
                    dropped += 1;
                }
            } else {
                i += 1;
            }
        }
    }
    state.queued_total -= dropped;
}

/// Pop the next batch under weighted fairness: head from the backlogged
/// tenant with the least virtual time, filled with same-key requests
/// across all tenants in virtual-time order, up to the batch cap.
fn collect_batch(state: &mut SchedState, config: &ServiceConfig) -> Option<Batch> {
    expire_overdue(state, Instant::now());
    let lead = state
        .tenants
        .iter()
        .filter(|(_, t)| !t.queue.is_empty())
        .min_by(|(ia, a), (ib, b)| a.virtual_time.total_cmp(&b.virtual_time).then(ia.cmp(ib)))
        .map(|(id, _)| *id)?;
    let cap = config.batch_cap();
    let mut members: Vec<Queued> = Vec::with_capacity(cap);
    let head = state.tenants.get_mut(&lead)?.queue.pop_front()?;
    let key = head.key;
    members.push(head);
    // Fill from tenants in (virtual time, id) order, FIFO within each, so
    // batching never reorders a tenant's own same-key requests.
    let mut order: Vec<(f64, u32)> =
        state.tenants.iter().map(|(id, t)| (t.virtual_time, *id)).collect();
    order.sort_by(|(va, ia), (vb, ib)| va.total_cmp(vb).then(ia.cmp(ib)));
    for (_, id) in &order {
        if members.len() >= cap {
            break;
        }
        let Some(t) = state.tenants.get_mut(id) else { continue };
        let mut i = 0;
        while i < t.queue.len() && members.len() < cap {
            if t.queue[i].key == key {
                if let Some(q) = t.queue.remove(i) {
                    members.push(q);
                }
            } else {
                i += 1;
            }
        }
    }
    // Account the dispatch: charge each member's tenant, log, and move
    // the requests from queued to in-flight.
    for m in &members {
        if let Some(t) = state.tenants.get_mut(&m.req.param.tenant) {
            t.charge();
        }
        if config.log_dispatch_order {
            state.stats.dispatch_log.push(m.req.param.tenant);
        }
    }
    state.queued_total -= members.len();
    state.in_flight += members.len();
    state.stats.batches += 1;
    state.stats.batched_requests += members.len() as u64;
    state.stats.max_batch = state.stats.max_batch.max(members.len());
    Some(Batch { members })
}

/// One worker: owns a [`Quda`] context and a cache mapping service gauge
/// handles to locally adopted ones.
struct Worker {
    inner: Arc<Inner>,
    quda: Quda,
    adopted: HashMap<ServiceGaugeId, GaugeId>,
}

fn worker_loop(inner: &Arc<Inner>) {
    let Ok(quda) = Quda::new(1) else { return };
    let mut worker = Worker { inner: Arc::clone(inner), quda, adopted: HashMap::new() };
    while let Some(batch) = worker.next_batch() {
        worker.run_batch(batch);
    }
}

impl Worker {
    /// Block until a batch is available; `None` means drained shutdown.
    fn next_batch(&self) -> Option<Batch> {
        let mut state = self.inner.lock();
        loop {
            if state.shutdown && (!state.started || state.queued_total == 0) {
                return None;
            }
            if state.started && state.queued_total > 0 {
                let batch = collect_batch(&mut state, &self.inner.config);
                if batch.is_some() {
                    return batch;
                }
                // Everything queued expired; report the drain and re-wait.
                if state.queued_total == 0 && state.in_flight == 0 {
                    self.inner.idle.notify_all();
                }
                continue;
            }
            state = self.inner.work_ready.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Run one blocked solve and fulfill every member ticket.
    fn run_batch(&mut self, batch: Batch) {
        let n = batch.members.len();
        let dispatched_at = Instant::now();
        let param = batch.members[0].req.param.with_num_rhs(n);
        let gauge_id = batch.members[0].req.gauge;
        let gauge_arc = Arc::clone(&batch.members[0].gauge);

        // Split members into the solver input and the completion state.
        let mut sources = Vec::with_capacity(n);
        let mut completions = Vec::with_capacity(n);
        for m in batch.members {
            sources.push(m.req.source);
            completions.push((m.ticket, m.req.param.tenant, m.enqueued_at, m.depth_at_submit));
        }

        let outcome = self
            .select_local_gauge(gauge_id, &gauge_arc)
            .and_then(|()| self.quda.invert_multi(&sources, &param));
        match outcome {
            Ok(results) => {
                let mut fulfilled = Vec::with_capacity(n);
                for ((x, mut report), (ticket, tenant, enqueued_at, depth)) in
                    results.into_iter().zip(completions)
                {
                    report.queue = QueueTelemetry {
                        tenant,
                        queue_wait: dispatched_at.duration_since(enqueued_at),
                        batch_size: n,
                        queue_depth: depth,
                    };
                    fulfilled.push((ticket, tenant, Ok((x, report))));
                }
                self.finish(fulfilled, 0);
            }
            Err(e) => {
                let fulfilled: Vec<_> = completions
                    .into_iter()
                    .map(|(ticket, tenant, _, _)| {
                        (ticket, tenant, Err(ServiceError::Solve(e.clone())))
                    })
                    .collect();
                self.finish(fulfilled, n as u64);
            }
        }
    }

    /// Make sure this worker's context has the batch's gauge field
    /// selected, adopting (not copying) it on first use.
    fn select_local_gauge(
        &mut self,
        id: ServiceGaugeId,
        cfg: &Arc<GaugeConfig>,
    ) -> Result<(), QudaError> {
        let local = match self.adopted.get(&id) {
            Some(l) => *l,
            None => {
                let l = self.quda.adopt_gauge(Arc::clone(cfg));
                self.adopted.insert(id, l);
                l
            }
        };
        self.quda.select_gauge(local)
    }

    /// Update counters and fulfill tickets (outside the scheduler lock).
    fn finish(
        &self,
        fulfilled: Vec<(Arc<TicketShared>, u32, crate::request::SolveOutcome)>,
        failed: u64,
    ) {
        {
            let mut state = self.inner.lock();
            let n = fulfilled.len();
            state.in_flight -= n;
            state.stats.failed += failed;
            state.stats.completed += n as u64 - failed;
            for (_, tenant, outcome) in &fulfilled {
                if outcome.is_ok() {
                    if let Some(t) = state.tenants.get_mut(tenant) {
                        t.completed += 1;
                    }
                }
            }
            if state.queued_total == 0 && state.in_flight == 0 {
                self.inner.idle.notify_all();
            }
        }
        for (ticket, _, outcome) in fulfilled {
            ticket.fulfill(outcome);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quda_core::{PrecisionMode, QudaInvertParam};
    use quda_fields::gauge_gen::{random_spinor_field, weak_field};
    use quda_lattice::geometry::LatticeDims;

    fn dims() -> LatticeDims {
        LatticeDims::new(4, 4, 2, 4)
    }

    fn param() -> QudaInvertParam {
        QudaInvertParam::paper_mode(PrecisionMode::Double, 2).with_mass(0.3).with_tol(1e-8)
    }

    fn request(service: &Service, tenant: u32, seed: u64) -> (ServiceGaugeId, SolveRequest) {
        let gauge = service.load_gauge(weak_field(dims(), 0.15, 7)).unwrap();
        let source = random_spinor_field(dims(), seed);
        (gauge, SolveRequest { gauge, source, param: param().with_tenant(tenant) })
    }

    #[test]
    fn unknown_gauge_rejected_at_submit() {
        let service = Service::new(ServiceConfig::default());
        let source = random_spinor_field(dims(), 1);
        let req = SolveRequest { gauge: ServiceGaugeId(99), source, param: param() };
        assert!(matches!(service.submit(req), Err(ServiceError::UnknownGauge(_))));
    }

    #[test]
    fn dims_mismatch_rejected_at_submit() {
        let service = Service::new(ServiceConfig::default());
        let gauge = service.load_gauge(weak_field(dims(), 0.15, 7)).unwrap();
        let source = random_spinor_field(LatticeDims::new(4, 4, 4, 8), 1);
        let req = SolveRequest { gauge, source, param: param() };
        assert!(matches!(service.submit(req), Err(ServiceError::DimsMismatch)));
    }

    #[test]
    fn elastic_requests_rejected() {
        let service = Service::new(ServiceConfig::default());
        let (_, mut req) = request(&service, 0, 1);
        req.param = req.param.with_max_rank_deaths(1);
        assert!(matches!(service.submit(req), Err(ServiceError::Invalid(_))));
    }

    #[test]
    fn bounded_queue_rejects_with_queue_full() {
        let config = ServiceConfig { queue_capacity: 2, ..ServiceConfig::default() };
        let service = Service::new(config);
        let (_, req) = request(&service, 5, 1);
        assert!(service.submit(req.clone()).is_ok());
        assert!(service.submit(req.clone()).is_ok());
        assert!(matches!(
            service.submit(req),
            Err(ServiceError::QueueFull { tenant: 5, capacity: 2 })
        ));
        let stats = service.shutdown();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.max_queue_depth, 2);
    }

    #[test]
    fn shutdown_before_start_resolves_tickets() {
        let service = Service::new(ServiceConfig::default());
        let (_, req) = request(&service, 0, 1);
        let ticket = service.submit(req).unwrap();
        let stats = service.shutdown();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 0);
        assert_eq!(ticket.wait().unwrap_err(), ServiceError::ShuttingDown);
    }

    #[test]
    fn zero_deadline_expires_in_queue() {
        let mut service = Service::new(ServiceConfig::default());
        let (_, mut req) = request(&service, 0, 1);
        req.param = req.param.with_deadline(std::time::Duration::ZERO);
        let ticket = service.submit(req).unwrap();
        service.start();
        assert!(matches!(ticket.wait(), Err(ServiceError::DeadlineExpired(_))));
        let stats = service.shutdown();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.completed, 0);
    }

    #[test]
    fn freed_gauge_rejects_new_but_queued_work_completes() {
        let mut service = Service::new(ServiceConfig::default());
        let (gauge, req) = request(&service, 0, 3);
        let ticket = service.submit(req.clone()).unwrap();
        service.free_gauge(gauge).unwrap();
        assert!(matches!(service.submit(req), Err(ServiceError::UnknownGauge(_))));
        service.start();
        let (_, report) = ticket.wait().unwrap();
        assert!(report.converged);
        service.shutdown();
    }

    #[test]
    fn compatible_requests_fuse_into_one_batch() {
        let mut service = Service::new(ServiceConfig { max_batch: 4, ..ServiceConfig::default() });
        let gauge = service.load_gauge(weak_field(dims(), 0.15, 7)).unwrap();
        let mut tickets = Vec::new();
        for seed in 0..3 {
            let source = random_spinor_field(dims(), 10 + seed);
            tickets.push(
                service
                    .submit(SolveRequest { gauge, source, param: param().with_tenant(seed as u32) })
                    .unwrap(),
            );
        }
        service.start();
        for t in tickets {
            let (_, report) = t.wait().unwrap();
            assert!(report.converged);
            assert_eq!(report.queue.batch_size, 3);
        }
        let stats = service.shutdown();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.max_batch, 3);
        assert_eq!(stats.completed, 3);
    }

    #[test]
    fn incompatible_keys_stay_in_separate_batches() {
        let mut service = Service::new(ServiceConfig::default());
        let gauge = service.load_gauge(weak_field(dims(), 0.15, 7)).unwrap();
        let a = service
            .submit(SolveRequest { gauge, source: random_spinor_field(dims(), 1), param: param() })
            .unwrap();
        let b = service
            .submit(SolveRequest {
                gauge,
                source: random_spinor_field(dims(), 2),
                param: param().with_mass(0.25),
            })
            .unwrap();
        service.start();
        let (_, ra) = a.wait().unwrap();
        let (_, rb) = b.wait().unwrap();
        assert_eq!(ra.queue.batch_size, 1);
        assert_eq!(rb.queue.batch_size, 1);
        let stats = service.shutdown();
        assert_eq!(stats.batches, 2);
    }
}
