//! Requests, tickets, and the service error taxonomy.

use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use quda_core::{InvertReport, QudaError, QudaInvertParam};
use quda_fields::host::HostSpinorField;

/// Handle to a gauge configuration cached in the service — the
/// service-side counterpart of [`quda_core::GaugeId`]. Ids are unique for
/// the life of the service and never reused, so a stale handle fails
/// loudly instead of aliasing a newer field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServiceGaugeId(pub(crate) u64);

/// One inversion request: which cached gauge field, the source, and the
/// solve controls (tenant, deadline, and precision ride inside the
/// [`QudaInvertParam`]).
#[derive(Clone, Debug)]
pub struct SolveRequest {
    /// The cached gauge configuration to invert against.
    pub gauge: ServiceGaugeId,
    /// Right-hand side.
    pub source: HostSpinorField,
    /// Solve controls; [`QudaInvertParam::tenant`] selects the queue and
    /// [`QudaInvertParam::deadline`] bounds the queue wait.
    pub param: QudaInvertParam,
}

/// Everything a service interaction can fail with.
#[derive(Clone, Debug, PartialEq)]
pub enum ServiceError {
    /// The tenant's bounded queue is full — backpressure; retry later.
    QueueFull {
        /// Tenant whose queue rejected the request.
        tenant: u32,
        /// The queue's capacity.
        capacity: usize,
    },
    /// The request's deadline passed while it was still queued; the solve
    /// was never started. Carries the time it waited.
    DeadlineExpired(Duration),
    /// The gauge handle was never loaded, or has been freed.
    UnknownGauge(ServiceGaugeId),
    /// The source dimensions do not match the gauge field's.
    DimsMismatch,
    /// The request is malformed (e.g. asks for elastic recovery, which
    /// batched service solves do not support — failed members are retried
    /// as fresh requests instead).
    Invalid(String),
    /// The service is shutting down; queued work it will not run is
    /// resolved with this error.
    ShuttingDown,
    /// The underlying inversion failed.
    Solve(QudaError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::QueueFull { tenant, capacity } => {
                write!(f, "tenant {tenant} queue full (capacity {capacity})")
            }
            ServiceError::DeadlineExpired(waited) => {
                write!(f, "deadline expired after queueing {waited:?}")
            }
            ServiceError::UnknownGauge(id) => write!(f, "unknown or freed gauge handle {id:?}"),
            ServiceError::DimsMismatch => write!(f, "source dims do not match the gauge field"),
            ServiceError::Invalid(why) => write!(f, "invalid request: {why}"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::Solve(e) => write!(f, "inversion failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

/// What a fulfilled ticket yields.
pub type SolveOutcome = Result<(HostSpinorField, InvertReport), ServiceError>;

/// The waitable half of a completion slot: a mutex-guarded result plus a
/// condvar the fulfilling worker signals.
pub(crate) struct TicketShared {
    slot: Mutex<Option<SolveOutcome>>,
    done: Condvar,
}

impl TicketShared {
    pub(crate) fn new() -> Arc<TicketShared> {
        Arc::new(TicketShared { slot: Mutex::new(None), done: Condvar::new() })
    }

    /// Deposit the outcome and wake the waiter. Idempotent: the first
    /// outcome wins (a ticket is only ever fulfilled once, but shutdown
    /// drains defend against double completion).
    pub(crate) fn fulfill(&self, outcome: SolveOutcome) {
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some(outcome);
            self.done.notify_all();
        }
    }
}

/// A claim on one submitted solve. Obtained from
/// [`Service::submit`](crate::Service::submit); redeem with
/// [`Ticket::wait`].
pub struct Ticket {
    pub(crate) shared: Arc<TicketShared>,
}

impl Ticket {
    /// Block until the solve completes (or is rejected), consuming the
    /// ticket and returning the outcome.
    pub fn wait(self) -> SolveOutcome {
        let mut slot = self.shared.slot.lock().unwrap_or_else(PoisonError::into_inner);
        while slot.is_none() {
            slot = self.shared.done.wait(slot).unwrap_or_else(PoisonError::into_inner);
        }
        match slot.take() {
            Some(outcome) => outcome,
            // Unreachable: the loop above only exits on `Some`.
            None => Err(ServiceError::ShuttingDown),
        }
    }

    /// Whether the outcome is already available (non-blocking).
    pub fn is_done(&self) -> bool {
        self.shared.slot.lock().unwrap_or_else(PoisonError::into_inner).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticket_roundtrip() {
        let shared = TicketShared::new();
        let t = Ticket { shared: Arc::clone(&shared) };
        assert!(!t.is_done());
        shared.fulfill(Err(ServiceError::DimsMismatch));
        // First fulfillment wins.
        shared.fulfill(Err(ServiceError::ShuttingDown));
        assert!(t.is_done());
        assert_eq!(t.wait().unwrap_err(), ServiceError::DimsMismatch);
    }
}
