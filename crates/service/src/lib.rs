//! # quda-service
//!
//! A long-running, multi-tenant inversion service over the [`quda_core`]
//! interface (DESIGN.md §14).
//!
//! Lattice-QCD analysis campaigns invert the same Dirac operator against
//! thousands of right-hand sides: one propagator per source position,
//! spin, and color, all on a handful of gauge configurations. Calling
//! [`quda_core::Quda::invert`] once per source leaves the dominant cost —
//! reading the gauge field — unamortized. This crate runs the inversions
//! as a service instead:
//!
//! * **Cached gauge fields** — configurations are loaded once, validated
//!   once, and shared by reference count ([`std::sync::Arc`]) across every
//!   worker; see [`Service::load_gauge`].
//! * **Batching** — queued requests with the same [`BatchKey`] (gauge,
//!   operator, precision, solver controls) are fused into one blocked
//!   multi-RHS solve, so gauge links are read once per Krylov sweep and
//!   one set of face messages moves per exchange. Batched solutions are
//!   bit-identical to sequential ones (the batched-equivalence suite
//!   enforces this).
//! * **Admission control** — per-tenant bounded queues reject with
//!   [`ServiceError::QueueFull`] instead of growing without bound, and
//!   requests carry optional deadlines that expire in the queue rather
//!   than wasting a solve.
//! * **Weighted-fair scheduling** — tenants are served by start-time
//!   virtual-time fairness, so a flooding tenant cannot starve a trickle
//!   tenant (see `tests/fairness.rs`).
//!
//! ```no_run
//! use quda_core::{QudaInvertParam, PrecisionMode};
//! use quda_fields::gauge_gen::weak_field;
//! use quda_fields::host::HostSpinorField;
//! use quda_lattice::geometry::{Coord, LatticeDims};
//! use quda_service::{Service, ServiceConfig, SolveRequest};
//!
//! let dims = LatticeDims::new(4, 4, 4, 8);
//! let mut service = Service::new(ServiceConfig::default());
//! let gauge = service.load_gauge(weak_field(dims, 0.1, 42)).unwrap();
//! service.start();
//! let param = QudaInvertParam::paper_mode(PrecisionMode::Double, 2)
//!     .with_mass(0.3)
//!     .with_tol(1e-10)
//!     .with_tenant(7);
//! let source = HostSpinorField::point_source(dims, Coord::new(0, 0, 0, 0), 0, 0);
//! let ticket = service.submit(SolveRequest { gauge, source, param }).unwrap();
//! let (solution, report) = ticket.wait().unwrap();
//! assert!(report.converged);
//! assert!(report.queue.batch_size >= 1);
//! let stats = service.shutdown();
//! assert_eq!(stats.completed, 1);
//! # let _ = solution;
//! ```

#![warn(missing_docs)]
// Service threads must not panic: a dead worker strands every queued
// ticket. Locks recover from poisoning via `PoisonError::into_inner`.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod batch;
pub mod config;
pub mod request;
pub mod service;
pub mod tenant;

pub use batch::BatchKey;
pub use config::{ServiceConfig, TenantConfig};
pub use request::{ServiceError, ServiceGaugeId, SolveRequest, Ticket};
pub use service::{Service, ServiceStats, TenantStats};
