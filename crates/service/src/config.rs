//! Service and per-tenant configuration.

use quda_dirac::MAX_RHS_BATCH;

/// Static configuration of a [`Service`](crate::Service).
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads. Each worker owns a [`quda_core::Quda`] context and
    /// dispatches one batch at a time.
    pub workers: usize,
    /// Most right-hand sides fused into one blocked solve. Clamped to
    /// `1..=MAX_RHS_BATCH` ([`quda_dirac::MAX_RHS_BATCH`]).
    pub max_batch: usize,
    /// Bounded queue depth per tenant; a submission past it is rejected
    /// with [`ServiceError::QueueFull`](crate::ServiceError::QueueFull).
    pub queue_capacity: usize,
    /// Scheduling weight for tenants without an explicit
    /// [`TenantConfig`]; higher weight means a larger share.
    pub default_weight: u32,
    /// Record the tenant of every dispatched request in
    /// [`ServiceStats::dispatch_log`](crate::ServiceStats::dispatch_log)
    /// — the fairness suite's observability hook. Off by default: the log
    /// grows with every request.
    pub log_dispatch_order: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 1,
            max_batch: MAX_RHS_BATCH,
            queue_capacity: 64,
            default_weight: 1,
            log_dispatch_order: false,
        }
    }
}

impl ServiceConfig {
    /// The effective per-batch RHS cap.
    pub fn batch_cap(&self) -> usize {
        self.max_batch.clamp(1, MAX_RHS_BATCH)
    }
}

/// Per-tenant overrides registered via
/// [`Service::configure_tenant`](crate::Service::configure_tenant).
#[derive(Clone, Copy, Debug)]
pub struct TenantConfig {
    /// Scheduling weight: a tenant with weight 2 gets twice the service
    /// share of a weight-1 tenant while both are backlogged. Clamped to a
    /// minimum of 1.
    pub weight: u32,
    /// Queue depth bound for this tenant.
    pub queue_capacity: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_cap_clamps_to_library_limit() {
        let mut c = ServiceConfig::default();
        assert_eq!(c.batch_cap(), MAX_RHS_BATCH);
        c.max_batch = 0;
        assert_eq!(c.batch_cap(), 1);
        c.max_batch = 100;
        assert_eq!(c.batch_cap(), MAX_RHS_BATCH);
    }
}
