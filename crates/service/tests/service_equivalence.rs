//! Batched service solves are bit-identical to direct `Quda::invert`
//! calls, and the queue telemetry reflects how they were batched.

use quda_core::{PrecisionMode, Quda, QudaInvertParam};
use quda_fields::gauge_gen::{random_spinor_field, weak_field};
use quda_fields::host::HostSpinorField;
use quda_lattice::geometry::LatticeDims;
use quda_service::{Service, ServiceConfig, SolveRequest};

fn dims() -> LatticeDims {
    LatticeDims::new(4, 4, 2, 8)
}

fn param(tenant: u32) -> QudaInvertParam {
    QudaInvertParam::paper_mode(PrecisionMode::Double, 2)
        .with_mass(0.3)
        .with_tol(1e-10)
        .with_tenant(tenant)
}

#[test]
fn batched_service_solves_match_direct_inversion() {
    let cfg = weak_field(dims(), 0.15, 7);
    let sources: Vec<HostSpinorField> =
        (0..4).map(|k| random_spinor_field(dims(), 20 + k)).collect();

    let mut service =
        Service::new(ServiceConfig { workers: 1, max_batch: 4, ..ServiceConfig::default() });
    let gauge = service.load_gauge(cfg.clone()).unwrap();
    // Four tenants, one compatible request each: the service fuses them
    // into a single blocked solve.
    let tickets: Vec<_> = sources
        .iter()
        .enumerate()
        .map(|(tenant, source)| {
            service
                .submit(SolveRequest { gauge, source: source.clone(), param: param(tenant as u32) })
                .unwrap()
        })
        .collect();
    service.start();

    let mut direct = Quda::new(2).unwrap();
    direct.load_gauge(cfg).unwrap();
    for (tenant, (ticket, source)) in tickets.into_iter().zip(&sources).enumerate() {
        let (x, report) = ticket.wait().expect("service solve");
        let (x_direct, report_direct) = direct.invert(source, &param(tenant as u32)).unwrap();
        assert!(report.converged);
        assert_eq!(report.iterations, report_direct.iterations);
        assert_eq!(
            x.max_site_dist(&x_direct),
            0.0,
            "service solution for tenant {tenant} not bit-identical to direct invert"
        );
        // Telemetry: fused as one batch of 4, accounted to the right tenant.
        assert_eq!(report.queue.batch_size, 4);
        assert_eq!(report.queue.tenant, tenant as u32);
        assert_eq!(report.queue.queue_depth, 1);
    }
    let stats = service.shutdown();
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.max_batch, 4);
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.per_tenant.len(), 4);
    for (_, t) in &stats.per_tenant {
        assert_eq!(t.completed, 1);
    }
}

#[test]
fn mixed_precision_service_solve_round_trip() {
    let cfg = weak_field(dims(), 0.15, 9);
    let mut service = Service::new(ServiceConfig::default());
    let gauge = service.load_gauge(cfg.clone()).unwrap();
    let source = random_spinor_field(dims(), 31);
    let p = QudaInvertParam::paper_mode(PrecisionMode::SingleHalf, 2).with_mass(0.3).with_tol(2e-6);
    let ticket = service.submit(SolveRequest { gauge, source: source.clone(), param: p }).unwrap();
    service.start();
    let (x, report) = ticket.wait().expect("service solve");
    assert!(report.converged);
    assert!(report.reliable_updates > 0);

    let mut direct = Quda::new(2).unwrap();
    direct.load_gauge(cfg).unwrap();
    let (x_direct, _) = direct.invert(&source, &p).unwrap();
    assert_eq!(x.max_site_dist(&x_direct), 0.0);
    service.shutdown();
}
