//! Weighted-fair scheduling under adversarial load: a tenant flooding its
//! queue must not starve a trickle tenant (DESIGN.md §14).

use quda_core::{PrecisionMode, QudaInvertParam};
use quda_fields::gauge_gen::{random_spinor_field, weak_field};
use quda_lattice::geometry::LatticeDims;
use quda_service::{Service, ServiceConfig, SolveRequest, TenantConfig};

const FLOODER: u32 = 1;
const TRICKLE: u32 = 2;

fn dims() -> LatticeDims {
    LatticeDims::new(4, 4, 2, 4)
}

fn param(tenant: u32) -> QudaInvertParam {
    QudaInvertParam::paper_mode(PrecisionMode::Double, 2)
        .with_mass(0.3)
        .with_tol(1e-8)
        .with_tenant(tenant)
}

/// Preload a paused single-worker service (batch size 1, so the dispatch
/// log is exactly the service order), then start it and read the order.
fn run_preloaded(flood: usize, trickle: usize, weights: (u32, u32)) -> Vec<u32> {
    let mut service = Service::new(ServiceConfig {
        workers: 1,
        max_batch: 1,
        queue_capacity: flood + trickle,
        default_weight: 1,
        log_dispatch_order: true,
    });
    service.configure_tenant(
        FLOODER,
        TenantConfig { weight: weights.0, queue_capacity: flood + trickle },
    );
    service.configure_tenant(
        TRICKLE,
        TenantConfig { weight: weights.1, queue_capacity: flood + trickle },
    );
    let gauge = service.load_gauge(weak_field(dims(), 0.15, 7)).unwrap();
    let mut tickets = Vec::with_capacity(flood + trickle);
    for seed in 0..flood {
        let source = random_spinor_field(dims(), 100 + seed as u64);
        tickets
            .push(service.submit(SolveRequest { gauge, source, param: param(FLOODER) }).unwrap());
    }
    for seed in 0..trickle {
        let source = random_spinor_field(dims(), 900 + seed as u64);
        tickets
            .push(service.submit(SolveRequest { gauge, source, param: param(TRICKLE) }).unwrap());
    }
    service.start();
    for t in tickets {
        let (_, report) = t.wait().expect("service solve");
        assert!(report.converged);
    }
    let stats = service.shutdown();
    assert_eq!(stats.completed as usize, flood + trickle);
    stats.dispatch_log
}

#[test]
fn flooding_tenant_cannot_starve_trickle_tenant() {
    let log = run_preloaded(50, 5, (1, 1));
    assert_eq!(log.len(), 55);
    // Equal weights: while both are backlogged the scheduler alternates,
    // so every trickle request is served within the first 11 dispatches —
    // not after the flooder's 50.
    let last_trickle = log
        .iter()
        .enumerate()
        .filter(|(_, t)| **t == TRICKLE)
        .map(|(i, _)| i)
        .max()
        .expect("trickle tenant never dispatched");
    assert!(
        last_trickle <= 10,
        "trickle tenant starved: last of its 5 requests dispatched at position \
         {last_trickle} of {} (log prefix: {:?})",
        log.len(),
        &log[..12.min(log.len())]
    );
    // And the flooder still gets its fair half of the shared window.
    let flood_in_prefix = log[..10].iter().filter(|t| **t == FLOODER).count();
    assert_eq!(flood_in_prefix, 5, "log prefix: {:?}", &log[..10]);
}

#[test]
fn weights_set_the_service_ratio() {
    // Flooder paying for weight 3 gets three dispatches per trickle one
    // while both are backlogged.
    let log = run_preloaded(30, 8, (3, 1));
    let prefix = &log[..16];
    let flood = prefix.iter().filter(|t| **t == FLOODER).count();
    let trickle = prefix.iter().filter(|t| **t == TRICKLE).count();
    assert!(
        (flood as i64 - 12).abs() <= 1 && (trickle as i64 - 4).abs() <= 1,
        "expected ~3:1 service ratio in the shared window, got {flood}:{trickle} \
         (prefix {prefix:?})"
    );
}
