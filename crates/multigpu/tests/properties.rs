//! Property-based tests of the parallelization layer: over randomized
//! volumes, rank counts, precisions, and strategies, the partitioned
//! operator must agree with the single-device one, and the performance
//! model must respect its structural invariants.

use proptest::prelude::*;
use quda_dirac::{gather_face_site_dim, WilsonCloverOp, WilsonParams};
use quda_fields::gauge_gen::{random_spinor_field, weak_field};
use quda_fields::host::HostSpinorField;
use quda_fields::precision::{Double, Half, Precision, Quarter, Single};
use quda_fields::SpinorFieldCb;
use quda_lattice::geometry::{Coord, LatticeDims, Parity};
use quda_lattice::partition::{DecompPlan, TimePartition};
use quda_lattice::stencil::Stencil;
use quda_math::gamma::{GammaBasis, SpinBasis};
use quda_math::half;
use quda_math::real::Real;
use quda_math::spinor::HALF_SPINOR_REALS;
use quda_multigpu::perf::{evaluate, PerfInput};
use quda_multigpu::rank_op::{CommStrategy, ParallelWilsonCloverOp};
use quda_multigpu::{exchange_spinor_ghosts_grid, gather_spinor, slice_spinor, PrecisionMode};

/// The codec's wire round trip, recomputed from the same public
/// `quantize_sites16/8` helpers the exchange uses: what a face value looks
/// like after gather → quantize → wire → dequantize at precision `P`.
fn wire_round_trip<P: Precision>(values: &[f64]) -> Vec<f64> {
    match (P::NEEDS_NORM, P::STORAGE_BYTES) {
        (false, 8) => values.to_vec(),
        (false, _) => values.iter().map(|&x| x as f32 as f64).collect(),
        (true, 1) => {
            let (mut ints, mut norms) = (Vec::new(), Vec::new());
            half::quantize_sites8(values, HALF_SPINOR_REALS, &mut ints, &mut norms);
            let mut out = Vec::new();
            half::dequantize_sites8(&ints, &norms, HALF_SPINOR_REALS, &mut out);
            out
        }
        (true, _) => {
            let (mut ints, mut norms) = (Vec::new(), Vec::new());
            half::quantize_sites16(values, HALF_SPINOR_REALS, &mut ints, &mut norms);
            let mut out = Vec::new();
            half::dequantize_sites16(&ints, &norms, HALF_SPINOR_REALS, &mut out);
            out
        }
    }
}

/// Full gather→quantize→wire→dequantize→scatter round trip across a
/// 2-rank world cut along `dim`: after the exchange, every ghost value
/// must exactly equal the wire round trip of the peer's gathered face
/// (then narrowed to `P`'s arithmetic type, as the scatter stores it).
fn codec_round_trip<P: Precision>(
    gdims: LatticeDims,
    dim: usize,
    parity: Parity,
    dagger: bool,
    seed: u64,
) {
    let mut grid = [1usize; 4];
    grid[dim] = 2;
    let plan = DecompPlan::new(gdims, grid);
    let d = plan.local_dims();
    let basis = SpinBasis::new(GammaBasis::NonRelativistic);
    let stencil = Stencil::with_open(d, plan.open_dims());
    let hosts = [random_spinor_field(d, seed), random_spinor_field(d, seed + 1)];
    let world = quda_comm::comm_world(2);
    let handles: Vec<_> = world
        .into_iter()
        .zip(hosts.clone())
        .map(|(mut comm, host)| {
            let basis = basis.clone();
            let stencil = stencil.clone();
            std::thread::spawn(move || {
                let mut f = SpinorFieldCb::<P>::new_open(d, plan.open_dims());
                f.upload(&host, parity);
                exchange_spinor_ghosts_grid(
                    &mut comm, &mut f, &basis, &stencil, &plan, parity, dagger,
                )
                .expect("exchange");
                (comm.rank(), f)
            })
        })
        .collect();
    let mut results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    results.sort_by_key(|(r, _)| *r);
    for (rank, field) in &results {
        // Both neighbors on a 2-rank ring are the peer.
        let peer = 1 - rank;
        let mut pf = SpinorFieldCb::<P>::new_open(d, plan.open_dims());
        pf.upload(&hosts[peer], parity);
        let faces = pf.face_sites_dim(dim);
        // backward ghost ← peer's forward-sent face; forward ghost ← the
        // peer's backward-sent face.
        for (backward, to_forward) in [(true, true), (false, false)] {
            let mut vals = Vec::with_capacity(faces * HALF_SPINOR_REALS);
            for f in 0..faces {
                let h =
                    gather_face_site_dim(&pf, &basis, &stencil, dim, to_forward, f, parity, dagger);
                for x in h.to_reals() {
                    vals.push(x.to_f64());
                }
            }
            let rt = wire_round_trip::<P>(&vals);
            for f in 0..faces {
                let got = field.get_ghost_dim(dim, backward, f).to_reals();
                for k in 0..HALF_SPINOR_REALS {
                    let expect = P::Arith::from_f64(rt[f * HALF_SPINOR_REALS + k]).to_f64();
                    assert_eq!(
                        got[k].to_f64(),
                        expect,
                        "rank {rank} dim {dim} backward {backward} face {f} real {k}"
                    );
                }
            }
        }
    }
}

fn coord_get(c: Coord, dim: usize) -> usize {
    [c.x, c.y, c.z, c.t][dim]
}

fn arb_case() -> impl Strategy<Value = (LatticeDims, usize, CommStrategy, bool)> {
    let spatial = prop_oneof![Just(2usize), Just(4)];
    (
        spatial.clone(),
        spatial.clone(),
        spatial,
        prop_oneof![Just(8usize), Just(12)],
        prop_oneof![Just(1usize), Just(2), Just(4)],
        prop_oneof![Just(CommStrategy::NoOverlap), Just(CommStrategy::Overlap)],
        proptest::bool::ANY,
    )
        .prop_filter_map("partition must divide", |(x, y, z, t, ranks, strategy, dagger)| {
            let d = LatticeDims::new(x, y, z, t);
            (t % ranks == 0 && (t / ranks) % 2 == 0 && t / ranks >= 2)
                .then_some((d, ranks, strategy, dagger))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// ISSUE 7 satellite: the per-dimension face codecs round-trip
    /// exactly at every precision, on every axis — including the
    /// non-contiguous strided gathers of X/Y faces on asymmetric local
    /// volumes.
    #[test]
    fn face_codecs_round_trip_on_every_axis_and_precision(
        dim in 0usize..4,
        cut_extent in prop_oneof![Just(4usize), Just(8)],
        other in (
            prop_oneof![Just(2usize), Just(4), Just(6)],
            prop_oneof![Just(2usize), Just(4), Just(6)],
            prop_oneof![Just(2usize), Just(4), Just(6)],
        ),
        odd_parity in proptest::bool::ANY,
        dagger in proptest::bool::ANY,
        seed in 0u64..1000,
    ) {
        let mut ext = [other.0, other.1, other.2, 4];
        ext[dim] = cut_extent;
        let gdims = LatticeDims::new(ext[0], ext[1], ext[2], ext[3]);
        let parity = if odd_parity { Parity::Odd } else { Parity::Even };
        codec_round_trip::<Double>(gdims, dim, parity, dagger, seed);
        codec_round_trip::<Single>(gdims, dim, parity, dagger, seed);
        codec_round_trip::<Half>(gdims, dim, parity, dagger, seed);
        codec_round_trip::<Quarter>(gdims, dim, parity, dagger, seed);
    }

    /// Checkerboard-parity invariant of the face enumeration: every face
    /// coordinate has the requested parity, sits on the fixed slice, and
    /// the enumeration is a bijection onto that slice's parity sites
    /// (`face_index_dim` inverts `face_coord`).
    #[test]
    fn face_enumeration_preserves_checkerboard_parity(
        dim in 0usize..4,
        ext in (
            prop_oneof![Just(2usize), Just(4), Just(6)],
            prop_oneof![Just(2usize), Just(4), Just(6)],
            prop_oneof![Just(2usize), Just(4), Just(6)],
            prop_oneof![Just(2usize), Just(4), Just(6)],
        ),
        odd_parity in proptest::bool::ANY,
        at_far_end in proptest::bool::ANY,
    ) {
        let d = LatticeDims::new(ext.0, ext.1, ext.2, ext.3);
        let parity = if odd_parity { Parity::Odd } else { Parity::Even };
        let fixed = if at_far_end { d.extent(dim) - 1 } else { 0 };
        let n = Stencil::face_sites_dim(&d, dim);
        let mut seen = std::collections::HashSet::new();
        for face in 0..n {
            let c = Stencil::face_coord(&d, dim, parity, fixed, face);
            prop_assert_eq!(c.parity(), parity, "face {} of dim {}", face, dim);
            prop_assert_eq!(coord_get(c, dim), fixed);
            for t in 0..4 {
                prop_assert!(coord_get(c, t) < d.extent(t));
            }
            prop_assert_eq!(Stencil::face_index_dim(&d, c, dim), face, "not inverse at {}", face);
            seen.insert(d.cb_index(c));
        }
        prop_assert_eq!(seen.len(), n, "enumeration revisited a checkerboard site");
    }

    #[test]
    fn parallel_matpc_always_matches_single_device(
        (dims, ranks, strategy, dagger) in arb_case(),
        seed in 0u64..1000,
    ) {
        let cfg = weak_field(dims, 0.15, seed);
        let wp = WilsonParams { mass: 0.25, c_sw: 1.0 };
        let input = random_spinor_field(dims, seed + 1);
        // Single-device reference.
        let ref_op = WilsonCloverOp::<Double>::from_config(&cfg, wp);
        let mut x = ref_op.alloc_spinor();
        x.upload(&input, Parity::Odd);
        let mut out = ref_op.alloc_spinor();
        let (mut t1, mut t2) = (ref_op.alloc_spinor(), ref_op.alloc_spinor());
        ref_op.apply_matpc(&mut out, &x, &mut t1, &mut t2, dagger);
        let mut expect = HostSpinorField::zero(dims);
        out.download(&mut expect, Parity::Odd);
        // Partitioned.
        let part = TimePartition::new(dims, ranks);
        let world = quda_comm::comm_world(ranks);
        let handles: Vec<_> = world
            .into_iter()
            .enumerate()
            .map(|(rank, comm)| {
                let cfg = cfg.clone();
                let input = input.clone();
                std::thread::spawn(move || {
                    let mut op =
                        ParallelWilsonCloverOp::<Double>::new(&cfg, part, rank, comm, wp, strategy)
                            .expect("op init");
                    let local = slice_spinor(&input, &part, rank);
                    let mut x = quda_solvers::operator::LinearOperator::alloc(&op);
                    x.upload(&local, Parity::Odd);
                    let mut out = quda_solvers::operator::LinearOperator::alloc(&op);
                    op.apply_matpc_par(&mut out, &mut x, dagger);
                    let mut host = HostSpinorField::zero(part.local_dims());
                    out.download(&mut host, Parity::Odd);
                    (rank, host)
                })
            })
            .collect();
        let mut locals: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        locals.sort_by_key(|(r, _)| *r);
        let locals: Vec<_> = locals.into_iter().map(|(_, f)| f).collect();
        let got = gather_spinor(&locals, &part);
        let dist = expect.max_site_dist(&got);
        prop_assert!(
            dist < 1e-11,
            "dims={dims} ranks={ranks} strategy={strategy:?} dagger={dagger}: dist={dist}"
        );
    }

    #[test]
    fn perf_model_invariants(
        log_ranks in 0usize..6,
        mode in prop_oneof![
            Just(PrecisionMode::Single),
            Just(PrecisionMode::Double),
            Just(PrecisionMode::SingleHalf),
            Just(PrecisionMode::DoubleHalf),
        ],
    ) {
        let ranks = 1usize << log_ranks;
        let global = LatticeDims::spatial_cube(24, 128);
        prop_assume!(global.t % ranks == 0 && (global.t / ranks) % 2 == 0);
        for strategy in [CommStrategy::NoOverlap, CommStrategy::Overlap] {
            let r = evaluate(&PerfInput::paper(global, ranks, mode, strategy));
            prop_assert!(r.iteration_time_s > 0.0);
            prop_assert!(r.sustained_gflops > 0.0);
            prop_assert!((0.0..=1.0).contains(&r.comm_fraction));
            prop_assert!(r.memory_per_gpu > 0);
            // Aggregate = per-GPU × ranks.
            prop_assert!((r.sustained_gflops - r.per_gpu_gflops * ranks as f64).abs() < 1e-6 * r.sustained_gflops);
        }
        // Memory shrinks (weakly) with more GPUs.
        if global.t % (2 * ranks) == 0 && (global.t / (2 * ranks)) % 2 == 0 && global.t / (2 * ranks) >= 2 {
            let m1 = quda_multigpu::solver_memory_per_gpu(global, ranks, mode);
            let m2 = quda_multigpu::solver_memory_per_gpu(global, 2 * ranks, mode);
            prop_assert!(m2 < m1);
        }
    }
}
