//! Property-based tests of the parallelization layer: over randomized
//! volumes, rank counts, precisions, and strategies, the partitioned
//! operator must agree with the single-device one, and the performance
//! model must respect its structural invariants.

use proptest::prelude::*;
use quda_dirac::{WilsonCloverOp, WilsonParams};
use quda_fields::gauge_gen::{random_spinor_field, weak_field};
use quda_fields::host::HostSpinorField;
use quda_fields::precision::Double;
use quda_lattice::geometry::{LatticeDims, Parity};
use quda_lattice::partition::TimePartition;
use quda_multigpu::perf::{evaluate, PerfInput};
use quda_multigpu::rank_op::{CommStrategy, ParallelWilsonCloverOp};
use quda_multigpu::{gather_spinor, slice_spinor, PrecisionMode};

fn arb_case() -> impl Strategy<Value = (LatticeDims, usize, CommStrategy, bool)> {
    let spatial = prop_oneof![Just(2usize), Just(4)];
    (
        spatial.clone(),
        spatial.clone(),
        spatial,
        prop_oneof![Just(8usize), Just(12)],
        prop_oneof![Just(1usize), Just(2), Just(4)],
        prop_oneof![Just(CommStrategy::NoOverlap), Just(CommStrategy::Overlap)],
        proptest::bool::ANY,
    )
        .prop_filter_map("partition must divide", |(x, y, z, t, ranks, strategy, dagger)| {
            let d = LatticeDims::new(x, y, z, t);
            (t % ranks == 0 && (t / ranks) % 2 == 0 && t / ranks >= 2)
                .then_some((d, ranks, strategy, dagger))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn parallel_matpc_always_matches_single_device(
        (dims, ranks, strategy, dagger) in arb_case(),
        seed in 0u64..1000,
    ) {
        let cfg = weak_field(dims, 0.15, seed);
        let wp = WilsonParams { mass: 0.25, c_sw: 1.0 };
        let input = random_spinor_field(dims, seed + 1);
        // Single-device reference.
        let ref_op = WilsonCloverOp::<Double>::from_config(&cfg, wp);
        let mut x = ref_op.alloc_spinor();
        x.upload(&input, Parity::Odd);
        let mut out = ref_op.alloc_spinor();
        let (mut t1, mut t2) = (ref_op.alloc_spinor(), ref_op.alloc_spinor());
        ref_op.apply_matpc(&mut out, &x, &mut t1, &mut t2, dagger);
        let mut expect = HostSpinorField::zero(dims);
        out.download(&mut expect, Parity::Odd);
        // Partitioned.
        let part = TimePartition::new(dims, ranks);
        let world = quda_comm::comm_world(ranks);
        let handles: Vec<_> = world
            .into_iter()
            .enumerate()
            .map(|(rank, comm)| {
                let cfg = cfg.clone();
                let input = input.clone();
                std::thread::spawn(move || {
                    let mut op =
                        ParallelWilsonCloverOp::<Double>::new(&cfg, part, rank, comm, wp, strategy)
                            .expect("op init");
                    let local = slice_spinor(&input, &part, rank);
                    let mut x = quda_solvers::operator::LinearOperator::alloc(&op);
                    x.upload(&local, Parity::Odd);
                    let mut out = quda_solvers::operator::LinearOperator::alloc(&op);
                    op.apply_matpc_par(&mut out, &mut x, dagger);
                    let mut host = HostSpinorField::zero(part.local_dims());
                    out.download(&mut host, Parity::Odd);
                    (rank, host)
                })
            })
            .collect();
        let mut locals: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        locals.sort_by_key(|(r, _)| *r);
        let locals: Vec<_> = locals.into_iter().map(|(_, f)| f).collect();
        let got = gather_spinor(&locals, &part);
        let dist = expect.max_site_dist(&got);
        prop_assert!(
            dist < 1e-11,
            "dims={dims} ranks={ranks} strategy={strategy:?} dagger={dagger}: dist={dist}"
        );
    }

    #[test]
    fn perf_model_invariants(
        log_ranks in 0usize..6,
        mode in prop_oneof![
            Just(PrecisionMode::Single),
            Just(PrecisionMode::Double),
            Just(PrecisionMode::SingleHalf),
            Just(PrecisionMode::DoubleHalf),
        ],
    ) {
        let ranks = 1usize << log_ranks;
        let global = LatticeDims::spatial_cube(24, 128);
        prop_assume!(global.t % ranks == 0 && (global.t / ranks) % 2 == 0);
        for strategy in [CommStrategy::NoOverlap, CommStrategy::Overlap] {
            let r = evaluate(&PerfInput::paper(global, ranks, mode, strategy));
            prop_assert!(r.iteration_time_s > 0.0);
            prop_assert!(r.sustained_gflops > 0.0);
            prop_assert!((0.0..=1.0).contains(&r.comm_fraction));
            prop_assert!(r.memory_per_gpu > 0);
            // Aggregate = per-GPU × ranks.
            prop_assert!((r.sustained_gflops - r.per_gpu_gflops * ranks as f64).abs() < 1e-6 * r.sustained_gflops);
        }
        // Memory shrinks (weakly) with more GPUs.
        if global.t % (2 * ranks) == 0 && (global.t / (2 * ranks)) % 2 == 0 && global.t / (2 * ranks) >= 2 {
            let m1 = quda_multigpu::solver_memory_per_gpu(global, ranks, mode);
            let m2 = quda_multigpu::solver_memory_per_gpu(global, 2 * ranks, mode);
            prop_assert!(m2 < m1);
        }
    }
}
