//! Multi-dimensional decomposition — the paper's future work, modeled.
//!
//! Section VI-A: "If one were to attempt to scale to hundreds of GPUs or
//! more, multi-dimensional parallelization would clearly be needed to keep
//! the local surface to volume ratio under control ... Work in this
//! direction is underway." This module extends the performance model to a
//! 2-d (Z, T) process grid so that trade-off can be quantified: the 1-d
//! slicing runs out of time-extent at `T/2` GPUs and its face cost is
//! constant while the local volume shrinks; a 2-d grid keeps the surface
//! growing with the square root instead.
//!
//! Faces in non-temporal directions carry the same 12 reals per site — "it
//! is true in general (for all directions) that only 12 numbers need be
//! transferred", with the projector applied explicitly before the transfer
//! (footnote 3) — so the message model is unchanged; only the face areas
//! and count differ.

use crate::perf::{face_bytes, mode_tags, PerfInput};
use quda_fields::precision::PrecisionTag;
use quda_gpusim::kernel::{kernel_time, KernelWork};
use quda_gpusim::transfer::{allreduce_time, network_time, pcie_time, CopyKind, Direction};
use quda_lattice::geometry::LatticeDims;

/// A 2-d process grid over the Z and T dimensions.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ProcessGrid {
    /// Ranks along Z.
    pub nz: usize,
    /// Ranks along T.
    pub nt: usize,
}

impl ProcessGrid {
    /// Total GPUs.
    pub fn ranks(&self) -> usize {
        self.nz * self.nt
    }

    /// Whether the grid divides the lattice with even local extents.
    pub fn divides(&self, dims: LatticeDims) -> bool {
        dims.z % self.nz == 0
            && dims.t % self.nt == 0
            && (dims.z / self.nz) % 2 == 0
            && (dims.t / self.nt) % 2 == 0
            && dims.z / self.nz >= 2
            && dims.t / self.nt >= 2
    }

    /// Local sub-lattice.
    pub fn local_dims(&self, dims: LatticeDims) -> LatticeDims {
        LatticeDims::new(dims.x, dims.y, dims.z / self.nz, dims.t / self.nt)
    }

    /// All valid grids for `ranks` GPUs on `dims`, 1-d included.
    pub fn candidates(dims: LatticeDims, ranks: usize) -> Vec<ProcessGrid> {
        let mut out = Vec::new();
        let mut nz = 1;
        while nz <= ranks {
            if ranks % nz == 0 {
                let g = ProcessGrid { nz, nt: ranks / nz };
                if g.divides(dims) {
                    out.push(g);
                }
            }
            nz *= 2;
        }
        out
    }

    /// Face sites (per parity) exchanged per hopping application, summed
    /// over the partitioned directions (each cut direction has 2 faces).
    pub fn face_sites_cb(&self, dims: LatticeDims) -> usize {
        let ld = self.local_dims(dims);
        let mut faces = 0;
        if self.nt > 1 {
            faces += ld.x * ld.y * ld.z / 2; // T faces (one per direction end)
        }
        if self.nz > 1 {
            faces += ld.x * ld.y * ld.t / 2; // Z faces
        }
        faces
    }
}

/// Modeled sustained aggregate Gflops of the solver on a 2-d grid, using
/// the no-overlap strategy (conservative; overlap benefits both equally).
pub fn sustained_gflops_2d(inp: &PerfInput, grid: ProcessGrid) -> Option<f64> {
    if !grid.divides(inp.global) {
        return None;
    }
    let (_, sloppy) = mode_tags(inp.mode);
    let ld = grid.local_dims(inp.global);
    let sites = ld.half_volume() as u64;
    let t_dslash = dslash_time_2d(inp, grid, sloppy);
    // Two clover kernels per operator application (as in the 1-d model).
    let clover = |axpy: bool| {
        let b = sloppy.storage_bytes() as u64;
        let reals = if axpy { 144u64 } else { 120 };
        kernel_time(
            &inp.calib.kernel,
            &inp.gpu,
            &KernelWork {
                bytes: sites * reals * b,
                flops: sites * 552,
                storage_bytes: sloppy.storage_bytes(),
            },
        )
    };
    let t_matpc = 2.0 * t_dslash + clover(false) + clover(true);
    let b = sloppy.storage_bytes() as u64;
    let blas = kernel_time(
        &inp.calib.kernel,
        &inp.gpu,
        &KernelWork {
            bytes: sites * 528 * b,
            flops: sites * 1032,
            storage_bytes: sloppy.storage_bytes(),
        },
    ) + 4.0 * allreduce_time(&inp.calib.network, grid.ranks());
    let t_iter = 2.0 * t_matpc + blas;
    let flops = (2 * sites * quda_dirac::flops::MATPC_FLOPS_PER_SITE + sites * 1032) as f64;
    Some(grid.ranks() as f64 * flops / t_iter / 1e9)
}

fn dslash_time_2d(inp: &PerfInput, grid: ProcessGrid, tag: PrecisionTag) -> f64 {
    let ld = grid.local_dims(inp.global);
    let sites = ld.half_volume() as u64;
    let b = tag.storage_bytes() as u64;
    let kernel = kernel_time(
        &inp.calib.kernel,
        &inp.gpu,
        &KernelWork {
            bytes: sites * quda_dirac::flops::DSLASH_REALS_PER_SITE * b,
            flops: sites * 1650,
            storage_bytes: tag.storage_bytes(),
        },
    );
    let t = &inp.calib.transfer;
    let mut comm = 0.0;
    let mut add_direction = |face_sites: usize| {
        if face_sites == 0 {
            return;
        }
        let msg = face_bytes(tag, face_sites);
        let gather = crate::perf::d2h_copies(tag) as f64 * t.sync_latency_s
            + msg as f64 / bw(t, Direction::D2H, inp);
        let scatter = crate::perf::h2d_copies(tag) as f64 * t.sync_latency_s
            + msg as f64 / bw(t, Direction::H2D, inp);
        comm += 2.0 * gather + network_time(&inp.calib.network, msg) + 2.0 * scatter;
    };
    if grid.nt > 1 {
        add_direction(ld.x * ld.y * ld.z / 2);
    }
    if grid.nz > 1 {
        add_direction(ld.x * ld.y * ld.t / 2);
    }
    kernel + comm
}

fn bw(t: &quda_gpusim::calib::TransferCalib, dir: Direction, inp: &PerfInput) -> f64 {
    let base = pcie_time(t, CopyKind::Sync, dir, inp.numa, 0);
    let one = pcie_time(t, CopyKind::Sync, dir, inp.numa, 1_000_000);
    1_000_000.0 / (one - base)
}

/// The best grid (by modeled Gflops) for a GPU count, among power-of-two
/// factorizations.
pub fn best_grid(inp: &PerfInput, ranks: usize) -> Option<(ProcessGrid, f64)> {
    ProcessGrid::candidates(inp.global, ranks)
        .into_iter()
        .filter_map(|g| sustained_gflops_2d(inp, g).map(|f| (g, f)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::PrecisionMode;
    use crate::rank_op::CommStrategy;

    fn inp(ranks: usize) -> PerfInput {
        PerfInput::paper(
            LatticeDims::spatial_cube(32, 256),
            ranks.max(1),
            PrecisionMode::Single,
            CommStrategy::NoOverlap,
        )
    }

    #[test]
    fn one_d_grid_matches_shape_of_main_model() {
        // The pure-T grid is the paper's decomposition; its Gflops should
        // be within a few percent of the main model's no-overlap path.
        let i = inp(16);
        let g2d = sustained_gflops_2d(&i, ProcessGrid { nz: 1, nt: 16 }).unwrap();
        let g1d = crate::perf::evaluate(&i).sustained_gflops;
        let ratio = g2d / g1d;
        assert!((0.85..1.15).contains(&ratio), "2d(1xT) {g2d} vs 1d {g1d}");
    }

    #[test]
    fn one_d_runs_out_of_time_extent() {
        // 32^3x256 with local T >= 2 even: at most 128... but valid
        // power-of-two candidates stop giving a pure-T grid at 128 ranks;
        // at 256 ranks only 2-d grids remain.
        let dims = LatticeDims::spatial_cube(32, 256);
        let grids = ProcessGrid::candidates(dims, 256);
        assert!(!grids.is_empty());
        assert!(grids.iter().all(|g| g.nz > 1), "pure 1-d cannot reach 256 ranks: {grids:?}");
    }

    #[test]
    fn two_d_wins_at_large_gpu_counts() {
        // The paper's motivation: surface/volume control. At 128 GPUs the
        // T-only slice has local T = 2 (face sites = interior sites); a
        // balanced grid does better.
        let i = inp(128);
        let t_only = sustained_gflops_2d(&i, ProcessGrid { nz: 1, nt: 128 }).unwrap();
        let (best, best_gflops) = best_grid(&i, 128).unwrap();
        assert!(best.nz > 1, "expected a 2-d grid to win, got {best:?}");
        assert!(best_gflops > t_only, "2-d {best_gflops} vs 1-d {t_only}");
    }

    #[test]
    fn small_counts_prefer_one_d() {
        // At modest GPU counts the 1-d slice minimizes the number of cut
        // directions — the reason the paper chose it.
        let i = inp(8);
        let (best, _) = best_grid(&i, 8).unwrap();
        assert_eq!(best, ProcessGrid { nz: 1, nt: 8 });
    }

    #[test]
    fn face_site_accounting() {
        let dims = LatticeDims::spatial_cube(32, 256);
        let g = ProcessGrid { nz: 2, nt: 8 };
        let ld = g.local_dims(dims);
        assert_eq!(ld, LatticeDims::new(32, 32, 16, 32));
        assert_eq!(g.face_sites_cb(dims), 32 * 32 * 16 / 2 + 32 * 32 * 32 / 2);
    }
}
