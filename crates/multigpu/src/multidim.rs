//! Multi-dimensional decomposition performance model.
//!
//! Section VI-A: "If one were to attempt to scale to hundreds of GPUs or
//! more, multi-dimensional parallelization would clearly be needed to keep
//! the local surface to volume ratio under control ... Work in this
//! direction is underway." This module models a full 4-d (X,Y,Z,T) process
//! grid so that trade-off can be quantified: the 1-d slicing runs out of
//! time-extent at `T/2` GPUs and its face cost is constant while the local
//! volume shrinks; a multi-dimensional grid keeps the surface growing with
//! a fractional power instead.
//!
//! Faces in non-temporal directions carry the same 12 reals per site — "it
//! is true in general (for all directions) that only 12 numbers need be
//! transferred", with the projector applied explicitly before the transfer
//! (footnote 3) — so the message model is unchanged; only the face areas
//! and count differ. The model is cross-checked against the real
//! [`crate::ghost`] exchange driver: every candidate grid maps onto a
//! [`DecompPlan`] and the modeled per-direction face bytes equal the bytes
//! the driver actually puts on the wire.

use crate::perf::{face_bytes, mode_tags, PerfInput};
use quda_fields::precision::PrecisionTag;
use quda_gpusim::kernel::{kernel_time, KernelWork};
use quda_gpusim::transfer::{allreduce_time, network_time, pcie_time, CopyKind, Direction};
use quda_lattice::geometry::LatticeDims;
use quda_lattice::partition::DecompPlan;

/// A 4-d process grid over the X, Y, Z and T dimensions.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ProcessGrid {
    /// Ranks along X.
    pub nx: usize,
    /// Ranks along Y.
    pub ny: usize,
    /// Ranks along Z.
    pub nz: usize,
    /// Ranks along T.
    pub nt: usize,
}

impl ProcessGrid {
    /// The paper's 1-d temporal slicing over `nt` ranks.
    pub fn one_d(nt: usize) -> ProcessGrid {
        ProcessGrid { nx: 1, ny: 1, nz: 1, nt }
    }

    /// Grid extents in dimension order `[X, Y, Z, T]`.
    pub fn extents(&self) -> [usize; 4] {
        [self.nx, self.ny, self.nz, self.nt]
    }

    /// Total GPUs.
    pub fn ranks(&self) -> usize {
        // Grid-shape arithmetic, not rank-local data.
        // quda-lint: allow(global-reduce)
        self.extents().iter().product()
    }

    /// Whether the grid divides the lattice with even local extents.
    pub fn divides(&self, dims: LatticeDims) -> bool {
        self.extents().iter().enumerate().all(|(dim, &n)| {
            let ext = dims.extent(dim);
            ext % n == 0 && (ext / n) % 2 == 0 && ext / n >= 2
        })
    }

    /// Local sub-lattice.
    pub fn local_dims(&self, dims: LatticeDims) -> LatticeDims {
        LatticeDims::new(dims.x / self.nx, dims.y / self.ny, dims.z / self.nz, dims.t / self.nt)
    }

    /// The real exchange driver's decomposition plan for this grid, or
    /// `None` when the grid does not divide `dims`.
    pub fn decomp(&self, dims: LatticeDims) -> Option<DecompPlan> {
        DecompPlan::try_new(dims, self.extents()).ok()
    }

    /// All valid grids for `ranks` GPUs on `dims` among power-of-two
    /// factorizations, 1-d included.
    pub fn candidates(dims: LatticeDims, ranks: usize) -> Vec<ProcessGrid> {
        let pow2_divisors = |n: usize| {
            let mut d = Vec::new();
            let mut p = 1;
            while p <= n {
                if n % p == 0 {
                    d.push(p);
                }
                p *= 2;
            }
            d
        };
        let mut out = Vec::new();
        for nx in pow2_divisors(ranks) {
            for ny in pow2_divisors(ranks / nx) {
                for nz in pow2_divisors(ranks / nx / ny) {
                    let g = ProcessGrid { nx, ny, nz, nt: ranks / nx / ny / nz };
                    if g.divides(dims) {
                        out.push(g);
                    }
                }
            }
        }
        out
    }

    /// The partitioned dimensions, ascending.
    pub fn cut_dims(&self) -> impl Iterator<Item = usize> + '_ {
        (0..4).filter(|&d| self.extents()[d] > 1)
    }

    /// Face sites (per parity) of one face in the given dimension.
    pub fn face_sites_dim(&self, dims: LatticeDims, dim: usize) -> usize {
        let ld = self.local_dims(dims);
        ld.volume() / ld.extent(dim) / 2
    }

    /// Face sites (per parity) exchanged per hopping application, summed
    /// over the partitioned directions (each cut direction has 2 faces).
    pub fn face_sites_cb(&self, dims: LatticeDims) -> usize {
        // Face-area arithmetic, not rank-local data.
        // quda-lint: allow(global-reduce)
        self.cut_dims().map(|d| self.face_sites_dim(dims, d)).sum()
    }
}

impl std::fmt::Display for ProcessGrid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}x{}", self.nx, self.ny, self.nz, self.nt)
    }
}

/// Modeled sustained aggregate Gflops of the solver on a process grid,
/// using the no-overlap strategy (conservative; overlap benefits all grids
/// equally).
pub fn sustained_gflops_grid(inp: &PerfInput, grid: ProcessGrid) -> Option<f64> {
    if !grid.divides(inp.global) {
        return None;
    }
    let (_, sloppy) = mode_tags(inp.mode);
    let ld = grid.local_dims(inp.global);
    let sites = ld.half_volume() as u64;
    let t_dslash = dslash_time_grid(inp, grid, sloppy);
    // Two clover kernels per operator application (as in the 1-d model).
    let clover = |axpy: bool| {
        let b = sloppy.storage_bytes() as u64;
        let reals = if axpy { 144u64 } else { 120 };
        kernel_time(
            &inp.calib.kernel,
            &inp.gpu,
            &KernelWork {
                bytes: sites * reals * b,
                flops: sites * 552,
                storage_bytes: sloppy.storage_bytes(),
            },
        )
    };
    let t_matpc = 2.0 * t_dslash + clover(false) + clover(true);
    let b = sloppy.storage_bytes() as u64;
    let blas = kernel_time(
        &inp.calib.kernel,
        &inp.gpu,
        &KernelWork {
            bytes: sites * 528 * b,
            flops: sites * 1032,
            storage_bytes: sloppy.storage_bytes(),
        },
    ) + 4.0 * allreduce_time(&inp.calib.network, grid.ranks());
    let t_iter = 2.0 * t_matpc + blas;
    let flops = (2 * sites * quda_dirac::flops::MATPC_FLOPS_PER_SITE + sites * 1032) as f64;
    Some(grid.ranks() as f64 * flops / t_iter / 1e9)
}

fn dslash_time_grid(inp: &PerfInput, grid: ProcessGrid, tag: PrecisionTag) -> f64 {
    let ld = grid.local_dims(inp.global);
    let sites = ld.half_volume() as u64;
    let b = tag.storage_bytes() as u64;
    let kernel = kernel_time(
        &inp.calib.kernel,
        &inp.gpu,
        &KernelWork {
            bytes: sites * quda_dirac::flops::DSLASH_REALS_PER_SITE * b,
            flops: sites * 1650,
            storage_bytes: tag.storage_bytes(),
        },
    );
    let t = &inp.calib.transfer;
    // Modeled seconds accumulate locally by design (perf model, no ranks).
    // quda-lint: allow(global-reduce)
    let mut comm = 0.0;
    for dim in grid.cut_dims() {
        let face_sites = grid.face_sites_dim(inp.global, dim);
        if face_sites == 0 {
            continue;
        }
        let msg = face_bytes(tag, face_sites);
        let gather = crate::perf::d2h_copies(tag) as f64 * t.sync_latency_s
            + msg as f64 / bw(t, Direction::D2H, inp);
        let scatter = crate::perf::h2d_copies(tag) as f64 * t.sync_latency_s
            + msg as f64 / bw(t, Direction::H2D, inp);
        comm += 2.0 * gather + network_time(&inp.calib.network, msg) + 2.0 * scatter;
    }
    kernel + comm
}

fn bw(t: &quda_gpusim::calib::TransferCalib, dir: Direction, inp: &PerfInput) -> f64 {
    let base = pcie_time(t, CopyKind::Sync, dir, inp.numa, 0);
    let one = pcie_time(t, CopyKind::Sync, dir, inp.numa, 1_000_000);
    1_000_000.0 / (one - base)
}

/// The best grid (by modeled Gflops) for a GPU count, among power-of-two
/// factorizations.
pub fn best_grid(inp: &PerfInput, ranks: usize) -> Option<(ProcessGrid, f64)> {
    ProcessGrid::candidates(inp.global, ranks)
        .into_iter()
        .filter_map(|g| sustained_gflops_grid(inp, g).map(|f| (g, f)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::PrecisionMode;
    use crate::ghost::face_wire_bytes_dyn;
    use crate::rank_op::CommStrategy;

    fn inp(ranks: usize) -> PerfInput {
        PerfInput::paper(
            LatticeDims::spatial_cube(32, 256),
            ranks.max(1),
            PrecisionMode::Single,
            CommStrategy::NoOverlap,
        )
    }

    #[test]
    fn one_d_grid_matches_shape_of_main_model() {
        // The pure-T grid is the paper's decomposition; its Gflops should
        // be within a few percent of the main model's no-overlap path.
        let i = inp(16);
        let g2d = sustained_gflops_grid(&i, ProcessGrid::one_d(16)).unwrap();
        let g1d = crate::perf::evaluate(&i).sustained_gflops;
        let ratio = g2d / g1d;
        assert!((0.85..1.15).contains(&ratio), "grid(1x1x1xT) {g2d} vs 1d {g1d}");
    }

    #[test]
    fn one_d_runs_out_of_time_extent() {
        // 32^3x256 with local T >= 2 even: the pure-T slice stops at 128
        // ranks; at 256 ranks only multi-dimensional grids remain.
        let dims = LatticeDims::spatial_cube(32, 256);
        let grids = ProcessGrid::candidates(dims, 256);
        assert!(!grids.is_empty());
        assert!(grids.iter().all(|g| g.nt < 256), "pure 1-d cannot reach 256 ranks: {grids:?}");
    }

    #[test]
    fn candidates_include_four_d_grids() {
        // The original model only cut (Z,T); the 4-d enumeration must also
        // produce X- and Y-cut grids, including a fully 4-d one.
        let dims = LatticeDims::spatial_cube(32, 256);
        let grids = ProcessGrid::candidates(dims, 16);
        assert!(grids.contains(&ProcessGrid { nx: 2, ny: 2, nz: 2, nt: 2 }), "{grids:?}");
        assert!(grids.contains(&ProcessGrid { nx: 16, ny: 1, nz: 1, nt: 1 }), "{grids:?}");
        assert!(grids.contains(&ProcessGrid::one_d(16)));
        // Every candidate divides the lattice and has the right rank count.
        for g in &grids {
            assert!(g.divides(dims));
            assert_eq!(g.ranks(), 16);
        }
        // X extent 32 with even local extents >= 2 caps nx at 16.
        assert!(ProcessGrid::candidates(dims, 32).iter().all(|g| g.nx <= 16));
    }

    #[test]
    fn two_d_wins_at_large_gpu_counts() {
        // The paper's motivation: surface/volume control. At 128 GPUs the
        // T-only slice has local T = 2 (face sites = interior sites); a
        // balanced grid does better.
        let i = inp(128);
        let t_only = sustained_gflops_grid(&i, ProcessGrid::one_d(128)).unwrap();
        let (best, best_gflops) = best_grid(&i, 128).unwrap();
        assert!(best.nt < 128, "expected a multi-d grid to win, got {best:?}");
        assert!(best_gflops > t_only, "multi-d {best_gflops} vs 1-d {t_only}");
    }

    #[test]
    fn small_counts_prefer_one_d() {
        // At modest GPU counts the 1-d slice minimizes the number of cut
        // directions — the reason the paper chose it.
        let i = inp(8);
        let (best, _) = best_grid(&i, 8).unwrap();
        assert_eq!(best, ProcessGrid::one_d(8));
    }

    #[test]
    fn face_site_accounting() {
        let dims = LatticeDims::spatial_cube(32, 256);
        let g = ProcessGrid { nx: 1, ny: 1, nz: 2, nt: 8 };
        let ld = g.local_dims(dims);
        assert_eq!(ld, LatticeDims::new(32, 32, 16, 32));
        assert_eq!(g.face_sites_cb(dims), 32 * 32 * 16 / 2 + 32 * 32 * 32 / 2);
        let g4 = ProcessGrid { nx: 2, ny: 2, nz: 2, nt: 2 };
        let ld4 = g4.local_dims(dims);
        assert_eq!(ld4, LatticeDims::new(16, 16, 16, 128));
        // Three spatial faces of 16x16x128 plus one temporal face of 16^3.
        assert_eq!(g4.face_sites_cb(dims), 3 * (16 * 16 * 128 / 2) + 16 * 16 * 16 / 2);
    }

    #[test]
    fn model_face_bytes_match_driver_wire_bytes() {
        // ISSUE 7 satellite: for every candidate grid, the model's
        // per-direction face byte prediction must equal the byte count the
        // real exchange driver computes for the equivalent DecompPlan via
        // the shared face_wire_bytes sizing.
        let dims = LatticeDims::new(8, 8, 8, 16);
        let tags =
            [PrecisionTag::Double, PrecisionTag::Single, PrecisionTag::Half, PrecisionTag::Quarter];
        for ranks in [2usize, 4, 8, 16] {
            let grids = ProcessGrid::candidates(dims, ranks);
            assert!(!grids.is_empty(), "no candidate grids for {ranks} ranks");
            for g in grids {
                let plan = g.decomp(dims).expect("candidate grids map onto valid plans");
                assert_eq!(plan.local_dims(), g.local_dims(dims));
                let cut: Vec<usize> = g.cut_dims().collect();
                let active: Vec<usize> = plan.active_dims().collect();
                assert_eq!(cut, active, "grid {g} cuts the same dims the driver partitions");
                for dim in active {
                    let model_sites = g.face_sites_dim(dims, dim);
                    assert_eq!(
                        model_sites,
                        plan.face_sites_cb(dim),
                        "grid {g} dim {dim}: model face sites != driver face sites"
                    );
                    for tag in tags {
                        assert_eq!(
                            face_bytes(tag, model_sites),
                            face_wire_bytes_dyn(
                                tag.storage_bytes(),
                                tag.needs_norm(),
                                plan.face_sites_cb(dim),
                                1
                            ),
                            "grid {g} dim {dim} tag {tag:?}"
                        );
                    }
                }
            }
        }
    }
}
